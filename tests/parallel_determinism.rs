//! End-to-end determinism suite: the analyzer's thread count is a
//! throughput knob, never a semantics knob. Running the identical
//! analysis serial and at 4 threads must produce byte-identical
//! reports — poses, fitness values, score card, per-frame health, and
//! every intermediate segmentation mask — on a clean clip *and* on a
//! fault-injected one that exercises the recovery ladder and
//! best-effort scoring.

use slj::prelude::*;
use slj::AnalysisReport;

fn compact_scene() -> SceneConfig {
    SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::default()
    }
}

/// Field-by-field byte equality of two reports (`AnalysisReport` itself
/// has no `PartialEq` because `SegmentationResult` carries the
/// background estimate; compare every component instead).
fn assert_reports_identical(a: &AnalysisReport, b: &AnalysisReport, label: &str) {
    assert_eq!(a.poses, b.poses, "{label}: poses differ");
    assert_eq!(a.score, b.score, "{label}: score cards differ");
    assert_eq!(
        a.tracking, b.tracking,
        "{label}: tracking diagnostics differ"
    );
    assert_eq!(a.health, b.health, "{label}: health timelines differ");
    assert_eq!(
        a.segmentation.frames, b.segmentation.frames,
        "{label}: segmentation stage masks differ"
    );
    assert_eq!(
        a.segmentation.quality, b.segmentation.quality,
        "{label}: silhouette quality differs"
    );
    assert_eq!(
        a.segmentation.background.image.as_slice(),
        b.segmentation.background.image.as_slice(),
        "{label}: background estimates differ"
    );
    assert_eq!(a.summary(), b.summary(), "{label}: summaries differ");
}

fn analyze_at(
    parallelism: Parallelism,
    base: &AnalyzerConfig,
    video: &Video,
    camera: &Camera,
    first_pose: slj_motion::Pose,
) -> AnalysisReport {
    let config = AnalyzerConfig {
        parallelism,
        ..base.clone()
    };
    JumpAnalyzer::new(config)
        .analyze(video, camera, first_pose)
        .expect("analysis should succeed at any thread count")
}

#[test]
fn clean_clip_parallel_report_is_byte_identical_to_serial() {
    let scene = SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::clean()
    };
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 71);
    let base = AnalyzerConfig::fast();
    let first = jump.poses.poses()[0];
    let serial = analyze_at(
        Parallelism::Serial,
        &base,
        &jump.video,
        &scene.camera,
        first,
    );
    let parallel = analyze_at(
        Parallelism::Fixed(4),
        &base,
        &jump.video,
        &scene.camera,
        first,
    );
    assert_reports_identical(&serial, &parallel, "clean clip");
}

#[test]
fn fault_injected_clip_parallel_report_is_byte_identical_to_serial() {
    // Faults push frames through the recovery ladder and the degraded
    // accounting — the paths where a non-deterministic parallelisation
    // would show first.
    let scene = compact_scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 72);
    let (faulty, _) = FaultInjector::new(FaultConfig {
        seed: 7,
        occlusion_bars: 2,
        ..FaultConfig::default()
    })
    .inject(&jump.video);
    let base = AnalyzerConfig {
        robustness: RobustnessPolicy::BestEffort {
            max_degraded_frames: 10,
        },
        ..AnalyzerConfig::fast()
    };
    let first = jump.poses.poses()[0];
    let serial = analyze_at(Parallelism::Serial, &base, &faulty, &scene.camera, first);
    let parallel = analyze_at(Parallelism::Fixed(4), &base, &faulty, &scene.camera, first);
    assert_reports_identical(&serial, &parallel, "fault-injected clip");
}

#[test]
fn auto_and_oversubscribed_thread_counts_also_match() {
    // `auto` (whatever the host reports) and a thread count far beyond
    // the frame count must both collapse to the same bytes.
    let scene = SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::clean()
    };
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 73);
    let base = AnalyzerConfig::fast();
    let first = jump.poses.poses()[0];
    let serial = analyze_at(
        Parallelism::Serial,
        &base,
        &jump.video,
        &scene.camera,
        first,
    );
    for parallelism in [Parallelism::Auto, Parallelism::Fixed(64)] {
        let run = analyze_at(parallelism, &base, &jump.video, &scene.camera, first);
        assert_reports_identical(&serial, &run, &format!("parallelism {parallelism}"));
    }
}
