//! System-level property tests: measurement, phase classification and
//! rule traces hold their invariants over arbitrary jump configurations.

use proptest::prelude::*;
use slj::prelude::*;
use slj_motion::phases::JumpPhase;
use slj_motion::{classify_phases, JumpFlaw};
use slj_score::RuleTrace;

fn flaw_set(bits: u8) -> Vec<JumpFlaw> {
    JumpFlaw::ALL
        .iter()
        .enumerate()
        .filter(|(i, _)| bits & (1 << i) != 0)
        .map(|(_, f)| *f)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn measurement_invariants(
        frames in 10usize..30,
        distance in 0.6f64..1.6,
        height in 1.0f64..1.6,
        bits in 0u8..128,
    ) {
        let cfg = JumpConfig {
            frames,
            jump_distance: distance,
            dims: BodyDims::for_height(height),
            flaws: flaw_set(bits),
            ..JumpConfig::default()
        };
        let seq = synthesize_jump(&cfg);
        let m = measure_jump(&seq, &cfg.dims).expect("every synthetic jump flies");
        prop_assert!(m.takeoff_frame < m.landing_frame);
        prop_assert!(m.landing_frame < frames);
        prop_assert!(m.flight_frames >= 1);
        prop_assert!(m.flight_frames <= frames);
        // The jump goes forward, and not absurdly far.
        prop_assert!(m.distance_m > 0.0, "distance {}", m.distance_m);
        prop_assert!(m.distance_m < distance + 1.0);
        prop_assert!(m.peak_clearance_m > 0.0);
        prop_assert!(m.peak_clearance_m < height);
    }

    #[test]
    fn phase_classification_invariants(
        frames in 10usize..30,
        bits in 0u8..128,
    ) {
        let cfg = JumpConfig {
            frames,
            flaws: flaw_set(bits),
            ..JumpConfig::default()
        };
        let seq = synthesize_jump(&cfg);
        let phases = classify_phases(&seq, &cfg.dims);
        prop_assert_eq!(phases.len(), frames);
        // Exactly one contiguous flight block; takeoff (if any) directly
        // precedes it.
        let first_flight = phases.iter().position(|&p| p == JumpPhase::Flight);
        if let Some(fs) = first_flight {
            let fe = phases.iter().rposition(|&p| p == JumpPhase::Flight).unwrap();
            prop_assert!(phases[fs..=fe].iter().all(|&p| p == JumpPhase::Flight));
            if fs > 0 {
                prop_assert_eq!(phases[fs - 1], JumpPhase::Takeoff);
            }
            // Nothing before flight is landing/recovery; nothing after
            // is standing/crouch/takeoff.
            prop_assert!(phases[..fs]
                .iter()
                .all(|&p| !matches!(p, JumpPhase::Landing | JumpPhase::Recovery)));
            prop_assert!(phases[fe + 1..]
                .iter()
                .all(|&p| matches!(p, JumpPhase::Landing | JumpPhase::Recovery)));
        }
    }

    #[test]
    fn rule_traces_consistent_with_card(
        frames in 8usize..26,
        bits in 0u8..128,
    ) {
        let cfg = JumpConfig {
            frames,
            flaws: flaw_set(bits),
            ..JumpConfig::default()
        };
        let seq = synthesize_jump(&cfg);
        let card = score_jump(&seq).unwrap();
        let traces = RuleTrace::all(&seq).unwrap();
        prop_assert_eq!(traces.len(), 7);
        for (trace, result) in traces.iter().zip(card.results()) {
            prop_assert_eq!(trace.rule, result.rule);
            prop_assert_eq!(trace.satisfied, result.satisfied());
            prop_assert_eq!(trace.values.len(), frames);
            // The sparkline is one char per frame.
            prop_assert_eq!(trace.sparkline().chars().count(), frames);
        }
    }

    #[test]
    fn smoothing_preserves_scoring_of_clean_sequences(bits in 0u8..128) {
        // The analyzer's median smoothing must not change verdicts on
        // already-clean (synthetic) pose sequences.
        let cfg = JumpConfig {
            flaws: flaw_set(bits),
            ..JumpConfig::default()
        };
        let seq = synthesize_jump(&cfg);
        let card_raw = score_jump(&seq).unwrap();
        let card_smooth = score_jump(&seq.median_smoothed(3)).unwrap();
        prop_assert_eq!(card_raw.score(), card_smooth.score(), "flaws {:?}", cfg.flaws);
    }
}
