//! Observability determinism suite: the `slj-trace/1` JSONL trace and
//! the metrics registry must be byte-identical at every `Parallelism`
//! setting — `--threads` is a throughput knob, never a semantics knob,
//! and the observability layer must uphold that contract or a trace
//! diff would cry wolf on every thread-count change.

use slj::prelude::*;

fn fault_injected_clip() -> (SyntheticJump, Video, SceneConfig) {
    let scene = SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::default()
    };
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 91);
    // Faults exercise the recovery ladder and the masked-scoring path,
    // so the trace covers every record variant.
    let (faulty, _) = FaultInjector::new(FaultConfig {
        seed: 13,
        occlusion_bars: 2,
        ..FaultConfig::default()
    })
    .inject(&jump.video);
    (jump, faulty, scene)
}

fn config_at(parallelism: Parallelism) -> AnalyzerConfig {
    AnalyzerConfig {
        robustness: RobustnessPolicy::BestEffort {
            max_degraded_frames: 10,
        },
        parallelism,
        ..AnalyzerConfig::fast()
    }
}

#[test]
fn trace_and_metrics_are_byte_identical_across_parallelism() {
    let (jump, faulty, scene) = fault_injected_clip();
    let first = jump.poses.poses()[0];
    let serial = JumpAnalyzer::new(config_at(Parallelism::Serial))
        .analyze(&faulty, &scene.camera, first)
        .expect("serial analysis succeeds");
    let serial_trace = serial.obs.render_trace();
    let serial_metrics = serial.obs.metrics().render();
    for parallelism in [Parallelism::Fixed(4), Parallelism::Auto] {
        let report = JumpAnalyzer::new(config_at(parallelism))
            .analyze(&faulty, &scene.camera, first)
            .expect("parallel analysis succeeds");
        assert_eq!(
            serial_trace,
            report.obs.render_trace(),
            "trace differs at {parallelism}"
        );
        assert_eq!(
            serial_metrics,
            report.obs.metrics().render(),
            "metrics differ at {parallelism}"
        );
    }
}

#[test]
fn trace_follows_the_schema() {
    let (jump, faulty, scene) = fault_injected_clip();
    let report = JumpAnalyzer::new(config_at(Parallelism::Serial))
        .analyze(&faulty, &scene.camera, jump.poses.poses()[0])
        .expect("analysis succeeds");
    let trace = report.obs.render_trace();
    let lines: Vec<&str> = trace.lines().collect();
    // Header + (segment + track) per frame + one line per rule.
    assert_eq!(lines.len(), 1 + 2 * faulty.len() + 7);
    assert!(
        lines[0].contains(&format!("\"schema\":\"{}\"", slj::TRACE_SCHEMA)),
        "header: {}",
        lines[0]
    );
    for (k, pair) in lines[1..1 + 2 * faulty.len()].chunks(2).enumerate() {
        assert!(
            pair[0].contains("\"span\":\"frame.segment\"")
                && pair[0].contains(&format!("\"frame\":{k}")),
            "frame {k}: {}",
            pair[0]
        );
        assert!(
            pair[1].contains("\"span\":\"frame.track\"")
                && pair[1].contains(&format!("\"frame\":{k}")),
            "frame {k}: {}",
            pair[1]
        );
    }
    for line in &lines[1 + 2 * faulty.len()..] {
        assert!(line.contains("\"span\":\"score.rule\""), "{line}");
    }
    // No wall-clock or host data leaks into the trace ("host" alone
    // would false-positive on the ghost-suppression counters).
    for needle in ["_ms", "nanos", "duration", "thread", "hostname"] {
        assert!(!trace.contains(needle), "trace leaks '{needle}'");
    }
}

#[test]
fn metrics_aggregate_matches_the_analysis() {
    let (jump, faulty, scene) = fault_injected_clip();
    let report = JumpAnalyzer::new(config_at(Parallelism::Serial))
        .analyze(&faulty, &scene.camera, jump.poses.poses()[0])
        .expect("analysis succeeds");
    let m = report.obs.metrics();
    assert_eq!(m.counter("segment.frames") as usize, faulty.len());
    assert_eq!(m.counter("score.rules"), 7);
    assert_eq!(
        m.counter("score.satisfied") + m.counter("score.violated") + m.counter("score.masked"),
        7
    );
    assert_eq!(
        m.counter("track.evaluations") as usize,
        report.summary().total_evaluations
    );
    let rungs = m.counter("track.recovery.none")
        + m.counter("track.recovery.widened")
        + m.counter("track.recovery.cold_restart")
        + m.counter("track.recovery.interpolated")
        + m.counter("track.recovery.carried");
    assert_eq!(rungs as usize, faulty.len());
    // The branch-and-bound identity: candidates + pruned = 8 sticks ×
    // sampled pixels, and something must actually be pruned on a real
    // clip.
    assert!(m.counter("track.bb_pruned") > 0);
    let h = m.histogram("track.generations.hist").expect("histogram");
    assert_eq!(h.count() as usize, faulty.len());
}

#[test]
fn observability_does_not_perturb_the_analysis() {
    // The span data is derived from analysis results, never fed back:
    // rendering the trace and aggregating metrics (any number of times)
    // must leave the report bit-exact.
    let (jump, faulty, scene) = fault_injected_clip();
    let first = jump.poses.poses()[0];
    let a = JumpAnalyzer::new(config_at(Parallelism::Serial))
        .analyze(&faulty, &scene.camera, first)
        .expect("analysis succeeds");
    let _ = a.obs.render_trace();
    let _ = a.obs.metrics();
    let b = JumpAnalyzer::new(config_at(Parallelism::Serial))
        .analyze(&faulty, &scene.camera, first)
        .expect("analysis succeeds");
    assert_eq!(a.to_analysis(), b.to_analysis());
    assert_eq!(a.obs.render_trace(), b.obs.render_trace());
}

#[test]
fn streaming_trace_is_byte_identical_to_batch() {
    let scene = SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::clean()
    };
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 92);
    let config = AnalyzerConfig {
        robustness: RobustnessPolicy::BestEffort {
            max_degraded_frames: 2,
        },
        ..AnalyzerConfig::fast().into_streaming(14)
    };
    let first = jump.poses.poses()[0];
    let batch = JumpAnalyzer::new(config.clone())
        .analyze(&jump.video, &scene.camera, first)
        .expect("batch succeeds");
    let mut stream =
        StreamingAnalyzer::new(config, &scene.camera, first, jump.video.fps()).unwrap();
    let mut observed = 0usize;
    for frame in jump.video.iter() {
        let update = stream.push_frame(frame).unwrap();
        assert_eq!(update.observed.len(), update.completed.len());
        observed += update.observed.len();
    }
    assert_eq!(observed, jump.video.len());
    let streamed = stream.finish().expect("finish succeeds");
    assert_eq!(batch.obs.render_trace(), streamed.obs.render_trace());
    assert_eq!(
        batch.obs.metrics().render(),
        streamed.obs.metrics().render()
    );
}
