//! Backpressure regression test: a full session queue sheds offers on
//! an allocation-free, copy-free path, and queue memory stays bounded
//! at `queue_depth` no matter how hard a producer bursts.
//!
//! This is the service-layer twin of `crates/segment/tests/zero_alloc.rs`
//! and borrows its counting `#[global_allocator]`. The allocator is
//! process-global, so this file is its own test binary with a single
//! `#[test]` — concurrent test threads would pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use slj::prelude::*;
use slj_serve::{DeadlineClock, OfferReply, ServeConfig, SessionConfig, SessionManager};

/// System allocator plus a global allocation counter.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

// SAFETY: defers to the system allocator; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn full_queue_sheds_bursts_without_allocating() {
    const QUEUE_DEPTH: usize = 2;
    const BURST: u64 = 100;

    let scene = SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::clean()
    };
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 96);
    let config = AnalyzerConfig {
        robustness: RobustnessPolicy::BestEffort {
            max_degraded_frames: 10,
        },
        ..AnalyzerConfig::fast().into_streaming(14)
    };

    let mut manager = SessionManager::new(ServeConfig {
        max_sessions: 2,
        queue_depth: QUEUE_DEPTH,
        clock: DeadlineClock::Scripted,
        // Stall detection off: this producer idles on purpose.
        stall_ticks: 0,
        ..ServeConfig::default()
    });
    let id = manager
        .open(SessionConfig {
            analyzer: config,
            camera: scene.camera,
            first_pose: jump.poses.poses()[0],
            fps: jump.video.fps(),
        })
        .unwrap();
    let frame = &jump.video.frames()[0];

    // Fill the queue: exactly `queue_depth` accepts.
    for expected_depth in 1..=QUEUE_DEPTH {
        match manager.offer(id, frame).unwrap() {
            OfferReply::Accepted { depth, .. } => assert_eq!(depth, expected_depth),
            reply => panic!("queue not full yet, got {reply:?}"),
        }
    }

    // Burst against the full queue: every offer is shed, and the reject
    // path performs zero allocations and zero frame copies.
    for k in 0..BURST {
        let before = allocations();
        let reply = manager.offer(id, frame).unwrap();
        let delta = allocations() - before;
        assert_eq!(delta, 0, "shed {k} allocated {delta} times");
        assert!(
            matches!(reply, OfferReply::Overloaded { depth, .. } if depth == QUEUE_DEPTH),
            "burst offer {k} must be shed at depth {QUEUE_DEPTH}, got {reply:?}"
        );
    }

    // Queue memory is bounded: still exactly `queue_depth` frames
    // buffered, and every shed is on the metrics record.
    assert_eq!(manager.queue_len(id), Some(QUEUE_DEPTH));
    assert_eq!(
        manager
            .metrics(id)
            .unwrap()
            .counter(slj_obs::serve_keys::SHEDS),
        BURST
    );

    // Backpressure releases as the supervisor drains: one tick frees
    // one slot and the next offer is accepted again.
    manager.tick();
    assert_eq!(manager.queue_len(id), Some(QUEUE_DEPTH - 1));
    assert!(matches!(
        manager.offer(id, frame).unwrap(),
        OfferReply::Accepted { .. }
    ));
}
