//! Session-churn allocation regression test: with the slot pool on,
//! steady-state session turnover (open → stream a clip → finish →
//! retire → open the next into the recycled slot) performs **zero
//! large allocations** — frame buffers, arenas, background scratch and
//! GA state all come back out of the retired slot.
//!
//! "Large" is a size threshold, not a count of every allocation: small
//! bookkeeping (result vectors, map nodes, event payloads) is allowed
//! and bounded, while anything frame-sized or bigger must be recycled.
//!
//! Like `serve_overload.rs`, the counting `#[global_allocator]` is
//! process-global, so this file is its own test binary with a single
//! `#[test]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use slj::prelude::*;
use slj_ga::{GaConfig, PoseProblemConfig};
use slj_serve::{
    DeadlineClock, HealthEvent, OfferReply, ServeConfig, SessionConfig, SessionManager,
};

/// Allocations at or above this many bytes count as "large" — the
/// frame-buffer / arena / scratch tier the slot pool exists to recycle.
/// The smallest full-frame plane at the test's 160x120 resolution is a
/// u8 plane (19 200 B); per-clip *result* vectors (poses, tracking,
/// quality — storage that leaves the session inside the returned
/// `JumpAnalysis` and so cannot be recycled) stay below ~8 KiB at this
/// clip length, so 16 KiB cleanly splits the two tiers.
const LARGE: usize = 16 * 1024;

/// System allocator plus a global count of large allocations.
struct CountingAllocator;

static LARGE_ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
/// Ring of the most recent large-allocation sizes, for the failure
/// message (fixed-size: the allocator must not allocate).
static RECENT_SIZES: [AtomicUsize; 16] = [const { AtomicUsize::new(0) }; 16];

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// How many large allocations may still print a backtrace (set from
/// `CHURN_TRACE` once steady state begins; symbolisation is slow, so
/// the budget stays small).
static TRACE_BUDGET: AtomicUsize = AtomicUsize::new(0);

fn note_large(size: usize) {
    let n = LARGE_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    RECENT_SIZES[n % RECENT_SIZES.len()].store(size, Ordering::Relaxed);
    if TRACE_BUDGET
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |left| {
            left.checked_sub(1)
        })
        .is_ok()
    {
        std::thread_local! {
            static IN_TRACE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
        }
        IN_TRACE.with(|flag| {
            if !flag.get() {
                flag.set(true);
                eprintln!(
                    "LARGE ALLOC {size}:\n{}",
                    std::backtrace::Backtrace::force_capture()
                );
                flag.set(false);
            }
        });
    }
}

// SAFETY: defers to the system allocator; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if layout.size() >= LARGE {
            note_large(layout.size());
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if layout.size() >= LARGE {
            note_large(layout.size());
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size >= LARGE {
            note_large(new_size);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

fn large_allocations() -> usize {
    LARGE_ALLOCATIONS.load(Ordering::Relaxed)
}

fn recent_sizes() -> Vec<usize> {
    RECENT_SIZES
        .iter()
        .map(|s| s.load(Ordering::Relaxed))
        .filter(|&s| s != 0)
        .collect()
}

/// A deliberately tiny analyzer budget: the test measures allocation,
/// not estimation quality, so the GA runs a small population for a few
/// generations at a coarse stride.
fn micro_config() -> AnalyzerConfig {
    let fast = AnalyzerConfig::fast();
    AnalyzerConfig {
        robustness: RobustnessPolicy::BestEffort {
            max_degraded_frames: 20,
        },
        tracker: TrackerConfig {
            ga: GaConfig {
                population_size: 16,
                max_generations: 4,
                patience: Some(2),
                ..fast.tracker.ga
            },
            problem: PoseProblemConfig {
                stride: 8,
                ..fast.tracker.problem
            },
            ..fast.tracker
        },
        ..fast.into_streaming(14)
    }
}

/// One full session lifecycle against the manager: open (adopting a
/// recycled slot when one is pooled), stream the whole clip, finish,
/// take the result and retire back into the pool. `events` is the
/// caller's reusable drain buffer.
fn run_cycle(
    manager: &mut SessionManager,
    config: &SessionConfig,
    video: &Video,
    events: &mut Vec<HealthEvent>,
) {
    let id = manager.open(config.clone()).unwrap();
    for frame in video.iter() {
        let reply = manager.offer(id, frame).unwrap();
        assert!(matches!(reply, OfferReply::Accepted { .. }));
        manager.tick();
    }
    manager.close(id).unwrap();
    manager.run_until_idle();
    manager.drain_events_into(events);
    events.clear();
    let result = manager.take_result(id).unwrap();
    assert!(result.is_ok(), "churned clip must still analyse");
    manager.retire(id).unwrap();
}

#[test]
fn session_churn_steady_state_does_no_large_allocations() {
    const WARM: usize = 2;
    const CYCLES: usize = 100;

    let scene = SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::clean()
    };
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 99);
    let session = SessionConfig {
        analyzer: micro_config(),
        camera: scene.camera,
        first_pose: jump.poses.poses()[0],
        fps: jump.video.fps(),
    };
    let mut manager = SessionManager::new(ServeConfig {
        max_sessions: 1,
        queue_depth: 4,
        clock: DeadlineClock::Scripted,
        // Checkpoints clone live analyzer state; keep them out of the
        // loop so the measurement isolates the churn path itself.
        checkpoint_interval: jump.video.len() + 1,
        stall_ticks: 0,
        ..ServeConfig::default()
    });
    let mut events = Vec::new();

    // Warm-up: the first cycles build the slot's arenas and scratch
    // (and every lazily-grown buffer) from nothing.
    for _ in 0..WARM {
        run_cycle(&mut manager, &session, &jump.video, &mut events);
    }
    assert_eq!(manager.pooled_slots(), 1, "the retired slot is pooled");

    // Steady state: every subsequent lifecycle adopts the recycled
    // slot and must never allocate at the frame-buffer tier again.
    if std::env::var_os("CHURN_TRACE").is_some() {
        TRACE_BUDGET.store(4, Ordering::Relaxed);
    }
    let before = large_allocations();
    for cycle in 0..CYCLES {
        run_cycle(&mut manager, &session, &jump.video, &mut events);
        let delta = large_allocations() - before;
        assert_eq!(
            delta,
            0,
            "cycle {cycle}: {delta} large (>= {LARGE} B) allocations in steady-state churn; \
             recent sizes {:?}",
            recent_sizes()
        );
    }
    assert_eq!(manager.pooled_slots(), 1);
    assert_eq!(manager.sessions_in_service(), 0);
}
