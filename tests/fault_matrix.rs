//! Fault-matrix stress tests: one scenario per fault family, each run
//! through the full pipeline twice — once clean, once perturbed by the
//! `slj-video` fault injector under the best-effort policy. The
//! contract: best-effort completes and stays within 2 rules of the
//! clean score; the strict policy refuses heavily damaged footage with
//! a typed error naming the first unhealthy frame.

use slj::prelude::*;
use slj_video::NoiseBurst;

fn scene() -> SceneConfig {
    SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::clean()
    }
}

fn analyze(video: &Video, scene: &SceneConfig, first: Pose, cfg: AnalyzerConfig) -> AnalysisReport {
    JumpAnalyzer::new(cfg)
        .analyze(video, &scene.camera, first)
        .expect("analysis should complete")
}

fn best_effort() -> AnalyzerConfig {
    AnalyzerConfig {
        robustness: RobustnessPolicy::BestEffort {
            max_degraded_frames: 10,
        },
        ..AnalyzerConfig::fast()
    }
}

/// The matrix: every fault family that the injector can produce, at a
/// severity a real camera could plausibly exhibit.
fn scenarios() -> Vec<(&'static str, FaultConfig)> {
    vec![
        (
            "dropped-frames",
            FaultConfig {
                drop_prob: 0.15,
                ..FaultConfig::default()
            },
        ),
        (
            "duplicated-frames",
            FaultConfig {
                duplicate_prob: 0.2,
                ..FaultConfig::default()
            },
        ),
        (
            "illumination-flicker",
            FaultConfig {
                flicker: 0.08,
                ..FaultConfig::default()
            },
        ),
        (
            "sensor-noise-burst",
            FaultConfig {
                burst: Some(NoiseBurst {
                    count: 2,
                    len: 3,
                    amplitude: 45,
                }),
                ..FaultConfig::default()
            },
        ),
        (
            "camera-jitter",
            FaultConfig {
                jitter_px: 2,
                ..FaultConfig::default()
            },
        ),
        (
            "occlusion-bar",
            FaultConfig {
                occlusion_bars: 1,
                ..FaultConfig::default()
            },
        ),
    ]
}

#[test]
fn best_effort_scores_every_fault_scenario_near_the_clean_run() {
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 21);
    let clean = analyze(
        &jump.video,
        &scene,
        jump.poses.poses()[0],
        AnalyzerConfig::fast(),
    );
    let clean_score = clean.score.score() as i64;
    assert!(clean_score >= 6, "clean baseline scored {clean_score}");

    for (name, fault_cfg) in scenarios() {
        let (faulty, injection) = FaultInjector::new(fault_cfg).inject(&jump.video);
        assert_eq!(
            faulty.len(),
            jump.video.len(),
            "{name}: frame count changed"
        );
        let report = analyze(&faulty, &scene, jump.poses.poses()[0], best_effort());
        let score = report.score.score() as i64;
        assert!(
            (clean_score - score).abs() <= 2,
            "{name}: best-effort score {score} strayed from clean {clean_score} \
             ({} faulty frames injected)\n{}",
            injection.faulty_frames(),
            report.score
        );
    }
}

#[test]
fn strict_names_the_first_unhealthy_frame_of_wrecked_footage() {
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 21);
    // Heavy multi-family damage: bars shred silhouettes, drops freeze
    // the transport.
    let (faulty, _) = FaultInjector::new(FaultConfig {
        occlusion_bars: 6,
        drop_prob: 0.2,
        ..FaultConfig::default()
    })
    .inject(&jump.video);
    let err = JumpAnalyzer::new(AnalyzerConfig::fast())
        .analyze(&faulty, &scene.camera, jump.poses.poses()[0])
        .unwrap_err();
    match err {
        AnalyzeError::DegradedClip {
            first_frame,
            ref detail,
            degraded,
            allowed,
            frames,
        } => {
            assert_eq!(allowed, 0, "strict tolerates nothing");
            assert_eq!(frames, jump.video.len());
            assert!(degraded >= 1);
            assert!(
                first_frame < frames,
                "first_frame {first_frame} out of range"
            );
            assert!(
                !detail.is_empty() && detail.contains("confidence"),
                "detail should explain the frame: {detail}"
            );
            // The message itself must name the frame.
            let msg = err.to_string();
            assert!(
                msg.contains(&format!("frame is {first_frame}")),
                "error display should name the first unhealthy frame: {msg}"
            );
        }
        other => panic!("expected DegradedClip, got: {other}"),
    }
}

#[test]
fn best_effort_report_carries_the_health_timeline() {
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 22);
    let (faulty, _) = FaultInjector::new(FaultConfig {
        occlusion_bars: 4,
        ..FaultConfig::default()
    })
    .inject(&jump.video);
    let report = analyze(&faulty, &scene, jump.poses.poses()[0], best_effort());
    assert_eq!(report.health.len(), faulty.len());
    let timeline = slj::health_timeline(&report.health);
    assert_eq!(timeline.chars().count(), faulty.len());
    let summary = report.summary();
    assert!(summary.mean_confidence <= 1.0 && summary.mean_confidence > 0.0);
    // Every degraded frame in the summary is flagged '!' in the timeline.
    for k in &summary.degraded_frames {
        assert_eq!(
            timeline.chars().nth(*k),
            Some('!'),
            "frame {k} in {timeline}"
        );
    }
}
