//! Segmentation-pipeline integration tests against ground truth.
//!
//! The synthetic camera provides the true background and the true
//! silhouette for every frame, so the paper's qualitative Figures 1–3
//! become quantitative assertions here.

use slj_motion::JumpConfig;
use slj_segment::background::{BackgroundConfig, BackgroundEstimator, UpdateMode};
use slj_segment::metrics::evaluate_clip;
use slj_segment::pipeline::{PipelineConfig, SegmentPipeline};
use slj_segment::shadow::{ShadowDetector, ShadowParams};
use slj_video::{Camera, SceneConfig, SyntheticJump};

fn compact_scene(clean: bool) -> SceneConfig {
    let base = if clean {
        SceneConfig::clean()
    } else {
        SceneConfig::default()
    };
    SceneConfig {
        camera: Camera::compact(),
        ..base
    }
}

#[test]
fn background_estimate_close_to_truth_across_seeds() {
    // Fig. 1: the estimated background vs the true one.
    for seed in [1, 2, 3] {
        let jump = SyntheticJump::generate(&compact_scene(false), &JumpConfig::default(), seed);
        let bg = BackgroundEstimator::new(BackgroundConfig::default())
            .estimate(&jump.video)
            .unwrap();
        let mae = bg.mae_against(&jump.true_background).unwrap();
        assert!(mae < 6.0, "seed {seed}: background MAE {mae}");
        assert!(
            bg.coverage() > 0.97,
            "seed {seed}: coverage {}",
            bg.coverage()
        );
    }
}

#[test]
fn median_background_beats_paper_last_stable() {
    let jump = SyntheticJump::generate(&compact_scene(false), &JumpConfig::default(), 7);
    let median = BackgroundEstimator::new(BackgroundConfig::default())
        .estimate(&jump.video)
        .unwrap()
        .mae_against(&jump.true_background)
        .unwrap();
    let last = BackgroundEstimator::new(BackgroundConfig::paper())
        .estimate(&jump.video)
        .unwrap()
        .mae_against(&jump.true_background)
        .unwrap();
    assert!(
        median <= last + 0.5,
        "median MAE {median} should not lose to last-stable {last}"
    );
}

#[test]
fn pipeline_final_iou_high_on_noisy_scene() {
    let jump = SyntheticJump::generate(&compact_scene(false), &JumpConfig::default(), 4);
    let result = SegmentPipeline::new(PipelineConfig::default())
        .run(&jump.video)
        .unwrap();
    let clip = evaluate_clip(&result, &jump.silhouettes, 2).unwrap();
    assert!(
        clip.stages.final_mask.iou() > 0.70,
        "final {}",
        clip.stages.final_mask
    );
    // And each repair stage contributes: final beats raw clearly.
    assert!(clip.stages.final_mask.iou() > clip.stages.raw.iou() + 0.05);
}

#[test]
fn stage_precision_increases_along_fig2_panels() {
    // Fig. 2(a)->(d): subtraction, noise filter, spot removal, hole fill.
    let jump = SyntheticJump::generate(&compact_scene(false), &JumpConfig::default(), 5);
    let result = SegmentPipeline::new(PipelineConfig::default())
        .run(&jump.video)
        .unwrap();
    let clip = evaluate_clip(&result, &jump.silhouettes, 2).unwrap();
    let s = &clip.stages;
    assert!(s.denoised.precision() >= s.raw.precision());
    assert!(s.despotted.precision() >= s.denoised.precision());
    // Hole filling recovers recall without giving back much precision.
    assert!(s.filled.recall() >= s.despotted.recall());
}

#[test]
fn shadow_removal_recovers_precision() {
    // Fig. 3: shadows inflate the mask; Step 5 removes them.
    let jump = SyntheticJump::generate(&compact_scene(false), &JumpConfig::default(), 6);
    let with_shadow_removal = SegmentPipeline::new(PipelineConfig::default())
        .run(&jump.video)
        .unwrap();
    let without = SegmentPipeline::new(PipelineConfig {
        shadow: None,
        ..PipelineConfig::default()
    })
    .run(&jump.video)
    .unwrap();
    let a = evaluate_clip(&with_shadow_removal, &jump.silhouettes, 2).unwrap();
    let b = evaluate_clip(&without, &jump.silhouettes, 2).unwrap();
    assert!(
        a.stages.final_mask.precision() > b.stages.final_mask.precision() + 0.03,
        "with {} vs without {}",
        a.stages.final_mask,
        b.stages.final_mask
    );
}

#[test]
fn shadow_detector_rarely_eats_the_jumper() {
    // Eq. 1's conditions must not classify actual body pixels as shadow.
    let jump = SyntheticJump::generate(&compact_scene(false), &JumpConfig::default(), 8);
    let det = ShadowDetector::new(ShadowParams::default());
    let k = jump.video.len() / 2;
    let frame = &jump.video.frames()[k];
    let truth = &jump.silhouettes[k];
    let shadow = det.shadow_mask(frame, &jump.true_background, truth);
    let eaten = shadow.intersect(truth).unwrap().count();
    let body = truth.count();
    assert!(
        (eaten as f64) < 0.10 * body as f64,
        "{eaten} of {body} body pixels misclassified as shadow"
    );
}

#[test]
fn clean_scene_is_nearly_perfect_everywhere() {
    let jump = SyntheticJump::generate(&compact_scene(true), &JumpConfig::default(), 9);
    let result = SegmentPipeline::new(PipelineConfig::default())
        .run(&jump.video)
        .unwrap();
    let clip = evaluate_clip(&result, &jump.silhouettes, 2).unwrap();
    assert!(
        clip.stages.final_mask.iou() > 0.88,
        "clean-scene final {}",
        clip.stages.final_mask
    );
}

#[test]
fn last_stable_mode_still_adequate_for_tracking() {
    // The paper's exact background method must remain usable even if the
    // median variant beats it.
    let jump = SyntheticJump::generate(&compact_scene(false), &JumpConfig::default(), 10);
    let cfg = PipelineConfig {
        background: BackgroundConfig {
            mode: UpdateMode::LastStable,
            ..BackgroundConfig::default()
        },
        ..PipelineConfig::default()
    };
    let result = SegmentPipeline::new(cfg).run(&jump.video).unwrap();
    let clip = evaluate_clip(&result, &jump.silhouettes, 2).unwrap();
    // Last-stable burns the landed jumper into the background, leaving a
    // ghost blob that roughly halves precision — the documented weakness
    // the median mode fixes. Recall must stay high (the body itself is
    // still extracted) and the mask must remain usable.
    assert!(
        clip.stages.final_mask.recall() > 0.8,
        "{}",
        clip.stages.final_mask
    );
    assert!(
        clip.stages.final_mask.iou() > 0.4,
        "{}",
        clip.stages.final_mask
    );
}
