//! End-to-end integration tests: video in, score card out.
//!
//! These run the complete system of the paper — background estimation,
//! five-step segmentation, GA pose tracking with temporal seeding, and
//! Table 2 scoring — on synthetic clips with known ground truth. The
//! compact camera and fast analyzer keep debug-build times reasonable;
//! the bench binaries run the full-scale equivalents.

use slj::prelude::*;

fn compact_scene(clean: bool) -> SceneConfig {
    let base = if clean {
        SceneConfig::clean()
    } else {
        SceneConfig::default()
    };
    SceneConfig {
        camera: Camera::compact(),
        ..base
    }
}

#[test]
fn clean_good_jump_scores_perfect_or_near() {
    let scene = compact_scene(true);
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 11);
    let report = JumpAnalyzer::new(AnalyzerConfig::fast())
        .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
        .unwrap();
    assert!(
        report.score.score() >= 6,
        "clean good jump scored {}\n{}",
        report.score.score(),
        report.score
    );
}

#[test]
fn noisy_good_jump_still_scores_well() {
    let scene = compact_scene(false);
    // Clip seeds are tuned to the vendored RNG's stream: most noise
    // realisations score 6-7 here, a rare unlucky one drops to 4.
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 9);
    let report = JumpAnalyzer::new(AnalyzerConfig::fast())
        .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
        .unwrap();
    assert!(
        report.score.score() >= 5,
        "noisy good jump scored {}\n{}",
        report.score.score(),
        report.score
    );
}

#[test]
fn injected_flaw_is_detected_end_to_end() {
    // A flaw whose signature lives on always-observable sticks (the
    // legs): the shallow crouch misses R1's 60° threshold by ~40°, far
    // beyond estimation noise. (Arm-dependent rules are *not* reliably
    // detectable from silhouettes when the arm stays merged with the
    // torso — the table2_scoring experiment quantifies that limitation.)
    let scene = compact_scene(false);
    let jump = SyntheticJump::generate(&scene, &JumpConfig::with_flaw(JumpFlaw::ShallowCrouch), 13);
    let report = JumpAnalyzer::new(AnalyzerConfig::fast())
        .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
        .unwrap();
    let violated: Vec<usize> = report
        .score
        .violations()
        .iter()
        .map(|r| r.number())
        .collect();
    assert!(
        violated.contains(&1),
        "R1 violation missed; violations {violated:?}\n{}",
        report.score
    );
}

#[test]
fn estimated_poses_stay_near_truth() {
    let scene = compact_scene(true);
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 14);
    let report = JumpAnalyzer::new(AnalyzerConfig::fast())
        .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
        .unwrap();
    let mut worst_center = 0.0f64;
    for (est, truth) in report.poses.poses().iter().zip(jump.poses.poses()) {
        worst_center = worst_center.max(est.error_against(truth).center_distance);
    }
    assert!(worst_center < 0.25, "worst centre error {worst_center} m");
}

#[test]
fn report_summary_is_consistent_with_card() {
    let scene = compact_scene(true);
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 15);
    let report = JumpAnalyzer::new(AnalyzerConfig::fast())
        .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
        .unwrap();
    let summary = report.summary();
    assert_eq!(summary.score, report.score.score());
    assert_eq!(summary.violations.len(), report.score.violations().len());
    assert_eq!(summary.frames, jump.video.len());
    assert_eq!(summary.advice.len(), summary.violations.len());
    assert!(summary
        .mean_fitness
        .expect("tracked frames exist")
        .is_finite());
    assert!(summary.mean_confidence > 0.0);
}

#[test]
fn paper_configuration_runs_end_to_end() {
    // The paper's exact configuration (last-stable background, local
    // hole rule) burns the landed jumper into the background estimate,
    // which ghosts the tail of the clip — a documented weakness this
    // reproduction's defaults (median background) fix. The paper mode
    // must still run to completion, track most frames, and lose to the
    // default configuration.
    let scene = compact_scene(false);
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 16);
    // Paper-mode ghosting can carry over several tail frames, which the
    // default Strict policy rightly rejects — best-effort is exactly the
    // mode built for running a degraded configuration to completion.
    let mut paper_cfg = AnalyzerConfig::paper();
    paper_cfg.tracker = TrackerConfig::fast();
    paper_cfg.robustness = RobustnessPolicy::BestEffort {
        max_degraded_frames: 8,
    };
    let paper_report = JumpAnalyzer::new(paper_cfg)
        .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
        .unwrap();
    let tracked = paper_report
        .tracking
        .iter()
        .filter(|t| !t.carried_over)
        .count();
    assert!(tracked >= 12, "paper mode tracked only {tracked}/20 frames");

    let default_report = JumpAnalyzer::new(AnalyzerConfig::fast())
        .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
        .unwrap();
    assert!(
        default_report.score.score() >= paper_report.score.score(),
        "default {} should not lose to paper {}",
        default_report.score.score(),
        paper_report.score.score()
    );
}
