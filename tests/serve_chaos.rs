//! Service-level chaos suite for the `slj-serve` supervisor.
//!
//! The containment contract under test: **no session's fault may ever
//! corrupt another session's output.** Each scenario injects one kind
//! of service fault — poisoned frames that panic the analysis step,
//! stalled producers, mid-stream shape changes, deadline overruns —
//! into a manager holding healthy sessions alongside, and asserts
//!
//! * healthy sessions produce analyses **byte-identical** to a direct
//!   unsupervised [`StreamingAnalyzer`] run of the same clip, at
//!   `Serial`, `Fixed(4)` and `Auto` manager parallelism alike (and the
//!   whole event stream and per-session metrics are identical across
//!   those settings too);
//! * every crashed session either resumes from its checkpoint (frame
//!   updates strictly increasing — no replayed duplicates reach the
//!   client) or terminates with a typed health event;
//! * the scripted deadline clock keeps every run wall-clock-free, so
//!   failures reproduce exactly.
//!
//! The bounded-queue / allocation-free-reject half of the contract
//! lives in `serve_overload.rs` (its counting allocator needs a binary
//! to itself).

use slj::prelude::*;
use slj::JumpAnalysis;
use slj_runtime::BackoffConfig;
use slj_serve::{
    DeadlineClock, EventKind, HealthEvent, OfferReply, RestartMode, ServeConfig, ServeError,
    ServiceFaultPlan, SessionConfig, SessionManager, SessionState, WorkerMode,
};

fn streamable_fast() -> AnalyzerConfig {
    AnalyzerConfig {
        robustness: RobustnessPolicy::BestEffort {
            max_degraded_frames: 10,
        },
        ..AnalyzerConfig::fast().into_streaming(14)
    }
}

fn scene() -> SceneConfig {
    SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::clean()
    }
}

/// The unsupervised ground truth: the same clip pushed through a bare
/// `StreamingAnalyzer`.
fn reference_run(config: &AnalyzerConfig, jump: &SyntheticJump, camera: &Camera) -> JumpAnalysis {
    let first = jump.poses.poses()[0];
    let mut stream =
        StreamingAnalyzer::new(config.clone(), camera, first, jump.video.fps()).unwrap();
    for frame in jump.video.iter() {
        stream.push_frame(frame).unwrap();
    }
    stream.finish().unwrap()
}

/// Chaos-friendly service knobs: deterministic clock, jitter-free
/// ladder, budgets generous enough that healthy clips never escalate.
fn serve_config() -> ServeConfig {
    ServeConfig {
        max_sessions: 16,
        queue_depth: 32,
        frame_deadline: 0,
        clock: DeadlineClock::Scripted,
        checkpoint_interval: 4,
        escalate_after: 30,
        trip_after: 40,
        stall_ticks: 4,
        stall_strikes: 3,
        clean_frames_to_reset: 6,
        restart: BackoffConfig {
            base: 1,
            factor: 2,
            max: 4,
            jitter: 0,
            seed: 0,
        },
        parallelism: Parallelism::Serial,
        worker_mode: WorkerMode::Pool,
        slot_pool: true,
    }
}

fn session_config(
    analyzer: AnalyzerConfig,
    jump: &SyntheticJump,
    camera: &Camera,
) -> SessionConfig {
    SessionConfig {
        analyzer,
        camera: *camera,
        first_pose: jump.poses.poses()[0],
        fps: jump.video.fps(),
    }
}

/// Event kinds for one session, frame events excluded — the supervisor
/// decision trail.
fn decision_trail(events: &[HealthEvent], session: usize) -> Vec<&'static str> {
    events
        .iter()
        .filter(|e| e.session == session && !matches!(e.kind, EventKind::Frame { .. }))
        .map(|e| e.kind.name())
        .collect()
}

/// Frame indices a session's client saw, in stream order.
fn frame_updates(events: &[HealthEvent], session: usize) -> Vec<usize> {
    events
        .iter()
        .filter(|e| e.session == session)
        .filter_map(|e| match &e.kind {
            EventKind::Frame { update } => Some(update.frame),
            _ => None,
        })
        .collect()
}

/// One full soak run at the given manager parallelism. Returns the
/// event stream, every session's analysis result (None for sessions
/// that never finished) and the per-session metrics renderings.
#[allow(clippy::type_complexity)]
fn soak_run(
    parallelism: Parallelism,
    jump: &SyntheticJump,
    camera: &Camera,
) -> (Vec<HealthEvent>, Vec<Option<JumpAnalysis>>, Vec<String>) {
    const SESSIONS: usize = 10;
    const POISONED: usize = 3;
    const STALLED: usize = 7;
    const STALL_POINT: usize = 5;

    let mut manager = SessionManager::new(ServeConfig {
        parallelism,
        ..serve_config()
    })
    // Frame 16 of the poisoned session panics the tracker mid-live.
    .with_chaos(ServiceFaultPlan::none().poison(POISONED, 16));
    let ids: Vec<usize> = (0..SESSIONS)
        .map(|_| {
            manager
                .open(session_config(streamable_fast(), jump, camera))
                .unwrap()
        })
        .collect();

    // Interleaved producers: one frame per session per tick. The
    // stalled producer wedges after frame 5 and never closes.
    for (round, frame) in jump.video.iter().enumerate() {
        for &id in &ids {
            if id == STALLED && round >= STALL_POINT {
                continue;
            }
            let reply = manager.offer(id, frame).unwrap();
            assert!(
                matches!(reply, OfferReply::Accepted { .. }),
                "queue_depth 32 never sheds in this schedule"
            );
        }
        manager.tick();
    }
    for &id in &ids {
        if id != STALLED {
            manager.close(id).unwrap();
        }
    }
    manager.run_until_idle();
    // Keep the service ticking until the stalled producer strikes out.
    let mut guard = 0;
    while !manager.state(STALLED).unwrap().is_terminal() {
        manager.tick();
        guard += 1;
        assert!(
            guard < 100,
            "stall detection must quarantine in bounded ticks"
        );
    }

    let events = manager.drain_events();
    let results: Vec<Option<JumpAnalysis>> = ids
        .iter()
        .map(|&id| manager.take_result(id).and_then(Result::ok))
        .collect();
    let metrics: Vec<String> = ids
        .iter()
        .map(|&id| manager.metrics(id).unwrap().render())
        .collect();
    (events, results, metrics)
}

#[test]
fn soak_poisoned_and_stalled_sessions_never_corrupt_healthy_ones() {
    const POISONED: usize = 3;
    const STALLED: usize = 7;
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 90);
    let reference = reference_run(&streamable_fast(), &jump, &scene.camera);

    let serial = soak_run(Parallelism::Serial, &jump, &scene.camera);
    for parallelism in [Parallelism::Fixed(4), Parallelism::Auto] {
        let run = soak_run(parallelism, &jump, &scene.camera);
        assert_eq!(
            serial.0, run.0,
            "{parallelism}: event stream differs from serial"
        );
        assert_eq!(
            serial.1, run.1,
            "{parallelism}: session analyses differ from serial"
        );
        assert_eq!(
            serial.2, run.2,
            "{parallelism}: session metrics differ from serial"
        );
    }

    let (events, results, metrics) = serial;
    for (id, result) in results.iter().enumerate() {
        if id == POISONED || id == STALLED {
            continue;
        }
        assert_eq!(
            result.as_ref(),
            Some(&reference),
            "healthy session {id} must be byte-identical to the unsupervised run"
        );
        assert_eq!(
            decision_trail(&events, id),
            vec!["finished"],
            "healthy session {id} must see no supervisor intervention"
        );
        assert_eq!(frame_updates(&events, id), (0..20).collect::<Vec<_>>());
        assert!(metrics[id].contains("serve.panics = 0"), "{}", metrics[id]);
    }

    // The poisoned session resumed from its checkpoint: the panic and
    // restart are on the record, the dropped frame never reached the
    // client twice, and the clip still finished and scored.
    assert_eq!(
        decision_trail(&events, POISONED),
        vec!["panicked", "restarted", "finished"]
    );
    let restart = events
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::Restarted { mode, .. } if e.session == POISONED => Some(*mode),
            _ => None,
        })
        .unwrap();
    assert_eq!(restart, RestartMode::Checkpoint { replayed: 0 });
    let poisoned_frames = frame_updates(&events, POISONED);
    assert!(
        poisoned_frames.windows(2).all(|w| w[0] < w[1]),
        "replayed updates must be suppressed: {poisoned_frames:?}"
    );
    assert_eq!(
        poisoned_frames.len(),
        19,
        "exactly the poisoned frame is missing"
    );
    let poisoned_analysis = results[POISONED].as_ref().expect("poisoned clip finishes");
    assert_eq!(poisoned_analysis.health.len(), 19);
    assert!(metrics[POISONED].contains("serve.panics = 1"));
    assert!(metrics[POISONED].contains("serve.restarts = 1"));

    // The stalled producer struck out to a typed terminal event after
    // three full stall windows — it never finished, and said so.
    assert_eq!(
        decision_trail(&events, STALLED),
        vec!["stalled", "stalled", "stalled", "quarantined"]
    );
    assert!(results[STALLED].is_none());
    assert!(metrics[STALLED].contains("serve.stalls = 3"));
}

#[test]
fn mid_stream_shape_change_is_rejected_and_contained() {
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 91);
    let reference = reference_run(&streamable_fast(), &jump, &scene.camera);
    let (w, h) = jump.video.dims();
    let alien = slj_video::Frame::filled(w + 2, h, slj_imgproc::pixel::Rgb::splat(90));

    let mut manager = SessionManager::new(serve_config());
    let clean = manager
        .open(session_config(streamable_fast(), &jump, &scene.camera))
        .unwrap();
    let poked = manager
        .open(session_config(streamable_fast(), &jump, &scene.camera))
        .unwrap();
    for (round, frame) in jump.video.iter().enumerate() {
        manager.offer(clean, frame).unwrap();
        manager.offer(poked, frame).unwrap();
        if round == 10 {
            // A camera renegotiating resolution mid-clip.
            manager.offer(poked, &alien).unwrap();
        }
        manager.tick();
    }
    manager.close(clean).unwrap();
    manager.close(poked).unwrap();
    manager.run_until_idle();

    let events = manager.drain_events();
    assert_eq!(
        decision_trail(&events, poked),
        vec!["frame_rejected", "finished"]
    );
    let rejected = events
        .iter()
        .find(|e| matches!(e.kind, EventKind::FrameRejected { .. }))
        .unwrap();
    assert!(matches!(
        rejected.kind,
        EventKind::FrameRejected {
            ordinal: 11,
            expected,
            got,
        } if expected == (w, h) && got == (w + 2, h)
    ));
    // The typed reject leaves the analyzer untouched, so *both*
    // sessions — including the poked one — match the unsupervised run.
    assert_eq!(manager.take_result(clean).unwrap().unwrap(), reference);
    assert_eq!(manager.take_result(poked).unwrap().unwrap(), reference);
    // The reject charged exactly one unit against the degraded budget
    // on top of whatever the clip itself degrades.
    let baseline = manager.degraded(clean).unwrap();
    assert_eq!(manager.degraded(poked), Some(baseline + 1));
}

#[test]
fn panic_ladder_walks_checkpoint_cold_then_quarantine() {
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 92);
    let mut manager = SessionManager::new(ServeConfig {
        // Three consecutive crashes: no clean window long enough to
        // reset the ladder between them.
        clean_frames_to_reset: 100,
        ..serve_config()
    })
    .with_chaos(
        ServiceFaultPlan::none()
            .poison(0, 15)
            .poison(0, 16)
            .poison(0, 17),
    );
    let id = manager
        .open(session_config(streamable_fast(), &jump, &scene.camera))
        .unwrap();
    for frame in jump.video.iter() {
        manager.offer(id, frame).unwrap();
    }
    manager.close(id).unwrap();
    manager.run_until_idle();

    let events = manager.drain_events();
    assert_eq!(
        decision_trail(&events, id),
        vec![
            "panicked",
            "restarted",
            "panicked",
            "restarted",
            "panicked",
            "quarantined",
        ]
    );
    let modes: Vec<RestartMode> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Restarted { mode, .. } => Some(*mode),
            _ => None,
        })
        .collect();
    assert_eq!(
        modes,
        vec![RestartMode::Checkpoint { replayed: 3 }, RestartMode::Cold],
        "ladder rungs in order: checkpoint replay, then cold"
    );
    assert!(matches!(
        manager.state(id),
        Some(SessionState::Quarantined { reason }) if reason == "panic ladder exhausted"
    ));
    assert!(manager.take_result(id).is_none());
    let metrics = manager.metrics(id).unwrap();
    assert_eq!(metrics.counter(slj_obs::serve_keys::PANICS), 3);
    assert_eq!(metrics.counter(slj_obs::serve_keys::RESTARTS), 2);
}

#[test]
fn clean_frames_reset_the_restart_ladder() {
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 93);
    let mut manager = SessionManager::new(ServeConfig {
        clean_frames_to_reset: 6,
        ..serve_config()
    })
    // Two crashes far apart: the clean stretch between them resets the
    // ladder, so the second crash restarts from checkpoint again
    // instead of escalating to cold.
    .with_chaos(ServiceFaultPlan::none().poison(0, 2).poison(0, 16));
    let id = manager
        .open(session_config(streamable_fast(), &jump, &scene.camera))
        .unwrap();
    for frame in jump.video.iter() {
        manager.offer(id, frame).unwrap();
    }
    manager.close(id).unwrap();
    manager.run_until_idle();

    let events = manager.drain_events();
    let modes: Vec<RestartMode> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Restarted { mode, .. } => Some(*mode),
            _ => None,
        })
        .collect();
    assert_eq!(modes.len(), 2);
    assert!(
        modes
            .iter()
            .all(|m| matches!(m, RestartMode::Checkpoint { .. })),
        "a recovered ladder starts over at the checkpoint rung: {modes:?}"
    );
    assert_eq!(manager.state(id), Some(&SessionState::Finished));
    // Both poisoned frames are gone; everything else was analysed.
    assert_eq!(
        manager.take_result(id).unwrap().unwrap().health.len(),
        jump.video.len() - 2
    );
}

#[test]
fn deadline_overruns_escalate_policy_then_trip_the_breaker() {
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 94);
    // The clip's own degraded frames charge the same budget as the
    // misses, so size the thresholds above the intrinsic count: with 5
    // scripted misses and thresholds at intrinsic+2 / intrinsic+5,
    // escalation *requires* at least two misses and the breaker trips
    // exactly on the last one — miss-driven by construction.
    let reference = reference_run(&streamable_fast(), &jump, &scene.camera);
    let intrinsic = reference.health.iter().filter(|h| h.is_degraded()).count();
    let mut manager = SessionManager::new(ServeConfig {
        frame_deadline: 4,
        escalate_after: intrinsic + 2,
        trip_after: intrinsic + 5,
        ..serve_config()
    })
    .with_chaos(
        ServiceFaultPlan::none()
            .overrun(0, 14, 10)
            .overrun(0, 15, 10)
            .overrun(0, 16, 10)
            .overrun(0, 17, 10)
            .overrun(0, 18, 10),
    );
    let id = manager
        .open(session_config(streamable_fast(), &jump, &scene.camera))
        .unwrap();
    for frame in jump.video.iter() {
        manager.offer(id, frame).unwrap();
    }
    manager.close(id).unwrap();
    manager.run_until_idle();

    let events = manager.drain_events();
    let trail = decision_trail(&events, id);
    let position = |name: &str| {
        trail
            .iter()
            .position(|&k| k == name)
            .unwrap_or_else(|| panic!("missing {name} in {trail:?}"))
    };
    // The budget ladder fires in order and ends the session before it
    // can emit garbage.
    assert!(position("deadline_miss") < position("policy_escalated"));
    assert!(position("policy_escalated") < position("circuit_breaker_tripped"));
    assert!(position("circuit_breaker_tripped") < position("quarantined"));
    assert!(matches!(
        manager.state(id),
        Some(SessionState::Quarantined { reason }) if reason == "circuit breaker"
    ));
    let metrics = manager.metrics(id).unwrap();
    assert!(metrics.counter(slj_obs::serve_keys::DEADLINE_MISSES) >= 2);
    assert!(metrics.counter(slj_obs::serve_keys::DEGRADED) >= 4);
}

/// One churn soak: `WAVES` waves of sessions through a
/// `max_sessions`-bounded manager. Every wave closes, has its results
/// taken and is retired before the next opens, so waves after the
/// first run entirely in recycled slots when `slot_pool` is on. One
/// session per wave is poisoned, so the checkpoint-restart ladder also
/// executes inside a recycled slot. Returns the event stream, every
/// session's result, every session's metrics rendering and the
/// manager's aggregate-metrics rendering.
#[allow(clippy::type_complexity)]
fn churn_run(
    parallelism: Parallelism,
    slot_pool: bool,
    jump: &SyntheticJump,
    camera: &Camera,
) -> (
    Vec<HealthEvent>,
    Vec<Option<JumpAnalysis>>,
    Vec<String>,
    String,
) {
    const WAVES: usize = 3;
    const PER_WAVE: usize = 3;

    let mut chaos = ServiceFaultPlan::none();
    for wave in 0..WAVES {
        // Session ids are monotonic across retires, so wave w's middle
        // session is id w*PER_WAVE + 1.
        chaos = chaos.poison(wave * PER_WAVE + 1, 16);
    }
    let mut manager = SessionManager::new(ServeConfig {
        max_sessions: PER_WAVE,
        parallelism,
        slot_pool,
        ..serve_config()
    })
    .with_chaos(chaos);

    let mut events = Vec::new();
    let mut results = Vec::new();
    let mut metrics = Vec::new();
    for wave in 0..WAVES {
        let ids: Vec<usize> = (0..PER_WAVE)
            .map(|_| {
                manager
                    .open(session_config(streamable_fast(), jump, camera))
                    .unwrap()
            })
            .collect();
        assert_eq!(ids[0], wave * PER_WAVE, "ids stay monotonic across waves");
        for frame in jump.video.iter() {
            for &id in &ids {
                let reply = manager.offer(id, frame).unwrap();
                assert!(matches!(reply, OfferReply::Accepted { .. }));
            }
            manager.tick();
        }
        for &id in &ids {
            manager.close(id).unwrap();
        }
        manager.run_until_idle();
        manager.drain_events_into(&mut events);
        for &id in &ids {
            results.push(manager.take_result(id).and_then(Result::ok));
            metrics.push(manager.metrics(id).unwrap().render());
            manager.retire(id).unwrap();
            assert!(manager.metrics(id).is_none(), "retired id {id} is gone");
        }
    }
    assert_eq!(manager.sessions_in_service(), 0);
    assert_eq!(manager.session_ids().count(), 0);
    assert_eq!(
        manager.pooled_slots(),
        if slot_pool { PER_WAVE } else { 0 },
        "slot pool holds at most one slot per capacity unit"
    );
    (
        events,
        results,
        metrics,
        manager.aggregate_metrics().render(),
    )
}

#[test]
fn session_churn_reuses_slots_byte_identically_and_bounds_metrics() {
    const WAVES: usize = 3;
    const PER_WAVE: usize = 3;
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 97);
    let reference = reference_run(&streamable_fast(), &jump, &scene.camera);

    let pooled = churn_run(Parallelism::Serial, true, &jump, &scene.camera);
    // Recycled slots must be invisible to results: a run with pooling
    // off (every session builds fresh state) is byte-identical.
    let fresh = churn_run(Parallelism::Serial, false, &jump, &scene.camera);
    assert_eq!(pooled.0, fresh.0, "recycled slots changed the events");
    assert_eq!(pooled.1, fresh.1, "recycled slots changed the analyses");
    assert_eq!(pooled.2, fresh.2, "recycled slots changed the metrics");
    assert_eq!(pooled.3, fresh.3, "recycled slots changed the aggregate");
    // And churn must stay deterministic across the fan-out settings.
    for parallelism in [Parallelism::Fixed(4), Parallelism::Auto] {
        let run = churn_run(parallelism, true, &jump, &scene.camera);
        assert_eq!(pooled.0, run.0, "{parallelism}: events differ");
        assert_eq!(pooled.1, run.1, "{parallelism}: analyses differ");
        assert_eq!(pooled.2, run.2, "{parallelism}: metrics differ");
        assert_eq!(pooled.3, run.3, "{parallelism}: aggregate differs");
    }

    let (events, results, _metrics, aggregate) = pooled;
    for wave in 0..WAVES {
        for lane in 0..PER_WAVE {
            let id = wave * PER_WAVE + lane;
            if lane == 1 {
                // The poisoned lane crashed, resumed from its
                // checkpoint inside a recycled slot, and finished.
                assert_eq!(
                    decision_trail(&events, id),
                    vec!["panicked", "restarted", "finished"],
                    "session {id}"
                );
                assert!(results[id].is_some(), "poisoned session {id} finishes");
            } else {
                assert_eq!(
                    results[id].as_ref(),
                    Some(&reference),
                    "healthy churned session {id} must match the unsupervised run"
                );
                assert_eq!(decision_trail(&events, id), vec!["finished"]);
            }
        }
    }
    // Satellite contract: retirement folds per-session metrics into
    // one bounded aggregate instead of leaking a registry per session.
    assert!(
        aggregate.contains("serve.panics = 3"),
        "one panic per wave on the aggregate record:\n{aggregate}"
    );
    assert!(aggregate.contains("serve.restarts = 3"), "{aggregate}");
}

#[test]
fn retire_is_terminal_only_and_frees_capacity() {
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 98);
    let mut manager = SessionManager::new(ServeConfig {
        max_sessions: 1,
        ..serve_config()
    });
    let id = manager
        .open(session_config(streamable_fast(), &jump, &scene.camera))
        .unwrap();
    // Live sessions cannot be retired out from under their producer.
    assert!(matches!(
        manager.retire(id),
        Err(ServeError::SessionActive { id: 0 })
    ));
    // An empty close fails the session — terminal, hence retirable.
    manager.close(id).unwrap();
    manager.run_until_idle();
    assert!(manager.state(id).unwrap().is_terminal());
    let rendered = manager.metrics(id).unwrap().render();
    manager.retire(id).unwrap();
    assert_eq!(manager.aggregate_metrics().render(), rendered);
    assert!(matches!(
        manager.retire(id),
        Err(ServeError::UnknownSession { id: 0 })
    ));
    // Retirement freed the capacity slot; the next open gets a fresh
    // id, never the retired one.
    let next = manager.open(session_config(streamable_fast(), &jump, &scene.camera));
    assert_eq!(next.unwrap(), 1);
}

#[test]
fn client_disconnect_mid_stream_recycles_the_slot_byte_identically() {
    // The daemon scenario: a remote client vanishes mid-stream, so the
    // transport aborts the session and retires it, recycling its slot.
    // The abandoned session must terminalise with a typed event, and
    // the recycled slot must be invisible to the next tenant — its
    // analysis byte-identical to an unsupervised run.
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 99);
    let reference = reference_run(&streamable_fast(), &jump, &scene.camera);

    let mut manager = SessionManager::new(ServeConfig {
        max_sessions: 1,
        ..serve_config()
    });
    let id = manager
        .open(session_config(streamable_fast(), &jump, &scene.camera))
        .unwrap();
    for frame in jump.video.iter().take(9) {
        assert!(matches!(
            manager.offer(id, frame).unwrap(),
            OfferReply::Accepted { .. }
        ));
        manager.tick();
    }
    // Mid-stream disconnect: abort is exactly what the daemon calls.
    manager.abort(id, "client disconnected").unwrap();
    assert!(manager.state(id).unwrap().is_terminal());
    assert!(
        manager.take_result(id).is_none(),
        "an aborted session has no analysis to hand out"
    );
    let events = manager.drain_events();
    assert!(
        events.iter().any(|e| e.session == id
            && matches!(&e.kind, EventKind::Quarantined { reason } if reason == "client disconnected")),
        "abort must surface as a typed terminal event"
    );
    manager.retire(id).unwrap();
    assert_eq!(manager.pooled_slots(), 1, "the slot went back to the pool");

    // The next tenant lands in the recycled slot (max_sessions = 1, so
    // there is nowhere else) and must match the unsupervised run.
    let id2 = manager
        .open(session_config(streamable_fast(), &jump, &scene.camera))
        .unwrap();
    assert_eq!(id2, 1, "ids stay monotonic across the recycle");
    for frame in jump.video.iter() {
        assert!(matches!(
            manager.offer(id2, frame).unwrap(),
            OfferReply::Accepted { .. }
        ));
        manager.tick();
    }
    manager.close(id2).unwrap();
    manager.run_until_idle();
    assert_eq!(
        manager.take_result(id2).unwrap().unwrap(),
        reference,
        "recycled slot changed the analysis"
    );
}

#[test]
fn acquisition_faults_ride_through_the_service_unsupervised() {
    // The existing pixel-level FaultInjector composes with the service
    // layer: a fault-injected clip analysed through a session is
    // byte-identical to the same degraded clip run unsupervised — the
    // supervisor only intervenes on *service* faults.
    let scene = SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::default()
    };
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 95);
    let (faulty, report) = FaultInjector::new(FaultConfig {
        seed: 11,
        occlusion_bars: 2,
        ..FaultConfig::default()
    })
    .inject(&jump.video);
    assert!(report.faulty_frames() > 0);

    let config = streamable_fast();
    let first = jump.poses.poses()[0];
    let mut stream =
        StreamingAnalyzer::new(config.clone(), &scene.camera, first, faulty.fps()).unwrap();
    for frame in faulty.iter() {
        stream.push_frame(frame).unwrap();
    }
    let reference = stream.finish().unwrap();

    let mut manager = SessionManager::new(serve_config());
    let id = manager
        .open(SessionConfig {
            analyzer: config,
            camera: scene.camera,
            first_pose: first,
            fps: faulty.fps(),
        })
        .unwrap();
    for frame in faulty.iter() {
        manager.offer(id, frame).unwrap();
    }
    manager.close(id).unwrap();
    manager.run_until_idle();
    assert_eq!(manager.take_result(id).unwrap().unwrap(), reference);
}
