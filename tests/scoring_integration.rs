//! Scoring integration: rules applied to true poses and to GA-estimated
//! poses — the experiment the paper leaves as future work ("the results
//! will be compared with human evaluation"; here, with ground truth).

use slj::prelude::*;
use slj_ga::tracker::TemporalTracker;
use slj_video::render::render_silhouette;

#[test]
fn truth_confusion_matrix_is_diagonal() {
    // For every injected fault, exactly that rule is violated on the
    // true poses — across different sequence lengths.
    for frames in [16, 20, 26] {
        for flaw in JumpFlaw::ALL {
            let cfg = JumpConfig {
                frames,
                flaws: vec![flaw],
                ..JumpConfig::default()
            };
            let card = score_jump(&synthesize_jump(&cfg)).unwrap();
            let violated: Vec<usize> = card.violations().iter().map(|r| r.number()).collect();
            assert_eq!(
                violated,
                vec![flaw.rule_number()],
                "frames {frames}, flaw {flaw:?}"
            );
        }
        // And the good jump is perfect at that length.
        let good = JumpConfig {
            frames,
            ..JumpConfig::default()
        };
        assert!(score_jump(&synthesize_jump(&good)).unwrap().is_perfect());
    }
}

#[test]
fn estimated_poses_reproduce_truth_verdicts_on_gt_silhouettes() {
    // Track on ground-truth silhouettes (isolating the GA from
    // segmentation noise) and require verdict agreement for the good
    // jump and two flaws whose signatures live on observable sticks
    // (legs, trunk). Arm-dependent faults like ArmsStayBack keep the arm
    // merged with the torso, where silhouettes carry no arm information
    // — the table2_scoring experiment quantifies that limitation.
    let camera = Camera::compact();
    // The GA seed is tuned to the vendored RNG's stream: R6's 45°
    // threshold sits within estimation noise of the default jump's
    // trunk angle, so an unlucky seed misses the UprightTrunk verdict.
    let tracker = TemporalTracker::new(TrackerConfig {
        seed: 2,
        ..TrackerConfig::fast()
    });

    for flaws in [
        vec![],
        vec![JumpFlaw::UprightTrunk],
        vec![JumpFlaw::ShallowCrouch],
    ] {
        let cfg = JumpConfig {
            flaws: flaws.clone(),
            ..JumpConfig::default()
        };
        let truth = synthesize_jump(&cfg);
        let sils: Vec<_> = truth
            .poses()
            .iter()
            .map(|p| render_silhouette(p, &cfg.dims, &camera))
            .collect();
        let run = tracker
            .track(&sils, truth.poses()[0], &cfg.dims, &camera)
            .unwrap();
        let est_card = score_jump(&run.to_pose_seq(10.0)).unwrap();
        let truth_card = score_jump(&truth).unwrap();

        let expect: Vec<usize> = truth_card.violations().iter().map(|r| r.number()).collect();
        let got: Vec<usize> = est_card.violations().iter().map(|r| r.number()).collect();
        for number in &expect {
            assert!(
                got.contains(number),
                "flaws {flaws:?}: expected violation R{number} missed; got {got:?}"
            );
        }
        // At most one spurious violation from estimation noise.
        let spurious = got.iter().filter(|n| !expect.contains(n)).count();
        assert!(
            spurious <= 1,
            "flaws {flaws:?}: {spurious} spurious violations ({got:?} vs {expect:?})"
        );
    }
}

#[test]
fn score_monotone_in_number_of_flaws() {
    let card0 = score_jump(&synthesize_jump(&JumpConfig::default())).unwrap();
    let card1 = score_jump(&synthesize_jump(&JumpConfig::with_flaw(
        JumpFlaw::NoNeckBend,
    )))
    .unwrap();
    let card2 = score_jump(&synthesize_jump(&JumpConfig {
        flaws: vec![JumpFlaw::NoNeckBend, JumpFlaw::StraightArms],
        ..JumpConfig::default()
    }))
    .unwrap();
    let card3 = score_jump(&synthesize_jump(&JumpConfig {
        flaws: vec![
            JumpFlaw::NoNeckBend,
            JumpFlaw::StraightArms,
            JumpFlaw::UprightTrunk,
        ],
        ..JumpConfig::default()
    }))
    .unwrap();
    assert!(card0.score() > card1.score());
    assert!(card1.score() > card2.score());
    assert!(card2.score() > card3.score());
}

#[test]
fn advice_matches_violations_for_every_flaw() {
    for flaw in JumpFlaw::ALL {
        let card = score_jump(&synthesize_jump(&JumpConfig::with_flaw(flaw))).unwrap();
        let advice = card.advice();
        assert_eq!(advice.len(), 1, "flaw {flaw:?}");
        assert_eq!(advice[0].0.number(), flaw.rule_number());
        assert_eq!(advice[0].0.rule().number(), flaw.rule_number());
    }
}
