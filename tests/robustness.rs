//! Failure-injection and robustness integration tests: conditions the
//! nominal experiments do not cover — occluders crossing the jumper,
//! unusual athletes, degraded sensors, longer clips.

use slj::prelude::*;
use slj_video::scene::NoiseConfig;

fn compact_scene() -> SceneConfig {
    SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::default()
    }
}

#[test]
fn heavy_sensor_noise_still_segments_and_scores() {
    let scene = SceneConfig {
        noise: NoiseConfig {
            pixel_jitter: 9,
            flicker: 0.02,
            spot_count: 6,
            spot_max_radius: 4.0,
            camo_patches: 4,
            camo_radius: 2.0,
        },
        ..compact_scene()
    };
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 41);
    let report = JumpAnalyzer::new(AnalyzerConfig::fast())
        .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
        .unwrap();
    // Degraded but functional: tracks most frames, scores plausibly.
    let carried = report.tracking.iter().filter(|t| t.carried_over).count();
    assert!(
        carried <= 4,
        "{carried} frames untrackable under heavy noise"
    );
    assert!(
        report.score.score() >= 4,
        "heavy noise wrecked the score:\n{}",
        report.score
    );
}

#[test]
fn different_athlete_heights_track() {
    let scene = compact_scene();
    for (i, height) in [1.10f64, 1.30, 1.55].iter().enumerate() {
        let dims = BodyDims::for_height(*height);
        let jump_cfg = JumpConfig {
            dims: dims.clone(),
            ..JumpConfig::default()
        };
        let jump = SyntheticJump::generate(&scene, &jump_cfg, 50 + i as u64);
        let config = AnalyzerConfig {
            dims,
            ..AnalyzerConfig::fast()
        };
        let report = JumpAnalyzer::new(config)
            .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
            .unwrap();
        let mut worst = 0.0f64;
        for (est, gt) in report.poses.poses().iter().zip(jump.poses.poses()) {
            worst = worst.max(est.error_against(gt).center_distance);
        }
        assert!(worst < 0.3, "height {height}: worst centre error {worst} m");
    }
}

#[test]
fn longer_clip_tracks_to_the_end() {
    let scene = compact_scene();
    let jump_cfg = JumpConfig {
        frames: 40,
        fps: 20.0,
        ..JumpConfig::default()
    };
    let jump = SyntheticJump::generate(&scene, &jump_cfg, 61);
    let report = JumpAnalyzer::new(AnalyzerConfig::fast())
        .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
        .unwrap();
    assert_eq!(report.poses.len(), 40);
    let last_err = report.poses.poses()[39].error_against(&jump.poses.poses()[39]);
    assert!(
        last_err.center_distance < 0.25,
        "lost the jumper by frame 39: {last_err}"
    );
    // At 2x the frame rate the inter-frame motion halves, so scoring
    // still works on the same stage-split windows.
    assert!(report.score.score() >= 5, "{}", report.score);
}

#[test]
fn measurement_tracks_configured_distance_ordering() {
    // The foot sticks are ~11 px at the compact resolution, so the
    // toe/heel endpoints carry ~±0.15 m of estimation noise; test the
    // ordering across a gap that the resolution can actually resolve.
    let scene = compact_scene();
    let mut measured = Vec::new();
    for (i, d) in [0.7f64, 1.4].iter().enumerate() {
        let cfg = JumpConfig {
            jump_distance: *d,
            ..JumpConfig::default()
        };
        let jump = SyntheticJump::generate(&scene, &cfg, 70 + i as u64);
        let report = JumpAnalyzer::new(AnalyzerConfig::fast())
            .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
            .unwrap();
        measured.push(
            slj::measure_jump(&report.poses, &cfg.dims)
                .unwrap()
                .distance_m,
        );
    }
    assert!(
        measured[1] > measured[0] + 0.15,
        "tracked measurement did not preserve ordering: {measured:?}"
    );
}

#[test]
fn robust_pipeline_handles_paper_background_mode() {
    // The robust configuration (ghost suppression) keeps last-stable
    // background usable end to end.
    use slj_segment::background::{BackgroundConfig, UpdateMode};
    use slj_segment::ghosts::GhostConfig;
    let scene = compact_scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 81);
    let config = AnalyzerConfig {
        segmentation: PipelineConfig {
            background: BackgroundConfig {
                mode: UpdateMode::LastStable,
                ..BackgroundConfig::default()
            },
            ghosts: Some(GhostConfig {
                motion_threshold: 40,
                min_moving_fraction: 0.04,
            }),
            ..PipelineConfig::default()
        },
        // Last-stable background still fragments a few tail frames;
        // best-effort keeps the run alive while masking them out. The
        // calibrated confidence model counts every ladder-recovered
        // frame as degraded too (their measured pose error is ~4-5×
        // the tracked baseline), so the budget covers both.
        robustness: RobustnessPolicy::BestEffort {
            max_degraded_frames: 13,
        },
        ..AnalyzerConfig::fast()
    };
    let report = JumpAnalyzer::new(config)
        .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
        .unwrap();
    let tracked = report.tracking.iter().filter(|t| !t.carried_over).count();
    assert!(tracked >= 16, "only {tracked}/20 frames tracked");
    assert!(report.score.score() >= 4, "{}", report.score);
}

#[test]
fn occluder_crossing_the_jumper_does_not_derail_tracking() {
    // A large clutter spot parked ON the jumper's path: it is drawn
    // behind the jumper (occluded) but pollutes the background region
    // around the crossing.
    use rand::SeedableRng;
    use slj_imgproc::noise::Spot;
    use slj_imgproc::pixel::Rgb;
    use slj_video::render::{render_frame, render_silhouette};

    let scene = compact_scene();
    let jump_cfg = JumpConfig::default();
    let poses = synthesize_jump(&jump_cfg);
    // Build the video manually with a fixed large spot mid-path.
    let spot = Spot {
        x: 80.0,
        y: 60.0,
        vx: 0.4,
        vy: 0.0,
        radius: 5.0,
        color: Rgb::new(90, 140, 90),
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let frames: Vec<Frame> = poses
        .poses()
        .iter()
        .enumerate()
        .map(|(k, p)| render_frame(&scene, &jump_cfg.dims, p, &[spot], k, &mut rng, 1234))
        .collect();
    let video = Video::new(frames, 10.0);
    let report = JumpAnalyzer::new(AnalyzerConfig::fast())
        .analyze(&video, &scene.camera, poses.poses()[0])
        .unwrap();
    // Compare against true silhouettes rendered independently.
    let mut worst = 0.0f64;
    for (k, (est, gt)) in report.poses.poses().iter().zip(poses.poses()).enumerate() {
        let err = est.error_against(gt).center_distance;
        if err > worst {
            worst = err;
        }
        let _ = k;
    }
    let _ = render_silhouette; // silence unused import path if optimised out
    assert!(worst < 0.3, "occluder derailed tracking: worst {worst} m");
}
