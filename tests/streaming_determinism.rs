//! Streaming-vs-batch identity suite: feeding a clip frame by frame
//! through [`StreamingAnalyzer`] must produce byte-identical results to
//! handing the whole clip to [`JumpAnalyzer::analyze`] with the same
//! (streamable) configuration — poses, score card, tracking
//! diagnostics, health timeline and silhouette quality — on a clean
//! clip and on a fault-injected one, at every `Parallelism` setting.

use slj::prelude::*;
use slj::JumpAnalysis;

fn streamable_fast() -> AnalyzerConfig {
    // The 14-frame warmup background ghosts the subject's standing
    // spot, so one flight-apex frame comes out small and fragmented;
    // the calibrated quality gate rightly flags it, and a small
    // best-effort budget keeps the run alive. Degraded accounting is
    // part of the streaming-vs-batch identity under test.
    AnalyzerConfig {
        robustness: RobustnessPolicy::BestEffort {
            max_degraded_frames: 2,
        },
        ..AnalyzerConfig::fast().into_streaming(14)
    }
}

fn batch_analysis(
    config: &AnalyzerConfig,
    video: &Video,
    camera: &Camera,
    first: slj_motion::Pose,
) -> JumpAnalysis {
    JumpAnalyzer::new(config.clone())
        .analyze(video, camera, first)
        .expect("batch analysis should succeed")
        .to_analysis()
}

fn stream_analysis(
    config: &AnalyzerConfig,
    video: &Video,
    camera: &Camera,
    first: slj_motion::Pose,
) -> JumpAnalysis {
    let mut stream = StreamingAnalyzer::new(config.clone(), camera, first, video.fps())
        .expect("config is streamable");
    let mut completed = 0usize;
    for (k, frame) in video.iter().enumerate() {
        let update = stream.push_frame(frame).expect("push should succeed");
        assert_eq!(update.frame, k);
        completed += update.completed.len();
        // Incremental health arrives in frame order with no gaps.
        assert_eq!(update.buffered, update.completed.is_empty());
    }
    assert_eq!(
        completed,
        video.len().min(stream.frames_pushed()),
        "every pushed frame's health must be delivered before finish"
    );
    stream.finish().expect("finish should succeed")
}

#[test]
fn clean_clip_streaming_matches_batch() {
    let scene = SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::clean()
    };
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 81);
    let first = jump.poses.poses()[0];
    let config = streamable_fast();
    let batch = batch_analysis(&config, &jump.video, &scene.camera, first);
    let streamed = stream_analysis(&config, &jump.video, &scene.camera, first);
    assert_eq!(batch, streamed, "clean clip: streaming != batch");
}

#[test]
fn fault_injected_clip_streaming_matches_batch() {
    // Faults exercise the recovery ladder, degraded accounting and
    // best-effort scoring — the stateful paths where a streaming
    // reimplementation would first drift from batch.
    let scene = SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::default()
    };
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 82);
    let (faulty, _) = FaultInjector::new(FaultConfig {
        seed: 7,
        occlusion_bars: 2,
        ..FaultConfig::default()
    })
    .inject(&jump.video);
    let config = AnalyzerConfig {
        robustness: RobustnessPolicy::BestEffort {
            max_degraded_frames: 10,
        },
        ..streamable_fast()
    };
    let first = jump.poses.poses()[0];
    let batch = batch_analysis(&config, &faulty, &scene.camera, first);
    let streamed = stream_analysis(&config, &faulty, &scene.camera, first);
    assert_eq!(batch, streamed, "fault-injected clip: streaming != batch");
}

#[test]
fn streaming_matches_batch_at_every_parallelism() {
    let scene = SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::clean()
    };
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 83);
    let first = jump.poses.poses()[0];
    let serial = batch_analysis(&streamable_fast(), &jump.video, &scene.camera, first);
    for parallelism in [
        Parallelism::Serial,
        Parallelism::Fixed(2),
        Parallelism::Fixed(4),
        Parallelism::Auto,
    ] {
        let config = AnalyzerConfig {
            parallelism,
            ..streamable_fast()
        };
        let streamed = stream_analysis(&config, &jump.video, &scene.camera, first);
        assert_eq!(
            serial, streamed,
            "parallelism {parallelism}: streaming != serial batch"
        );
    }
}

#[test]
fn clip_shorter_than_warmup_still_matches_batch() {
    // finish() on a short clip estimates the background from whatever
    // arrived — exactly what batch does when the clip is shorter than
    // the warmup window.
    let scene = SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::clean()
    };
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 84);
    let short = Video::new(jump.video.frames()[..8].to_vec(), jump.video.fps());
    let config = AnalyzerConfig {
        // 8 frames cannot satisfy every scoring window strictly; use a
        // generous best-effort budget so both paths reach scoring.
        robustness: RobustnessPolicy::BestEffort {
            max_degraded_frames: 8,
        },
        ..streamable_fast()
    };
    let first = jump.poses.poses()[0];
    let batch = JumpAnalyzer::new(config.clone()).analyze(&short, &scene.camera, first);
    let mut stream = StreamingAnalyzer::new(config, &scene.camera, first, short.fps()).unwrap();
    for frame in short.iter() {
        let update = stream.push_frame(frame).unwrap();
        assert!(update.buffered, "8 < warmup 14: everything stays buffered");
    }
    let streamed = stream.finish();
    match (batch, streamed) {
        (Ok(b), Ok(s)) => assert_eq!(b.to_analysis(), s),
        (Err(b), Err(s)) => assert_eq!(b.to_string(), s.to_string()),
        (b, s) => panic!(
            "batch and streaming disagree on whether the short clip analyses: \
             batch ok = {}, streaming ok = {}",
            b.is_ok(),
            s.is_ok()
        ),
    }
}

#[test]
fn non_streamable_configs_are_rejected_up_front() {
    let camera = Camera::compact();
    let pose = slj_motion::Pose::standing(&slj_motion::BodyDims::default());
    // Default config: whole-clip background.
    let err = StreamingAnalyzer::new(AnalyzerConfig::fast(), &camera, pose, 10.0).unwrap_err();
    assert!(
        err.to_string().contains("cannot stream"),
        "unexpected error: {err}"
    );
    // Warmup set but quality still clip-median.
    let mut config = AnalyzerConfig::fast();
    config.segmentation.background.warmup = Some(12);
    let err = StreamingAnalyzer::new(config, &camera, pose, 10.0).unwrap_err();
    assert!(
        err.to_string().contains("Causal"),
        "unexpected error: {err}"
    );
    // A 1-frame warmup cannot estimate a background.
    let config = AnalyzerConfig::fast().into_streaming(1);
    let err = StreamingAnalyzer::new(config, &camera, pose, 10.0).unwrap_err();
    assert!(
        err.to_string().contains("at least 2"),
        "unexpected error: {err}"
    );
    // The blessed presets pass validation.
    assert!(StreamingAnalyzer::new(AnalyzerConfig::streaming(), &camera, pose, 10.0).is_ok());
}

#[test]
fn finish_before_two_frames_reports_insufficient_warmup() {
    // Regression: finish() used to funnel a 0- or 1-frame backlog into
    // background estimation and surface its "segmentation failed: too
    // few frames" — misattributed for a streaming caller that simply
    // closed the clip too early.
    let camera = Camera::compact();
    let pose = slj_motion::Pose::standing(&slj_motion::BodyDims::default());

    let stream = StreamingAnalyzer::new(AnalyzerConfig::streaming(), &camera, pose, 10.0).unwrap();
    let err = stream.finish().unwrap_err();
    assert!(
        matches!(
            err,
            AnalyzeError::InsufficientWarmup {
                pushed: 0,
                warmup: 14
            }
        ),
        "unexpected error: {err}"
    );
    assert!(err.to_string().contains("at least 2"), "{err}");

    let scene = SceneConfig {
        camera,
        ..SceneConfig::clean()
    };
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 85);
    let mut stream = StreamingAnalyzer::new(
        AnalyzerConfig::streaming(),
        &camera,
        jump.poses.poses()[0],
        10.0,
    )
    .unwrap();
    stream.push_frame(&jump.video.frames()[0]).unwrap();
    let err = stream.finish().unwrap_err();
    assert!(
        matches!(
            err,
            AnalyzeError::InsufficientWarmup {
                pushed: 1,
                warmup: 14
            }
        ),
        "unexpected error: {err}"
    );
}

#[test]
fn mismatched_frame_dims_are_rejected_without_state_damage() {
    // Regression: a frame whose dimensions differ from the warm-up
    // background used to reach the segmenter's pixel loops and trip its
    // dims assertion (a panic). It must instead come back as a typed
    // `FrameShapeMismatch` that leaves the analyzer fully usable.
    let scene = SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::clean()
    };
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 87);
    let first = jump.poses.poses()[0];
    let (w, h) = jump.video.dims();
    let alien = slj_video::Frame::filled(w + 3, h, slj_imgproc::pixel::Rgb::splat(120));

    let config = streamable_fast();
    let mut clean =
        StreamingAnalyzer::new(config.clone(), &scene.camera, first, jump.video.fps()).unwrap();
    let mut poked = StreamingAnalyzer::new(config, &scene.camera, first, jump.video.fps()).unwrap();
    for (k, frame) in jump.video.iter().enumerate() {
        clean.push_frame(frame).unwrap();
        poked.push_frame(frame).unwrap();
        // Mid-warmup (k = 3) and live (k = 17): both paths must reject.
        if k == 3 || k == 17 {
            let err = poked.push_frame(&alien).unwrap_err();
            assert!(
                matches!(
                    err,
                    AnalyzeError::FrameShapeMismatch { frame, expected, got }
                        if frame == k + 1 && expected == (w, h) && got == (w + 3, h)
                ),
                "unexpected error at frame {k}: {err}"
            );
            assert_eq!(
                poked.frames_pushed(),
                k + 1,
                "a rejected frame must not advance the stream"
            );
        }
    }
    // The rejected pushes left no trace: both runs finish identically.
    assert_eq!(
        clean.finish().unwrap(),
        poked.finish().unwrap(),
        "rejected frames must not perturb the analysis"
    );
}

#[test]
fn checkpoint_resume_is_byte_identical() {
    // The supervisor's crash-recovery contract: restore the last
    // checkpoint, replay the frames pushed since, and the session is
    // byte-identical to one that never crashed — per-frame updates and
    // final analysis alike. Checkpoints are exercised both during
    // warm-up (frame 5) and live (frame 16).
    let scene = SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::default()
    };
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 88);
    let first = jump.poses.poses()[0];
    let config = AnalyzerConfig {
        robustness: RobustnessPolicy::BestEffort {
            max_degraded_frames: 10,
        },
        ..streamable_fast()
    };
    for checkpoint_at in [5usize, 16] {
        let mut baseline =
            StreamingAnalyzer::new(config.clone(), &scene.camera, first, jump.video.fps()).unwrap();
        let mut snapshot = None;
        let mut tail_updates = Vec::new();
        for (k, frame) in jump.video.iter().enumerate() {
            let update = baseline.push_frame(frame).unwrap();
            if k >= checkpoint_at {
                tail_updates.push(update);
            }
            if k + 1 == checkpoint_at {
                snapshot = Some(baseline.checkpoint());
            }
        }
        let snapshot = snapshot.expect("checkpoint taken mid-clip");
        assert_eq!(snapshot.frames_pushed(), checkpoint_at);

        let mut resumed = snapshot.resume();
        for (update, frame) in tail_updates
            .iter()
            .zip(&jump.video.frames()[checkpoint_at..])
        {
            assert_eq!(
                &resumed.push_frame(frame).unwrap(),
                update,
                "checkpoint@{checkpoint_at}: replayed update diverged"
            );
        }
        assert_eq!(
            baseline.finish().unwrap(),
            resumed.finish().unwrap(),
            "checkpoint@{checkpoint_at}: resumed analysis diverged"
        );
    }
}

#[test]
fn finish_with_warmup_minus_one_frames_degrades_to_backlog_background() {
    // One frame short of the warmup window: nothing has gone live yet,
    // and finish() must estimate the background from the 13-frame
    // backlog and still agree with batch on the same truncated clip.
    let scene = SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::clean()
    };
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 86);
    let config = AnalyzerConfig {
        robustness: RobustnessPolicy::BestEffort {
            max_degraded_frames: 13,
        },
        ..streamable_fast()
    };
    let warmup = config.segmentation.background.warmup.unwrap();
    let short = Video::new(jump.video.frames()[..warmup - 1].to_vec(), jump.video.fps());
    let first = jump.poses.poses()[0];
    let mut stream =
        StreamingAnalyzer::new(config.clone(), &scene.camera, first, short.fps()).unwrap();
    for frame in short.iter() {
        let update = stream.push_frame(frame).unwrap();
        assert!(update.buffered, "warmup-1 frames must all stay buffered");
        assert!(update.observed.is_empty());
    }
    let streamed = stream.finish().expect("finish should degrade, not fail");
    assert_eq!(streamed.poses.len(), warmup - 1);
    let batch = JumpAnalyzer::new(config)
        .analyze(&short, &scene.camera, first)
        .expect("batch on the truncated clip should succeed")
        .to_analysis();
    assert_eq!(batch, streamed, "warmup-1 backlog: streaming != batch");
}
