//! Property tests for the `slj-wire/1` codec.
//!
//! The contract under test: every message round-trips byte-exactly
//! through encode → decode; the incremental [`Decoder`] produces the
//! same message sequence however the byte stream is split (including
//! torn length prefixes and mid-frame boundaries); oversized frames
//! are rejected at the 4-byte prefix *before* any body is buffered;
//! and truncated or corrupted input never panics — it is either
//! "wait for more bytes" or a typed [`WireError`].

use proptest::prelude::*;
use slj_daemon::wire::{decode_body, encode_to_vec, Decoder};
use slj_daemon::{AckStatus, WireError, WireMsg, DEFAULT_MAX_FRAME};

/// Arbitrary-ish strings, including multi-byte UTF-8 (the lossy
/// conversion maps stray bytes to U+FFFD, which is three bytes).
fn string_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..40)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// Wire-consistent frame payloads: `rgb` resized to `3 * w * h`.
fn frame_parts() -> impl Strategy<Value = (u32, u32, Vec<u8>)> {
    (
        0u32..6,
        0u32..5,
        proptest::collection::vec(any::<u8>(), 0..96),
    )
        .prop_map(|(w, h, mut rgb)| {
            rgb.resize(3 * (w as usize) * (h as usize), 7);
            (w, h, rgb)
        })
}

/// One arbitrary message of any of the 17 wire types.
fn msg_strategy() -> impl Strategy<Value = WireMsg> {
    (
        0usize..17,
        any::<(u64, u64, u32, u16)>(),
        string_strategy(),
        string_strategy(),
        frame_parts(),
        any::<bool>(),
    )
        .prop_map(
            |(variant, (a, b, depth, code), s1, s2, (width, height, rgb), flag)| match variant {
                0 => WireMsg::Hello { proto: s1 },
                1 => WireMsg::HelloOk { proto: s1 },
                2 => WireMsg::Open { config_json: s1 },
                3 => WireMsg::Opened { session: a },
                4 => WireMsg::Rejected { reason: s1 },
                5 => WireMsg::Frame {
                    session: a,
                    width,
                    height,
                    rgb,
                },
                6 => WireMsg::FrameAck {
                    session: a,
                    ordinal: b,
                    status: if flag {
                        AckStatus::Accepted
                    } else {
                        AckStatus::Overloaded
                    },
                    depth,
                },
                7 => WireMsg::Flush { session: a },
                8 => WireMsg::Event {
                    session: a,
                    line: s1,
                },
                9 => WireMsg::Analysis {
                    session: a,
                    summary_json: s1,
                    trace_jsonl: s2,
                },
                10 => WireMsg::Failed {
                    session: a,
                    error: s1,
                },
                11 => WireMsg::Retire { session: a },
                12 => WireMsg::Error { code, message: s1 },
                13 => WireMsg::Drain,
                14 => WireMsg::Draining { in_flight: a },
                // OPEN_CLIP's payload is opaque bytes (PPM decoding
                // happens above the codec), so any byte soup must
                // round-trip — reuse the frame strategy's buffer.
                15 => WireMsg::OpenClip {
                    config_json: s1,
                    ppm: rgb,
                },
                _ => WireMsg::Bye,
            },
        )
}

proptest! {
    #[test]
    fn every_message_round_trips(msg in msg_strategy()) {
        let bytes = encode_to_vec(&msg);
        // The frame is its 4-byte length prefix plus exactly the body.
        let declared = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        prop_assert_eq!(declared, bytes.len() - 4);
        prop_assert_eq!(decode_body(&bytes[4..]).unwrap(), msg.clone());
        // And through the incremental decoder in one piece.
        let mut d = Decoder::new(DEFAULT_MAX_FRAME);
        d.push(&bytes);
        prop_assert_eq!(d.next_msg().unwrap(), Some(msg));
        prop_assert_eq!(d.next_msg().unwrap(), None);
    }

    #[test]
    fn arbitrary_split_points_do_not_change_the_stream(
        msgs in proptest::collection::vec(msg_strategy(), 1..5),
        chunk_sizes in proptest::collection::vec(1usize..23, 1..40),
    ) {
        let mut stream = Vec::new();
        for msg in &msgs {
            stream.extend_from_slice(&encode_to_vec(msg));
        }
        // Feed the concatenated stream in arbitrary chunks (cycling the
        // generated sizes), draining after every push — torn length
        // prefixes and mid-body boundaries included.
        let mut d = Decoder::new(DEFAULT_MAX_FRAME);
        let mut decoded = Vec::new();
        let mut offset = 0;
        let mut k = 0;
        while offset < stream.len() {
            let size = chunk_sizes[k % chunk_sizes.len()].min(stream.len() - offset);
            k += 1;
            d.push(&stream[offset..offset + size]);
            offset += size;
            while let Some(msg) = d.next_msg().unwrap() {
                decoded.push(msg);
            }
        }
        prop_assert_eq!(decoded, msgs);
        prop_assert_eq!(d.next_msg().unwrap(), None);
        prop_assert_eq!(d.buffered(), 0, "a fully-consumed stream leaves no residue");
    }

    #[test]
    fn truncation_never_panics_and_never_yields(
        msg in msg_strategy(),
        cut in any::<u64>(),
    ) {
        let bytes = encode_to_vec(&msg);
        // Cut at least one byte off the end: an incomplete frame is
        // always "wait for more", never an error or a message.
        let keep = (cut as usize) % bytes.len();
        let mut d = Decoder::new(DEFAULT_MAX_FRAME);
        d.push(&bytes[..keep]);
        prop_assert_eq!(d.next_msg().unwrap(), None);
    }

    #[test]
    fn oversized_is_rejected_at_the_prefix_without_buffering(
        msg in msg_strategy(),
        extra in 1u32..1000,
    ) {
        // A declared length past the decoder's cap must fail from the
        // 4 prefix bytes alone — no body bytes are retained.
        let bytes = encode_to_vec(&msg);
        let declared = bytes.len() - 4;
        prop_assume!(declared >= 2); // a 1-byte body admits no smaller cap
        let cap = 1 + (extra as usize) % (declared - 1); // 1..=declared-1
        let mut d = Decoder::new(cap);
        d.push(&bytes[..4]);
        let verdict = d.next_msg();
        let rejected_at_prefix = match &verdict {
            Err(WireError::Oversized { declared: got, max }) => {
                *got == declared && *max == cap
            }
            _ => false,
        };
        prop_assert!(
            rejected_at_prefix,
            "declared {} over cap {} must be Oversized, got {:?}",
            declared, cap, verdict
        );
    }

    #[test]
    fn corrupt_bodies_are_typed_errors_not_panics(
        msg in msg_strategy(),
        flip in any::<(u64, u8)>(),
    ) {
        // Flip one body byte: the decode must return *something* typed
        // — the original message, a different valid message, or a
        // Malformed error — but never panic and never read past the
        // frame.
        let mut bytes = encode_to_vec(&msg);
        if bytes.len() > 4 {
            let at = 4 + (flip.0 as usize) % (bytes.len() - 4);
            bytes[at] ^= flip.1 | 1;
            let _ = decode_body(&bytes[4..]);
        }
        // Unknown tags specifically are Malformed.
        let body = [0xEEu8];
        prop_assert!(matches!(
            decode_body(&body),
            Err(WireError::Malformed { .. })
        ));
    }
}
