//! Deterministic loopback chaos suite for the daemon.
//!
//! The transport contract under test: **the daemon adds transport, not
//! drift, and no client's misbehaviour may change another session's
//! bytes.** Every scenario runs a real daemon on loopback sockets (TCP
//! and Unix-domain) and asserts that healthy clients receive summary
//! JSON and `slj-trace/1` JSONL **byte-identical** to an in-process
//! [`StreamingAnalyzer`] run of the same clip and configuration, while
//! chaos — mid-frame disconnects, torn length prefixes, oversized
//! frames, unread-reply stalls — plays out on neighbouring
//! connections.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use slj::prelude::*;
use slj_daemon::{
    AckStatus, Addr, Client, ClientError, ClientOptions, Daemon, DaemonConfig, Decoder,
    OpenRequest, WireMsg, DEFAULT_MAX_FRAME, WIRE_SCHEMA,
};

fn scene() -> SceneConfig {
    SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::clean()
    }
}

fn open_request(jump: &SyntheticJump, scene: &SceneConfig, want_trace: bool) -> OpenRequest {
    OpenRequest {
        camera: scene.camera,
        dims: BodyDims::default(),
        first_pose: jump.poses.poses()[0],
        fps: jump.video.fps(),
        warmup: 14,
        fast: true,
        max_degraded: Some(10),
        want_trace,
    }
}

/// The in-process ground truth, rendered exactly as the daemon renders
/// it: pretty summary JSON + trace JSONL.
fn reference(jump: &SyntheticJump, request: &OpenRequest) -> (String, String) {
    let config = request.to_session_config();
    let mut stream = StreamingAnalyzer::new(
        config.analyzer,
        &config.camera,
        config.first_pose,
        config.fps,
    )
    .unwrap();
    for frame in jump.video.iter() {
        stream.push_frame(frame).unwrap();
    }
    let analysis = stream.finish().unwrap();
    (
        serde_json::to_string_pretty(&analysis.summary()).unwrap(),
        analysis.obs.render_trace(),
    )
}

/// Daemon knobs for chaos runs: supervisor budgets generous enough
/// that healthy clips never escalate, everything else default.
fn daemon_config() -> DaemonConfig {
    let mut config = DaemonConfig::default();
    config.serve.escalate_after = 30;
    config.serve.trip_after = 40;
    config
}

fn uds_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("slj-daemon-{tag}-{}.sock", std::process::id()))
}

#[test]
fn concurrent_tcp_and_unix_clients_match_the_inprocess_run() {
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 41);
    let request = open_request(&jump, &scene, true);
    let (ref_summary, ref_trace) = reference(&jump, &request);

    let socket = uds_path("concurrent");
    let handle = Daemon::start(
        &[
            Addr::Tcp("127.0.0.1:0".to_owned()),
            Addr::Unix(socket.clone()),
        ],
        daemon_config(),
    )
    .unwrap();
    let tcp = handle.addrs[0].clone();
    let unix = handle.addrs[1].clone();

    // Five concurrent clients, alternating transports. Each streams
    // the full clip and must get the reference bytes back.
    let workers: Vec<_> = (0..5)
        .map(|k| {
            let addr = if k % 2 == 0 {
                tcp.clone()
            } else {
                unix.clone()
            };
            let frames: Vec<_> = jump.video.iter().cloned().collect();
            let request = request.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr, ClientOptions::default()).unwrap();
                assert_eq!(client.proto(), WIRE_SCHEMA);
                client.analyze_clip(&request, &frames).unwrap()
            })
        })
        .collect();
    for worker in workers {
        let analysis = worker.join().unwrap();
        assert_eq!(analysis.summary_json, ref_summary, "summary drifted");
        assert_eq!(analysis.trace_jsonl, ref_trace, "trace drifted");
        // The terminal event streamed too (finished), and nothing else
        // for a healthy clip.
        assert!(analysis
            .events
            .iter()
            .any(|line| line.contains("\"event\":\"finished\"")));
    }

    handle.drain();
    let stats = handle.join();
    assert_eq!(stats.sessions_opened, 5);
    assert_eq!(stats.sessions_finished, 5);
    assert_eq!(stats.sessions_failed, 0);
    assert!(!socket.exists(), "drain removed the socket file");
}

#[test]
fn chaos_neighbours_do_not_stall_or_corrupt_healthy_sessions() {
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 43);
    let request = open_request(&jump, &scene, true);
    let (ref_summary, ref_trace) = reference(&jump, &request);

    let handle = Daemon::start(&[Addr::Tcp("127.0.0.1:0".to_owned())], daemon_config()).unwrap();
    let addr = handle.addrs[0].clone();
    let Addr::Tcp(hostport) = addr.clone() else {
        unreachable!()
    };

    // Chaos crew, all concurrent with the healthy clients below.
    let chaos: Vec<std::thread::JoinHandle<()>> = vec![
        // 1. Mid-frame disconnect: hello, open, a few frames, then the
        //    socket dies halfway through an encoded FRAME.
        {
            let addr = addr.clone();
            let frames: Vec<_> = jump.video.iter().cloned().collect();
            let request = request.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr, ClientOptions::default()).unwrap();
                let session = client.open(&request).unwrap();
                for frame in &frames[..3] {
                    client.send_frame(session, frame).unwrap();
                }
                // Half an encoded frame, then hang up.
                let encoded = slj_daemon::wire::encode_to_vec(&WireMsg::Frame {
                    session,
                    width: 4,
                    height: 4,
                    rgb: vec![0; 48],
                });
                client.send_raw(&encoded[..encoded.len() / 2]).unwrap();
                // Dropping the client closes the socket mid-frame.
            })
        },
        // 2. Torn/absurd length prefix: the decoder must reject it at
        //    the prefix with a typed OVERSIZED error, then close.
        {
            let hostport = hostport.clone();
            std::thread::spawn(move || {
                let mut raw = TcpStream::connect(hostport.as_str()).unwrap();
                raw.write_all(&slj_daemon::wire::encode_to_vec(&WireMsg::Hello {
                    proto: WIRE_SCHEMA.to_owned(),
                }))
                .unwrap();
                raw.write_all(&[0xFF, 0xFF, 0xFF, 0xFF, 0x06]).unwrap();
                let mut decoder = Decoder::new(DEFAULT_MAX_FRAME);
                let mut buf = [0u8; 4096];
                let mut saw_oversized = false;
                loop {
                    match raw.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            decoder.push(&buf[..n]);
                            while let Ok(Some(msg)) = decoder.next_msg() {
                                if let WireMsg::Error { code, .. } = msg {
                                    assert_eq!(code, slj_daemon::wire::codes::OVERSIZED);
                                    saw_oversized = true;
                                }
                            }
                        }
                    }
                }
                assert!(saw_oversized, "expected a typed OVERSIZED disconnect");
            })
        },
        // 3. Malformed body: correct prefix, unknown tag.
        {
            let hostport = hostport.clone();
            std::thread::spawn(move || {
                let mut raw = TcpStream::connect(hostport.as_str()).unwrap();
                raw.write_all(&slj_daemon::wire::encode_to_vec(&WireMsg::Hello {
                    proto: WIRE_SCHEMA.to_owned(),
                }))
                .unwrap();
                raw.write_all(&[0, 0, 0, 1, 0xEE]).unwrap();
                let mut decoder = Decoder::new(DEFAULT_MAX_FRAME);
                let mut buf = [0u8; 4096];
                let mut saw_malformed = false;
                loop {
                    match raw.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            decoder.push(&buf[..n]);
                            while let Ok(Some(msg)) = decoder.next_msg() {
                                if let WireMsg::Error { code, .. } = msg {
                                    assert_eq!(code, slj_daemon::wire::codes::MALFORMED);
                                    saw_malformed = true;
                                }
                            }
                        }
                    }
                }
                assert!(saw_malformed, "expected a typed MALFORMED disconnect");
            })
        },
        // 4. Version skew: wrong HELLO tag gets a typed refusal.
        {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let err = {
                    let mut raw = match addr {
                        Addr::Tcp(ref hp) => TcpStream::connect(hp.as_str()).unwrap(),
                        Addr::Unix(_) => unreachable!(),
                    };
                    raw.write_all(&slj_daemon::wire::encode_to_vec(&WireMsg::Hello {
                        proto: "slj-wire/99".to_owned(),
                    }))
                    .unwrap();
                    let mut decoder = Decoder::new(DEFAULT_MAX_FRAME);
                    let mut buf = [0u8; 4096];
                    let mut code = None;
                    loop {
                        match raw.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => {
                                decoder.push(&buf[..n]);
                                while let Ok(Some(msg)) = decoder.next_msg() {
                                    if let WireMsg::Error { code: c, .. } = msg {
                                        code = Some(c);
                                    }
                                }
                            }
                        }
                    }
                    code
                };
                assert_eq!(err, Some(slj_daemon::wire::codes::VERSION_MISMATCH));
            })
        },
    ];

    // Four healthy clients run *through* the chaos.
    let healthy: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let frames: Vec<_> = jump.video.iter().cloned().collect();
            let request = request.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr, ClientOptions::default()).unwrap();
                client.analyze_clip(&request, &frames).unwrap()
            })
        })
        .collect();

    for worker in chaos {
        worker.join().unwrap();
    }
    for worker in healthy {
        let analysis = worker.join().unwrap();
        assert_eq!(analysis.summary_json, ref_summary, "summary corrupted");
        assert_eq!(analysis.trace_jsonl, ref_trace, "trace corrupted");
    }

    handle.drain();
    let stats = handle.join();
    assert_eq!(stats.sessions_finished, 4, "all healthy sessions finish");
    assert_eq!(
        stats.sessions_aborted, 1,
        "the mid-frame disconnect's session was aborted"
    );
    assert!(
        stats.conns_torn_down >= 3,
        "oversized, malformed and version-skew connections were torn down"
    );
}

#[test]
fn unread_replies_do_not_stall_the_daemon_and_arrive_intact() {
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 47);
    let request = open_request(&jump, &scene, false);
    let (ref_summary, _) = reference(&jump, &request);

    // Queue deep enough that a full-clip blast cannot hit Overloaded:
    // this test is about the reply path, not admission control.
    let mut config = daemon_config();
    config.serve.queue_depth = 64;
    let handle = Daemon::start(&[Addr::Tcp("127.0.0.1:0".to_owned())], config).unwrap();
    let addr = handle.addrs[0].clone();

    // The slow reader: opens in lockstep, then writes the entire clip
    // plus FLUSH without reading a single reply, and sleeps while the
    // daemon finishes the session into buffers nobody is draining.
    let slow = {
        let addr = addr.clone();
        let frames: Vec<_> = jump.video.iter().cloned().collect();
        let request = request.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr, ClientOptions::default()).unwrap();
            let session = client.open(&request).unwrap();
            let mut blast = Vec::new();
            for frame in &frames {
                let (w, h) = frame.dims();
                let mut rgb = Vec::with_capacity(w * h * 3);
                for px in frame.as_slice() {
                    rgb.extend_from_slice(&[px.r, px.g, px.b]);
                }
                blast.extend_from_slice(&slj_daemon::wire::encode_to_vec(&WireMsg::Frame {
                    session,
                    width: w as u32,
                    height: h as u32,
                    rgb,
                }));
            }
            blast.extend_from_slice(&slj_daemon::wire::encode_to_vec(&WireMsg::Flush {
                session,
            }));
            client.send_raw(&blast).unwrap();
            std::thread::sleep(Duration::from_millis(800));
            // Now read everything back: every ack, then the analysis —
            // unread replies were parked, not dropped and not unbounded.
            let mut acks = 0;
            loop {
                match client.recv_raw().unwrap() {
                    WireMsg::FrameAck {
                        status: AckStatus::Accepted,
                        ..
                    } => acks += 1,
                    WireMsg::FrameAck { status, .. } => panic!("unexpected ack {status:?}"),
                    WireMsg::Event { .. } => {}
                    WireMsg::Analysis { summary_json, .. } => break (acks, summary_json),
                    other => panic!("unexpected reply {}", other.name()),
                }
            }
        })
    };

    // A healthy lockstep neighbour completes *while* the slow reader is
    // asleep: nothing about the unread connection stalls the engine.
    let mut client = Client::connect(&addr, ClientOptions::default()).unwrap();
    let frames: Vec<_> = jump.video.iter().cloned().collect();
    let analysis = client.analyze_clip(&request, &frames).unwrap();
    assert_eq!(analysis.summary_json, ref_summary, "neighbour corrupted");

    let (acks, slow_summary) = slow.join().unwrap();
    assert_eq!(acks, jump.video.iter().count(), "every frame was acked");
    assert_eq!(slow_summary, ref_summary, "slow reader's bytes drifted");

    handle.drain();
    let stats = handle.join();
    assert_eq!(stats.sessions_finished, 2);
    assert_eq!(stats.conns_torn_down, 0, "nobody misbehaved enough to doom");
}

#[test]
fn stalled_connection_is_idle_reaped_with_a_typed_error() {
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 61);
    let request = open_request(&jump, &scene, false);
    let (ref_summary, _) = reference(&jump, &request);

    // Reap after 20 quiet read-timeout polls (~2s): far longer than a
    // lockstep client's inter-frame gap even with the whole test
    // binary's scenarios running in parallel, far shorter than forever.
    let mut config = daemon_config();
    config.idle_timeouts = 20;
    let handle = Daemon::start(&[Addr::Tcp("127.0.0.1:0".to_owned())], config).unwrap();
    let addr = handle.addrs[0].clone();

    // The stalled client: opens, streams two frames, then goes silent
    // mid-session and just waits for the daemon's verdict.
    let stalled = {
        let addr = addr.clone();
        let frames: Vec<_> = jump.video.iter().cloned().collect();
        let request = request.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr, ClientOptions::default()).unwrap();
            let session = client.open(&request).unwrap();
            for frame in &frames[..2] {
                client.send_frame(session, frame).unwrap();
            }
            // No more writes: the reap must come to us, typed, and then
            // the socket must actually close.
            let verdict = client.recv_raw().unwrap();
            let WireMsg::Error { code, .. } = verdict else {
                panic!("expected a typed idle error, got {}", verdict.name());
            };
            assert_eq!(code, slj_daemon::wire::codes::IDLE);
            assert!(
                matches!(client.recv_raw(), Err(ClientError::Io(_))),
                "the reaped connection must be closed after the error"
            );
        })
    };

    // A healthy neighbour streams straight through the reaping.
    let mut client = Client::connect(&addr, ClientOptions::default()).unwrap();
    let frames: Vec<_> = jump.video.iter().cloned().collect();
    let analysis = client.analyze_clip(&request, &frames).unwrap();
    assert_eq!(analysis.summary_json, ref_summary, "neighbour corrupted");
    // Hang up cleanly before the reaping deadline: only the stalled
    // connection should be torn down.
    drop(client);

    stalled.join().unwrap();
    handle.drain();
    let stats = handle.join();
    assert_eq!(stats.sessions_opened, 2);
    assert_eq!(
        stats.sessions_finished, 1,
        "only the healthy session finishes"
    );
    assert_eq!(stats.sessions_aborted, 1, "the stalled session was aborted");
    assert_eq!(stats.conns_torn_down, 1, "exactly the idle connection");
}

#[test]
fn drain_refuses_new_opens_and_finishes_in_flight() {
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 53);
    let request = open_request(&jump, &scene, false);
    let (ref_summary, _) = reference(&jump, &request);

    let handle = Daemon::start(&[Addr::Tcp("127.0.0.1:0".to_owned())], daemon_config()).unwrap();
    let addr = handle.addrs[0].clone();

    // An in-flight session...
    let mut streaming = Client::connect(&addr, ClientOptions::default()).unwrap();
    let session = streaming.open(&request).unwrap();
    let frames: Vec<_> = jump.video.iter().cloned().collect();
    for frame in &frames[..4] {
        streaming.send_frame(session, frame).unwrap();
    }

    // ...survives a drain issued over the wire by an operator client,
    let mut admin = Client::connect(&addr, ClientOptions::default()).unwrap();
    let in_flight = admin.drain().unwrap();
    assert_eq!(in_flight, 1);
    // ...which also refuses that operator's own late open,
    match admin.open(&request) {
        Err(ClientError::Rejected { reason }) => {
            assert!(
                reason.contains("draining"),
                "typed drain rejection: {reason}"
            )
        }
        other => panic!("open during drain must be Rejected, got {other:?}"),
    }

    // ...while the in-flight session runs to its byte-identical end.
    for frame in &frames[4..] {
        streaming.send_frame(session, frame).unwrap();
    }
    let analysis = streaming.flush(session).unwrap();
    assert_eq!(analysis.summary_json, ref_summary);

    let stats = handle.join();
    assert_eq!(stats.sessions_opened, 1);
    assert_eq!(stats.sessions_finished, 1);
}

#[test]
fn clip_ingestion_matches_streamed_and_inprocess_runs() {
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 67);
    let request = open_request(&jump, &scene, true);
    let (ref_summary, ref_trace) = reference(&jump, &request);

    let socket = uds_path("clip");
    let handle = Daemon::start(
        &[
            Addr::Tcp("127.0.0.1:0".to_owned()),
            Addr::Unix(socket.clone()),
        ],
        daemon_config(),
    )
    .unwrap();
    let tcp = handle.addrs[0].clone();
    let unix = handle.addrs[1].clone();

    // Clip-ingest clients (daemon-side decode) run concurrently with a
    // lockstep frame-streaming client: all three transports of the same
    // clip must land on identical bytes.
    let workers: Vec<_> = (0..3)
        .map(|k| {
            let addr = if k % 2 == 0 {
                tcp.clone()
            } else {
                unix.clone()
            };
            let request = request.clone();
            let ppm = slj_video::io::ppm_stream(&jump.video);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr, ClientOptions::default()).unwrap();
                client.analyze_clip_ppm(&request, ppm).unwrap()
            })
        })
        .collect();
    let mut lockstep = Client::connect(&tcp, ClientOptions::default()).unwrap();
    let frames: Vec<_> = jump.video.iter().cloned().collect();
    let streamed = lockstep.analyze_clip(&request, &frames).unwrap();
    assert_eq!(streamed.summary_json, ref_summary);

    for worker in workers {
        let analysis = worker.join().unwrap();
        assert_eq!(analysis.summary_json, ref_summary, "clip summary drifted");
        assert_eq!(analysis.trace_jsonl, ref_trace, "clip trace drifted");
        assert!(analysis
            .events
            .iter()
            .any(|line| line.contains("\"event\":\"finished\"")));
    }

    // A clip that does not decode is Rejected before any session is
    // opened: no slot is consumed and the connection stays usable.
    let mut client = Client::connect(&tcp, ClientOptions::default()).unwrap();
    match client.open_clip(&request, b"P6\n9999 9999\n255\nxy".to_vec()) {
        Err(ClientError::Rejected { reason }) => {
            assert!(
                reason.contains("clip does not decode"),
                "typed decode rejection: {reason}"
            );
        }
        other => panic!("malformed clip must be Rejected, got {other:?}"),
    }
    // Same connection immediately ingests a good clip: the rejection
    // was a reply, not a teardown.
    let retry = client
        .analyze_clip_ppm(&request, slj_video::io::ppm_stream(&jump.video))
        .unwrap();
    assert_eq!(retry.summary_json, ref_summary);

    handle.drain();
    let stats = handle.join();
    assert_eq!(
        stats.sessions_opened, 5,
        "the malformed clip never opened a session"
    );
    assert_eq!(stats.clip_sessions, 4);
    assert_eq!(stats.sessions_finished, 5);
    assert_eq!(stats.sessions_failed, 0);
    assert_eq!(stats.conns_torn_down, 0);
}

#[test]
fn retire_mid_stream_recycles_into_an_identical_fresh_session() {
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 59);
    let request = open_request(&jump, &scene, true);
    let (ref_summary, ref_trace) = reference(&jump, &request);

    // max_sessions 1: the second open can only land in the slot the
    // retired session vacated (recycled via the serve-layer slot pool).
    let mut config = daemon_config();
    config.serve.max_sessions = 1;
    let handle = Daemon::start(&[Addr::Tcp("127.0.0.1:0".to_owned())], config).unwrap();
    let addr = handle.addrs[0].clone();

    let mut client = Client::connect(&addr, ClientOptions::default()).unwrap();
    let frames: Vec<_> = jump.video.iter().cloned().collect();
    let abandoned = client.open(&request).unwrap();
    for frame in &frames[..7] {
        client.send_frame(abandoned, frame).unwrap();
    }
    client.retire(abandoned).unwrap();

    // The replacement session must produce the reference bytes — the
    // recycled slot is invisible. (The open retries briefly: RETIRE is
    // asynchronous, so the slot frees on the engine's next pass.)
    let analysis = loop {
        match client.open(&request) {
            Ok(session) => {
                for frame in &frames {
                    client.send_frame(session, frame).unwrap();
                }
                break client.flush(session).unwrap();
            }
            Err(ClientError::Rejected { .. }) => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(other) => panic!("unexpected open failure: {other}"),
        }
    };
    assert_eq!(analysis.summary_json, ref_summary, "recycled slot drifted");
    assert_eq!(analysis.trace_jsonl, ref_trace, "recycled trace drifted");

    handle.drain();
    let stats = handle.join();
    assert_eq!(stats.sessions_opened, 2);
    assert_eq!(stats.sessions_aborted, 1, "the retired session was aborted");
    assert_eq!(stats.sessions_finished, 1);
}
