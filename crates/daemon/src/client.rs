//! A blocking, single-threaded `slj-wire/1` client: the library behind
//! `slj submit`, and the daemon's reference consumer in the loopback
//! chaos suite.
//!
//! The client is deliberately lockstep: every `FRAME` waits for its
//! `FRAME_ACK` before the next is sent, retrying (bounded, with a
//! short sleep) while the daemon replies `Overloaded`. Interleaved
//! `EVENT` lines are collected as they arrive, whatever the client is
//! waiting for.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

use slj_video::Frame;

use crate::addr::Addr;
use crate::engine::OpenRequest;
use crate::server::Stream;
use crate::wire::{encode_to_vec, AckStatus, Decoder, WireError, WireMsg, WIRE_SCHEMA};

/// Client-side failures, each naming what the caller can do about it.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level trouble (connect, read, write, EOF mid-reply).
    Io(std::io::Error),
    /// The server's bytes broke `slj-wire/1` framing.
    Wire(WireError),
    /// The server refused the HELLO (version skew).
    Handshake {
        /// What the server said.
        message: String,
    },
    /// The server refused an `OPEN` (draining, at capacity, or a
    /// config the analyzer rejected).
    Rejected {
        /// The server's reason.
        reason: String,
    },
    /// The server disconnected us with a typed `ERROR`.
    Server {
        /// The wire error code (see [`crate::wire::codes`]).
        code: u16,
        /// The server's message.
        message: String,
    },
    /// The session ended in a server-side failure instead of an
    /// analysis.
    SessionFailed {
        /// The server's rendering of the analyzer/supervisor error.
        error: String,
    },
    /// The daemon stayed `Overloaded` through every retry.
    Saturated {
        /// Offers attempted for the frame.
        attempts: u32,
    },
    /// The server sent a message that makes no sense in this state.
    Protocol {
        /// What arrived.
        got: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Wire(e) => write!(f, "server broke framing: {e}"),
            ClientError::Handshake { message } => write!(f, "handshake refused: {message}"),
            ClientError::Rejected { reason } => write!(f, "session refused: {reason}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ClientError::SessionFailed { error } => write!(f, "session failed: {error}"),
            ClientError::Saturated { attempts } => {
                write!(f, "daemon overloaded after {attempts} offers")
            }
            ClientError::Protocol { got } => write!(f, "unexpected server message: {got}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Knobs for a [`Client`].
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Socket read timeout (also the reply-wait granularity).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// How many times to re-offer a frame the daemon sheds with
    /// `Overloaded` before giving up.
    pub max_offer_retries: u32,
    /// Sleep between re-offers.
    pub retry_backoff: Duration,
    /// Wire-frame bound for server replies.
    pub max_frame: usize,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(10),
            max_offer_retries: 10_000,
            retry_backoff: Duration::from_millis(1),
            max_frame: crate::wire::DEFAULT_MAX_FRAME,
        }
    }
}

/// What a finished session hands back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteAnalysis {
    /// The session's daemon-side id.
    pub session: u64,
    /// The pretty-printed `AnalysisSummary` JSON — byte-identical to
    /// `slj analyze --stream --report` on the same clip.
    pub summary_json: String,
    /// The session's `slj-trace/1` JSONL (empty unless the `OPEN`
    /// asked for it).
    pub trace_jsonl: String,
    /// Every `slj-serve/1` health-event line streamed for this session,
    /// in arrival order.
    pub events: Vec<String>,
}

/// A connected, HELLO-negotiated `slj-wire/1` client.
pub struct Client {
    stream: Stream,
    decoder: Decoder,
    options: ClientOptions,
    /// Health-event lines that arrived while waiting for something
    /// else, keyed by session.
    pending_events: Vec<(u64, String)>,
}

impl Client {
    /// Connects and performs the HELLO handshake.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on connect failure, [`ClientError::Handshake`]
    /// on version skew.
    pub fn connect(addr: &Addr, options: ClientOptions) -> Result<Client, ClientError> {
        let stream = match addr {
            Addr::Tcp(hostport) => Stream::Tcp(TcpStream::connect(hostport.as_str())?),
            Addr::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
        };
        stream.set_read_timeout(Some(options.read_timeout))?;
        stream.set_write_timeout(Some(options.write_timeout))?;
        let mut client = Client {
            stream,
            decoder: Decoder::new(options.max_frame),
            options,
            pending_events: Vec::new(),
        };
        client.send(&WireMsg::Hello {
            proto: WIRE_SCHEMA.to_owned(),
        })?;
        match client.recv()? {
            WireMsg::HelloOk { proto } if proto == WIRE_SCHEMA => Ok(client),
            WireMsg::HelloOk { proto } => Err(ClientError::Handshake {
                message: format!("server speaks {proto}"),
            }),
            WireMsg::Error { message, .. } => Err(ClientError::Handshake { message }),
            other => Err(ClientError::Protocol {
                got: other.name().to_owned(),
            }),
        }
    }

    /// The negotiated protocol tag (always [`WIRE_SCHEMA`] once
    /// connected).
    pub fn proto(&self) -> &'static str {
        WIRE_SCHEMA
    }

    fn send(&mut self, msg: &WireMsg) -> Result<(), ClientError> {
        let bytes = encode_to_vec(msg);
        self.stream.write_all(&bytes)?;
        Ok(())
    }

    /// Blocks until one message arrives (riding out read timeouts).
    fn recv(&mut self) -> Result<WireMsg, ClientError> {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if let Some(msg) = self.decoder.next_msg()? {
                return Ok(msg);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                Ok(n) => self.decoder.push(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// Receives until `want` says "this is the one", stashing EVENT
    /// lines and surfacing typed errors.
    fn recv_until<T>(
        &mut self,
        mut want: impl FnMut(WireMsg) -> Result<Option<T>, ClientError>,
    ) -> Result<T, ClientError> {
        loop {
            match self.recv()? {
                WireMsg::Event { session, line } => self.pending_events.push((session, line)),
                WireMsg::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                msg => {
                    if let Some(found) = want(msg)? {
                        return Ok(found);
                    }
                }
            }
        }
    }

    /// Opens a session.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] when the daemon refuses (draining or
    /// full), plus the transport errors.
    pub fn open(&mut self, request: &OpenRequest) -> Result<u64, ClientError> {
        let config_json = serde_json::to_string(request).expect("open request serialises");
        self.send(&WireMsg::Open { config_json })?;
        self.recv_until(|msg| match msg {
            WireMsg::Opened { session } => Ok(Some(session)),
            WireMsg::Rejected { reason } => Err(ClientError::Rejected { reason }),
            other => Err(ClientError::Protocol {
                got: other.name().to_owned(),
            }),
        })
    }

    /// Sends one frame and waits for its ack, re-offering (bounded)
    /// while the daemon sheds with `Overloaded`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Saturated`] when every retry was shed;
    /// [`ClientError::SessionFailed`] if the session went terminal
    /// mid-stream; plus the transport errors.
    pub fn send_frame(&mut self, session: u64, frame: &Frame) -> Result<u64, ClientError> {
        let (width, height) = frame.dims();
        let mut rgb = Vec::with_capacity(width * height * 3);
        for px in frame.as_slice() {
            rgb.extend_from_slice(&[px.r, px.g, px.b]);
        }
        let msg = WireMsg::Frame {
            session,
            width: width as u32,
            height: height as u32,
            rgb,
        };
        let mut attempts = 0;
        loop {
            attempts += 1;
            self.send(&msg)?;
            let ack = self.recv_until(|m| match m {
                WireMsg::FrameAck {
                    session: s,
                    ordinal,
                    status,
                    ..
                } if s == session => Ok(Some((ordinal, status))),
                WireMsg::Failed { session: s, error } if s == session => {
                    Err(ClientError::SessionFailed { error })
                }
                other => Err(ClientError::Protocol {
                    got: other.name().to_owned(),
                }),
            })?;
            match ack {
                (ordinal, AckStatus::Accepted) => return Ok(ordinal),
                (_, AckStatus::Overloaded) => {
                    if attempts > self.options.max_offer_retries {
                        return Err(ClientError::Saturated { attempts });
                    }
                    std::thread::sleep(self.options.retry_backoff);
                }
            }
        }
    }

    /// Declares the clip complete and waits for the final analysis.
    ///
    /// # Errors
    ///
    /// [`ClientError::SessionFailed`] when the session ended in a
    /// typed failure or quarantine; plus the transport errors.
    pub fn flush(&mut self, session: u64) -> Result<RemoteAnalysis, ClientError> {
        self.send(&WireMsg::Flush { session })?;
        let (summary_json, trace_jsonl) = self.recv_until(|msg| match msg {
            WireMsg::Analysis {
                session: s,
                summary_json,
                trace_jsonl,
            } if s == session => Ok(Some((summary_json, trace_jsonl))),
            WireMsg::Failed { session: s, error } if s == session => {
                Err(ClientError::SessionFailed { error })
            }
            // Acks for frames the ack-wait loop already consumed
            // cannot appear (lockstep), so anything else is protocol.
            other => Err(ClientError::Protocol {
                got: other.name().to_owned(),
            }),
        })?;
        let mut events = Vec::new();
        self.pending_events.retain(|(s, line)| {
            if *s == session {
                events.push(line.clone());
                false
            } else {
                true
            }
        });
        Ok(RemoteAnalysis {
            session,
            summary_json,
            trace_jsonl,
            events,
        })
    }

    /// Runs a whole clip through one session: open, stream every
    /// frame, flush.
    ///
    /// # Errors
    ///
    /// Every error [`Client::open`], [`Client::send_frame`] and
    /// [`Client::flush`] can produce.
    pub fn analyze_clip(
        &mut self,
        request: &OpenRequest,
        frames: &[Frame],
    ) -> Result<RemoteAnalysis, ClientError> {
        let session = self.open(request)?;
        for frame in frames {
            self.send_frame(session, frame)?;
        }
        self.flush(session)
    }

    /// Opens a session *and* ships the whole clip in one `OPEN_CLIP`
    /// message — the clip as concatenated P6 PPM frames, decoded and
    /// fed daemon-side — then waits for the terminal analysis. The
    /// daemon validates the clip before admitting the session, so a
    /// malformed clip is a [`ClientError::Rejected`] with no session
    /// ever opened.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] (draining, full, or a clip that does
    /// not decode), [`ClientError::SessionFailed`], plus the transport
    /// errors.
    pub fn analyze_clip_ppm(
        &mut self,
        request: &OpenRequest,
        ppm: Vec<u8>,
    ) -> Result<RemoteAnalysis, ClientError> {
        let session = self.open_clip(request, ppm)?;
        self.await_result(session)
    }

    /// Sends one `OPEN_CLIP` and waits only for the admission verdict;
    /// the daemon feeds the frames itself and the terminal reply comes
    /// later (see [`Client::await_result`]). The split lets a front end
    /// (the HTTP gateway) acknowledge admission immediately while the
    /// analysis runs.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] when the daemon refuses (draining,
    /// full, or a clip that does not decode), plus the transport
    /// errors.
    pub fn open_clip(&mut self, request: &OpenRequest, ppm: Vec<u8>) -> Result<u64, ClientError> {
        let config_json = serde_json::to_string(request).expect("open request serialises");
        self.send(&WireMsg::OpenClip { config_json, ppm })?;
        self.recv_until(|msg| match msg {
            WireMsg::Opened { session } => Ok(Some(session)),
            WireMsg::Rejected { reason } => Err(ClientError::Rejected { reason }),
            other => Err(ClientError::Protocol {
                got: other.name().to_owned(),
            }),
        })
    }

    /// Blocks until `session`'s terminal reply arrives, collecting
    /// interleaved events.
    ///
    /// # Errors
    ///
    /// [`ClientError::SessionFailed`] when the session ended in a typed
    /// failure or quarantine; plus the transport errors.
    pub fn await_result(&mut self, session: u64) -> Result<RemoteAnalysis, ClientError> {
        let (summary_json, trace_jsonl) = self.recv_until(|msg| match msg {
            WireMsg::Analysis {
                session: s,
                summary_json,
                trace_jsonl,
            } if s == session => Ok(Some((summary_json, trace_jsonl))),
            WireMsg::Failed { session: s, error } if s == session => {
                Err(ClientError::SessionFailed { error })
            }
            other => Err(ClientError::Protocol {
                got: other.name().to_owned(),
            }),
        })?;
        let events = self.take_events(session);
        Ok(RemoteAnalysis {
            session,
            summary_json,
            trace_jsonl,
            events,
        })
    }

    /// Abandons a session (its slot recycles server-side; no terminal
    /// reply will come).
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn retire(&mut self, session: u64) -> Result<(), ClientError> {
        self.send(&WireMsg::Retire { session })
    }

    /// Asks the daemon to drain: finish in-flight sessions, refuse new
    /// opens, shut down. Returns the number of sessions still in
    /// flight.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`ClientError::Protocol`] on a non-drain
    /// reply.
    pub fn drain(&mut self) -> Result<u64, ClientError> {
        self.send(&WireMsg::Drain)?;
        self.recv_until(|msg| match msg {
            WireMsg::Draining { in_flight } => Ok(Some(in_flight)),
            other => Err(ClientError::Protocol {
                got: other.name().to_owned(),
            }),
        })
    }

    /// Health-event lines received so far for `session` (drained).
    pub fn take_events(&mut self, session: u64) -> Vec<String> {
        let mut events = Vec::new();
        self.pending_events.retain(|(s, line)| {
            if *s == session {
                events.push(line.clone());
                false
            } else {
                true
            }
        });
        events
    }

    /// Raw access for tests that need to misbehave on purpose (torn
    /// prefixes, mid-frame disconnects).
    #[doc(hidden)]
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Raw receive for tests that read out of lockstep (slow readers,
    /// stalled connections waiting for the daemon's verdict).
    ///
    /// # Errors
    ///
    /// The transport errors; unlike the lockstep calls, a server
    /// `ERROR` is returned as the [`WireMsg`], not mapped.
    #[doc(hidden)]
    pub fn recv_raw(&mut self) -> Result<WireMsg, ClientError> {
        self.recv()
    }

    /// Errors-with-code helper for tests: `true` when the error is a
    /// typed server disconnect with `code`.
    pub fn is_server_error(err: &ClientError, code: u16) -> bool {
        matches!(err, ClientError::Server { code: c, .. } if *c == code)
    }
}

/// Convenience for operators: dial, drain, hang up.
///
/// # Errors
///
/// Every [`Client::connect`] / [`Client::drain`] error.
pub fn drain_daemon(addr: &Addr) -> Result<u64, ClientError> {
    let mut client = Client::connect(addr, ClientOptions::default())?;
    client.drain()
}
