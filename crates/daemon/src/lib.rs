//! Long-running socket transport in front of the
//! [`SessionManager`](slj_serve::SessionManager): the network edge of
//! the analysis service.
//!
//! Everything below this crate is an in-process library; this crate
//! owns the boundary where uncontrolled remote clients meet it. It is
//! plain `std::net` — threads, no async runtime, matching the
//! workspace's vendored-deps philosophy — arranged as:
//!
//! * one **acceptor** thread per listener (TCP and/or Unix-domain
//!   sockets, [`Addr`]);
//! * per connection, a **reader** thread (decodes [`wire`] frames
//!   under a read deadline and a max-frame bound, forwards requests
//!   into a *bounded* channel) and a **writer** thread (serialises
//!   replies under a write deadline);
//! * one **engine** thread that owns the `SessionManager`, drains the
//!   request channel, ticks, and routes health events, backpressure
//!   replies and final analyses back to each connection's writer.
//!
//! Boundedness is end-to-end: the per-session frame queue rejects with
//! a wire-level `FRAME_ACK Overloaded` (the manager's reject-newest
//! shed), the shared request channel blocks readers (TCP backpressure,
//! never an unbounded buffer), reply channels park must-deliver
//! messages up to a cap and then disconnect the too-slow client with a
//! typed `ERROR`, and purely informational EVENT messages are dropped
//! (counted) rather than buffered. Malformed or oversized wire frames,
//! idle connections and mid-frame disconnects are all contained per
//! connection: the offending session is aborted and its slot recycled,
//! and no other session's output changes by a byte (the loopback chaos
//! suite asserts this).
//!
//! Graceful drain ([`DaemonHandle::drain`], or a wire `DRAIN` from an
//! operator client) finishes in-flight sessions, refuses new `OPEN`s
//! with a typed rejection, then shuts the listeners down.

pub mod addr;
pub mod client;
pub mod engine;
pub mod server;
pub mod wire;

pub use addr::Addr;
pub use client::{Client, ClientError, ClientOptions, RemoteAnalysis};
pub use engine::{DaemonConfig, DaemonStats, OpenRequest};
pub use server::{Daemon, DaemonHandle, Listener, Stream};
pub use wire::{AckStatus, Decoder, WireError, WireMsg, DEFAULT_MAX_FRAME, WIRE_SCHEMA};
