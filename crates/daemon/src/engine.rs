//! The daemon engine: one thread owning the
//! [`SessionManager`](slj_serve::SessionManager), fed by per-connection
//! reader threads through a bounded request channel, replying through
//! per-connection writer channels.
//!
//! The engine never blocks on a client. Inbound, readers block on the
//! bounded request channel (which becomes TCP backpressure at the
//! socket); outbound, replies are `try_send`-only — must-deliver
//! messages (acks, terminal analyses, protocol errors) park in a
//! bounded per-connection queue when the writer is busy and the
//! connection is declared too slow (typed `ERROR`, torn down) when the
//! queue overflows, while best-effort EVENT messages are simply
//! dropped and counted. One slow, stuck or malicious connection
//! therefore costs every other session nothing.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};
use slj::{AnalyzerConfig, RobustnessPolicy};
use slj_motion::{BodyDims, Pose};
use slj_serve::{
    render_event, EventKind, HealthEvent, OfferReply, ServeConfig, ServeError, SessionConfig,
    SessionManager,
};
use slj_video::{Camera, Frame};

use crate::wire::{codes, AckStatus, WireError, WireMsg, DEFAULT_MAX_FRAME, WIRE_SCHEMA};

/// Everything a client must supply to open a session — the same
/// calibration the paper's manual step provides, as the JSON payload
/// of an `OPEN` message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenRequest {
    /// The clip's camera calibration.
    pub camera: Camera,
    /// The athlete's body dimensions.
    pub dims: BodyDims,
    /// The operator-provided first-frame pose.
    pub first_pose: Pose,
    /// The clip frame rate.
    pub fps: f64,
    /// Background warm-up window (frames).
    pub warmup: usize,
    /// Use the fast analyzer preset instead of the default.
    pub fast: bool,
    /// `Some(n)` selects `RobustnessPolicy::BestEffort` with that
    /// degraded-frame budget; `None` keeps `Strict`.
    pub max_degraded: Option<usize>,
    /// Stream the session's `slj-trace/1` JSONL back in the final
    /// `ANALYSIS` message.
    pub want_trace: bool,
}

impl OpenRequest {
    /// The manager-level session config this request describes. Each
    /// session's analyzer runs serial inside its step — concurrency
    /// lives at the manager, like `slj serve`.
    pub fn to_session_config(&self) -> SessionConfig {
        let mut config = if self.fast {
            AnalyzerConfig::fast()
        } else {
            AnalyzerConfig::default()
        };
        config.dims = self.dims.clone();
        config.parallelism = slj_runtime::Parallelism::Serial;
        if let Some(max_degraded_frames) = self.max_degraded {
            config.robustness = RobustnessPolicy::BestEffort {
                max_degraded_frames,
            };
        }
        SessionConfig {
            analyzer: config.into_streaming(self.warmup),
            camera: self.camera,
            first_pose: self.first_pose,
            fps: self.fps,
        }
    }
}

/// Daemon-level knobs. Every buffer in the transport has an explicit
/// bound here.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// The service core's own knobs (queue depth, supervision budgets,
    /// manager parallelism, …).
    pub serve: ServeConfig,
    /// Wire-frame body bound enforced by every connection's decoder.
    pub max_frame: usize,
    /// Bound of the shared reader→engine request channel; full means
    /// readers block, which surfaces to clients as TCP backpressure.
    pub request_depth: usize,
    /// Bound of each connection's engine→writer reply channel.
    pub reply_depth: usize,
    /// Bound on a connection's parked must-deliver replies once the
    /// reply channel is full; overflow disconnects the client
    /// (`ERROR` code [`codes::TOO_SLOW`]).
    pub parked_cap: usize,
    /// Socket read deadline, ms (one reader poll interval).
    pub read_timeout_ms: u64,
    /// Socket write deadline, ms; a blocked write past it tears the
    /// connection down.
    pub write_timeout_ms: u64,
    /// Consecutive read timeouts before an idle connection is reaped
    /// (0 disables reaping). The idle window is therefore
    /// `idle_timeouts * read_timeout_ms`.
    pub idle_timeouts: u32,
    /// How long the engine waits for requests before ticking anyway,
    /// ms — the service heartbeat while producers are quiet.
    pub tick_wait_ms: u64,
    /// Most requests handled per engine pass before a tick is forced.
    /// Without this bound a pack of clients re-offering into a full
    /// queue every millisecond keeps the intake loop busy forever and
    /// starves the very ticks that would drain the queue — a livelock
    /// where backpressured clients stall every session.
    pub intake_budget: usize,
    /// When set, every finished session's `slj-trace/1` JSONL is also
    /// written to `<trace_dir>/session-<id>.trace.jsonl`.
    pub trace_dir: Option<PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            serve: ServeConfig {
                // The daemon heartbeat ticks far faster than real
                // producers send frames; the service-core default
                // stall window (tuned for lockstep scripted drivers)
                // would quarantine a merely unhurried client.
                stall_ticks: 4096,
                ..ServeConfig::default()
            },
            max_frame: DEFAULT_MAX_FRAME,
            request_depth: 1024,
            reply_depth: 64,
            parked_cap: 256,
            read_timeout_ms: 100,
            write_timeout_ms: 10_000,
            idle_timeouts: 3000,
            tick_wait_ms: 2,
            intake_budget: 256,
            trace_dir: None,
        }
    }
}

/// What one connection's reader tells the engine.
#[derive(Debug)]
pub(crate) enum Request {
    /// A connection came up; `writer` is its reply channel.
    Connect { conn: u64, writer: SyncSender<Out> },
    /// A decoded message from the client.
    Msg { conn: u64, msg: WireMsg },
    /// The client's byte stream broke framing (fatal for the conn).
    BadWire { conn: u64, err: WireError },
    /// The connection sat idle past the reaping deadline.
    Idle { conn: u64 },
    /// EOF or socket error: the client is gone.
    Gone { conn: u64 },
}

/// What the engine hands a connection's writer thread.
#[derive(Debug)]
pub(crate) enum Out {
    /// Encode and send.
    Msg(WireMsg),
    /// Flush and close the socket, then exit.
    Close,
}

/// Counters the engine reports when it exits (drain complete).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Connections accepted over the daemon's lifetime.
    pub connections: u64,
    /// Sessions opened.
    pub sessions_opened: u64,
    /// Sessions that finished with an analysis delivered.
    pub sessions_finished: u64,
    /// Sessions that ended in a typed failure or quarantine.
    pub sessions_failed: u64,
    /// Sessions aborted because their client vanished or misbehaved.
    pub sessions_aborted: u64,
    /// Sessions opened through `OPEN_CLIP` (daemon-side ingestion).
    pub clip_sessions: u64,
    /// Best-effort EVENT messages dropped for slow readers.
    pub events_dropped: u64,
    /// Connections torn down for protocol violations, oversized or
    /// malformed frames, idleness, or unread must-deliver replies.
    pub conns_torn_down: u64,
    /// Manager ticks run.
    pub ticks: u64,
}

/// Per-session bookkeeping the manager does not know about.
struct SessionMeta {
    id: slj_serve::SessionId,
    conn: u64,
    want_trace: bool,
    /// The client abandoned the session (`RETIRE`); suppress the
    /// terminal reply.
    suppress_reply: bool,
    /// Decoded clip frames an `OPEN_CLIP` session still owes the
    /// manager. The engine feeds them itself, pacing around its own
    /// backpressure (an `Overloaded` offer leaves the frame queued for
    /// the next pass), so ingestion can never shed its own frames.
    pending: VecDeque<Frame>,
    /// Close (flush) the session once `pending` runs dry — set for
    /// `OPEN_CLIP` sessions, cleared after the close is issued.
    auto_close: bool,
}

/// Per-connection state inside the engine.
struct ConnState {
    id: u64,
    writer: SyncSender<Out>,
    /// Must-deliver replies waiting for writer-channel room.
    parked: VecDeque<WireMsg>,
    helloed: bool,
    /// Tear down once `parked` is flushed.
    doomed: bool,
    /// The writer channel broke (socket died): drop everything.
    dead: bool,
}

impl ConnState {
    fn new(id: u64, writer: SyncSender<Out>) -> Self {
        ConnState {
            id,
            writer,
            parked: VecDeque::new(),
            helloed: false,
            doomed: false,
            dead: false,
        }
    }
}

/// The engine: see the module docs for the threading model.
pub(crate) struct Engine {
    config: DaemonConfig,
    manager: SessionManager,
    requests: Receiver<Request>,
    /// Shared with the acceptors and [`DaemonHandle`]: once set, stop
    /// accepting connections and drain.
    drain_flag: Arc<AtomicBool>,
    conns: Vec<ConnState>,
    sessions: Vec<SessionMeta>,
    stats: DaemonStats,
    events_scratch: Vec<HealthEvent>,
}

impl Engine {
    pub(crate) fn new(
        config: DaemonConfig,
        requests: Receiver<Request>,
        drain_flag: Arc<AtomicBool>,
    ) -> Self {
        let manager = SessionManager::new(config.serve);
        Engine {
            config,
            manager,
            requests,
            drain_flag,
            conns: Vec::new(),
            sessions: Vec::new(),
            stats: DaemonStats::default(),
            events_scratch: Vec::new(),
        }
    }

    fn conn_mut(&mut self, id: u64) -> Option<&mut ConnState> {
        self.conns.iter_mut().find(|c| c.id == id)
    }

    /// Queues a reply that MUST reach the client (ack, terminal,
    /// error): the writer channel first, the parked queue when it is
    /// full, teardown when even the parked queue overflows.
    fn must_deliver(&mut self, conn: u64, msg: WireMsg) {
        let parked_cap = self.config.parked_cap;
        let Some(state) = self.conn_mut(conn) else {
            return;
        };
        if state.dead {
            return;
        }
        if state.parked.is_empty() {
            match state.writer.try_send(Out::Msg(msg)) {
                Ok(()) => return,
                Err(TrySendError::Full(Out::Msg(msg))) => state.parked.push_back(msg),
                Err(TrySendError::Full(Out::Close)) => unreachable!("we only queue Msg here"),
                Err(TrySendError::Disconnected(_)) => {
                    state.dead = true;
                    self.teardown(conn, None);
                    return;
                }
            }
        } else {
            state.parked.push_back(msg);
        }
        if state.parked.len() > parked_cap {
            // The client keeps sending work but stopped reading
            // replies. Dropping acks would wedge it; the only honest
            // move is a typed disconnect.
            self.teardown(
                conn,
                Some(WireMsg::Error {
                    code: codes::TOO_SLOW,
                    message: format!("{parked_cap} unread replies; closing"),
                }),
            );
        }
    }

    /// Queues a best-effort message (EVENT): dropped (and counted)
    /// when the writer is busy — never parked, never a reason to
    /// disconnect.
    fn best_effort(&mut self, conn: u64, msg: WireMsg) {
        let Some(state) = self.conn_mut(conn) else {
            return;
        };
        if state.dead || state.doomed || !state.parked.is_empty() {
            self.stats.events_dropped += 1;
            return;
        }
        match state.writer.try_send(Out::Msg(msg)) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => self.stats.events_dropped += 1,
            Err(TrySendError::Disconnected(_)) => {
                state.dead = true;
                self.teardown(conn, None);
            }
        }
    }

    /// Aborts every session the connection owns (their slots recycle
    /// into the pool), optionally queues a final message, and marks the
    /// connection for close-after-flush.
    fn teardown(&mut self, conn: u64, last_word: Option<WireMsg>) {
        let owned: Vec<usize> = self
            .sessions
            .iter()
            .filter(|m| m.conn == conn)
            .map(|m| m.id)
            .collect();
        for id in owned {
            match self.manager.abort(id, "client disconnected") {
                Ok(()) => self.stats.sessions_aborted += 1,
                // Already terminal (e.g. analysis finished, reply
                // still parked): retire below either way.
                Err(ServeError::SessionTerminal { .. }) => {}
                Err(_) => {}
            }
            let _ = self.manager.take_result(id);
            let _ = self.manager.retire(id);
        }
        self.sessions.retain(|m| m.conn != conn);
        let stats = &mut self.stats;
        let Some(state) = self.conns.iter_mut().find(|c| c.id == conn) else {
            return;
        };
        // A plain hang-up (no parting ERROR) is a client's right, not a
        // teardown worth counting.
        if !state.doomed && last_word.is_some() {
            stats.conns_torn_down += 1;
        }
        state.doomed = true;
        if state.dead {
            state.parked.clear();
        } else if let Some(msg) = last_word {
            state.parked.push_back(msg);
        }
    }

    fn handle_request(&mut self, request: Request) {
        match request {
            Request::Connect { conn, writer } => {
                self.stats.connections += 1;
                self.conns.push(ConnState::new(conn, writer));
            }
            Request::Msg { conn, msg } => self.handle_msg(conn, msg),
            Request::BadWire { conn, err } => {
                let code = match err {
                    WireError::Oversized { .. } => codes::OVERSIZED,
                    WireError::Malformed { .. } => codes::MALFORMED,
                };
                self.teardown(
                    conn,
                    Some(WireMsg::Error {
                        code,
                        message: err.to_string(),
                    }),
                );
            }
            Request::Idle { conn } => {
                self.teardown(
                    conn,
                    Some(WireMsg::Error {
                        code: codes::IDLE,
                        message: "idle connection reaped".to_owned(),
                    }),
                );
            }
            Request::Gone { conn } => {
                if let Some(state) = self.conn_mut(conn) {
                    state.dead = true;
                }
                self.teardown(conn, None);
            }
        }
    }

    fn handle_msg(&mut self, conn: u64, msg: WireMsg) {
        let helloed = match self.conn_mut(conn) {
            Some(state) if state.doomed => return,
            Some(state) => state.helloed,
            None => return,
        };
        match msg {
            WireMsg::Hello { proto } => {
                if proto == WIRE_SCHEMA {
                    if let Some(state) = self.conn_mut(conn) {
                        state.helloed = true;
                    }
                    self.must_deliver(
                        conn,
                        WireMsg::HelloOk {
                            proto: WIRE_SCHEMA.to_owned(),
                        },
                    );
                } else {
                    self.teardown(
                        conn,
                        Some(WireMsg::Error {
                            code: codes::VERSION_MISMATCH,
                            message: format!("server speaks {WIRE_SCHEMA}, client sent {proto}"),
                        }),
                    );
                }
            }
            _ if !helloed => {
                self.teardown(
                    conn,
                    Some(WireMsg::Error {
                        code: codes::BAD_STATE,
                        message: format!("{} before HELLO", msg.name()),
                    }),
                );
            }
            WireMsg::Open { config_json } => self.handle_open(conn, &config_json),
            WireMsg::OpenClip { config_json, ppm } => {
                self.handle_open_clip(conn, &config_json, &ppm)
            }
            WireMsg::Frame {
                session,
                width,
                height,
                rgb,
            } => self.handle_frame(conn, session, width as usize, height as usize, &rgb),
            WireMsg::Flush { session } => {
                let Some(id) = self.owned_session(conn, session) else {
                    return self.unknown_session(conn, session);
                };
                match self.manager.close(id) {
                    // Already terminal: the terminal reply is already
                    // queued or in flight — nothing more to say.
                    Ok(()) | Err(ServeError::SessionTerminal { .. }) => {}
                    Err(e) => self.must_deliver(
                        conn,
                        WireMsg::Failed {
                            session,
                            error: e.to_string(),
                        },
                    ),
                }
            }
            WireMsg::Retire { session } => {
                let Some(id) = self.owned_session(conn, session) else {
                    return self.unknown_session(conn, session);
                };
                if let Some(meta) = self.sessions.iter_mut().find(|m| m.id == id) {
                    meta.suppress_reply = true;
                }
                // Err means already terminal; reaped below either way.
                if self.manager.abort(id, "retired by client").is_ok() {
                    self.stats.sessions_aborted += 1;
                }
                let _ = self.manager.take_result(id);
                let _ = self.manager.retire(id);
                self.sessions.retain(|m| m.id != id);
            }
            WireMsg::Drain => {
                self.manager.drain();
                self.drain_flag.store(true, Ordering::SeqCst);
                self.must_deliver(
                    conn,
                    WireMsg::Draining {
                        in_flight: self.sessions.len() as u64,
                    },
                );
            }
            // Server→client messages arriving from a client are a
            // protocol violation.
            other => {
                self.teardown(
                    conn,
                    Some(WireMsg::Error {
                        code: codes::BAD_STATE,
                        message: format!("unexpected {} from a client", other.name()),
                    }),
                );
            }
        }
    }

    fn owned_session(&self, conn: u64, session: u64) -> Option<slj_serve::SessionId> {
        self.sessions
            .iter()
            .find(|m| m.conn == conn && m.id as u64 == session)
            .map(|m| m.id)
    }

    fn unknown_session(&mut self, conn: u64, session: u64) {
        self.teardown(
            conn,
            Some(WireMsg::Error {
                code: codes::UNKNOWN_SESSION,
                message: format!("session {session} is not open on this connection"),
            }),
        );
    }

    fn handle_open(&mut self, conn: u64, config_json: &str) {
        let Some(request) = self.parse_open(conn, config_json) else {
            return;
        };
        self.admit(conn, request, VecDeque::new());
    }

    /// `OPEN_CLIP`: parse the request and decode the whole clip
    /// *before* admitting a session — a malformed clip is `Rejected`
    /// without ever costing a slot — then let [`Engine::feed_clips`]
    /// stream the decoded frames into the manager at the pace its
    /// backpressure allows.
    fn handle_open_clip(&mut self, conn: u64, config_json: &str, ppm: &[u8]) {
        let Some(request) = self.parse_open(conn, config_json) else {
            return;
        };
        let frames = match slj_video::io::frames_from_ppm_stream(ppm) {
            Ok(frames) => frames,
            Err(e) => {
                return self.must_deliver(
                    conn,
                    WireMsg::Rejected {
                        reason: format!("clip does not decode: {e}"),
                    },
                );
            }
        };
        if self.admit(conn, request, frames.into()) {
            self.stats.clip_sessions += 1;
        }
    }

    /// Parses an open request, replying `Rejected` (and returning
    /// `None`) when it does not parse.
    fn parse_open(&mut self, conn: u64, config_json: &str) -> Option<OpenRequest> {
        if self.drain_flag.load(Ordering::SeqCst) {
            self.manager.drain();
        }
        match serde_json::from_str(config_json) {
            Ok(r) => Some(r),
            Err(e) => {
                self.must_deliver(
                    conn,
                    WireMsg::Rejected {
                        reason: format!("open request does not parse: {e}"),
                    },
                );
                None
            }
        }
    }

    /// Asks the manager for a session slot and records the metadata;
    /// `pending` non-empty makes it an engine-fed clip session. Returns
    /// whether the session was admitted.
    fn admit(&mut self, conn: u64, request: OpenRequest, pending: VecDeque<Frame>) -> bool {
        let auto_close = !pending.is_empty();
        match self.manager.open(request.to_session_config()) {
            Ok(id) => {
                self.stats.sessions_opened += 1;
                self.sessions.push(SessionMeta {
                    id,
                    conn,
                    want_trace: request.want_trace,
                    suppress_reply: false,
                    pending,
                    auto_close,
                });
                self.must_deliver(conn, WireMsg::Opened { session: id as u64 });
                true
            }
            Err(e) => {
                self.must_deliver(
                    conn,
                    WireMsg::Rejected {
                        reason: e.to_string(),
                    },
                );
                false
            }
        }
    }

    fn handle_frame(&mut self, conn: u64, session: u64, width: usize, height: usize, rgb: &[u8]) {
        let Some(id) = self.owned_session(conn, session) else {
            return self.unknown_session(conn, session);
        };
        // The decoder guaranteed rgb.len() == 3 * width * height.
        let pixels: Vec<slj_imgproc::Rgb> = rgb
            .chunks_exact(3)
            .map(|c| slj_imgproc::Rgb {
                r: c[0],
                g: c[1],
                b: c[2],
            })
            .collect();
        let frame = match Frame::from_vec(width, height, pixels) {
            Ok(f) => f,
            Err(e) => {
                return self.teardown(
                    conn,
                    Some(WireMsg::Error {
                        code: codes::MALFORMED,
                        message: format!("frame does not assemble: {e}"),
                    }),
                );
            }
        };
        match self.manager.offer(id, &frame) {
            Ok(OfferReply::Accepted { ordinal, depth }) => self.must_deliver(
                conn,
                WireMsg::FrameAck {
                    session,
                    ordinal,
                    status: AckStatus::Accepted,
                    depth: depth as u32,
                },
            ),
            Ok(OfferReply::Overloaded { ordinal, depth }) => self.must_deliver(
                conn,
                WireMsg::FrameAck {
                    session,
                    ordinal,
                    status: AckStatus::Overloaded,
                    depth: depth as u32,
                },
            ),
            // Terminal mid-stream (quarantine/failure): the terminal
            // reply is queued by the event router; the frame is moot.
            Err(ServeError::SessionTerminal { .. }) => {}
            Err(e) => self.must_deliver(
                conn,
                WireMsg::Failed {
                    session,
                    error: e.to_string(),
                },
            ),
        }
    }

    /// Feeds pending clip frames into the manager, one session at a
    /// time, stopping a session's feed the moment an offer comes back
    /// `Overloaded` (the frame goes back to the front of its queue and
    /// the next pass retries after a tick has drained the session's
    /// queue). When a clip session's frames are all accepted it is
    /// closed, which makes the terminal `ANALYSIS`/`FAILED` flow from
    /// the event router like any lockstep session's.
    fn feed_clips(&mut self) {
        let feeding: Vec<slj_serve::SessionId> = self
            .sessions
            .iter()
            .filter(|m| !m.pending.is_empty() || m.auto_close)
            .map(|m| m.id)
            .collect();
        for id in feeding {
            // Re-find each round: a must_deliver below can tear the
            // owning connection down and drop the meta entirely.
            while let Some(ix) = self.sessions.iter().position(|m| m.id == id) {
                let session = id as u64;
                let conn = self.sessions[ix].conn;
                let Some(frame) = self.sessions[ix].pending.pop_front() else {
                    if self.sessions[ix].auto_close {
                        self.sessions[ix].auto_close = false;
                        match self.manager.close(id) {
                            Ok(()) | Err(ServeError::SessionTerminal { .. }) => {}
                            Err(e) => self.must_deliver(
                                conn,
                                WireMsg::Failed {
                                    session,
                                    error: e.to_string(),
                                },
                            ),
                        }
                    }
                    break;
                };
                match self.manager.offer(id, &frame) {
                    Ok(OfferReply::Accepted { .. }) => {}
                    Ok(OfferReply::Overloaded { .. }) => {
                        // The session queue is full; retry after a tick.
                        self.sessions[ix].pending.push_front(frame);
                        break;
                    }
                    // Terminal mid-feed (quarantine/failure): the event
                    // router delivers the terminal reply; the rest of
                    // the clip is moot.
                    Err(ServeError::SessionTerminal { .. }) => {
                        self.sessions[ix].pending.clear();
                        self.sessions[ix].auto_close = false;
                        break;
                    }
                    Err(e) => {
                        self.sessions[ix].pending.clear();
                        self.sessions[ix].auto_close = false;
                        self.must_deliver(
                            conn,
                            WireMsg::Failed {
                                session,
                                error: e.to_string(),
                            },
                        );
                        break;
                    }
                }
            }
        }
    }

    /// Routes the tick's health events: non-frame events stream to the
    /// owning connection best-effort; terminal events trigger the
    /// must-deliver `ANALYSIS`/`FAILED` reply, the optional trace-dir
    /// export, and the session's retirement (recycling its slot).
    fn route_events(&mut self) {
        let mut events = std::mem::take(&mut self.events_scratch);
        events.clear();
        self.manager.drain_events_into(&mut events);
        for event in &events {
            let session = event.session;
            let Some(meta_index) = self.sessions.iter().position(|m| m.id == session) else {
                continue; // owner already gone (aborted/retired)
            };
            let conn = self.sessions[meta_index].conn;
            if !matches!(event.kind, EventKind::Frame { .. }) {
                self.best_effort(
                    conn,
                    WireMsg::Event {
                        session: session as u64,
                        line: render_event(event),
                    },
                );
            }
            if event.kind.is_terminal() {
                self.finish_session(meta_index, event);
            }
        }
        self.events_scratch = events;
    }

    /// Delivers a terminal session's result and retires it.
    fn finish_session(&mut self, meta_index: usize, event: &HealthEvent) {
        let meta = self.sessions.remove(meta_index);
        let session = meta.id as u64;
        let reply = match self.manager.take_result(meta.id) {
            Some(Ok(analysis)) => {
                self.stats.sessions_finished += 1;
                let summary_json =
                    serde_json::to_string_pretty(&analysis.summary()).expect("summary serialises");
                let trace_jsonl = if meta.want_trace || self.config.trace_dir.is_some() {
                    analysis.obs.render_trace()
                } else {
                    String::new()
                };
                if let Some(dir) = &self.config.trace_dir {
                    // Best-effort export: a full disk must not take the
                    // service down, but it should not be silent either.
                    let path = dir.join(format!("session-{session}.trace.jsonl"));
                    if let Err(e) = std::fs::create_dir_all(dir)
                        .and_then(|()| std::fs::write(&path, &trace_jsonl))
                    {
                        eprintln!("slj-daemon: cannot write {}: {e}", path.display());
                    }
                }
                WireMsg::Analysis {
                    session,
                    summary_json,
                    trace_jsonl: if meta.want_trace {
                        trace_jsonl
                    } else {
                        String::new()
                    },
                }
            }
            Some(Err(error)) => {
                self.stats.sessions_failed += 1;
                WireMsg::Failed {
                    session,
                    error: error.to_string(),
                }
            }
            // Quarantined sessions have no result; the terminal event
            // carries the reason.
            None => {
                self.stats.sessions_failed += 1;
                let reason = match &event.kind {
                    EventKind::Quarantined { reason } => reason.clone(),
                    other => other.name().to_owned(),
                };
                WireMsg::Failed {
                    session,
                    error: format!("quarantined: {reason}"),
                }
            }
        };
        let _ = self.manager.retire(meta.id);
        if !meta.suppress_reply {
            self.must_deliver(meta.conn, reply);
        }
    }

    /// Moves parked replies into writer channels as room appears, then
    /// closes connections that have said everything they need to.
    fn flush_and_reap(&mut self) {
        let mut dead = Vec::new();
        for state in &mut self.conns {
            while let Some(msg) = state.parked.pop_front() {
                match state.writer.try_send(Out::Msg(msg)) {
                    Ok(()) => {}
                    Err(TrySendError::Full(Out::Msg(msg))) => {
                        state.parked.push_front(msg);
                        break;
                    }
                    Err(TrySendError::Full(Out::Close)) => unreachable!("we only queue Msg"),
                    Err(TrySendError::Disconnected(_)) => {
                        state.dead = true;
                        state.parked.clear();
                        break;
                    }
                }
            }
            if state.dead || (state.doomed && state.parked.is_empty()) {
                // Close is best-effort: if the channel is full the
                // writer is still busy; try again next loop.
                if state.dead || state.writer.try_send(Out::Close).is_ok() {
                    dead.push(state.id);
                }
            }
        }
        for conn in dead {
            // A doomed conn's sessions were aborted at teardown; a dead
            // one may still own sessions (writer died before reader).
            self.teardown(conn, None);
            self.conns.retain(|c| c.id != conn);
        }
    }

    /// The engine thread's body. Returns when a drain completes: every
    /// in-flight session terminal and retired, every connection
    /// flushed and closed.
    pub(crate) fn run(mut self) -> DaemonStats {
        loop {
            // 1. Intake: wait briefly for the first request, then
            //    drain whatever else is queued without waiting.
            match self
                .requests
                .recv_timeout(Duration::from_millis(self.config.tick_wait_ms))
            {
                Ok(request) => {
                    self.handle_request(request);
                    // Bounded drain: past the budget, leave the rest
                    // queued and go tick — intake must never starve
                    // the queue-draining ticks (see `intake_budget`).
                    let mut budget = self.config.intake_budget;
                    while budget > 0 {
                        match self.requests.try_recv() {
                            Ok(request) => self.handle_request(request),
                            Err(_) => break,
                        }
                        budget -= 1;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // All acceptors and readers are gone; drain what's
                    // left and exit.
                    self.drain_flag.store(true, Ordering::SeqCst);
                }
            }
            if self.drain_flag.load(Ordering::SeqCst) {
                self.manager.drain();
            }
            // 2. Feed engine-owned clip sessions (OPEN_CLIP) as far as
            //    backpressure allows.
            self.feed_clips();
            // 3. One supervision tick (skipped when nothing is open).
            if self.manager.sessions_in_service() > 0 {
                self.manager.tick();
                self.stats.ticks += 1;
            }
            // 4. Route events, deliver terminals, retire.
            self.route_events();
            // 5. Outbound progress and connection reaping.
            self.flush_and_reap();
            // 6. Drain-complete check.
            if self.manager.is_draining()
                && self.manager.sessions_in_service() == 0
                && self.sessions.is_empty()
            {
                for state in &mut self.conns {
                    if !state.dead {
                        let _ = state.writer.try_send(Out::Msg(WireMsg::Bye));
                        let _ = state.writer.try_send(Out::Close);
                    }
                }
                self.conns.clear();
                return self.stats;
            }
        }
    }
}
