//! Listener/acceptor/reader/writer threads around the
//! [`Engine`](crate::engine): everything that touches a socket.
//!
//! One acceptor thread per listener polls a nonblocking accept loop so
//! it can notice the drain flag promptly; each accepted connection gets
//! a reader thread (socket → decoder → bounded request channel) and a
//! writer thread (bounded reply channel → encoder → socket). Readers
//! *block* on the request channel when the engine is saturated — that
//! is the design: the unread bytes stay in the kernel socket buffer and
//! the peer's sends stall, which is exactly the backpressure the wire
//! protocol promises instead of unbounded buffering.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::addr::Addr;
use crate::engine::{DaemonConfig, DaemonStats, Engine, Out, Request};
use crate::wire::Decoder;

/// How long acceptors sleep between nonblocking accept polls.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// One live transport stream: the TCP/UDS split stops here. Public so
/// other front ends (the HTTP gateway) can serve the same dual
/// transports without duplicating the socket plumbing.
pub enum Stream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    Unix(UnixStream),
}

impl Stream {
    /// Clones the handle so reads and writes can live on different
    /// threads.
    ///
    /// # Errors
    ///
    /// The underlying socket's `try_clone` failure.
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    /// Sets the read deadline for subsequent reads.
    ///
    /// # Errors
    ///
    /// The underlying socket's setter failure.
    pub fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(d),
            Stream::Unix(s) => s.set_read_timeout(d),
        }
    }

    /// Sets the write deadline for subsequent writes.
    ///
    /// # Errors
    ///
    /// The underlying socket's setter failure.
    pub fn set_write_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(d),
            Stream::Unix(s) => s.set_write_timeout(d),
        }
    }

    /// Closes both directions; unblocks a reader stuck in `read`.
    pub fn shutdown(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A bound listening socket on either transport.
pub enum Listener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener plus the socket path to unlink on close.
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Binds `addr`, returning the listener and the address actually
    /// bound — with an OS-assigned port resolved, so `tcp:127.0.0.1:0`
    /// comes back as the real endpoint to dial. For Unix addresses the
    /// parent directory is created and a *stale* socket file (one no
    /// daemon answers on) is removed; a live one is `AddrInUse`.
    ///
    /// # Errors
    ///
    /// Any bind failure.
    pub fn bind(addr: &Addr) -> io::Result<(Listener, Addr)> {
        match addr {
            Addr::Tcp(hostport) => {
                let listener = TcpListener::bind(hostport.as_str())?;
                let local = listener.local_addr()?;
                Ok((Listener::Tcp(listener), Addr::Tcp(local.to_string())))
            }
            Addr::Unix(path) => {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                // A stale socket file from a dead process blocks bind;
                // connecting distinguishes stale from live.
                if path.exists() {
                    match UnixStream::connect(path) {
                        Ok(_) => {
                            return Err(io::Error::new(
                                ErrorKind::AddrInUse,
                                format!("{} already has a live listener", path.display()),
                            ));
                        }
                        Err(_) => std::fs::remove_file(path)?,
                    }
                }
                let listener = UnixListener::bind(path)?;
                Ok((
                    Listener::Unix(listener, path.clone()),
                    Addr::Unix(path.clone()),
                ))
            }
        }
    }

    /// Switches the accept loop between blocking and polling modes.
    ///
    /// # Errors
    ///
    /// The underlying socket's setter failure.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            Listener::Unix(l, _) => l.set_nonblocking(nonblocking),
        }
    }

    /// Accepts one connection.
    ///
    /// # Errors
    ///
    /// `WouldBlock` in nonblocking mode with nobody waiting, or any
    /// accept failure.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }

    /// The socket file to unlink when a Unix listener shuts down.
    pub fn unix_path(&self) -> Option<&std::path::Path> {
        match self {
            Listener::Tcp(_) => None,
            Listener::Unix(_, path) => Some(path),
        }
    }
}

/// The daemon entry point: bind listeners, start the engine, accept.
pub struct Daemon;

/// A running daemon. Dropping the handle does **not** stop it — call
/// [`drain`](DaemonHandle::drain) then [`join`](DaemonHandle::join).
pub struct DaemonHandle {
    /// The addresses actually bound — with OS-assigned ports resolved,
    /// so `tcp:127.0.0.1:0` comes back as the real endpoint to dial.
    pub addrs: Vec<Addr>,
    drain_flag: Arc<AtomicBool>,
    engine: JoinHandle<DaemonStats>,
    acceptors: Vec<JoinHandle<()>>,
    unix_paths: Vec<PathBuf>,
}

impl DaemonHandle {
    /// Begins a graceful drain: listeners stop accepting, in-flight
    /// sessions finish, then the engine exits. Idempotent.
    pub fn drain(&self) {
        self.drain_flag.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested (by this handle or a wire
    /// `DRAIN`).
    pub fn is_draining(&self) -> bool {
        self.drain_flag.load(Ordering::SeqCst)
    }

    /// Waits for the drain to complete and returns the engine's
    /// lifetime counters. Call [`drain`](DaemonHandle::drain) first or
    /// this blocks until a client sends `DRAIN`.
    pub fn join(self) -> DaemonStats {
        for acceptor in self.acceptors {
            let _ = acceptor.join();
        }
        let stats = self.engine.join().unwrap_or_default();
        for path in &self.unix_paths {
            let _ = std::fs::remove_file(path);
        }
        stats
    }
}

impl Daemon {
    /// Binds every address and starts the engine + acceptor threads.
    ///
    /// # Errors
    ///
    /// Any bind failure (the socket path's parent directory is created
    /// for Unix addresses; a stale socket file is removed first).
    pub fn start(addrs: &[Addr], config: DaemonConfig) -> io::Result<DaemonHandle> {
        if addrs.is_empty() {
            return Err(io::Error::new(
                ErrorKind::InvalidInput,
                "daemon needs at least one listen address",
            ));
        }
        let mut listeners = Vec::new();
        let mut bound = Vec::new();
        let mut unix_paths = Vec::new();
        for addr in addrs {
            let (listener, local) = Listener::bind(addr)?;
            if let Some(path) = listener.unix_path() {
                unix_paths.push(path.to_path_buf());
            }
            bound.push(local);
            listeners.push(listener);
        }

        let drain_flag = Arc::new(AtomicBool::new(false));
        let (request_tx, request_rx) = sync_channel::<Request>(config.request_depth);
        let reply_depth = config.reply_depth;
        let read_timeout = Duration::from_millis(config.read_timeout_ms);
        let write_timeout = Duration::from_millis(config.write_timeout_ms);
        let idle_timeouts = config.idle_timeouts;
        let max_frame = config.max_frame;

        let engine = {
            let requests = request_rx;
            let flag = Arc::clone(&drain_flag);
            thread::Builder::new()
                .name("slj-daemon-engine".to_owned())
                .spawn(move || Engine::new(config, requests, flag).run())
                .expect("spawn engine thread")
        };

        let conn_ids = Arc::new(AtomicU64::new(0));
        let mut acceptors = Vec::new();
        for listener in listeners {
            let requests = request_tx.clone();
            let flag = Arc::clone(&drain_flag);
            let conn_ids = Arc::clone(&conn_ids);
            let handle = thread::Builder::new()
                .name("slj-daemon-accept".to_owned())
                .spawn(move || {
                    accept_loop(
                        listener,
                        requests,
                        flag,
                        conn_ids,
                        reply_depth,
                        read_timeout,
                        write_timeout,
                        idle_timeouts,
                        max_frame,
                    )
                })
                .expect("spawn acceptor thread");
            acceptors.push(handle);
        }
        // The engine exits when every request sender hangs up *or* a
        // drain completes; acceptors hold clones until they stop.
        drop(request_tx);

        Ok(DaemonHandle {
            addrs: bound,
            drain_flag,
            engine,
            acceptors,
            unix_paths,
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: Listener,
    requests: SyncSender<Request>,
    drain_flag: Arc<AtomicBool>,
    conn_ids: Arc<AtomicU64>,
    reply_depth: usize,
    read_timeout: Duration,
    write_timeout: Duration,
    idle_timeouts: u32,
    max_frame: usize,
) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    loop {
        if drain_flag.load(Ordering::SeqCst) {
            if let Some(path) = listener.unix_path() {
                let _ = std::fs::remove_file(path);
            }
            return;
        }
        match listener.accept() {
            Ok(stream) => {
                let conn = conn_ids.fetch_add(1, Ordering::SeqCst);
                if spawn_connection(
                    conn,
                    stream,
                    &requests,
                    reply_depth,
                    read_timeout,
                    write_timeout,
                    idle_timeouts,
                    max_frame,
                )
                .is_err()
                {
                    // The engine is gone; nothing left to accept for.
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Registers the connection with the engine and starts its reader and
/// writer threads. Returns `Err` only when the engine has hung up.
#[allow(clippy::too_many_arguments)]
fn spawn_connection(
    conn: u64,
    stream: Stream,
    requests: &SyncSender<Request>,
    reply_depth: usize,
    read_timeout: Duration,
    write_timeout: Duration,
    idle_timeouts: u32,
    max_frame: usize,
) -> Result<(), ()> {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_write_timeout(Some(write_timeout));
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return Ok(()), // connection stillborn; accept the next
    };
    let (reply_tx, reply_rx) = sync_channel::<Out>(reply_depth);
    requests
        .send(Request::Connect {
            conn,
            writer: reply_tx,
        })
        .map_err(|_| ())?;
    let reader_requests = requests.clone();
    thread::Builder::new()
        .name(format!("slj-daemon-read-{conn}"))
        .spawn(move || reader_loop(conn, stream, &reader_requests, idle_timeouts, max_frame))
        .expect("spawn reader thread");
    thread::Builder::new()
        .name(format!("slj-daemon-write-{conn}"))
        .spawn(move || writer_loop(write_half, &reply_rx))
        .expect("spawn writer thread");
    Ok(())
}

/// Socket → decoder → request channel. A send into the bounded channel
/// blocks when the engine is saturated; the socket keeps its unread
/// bytes and the peer stalls — backpressure, not buffering.
fn reader_loop(
    conn: u64,
    mut stream: Stream,
    requests: &SyncSender<Request>,
    idle_timeouts: u32,
    max_frame: usize,
) {
    let mut decoder = Decoder::new(max_frame);
    let mut chunk = [0u8; 64 * 1024];
    let mut quiet_polls: u32 = 0;
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => {
                let _ = requests.send(Request::Gone { conn });
                return;
            }
            Ok(n) => {
                quiet_polls = 0;
                decoder.push(&chunk[..n]);
                loop {
                    match decoder.next_msg() {
                        Ok(Some(msg)) => {
                            if requests.send(Request::Msg { conn, msg }).is_err() {
                                return; // engine gone
                            }
                        }
                        Ok(None) => break,
                        Err(err) => {
                            // Framing is lost for good: report and stop
                            // reading. The engine replies with a typed
                            // ERROR and closes via the writer.
                            let _ = requests.send(Request::BadWire { conn, err });
                            return;
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                quiet_polls = quiet_polls.saturating_add(1);
                if idle_timeouts > 0 && quiet_polls >= idle_timeouts {
                    let _ = requests.send(Request::Idle { conn });
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                let _ = requests.send(Request::Gone { conn });
                return;
            }
        }
    }
}

/// Reply channel → encoder → socket. Exits on `Close`, channel
/// disconnect (engine dropped the connection) or write failure (the
/// write deadline turns a wedged peer into an error here).
fn writer_loop(mut stream: Stream, replies: &Receiver<Out>) {
    let mut buf = Vec::new();
    while let Ok(out) = replies.recv() {
        match out {
            Out::Msg(msg) => {
                buf.clear();
                crate::wire::encode(&msg, &mut buf);
                if stream.write_all(&buf).is_err() {
                    break;
                }
            }
            Out::Close => break,
        }
    }
    let _ = stream.flush();
    stream.shutdown();
}
