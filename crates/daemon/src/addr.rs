//! Listen/connect address syntax shared by the daemon and the client:
//! `tcp:HOST:PORT` (or a bare `HOST:PORT`) and `unix:PATH`.

use std::fmt;
use std::path::PathBuf;

/// A transport endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// A TCP socket address string (`127.0.0.1:4500`; port 0 asks the
    /// OS for an ephemeral port when listening).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl Addr {
    /// Parses an address. Accepted forms: `unix:PATH`, `tcp:HOST:PORT`
    /// and bare `HOST:PORT`. IPv6 hosts must be bracketed
    /// (`[::1]:4500`) — that is the only form the standard library's
    /// resolver accepts, so an unbracketed multi-colon host is rejected
    /// here rather than failing later at connect time. Port `0` is
    /// accepted: it means "pick an ephemeral port" when listening (and
    /// is refused by the OS on connect).
    ///
    /// # Errors
    ///
    /// A human-readable description of what is wrong with the string.
    pub fn parse(s: &str) -> Result<Addr, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix: address needs a socket path".to_owned());
            }
            return Ok(Addr::Unix(PathBuf::from(path)));
        }
        let hostport = s.strip_prefix("tcp:").unwrap_or(s);
        let (host, port) = match hostport.rsplit_once(':') {
            Some(split) => split,
            None => {
                return Err(format!(
                    "cannot parse address '{s}': expected unix:PATH, tcp:HOST:PORT or HOST:PORT"
                ))
            }
        };
        if let Some(inner) = host.strip_prefix('[') {
            let Some(inner) = inner.strip_suffix(']') else {
                return Err(format!(
                    "cannot parse address '{s}': bracketed host has no closing ']' before the port"
                ));
            };
            if inner.parse::<std::net::Ipv6Addr>().is_err() {
                return Err(format!(
                    "cannot parse address '{s}': '[{inner}]' is not an IPv6 address"
                ));
            }
        } else if host.contains(':') {
            return Err(format!(
                "cannot parse address '{s}': IPv6 hosts must be bracketed, like [{host}]:{port}"
            ));
        } else if host.is_empty() {
            return Err(format!("cannot parse address '{s}': empty host"));
        }
        if port.is_empty() {
            return Err(format!("cannot parse address '{s}': empty port"));
        }
        if port.parse::<u16>().is_err() {
            return Err(format!(
                "cannot parse address '{s}': '{port}' is not a port (0-65535)"
            ));
        }
        Ok(Addr::Tcp(hostport.to_owned()))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Tcp(hostport) => write!(f, "tcp:{hostport}"),
            Addr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

impl std::str::FromStr for Addr {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Addr::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_forms() {
        assert_eq!(
            Addr::parse("unix:/tmp/slj.sock").unwrap(),
            Addr::Unix(PathBuf::from("/tmp/slj.sock"))
        );
        assert_eq!(
            Addr::parse("tcp:127.0.0.1:4500").unwrap(),
            Addr::Tcp("127.0.0.1:4500".to_owned())
        );
        assert_eq!(
            Addr::parse("127.0.0.1:0").unwrap(),
            Addr::Tcp("127.0.0.1:0".to_owned())
        );
        assert_eq!(
            Addr::parse("tcp:localhost:80").unwrap().to_string(),
            "tcp:localhost:80"
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(Addr::parse("unix:").is_err());
        assert!(Addr::parse("justahost").is_err());
        assert!(Addr::parse("host:notaport").is_err());
        assert!(Addr::parse(":4500").is_err());
        assert!(Addr::parse("tcp:host:99999").is_err());
    }

    #[test]
    fn ipv6_hosts_require_brackets() {
        assert_eq!(
            Addr::parse("[::1]:4500").unwrap(),
            Addr::Tcp("[::1]:4500".to_owned())
        );
        assert_eq!(
            Addr::parse("tcp:[2001:db8::7]:80").unwrap(),
            Addr::Tcp("[2001:db8::7]:80".to_owned())
        );
        // A bare IPv6 address must not be sliced at its last colon into
        // a bogus host/port pair (the resolver would never accept it).
        let err = Addr::parse("::1").unwrap_err();
        assert!(err.contains("bracketed"), "{err}");
        let err = Addr::parse("::1:4500").unwrap_err();
        assert!(err.contains("[::1]:4500"), "suggests the fix: {err}");
        // Bracket forms that are not actually IPv6, or are torn.
        assert!(Addr::parse("[::1]").is_err(), "brackets without a port");
        assert!(Addr::parse("[::1:4500").is_err(), "unclosed bracket");
        assert!(Addr::parse("[nonsense]:4500").is_err());
    }

    #[test]
    fn port_zero_is_accepted_for_ephemeral_listening() {
        assert_eq!(
            Addr::parse("127.0.0.1:0").unwrap(),
            Addr::Tcp("127.0.0.1:0".to_owned())
        );
        assert_eq!(
            Addr::parse("[::1]:0").unwrap(),
            Addr::Tcp("[::1]:0".to_owned())
        );
    }

    #[test]
    fn empty_port_is_a_specific_error() {
        let err = Addr::parse("tcp:host:").unwrap_err();
        assert!(err.contains("empty port"), "{err}");
        let err = Addr::parse("[::1]:").unwrap_err();
        assert!(err.contains("empty port"), "{err}");
    }
}
