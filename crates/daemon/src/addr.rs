//! Listen/connect address syntax shared by the daemon and the client:
//! `tcp:HOST:PORT` (or a bare `HOST:PORT`) and `unix:PATH`.

use std::fmt;
use std::path::PathBuf;

/// A transport endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// A TCP socket address string (`127.0.0.1:4500`; port 0 asks the
    /// OS for an ephemeral port when listening).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl Addr {
    /// Parses an address. Accepted forms: `unix:PATH`, `tcp:HOST:PORT`
    /// and bare `HOST:PORT`.
    ///
    /// # Errors
    ///
    /// A human-readable description of what is wrong with the string.
    pub fn parse(s: &str) -> Result<Addr, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix: address needs a socket path".to_owned());
            }
            return Ok(Addr::Unix(PathBuf::from(path)));
        }
        let hostport = s.strip_prefix("tcp:").unwrap_or(s);
        match hostport.rsplit_once(':') {
            Some((host, port)) if !host.is_empty() && port.parse::<u16>().is_ok() => {
                Ok(Addr::Tcp(hostport.to_owned()))
            }
            _ => Err(format!(
                "cannot parse address '{s}': expected unix:PATH, tcp:HOST:PORT or HOST:PORT"
            )),
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Tcp(hostport) => write!(f, "tcp:{hostport}"),
            Addr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

impl std::str::FromStr for Addr {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Addr::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_forms() {
        assert_eq!(
            Addr::parse("unix:/tmp/slj.sock").unwrap(),
            Addr::Unix(PathBuf::from("/tmp/slj.sock"))
        );
        assert_eq!(
            Addr::parse("tcp:127.0.0.1:4500").unwrap(),
            Addr::Tcp("127.0.0.1:4500".to_owned())
        );
        assert_eq!(
            Addr::parse("127.0.0.1:0").unwrap(),
            Addr::Tcp("127.0.0.1:0".to_owned())
        );
        assert_eq!(
            Addr::parse("tcp:localhost:80").unwrap().to_string(),
            "tcp:localhost:80"
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(Addr::parse("unix:").is_err());
        assert!(Addr::parse("justahost").is_err());
        assert!(Addr::parse("host:notaport").is_err());
        assert!(Addr::parse(":4500").is_err());
        assert!(Addr::parse("tcp:host:99999").is_err());
    }
}
