//! The `slj-wire/1` binary wire protocol: message types, the encoder,
//! and an incremental, bounded decoder.
//!
//! Every message travels as one length-prefixed frame:
//!
//! ```text
//! frame   = len:u32be body          len = |body|, 1 ..= max_frame
//! body    = tag:u8 payload          fixed-width integers big-endian
//! string  = len:u32be utf8-bytes
//! ```
//!
//! The decoder is push-based (`push` bytes, `next` messages) so it is
//! agnostic to how the transport splits reads — a message torn across
//! any byte boundary decodes identically (property-tested). Bounds are
//! enforced *before* buffering: a declared length beyond `max_frame`
//! is rejected as soon as the 4-byte prefix is readable, so a
//! malicious peer cannot make the decoder allocate; a payload whose
//! fields end early or leave trailing bytes is a typed
//! [`WireError::Malformed`], never a panic.

use std::fmt;

/// Protocol identifier carried in HELLO / HELLO_OK.
pub const WIRE_SCHEMA: &str = "slj-wire/1";

/// Default bound on one wire frame's body (tag + payload). Generous
/// enough for a 1080p RGB video frame (~6.2 MiB) plus headers.
pub const DEFAULT_MAX_FRAME: usize = 8 * 1024 * 1024;

/// Typed protocol-level error codes carried by [`WireMsg::Error`].
pub mod codes {
    /// The peer spoke a different protocol version.
    pub const VERSION_MISMATCH: u16 = 1;
    /// A frame was malformed (bad tag, short payload, trailing bytes).
    pub const MALFORMED: u16 = 2;
    /// A frame declared a length beyond the server's bound.
    pub const OVERSIZED: u16 = 3;
    /// A message referenced a session this connection does not own.
    pub const UNKNOWN_SESSION: u16 = 4;
    /// A message arrived in a state that cannot accept it (e.g. FRAME
    /// before OPEN, OPEN before HELLO).
    pub const BAD_STATE: u16 = 5;
    /// The connection exceeded its outbound must-deliver bound (it
    /// stopped reading replies while still sending work).
    pub const TOO_SLOW: u16 = 6;
    /// The connection sat idle past the reaping deadline.
    pub const IDLE: u16 = 7;
}

/// How an offered frame fared, on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckStatus {
    /// Queued for analysis.
    Accepted,
    /// Shed by the bounded queue (reject-newest); resend after a tick.
    Overloaded,
}

/// One `slj-wire/1` message. Client→server: `Hello`, `Open`, `Frame`,
/// `Flush`, `Retire`, `Drain`. Server→client: the rest.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Client greeting: protocol identifier for version negotiation.
    Hello {
        /// The client's protocol (must equal [`WIRE_SCHEMA`]).
        proto: String,
    },
    /// Server acceptance of the greeting.
    HelloOk {
        /// The server's protocol.
        proto: String,
    },
    /// Open a session; the payload is the JSON of an
    /// [`OpenRequest`](crate::OpenRequest).
    Open {
        /// Serialized open request.
        config_json: String,
    },
    /// The session is admitted.
    Opened {
        /// Server-assigned session id (echoed in every later message).
        session: u64,
    },
    /// The session was refused (capacity, draining, bad config).
    Rejected {
        /// Human-readable refusal.
        reason: String,
    },
    /// One video frame for a session (raw interleaved RGB).
    Frame {
        /// The session.
        session: u64,
        /// Frame width, pixels.
        width: u32,
        /// Frame height, pixels.
        height: u32,
        /// `3 * width * height` bytes, row-major RGB.
        rgb: Vec<u8>,
    },
    /// Synchronous backpressure reply to one `Frame`.
    FrameAck {
        /// The session.
        session: u64,
        /// The offer ordinal the frame consumed.
        ordinal: u64,
        /// Accepted or shed.
        status: AckStatus,
        /// Session queue depth after the offer.
        depth: u32,
    },
    /// The clip is complete; finish the analysis and reply with
    /// `Analysis` or `Failed`.
    Flush {
        /// The session.
        session: u64,
    },
    /// Abandon a session early (its slot is recycled without a result).
    Retire {
        /// The session.
        session: u64,
    },
    /// One supervisor health event, rendered as an `slj-serve/1` JSONL
    /// line. Best-effort: a slow reader may miss events (never
    /// replies).
    Event {
        /// The session observed.
        session: u64,
        /// The JSONL line (no trailing newline).
        line: String,
    },
    /// Terminal success: the finished analysis.
    Analysis {
        /// The session.
        session: u64,
        /// Pretty-printed `AnalysisSummary` JSON — byte-identical to
        /// `slj analyze --report` over the same clip and configuration.
        summary_json: String,
        /// The per-session `slj-trace/1` JSONL trace (empty when the
        /// client did not request it).
        trace_jsonl: String,
    },
    /// Terminal failure: the analyzer's typed error, rendered.
    Failed {
        /// The session.
        session: u64,
        /// The error text.
        error: String,
    },
    /// Protocol-level error. Fatal: the server closes the connection
    /// after sending it.
    Error {
        /// A [`codes`] constant.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// Admin: ask the daemon to drain (finish in-flight sessions,
    /// refuse new opens, then exit).
    Drain,
    /// Drain acknowledged.
    Draining {
        /// Sessions still in flight.
        in_flight: u64,
    },
    /// The server is closing this connection cleanly.
    Bye,
    /// Open a session *and* submit the whole clip in one message: the
    /// open request plus the clip's frames as concatenated binary P6
    /// PPM images (exactly the bytes of the on-disk clip format's
    /// `frame_*.ppm` files, in order). The server decodes the clip
    /// *before* admitting a session — a malformed clip is `Rejected`
    /// with no session ever opened — then feeds the frames itself,
    /// pacing around its own backpressure, and replies `Opened`
    /// followed by the terminal `Analysis`/`Failed`. This is the
    /// ingestion path the HTTP gateway uses: clients ship the clip
    /// format, never raw RGB.
    OpenClip {
        /// Serialized open request (same JSON as `Open`). The open
        /// request's `fps` governs; per-frame timing is implicit.
        config_json: String,
        /// Concatenated P6 PPM frames, decoded server-side.
        ppm: Vec<u8>,
    },
}

impl WireMsg {
    /// The message's wire tag.
    pub fn tag(&self) -> u8 {
        match self {
            WireMsg::Hello { .. } => 0x01,
            WireMsg::HelloOk { .. } => 0x02,
            WireMsg::Open { .. } => 0x03,
            WireMsg::Opened { .. } => 0x04,
            WireMsg::Rejected { .. } => 0x05,
            WireMsg::Frame { .. } => 0x06,
            WireMsg::FrameAck { .. } => 0x07,
            WireMsg::Flush { .. } => 0x08,
            WireMsg::Event { .. } => 0x09,
            WireMsg::Analysis { .. } => 0x0A,
            WireMsg::Failed { .. } => 0x0B,
            WireMsg::Retire { .. } => 0x0C,
            WireMsg::Error { .. } => 0x0D,
            WireMsg::Drain => 0x0E,
            WireMsg::Draining { .. } => 0x0F,
            WireMsg::Bye => 0x10,
            WireMsg::OpenClip { .. } => 0x11,
        }
    }

    /// A short human-readable name (logs and errors).
    pub fn name(&self) -> &'static str {
        match self {
            WireMsg::Hello { .. } => "HELLO",
            WireMsg::HelloOk { .. } => "HELLO_OK",
            WireMsg::Open { .. } => "OPEN",
            WireMsg::Opened { .. } => "OPENED",
            WireMsg::Rejected { .. } => "REJECTED",
            WireMsg::Frame { .. } => "FRAME",
            WireMsg::FrameAck { .. } => "FRAME_ACK",
            WireMsg::Flush { .. } => "FLUSH",
            WireMsg::Event { .. } => "EVENT",
            WireMsg::Analysis { .. } => "ANALYSIS",
            WireMsg::Failed { .. } => "FAILED",
            WireMsg::Retire { .. } => "RETIRE",
            WireMsg::Error { .. } => "ERROR",
            WireMsg::Drain => "DRAIN",
            WireMsg::Draining { .. } => "DRAINING",
            WireMsg::Bye => "BYE",
            WireMsg::OpenClip { .. } => "OPEN_CLIP",
        }
    }
}

/// Why a byte stream failed to decode. `Oversized` and `Malformed` are
/// fatal for the connection: framing is lost, so the only safe move is
/// a protocol [`WireMsg::Error`] and a close.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The 4-byte prefix declared a body larger than the bound (or
    /// empty). Detected before any payload is buffered.
    Oversized {
        /// The declared body length.
        declared: usize,
        /// The decoder's bound.
        max: usize,
    },
    /// The body did not parse: unknown tag, fields ending early,
    /// trailing bytes, non-UTF-8 strings, or impossible field values.
    Malformed {
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Oversized { declared, max } => {
                write!(
                    f,
                    "oversized wire frame: {declared} bytes declared, max {max}"
                )
            }
            WireError::Malformed { detail } => write!(f, "malformed wire frame: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

fn malformed(detail: impl Into<String>) -> WireError {
    WireError::Malformed {
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------- encode

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Appends `msg` to `out` as one length-prefixed wire frame. The
/// buffer is the caller's so steady-state encoding reuses storage.
pub fn encode(msg: &WireMsg, out: &mut Vec<u8>) {
    let start = out.len();
    put_u32(out, 0); // length back-patched below
    out.push(msg.tag());
    match msg {
        WireMsg::Hello { proto } | WireMsg::HelloOk { proto } => put_str(out, proto),
        WireMsg::Open { config_json } => put_str(out, config_json),
        WireMsg::Opened { session } => put_u64(out, *session),
        WireMsg::Rejected { reason } => put_str(out, reason),
        WireMsg::Frame {
            session,
            width,
            height,
            rgb,
        } => {
            put_u64(out, *session);
            put_u32(out, *width);
            put_u32(out, *height);
            out.extend_from_slice(rgb);
        }
        WireMsg::FrameAck {
            session,
            ordinal,
            status,
            depth,
        } => {
            put_u64(out, *session);
            put_u64(out, *ordinal);
            out.push(match status {
                AckStatus::Accepted => 0,
                AckStatus::Overloaded => 1,
            });
            put_u32(out, *depth);
        }
        WireMsg::Flush { session } | WireMsg::Retire { session } => put_u64(out, *session),
        WireMsg::Event { session, line } => {
            put_u64(out, *session);
            put_str(out, line);
        }
        WireMsg::Analysis {
            session,
            summary_json,
            trace_jsonl,
        } => {
            put_u64(out, *session);
            put_str(out, summary_json);
            put_str(out, trace_jsonl);
        }
        WireMsg::Failed { session, error } => {
            put_u64(out, *session);
            put_str(out, error);
        }
        WireMsg::Error { code, message } => {
            put_u16(out, *code);
            put_str(out, message);
        }
        WireMsg::Drain | WireMsg::Bye => {}
        WireMsg::Draining { in_flight } => put_u64(out, *in_flight),
        WireMsg::OpenClip { config_json, ppm } => {
            put_str(out, config_json);
            // The clip runs to the end of the body; the frame's length
            // prefix (not an inner count) bounds it.
            out.extend_from_slice(ppm);
        }
    }
    let body_len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&body_len.to_be_bytes());
}

/// Encodes into a fresh buffer (tests and one-shot paths).
pub fn encode_to_vec(msg: &WireMsg) -> Vec<u8> {
    let mut out = Vec::new();
    encode(msg, &mut out);
    out
}

// ---------------------------------------------------------------- decode

/// A cursor over one message body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.bytes.len() - self.pos < n {
            return Err(malformed(format!(
                "payload ends early: wanted {n} more bytes, had {}",
                self.bytes.len() - self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        // The declared string length cannot exceed what is actually in
        // the body, so this take (not the declaration) is the bound.
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed("string is not UTF-8"))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.bytes.len() {
            return Err(malformed(format!(
                "{} trailing bytes after payload",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Parses one complete body (tag + payload, the length prefix already
/// stripped and bounds-checked).
pub fn decode_body(body: &[u8]) -> Result<WireMsg, WireError> {
    let mut c = Cursor {
        bytes: body,
        pos: 0,
    };
    let tag = c.u8()?;
    let msg = match tag {
        0x01 => WireMsg::Hello { proto: c.string()? },
        0x02 => WireMsg::HelloOk { proto: c.string()? },
        0x03 => WireMsg::Open {
            config_json: c.string()?,
        },
        0x04 => WireMsg::Opened { session: c.u64()? },
        0x05 => WireMsg::Rejected {
            reason: c.string()?,
        },
        0x06 => {
            let session = c.u64()?;
            let width = c.u32()?;
            let height = c.u32()?;
            let expected = (width as usize)
                .checked_mul(height as usize)
                .and_then(|px| px.checked_mul(3))
                .ok_or_else(|| malformed("frame dimensions overflow"))?;
            let rgb = c.take(expected)?.to_vec();
            WireMsg::Frame {
                session,
                width,
                height,
                rgb,
            }
        }
        0x07 => {
            let session = c.u64()?;
            let ordinal = c.u64()?;
            let status = match c.u8()? {
                0 => AckStatus::Accepted,
                1 => AckStatus::Overloaded,
                other => return Err(malformed(format!("unknown ack status {other}"))),
            };
            let depth = c.u32()?;
            WireMsg::FrameAck {
                session,
                ordinal,
                status,
                depth,
            }
        }
        0x08 => WireMsg::Flush { session: c.u64()? },
        0x09 => WireMsg::Event {
            session: c.u64()?,
            line: c.string()?,
        },
        0x0A => WireMsg::Analysis {
            session: c.u64()?,
            summary_json: c.string()?,
            trace_jsonl: c.string()?,
        },
        0x0B => WireMsg::Failed {
            session: c.u64()?,
            error: c.string()?,
        },
        0x0C => WireMsg::Retire { session: c.u64()? },
        0x0D => WireMsg::Error {
            code: c.u16()?,
            message: c.string()?,
        },
        0x0E => WireMsg::Drain,
        0x0F => WireMsg::Draining {
            in_flight: c.u64()?,
        },
        0x10 => WireMsg::Bye,
        0x11 => {
            let config_json = c.string()?;
            let rest = c.bytes.len() - c.pos;
            let ppm = c.take(rest)?.to_vec();
            WireMsg::OpenClip { config_json, ppm }
        }
        other => return Err(malformed(format!("unknown message tag 0x{other:02X}"))),
    };
    c.finish()?;
    Ok(msg)
}

/// Incremental frame decoder. Push bytes in whatever chunks the
/// transport yields; pull complete messages. After any `Err` the
/// stream's framing is unrecoverable and the connection must close.
#[derive(Debug)]
pub struct Decoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    pos: usize,
    max_frame: usize,
}

impl Decoder {
    /// A decoder enforcing the given body-size bound.
    pub fn new(max_frame: usize) -> Self {
        Decoder {
            buf: Vec::new(),
            pos: 0,
            max_frame,
        }
    }

    /// Buffers transport bytes. Never parses — call [`Decoder::next`].
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing so a long-lived connection's buffer
        // stays proportional to one frame, not to history.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > self.max_frame) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The next complete message, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversized`] as soon as a length prefix declares a
    /// body beyond the bound; [`WireError::Malformed`] for bodies that
    /// do not parse. Both are fatal.
    pub fn next_msg(&mut self) -> Result<Option<WireMsg>, WireError> {
        let available = self.buf.len() - self.pos;
        if available < 4 {
            return Ok(None);
        }
        let declared =
            u32::from_be_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap()) as usize;
        if declared == 0 || declared > self.max_frame {
            return Err(WireError::Oversized {
                declared,
                max: self.max_frame,
            });
        }
        if available < 4 + declared {
            return Ok(None);
        }
        let body = &self.buf[self.pos + 4..self.pos + 4 + declared];
        let msg = decode_body(body)?;
        self.pos += 4 + declared;
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<WireMsg> {
        vec![
            WireMsg::Hello {
                proto: WIRE_SCHEMA.to_owned(),
            },
            WireMsg::HelloOk {
                proto: WIRE_SCHEMA.to_owned(),
            },
            WireMsg::Open {
                config_json: "{\"fps\":25.0}".to_owned(),
            },
            WireMsg::Opened { session: 3 },
            WireMsg::Rejected {
                reason: "at capacity".to_owned(),
            },
            WireMsg::Frame {
                session: 1,
                width: 2,
                height: 2,
                rgb: vec![9; 12],
            },
            WireMsg::FrameAck {
                session: 1,
                ordinal: 17,
                status: AckStatus::Overloaded,
                depth: 16,
            },
            WireMsg::Flush { session: 1 },
            WireMsg::Retire { session: 1 },
            WireMsg::Event {
                session: 1,
                line: "{\"seq\":0}".to_owned(),
            },
            WireMsg::Analysis {
                session: 1,
                summary_json: "{}".to_owned(),
                trace_jsonl: "".to_owned(),
            },
            WireMsg::Failed {
                session: 1,
                error: "tracking lost".to_owned(),
            },
            WireMsg::Error {
                code: codes::MALFORMED,
                message: "bad tag".to_owned(),
            },
            WireMsg::Drain,
            WireMsg::Draining { in_flight: 2 },
            WireMsg::Bye,
            WireMsg::OpenClip {
                config_json: "{\"fps\":25.0}".to_owned(),
                ppm: b"P6\n2 1\n255\n\x00\x01\x02\x03\x04\x05".to_vec(),
            },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in samples() {
            let bytes = encode_to_vec(&msg);
            let mut d = Decoder::new(DEFAULT_MAX_FRAME);
            d.push(&bytes);
            assert_eq!(d.next_msg().unwrap(), Some(msg.clone()), "{}", msg.name());
            assert_eq!(d.next_msg().unwrap(), None, "{} left residue", msg.name());
            assert_eq!(d.buffered(), 0);
        }
    }

    #[test]
    fn byte_at_a_time_decoding_matches() {
        let mut stream = Vec::new();
        for msg in samples() {
            encode(&msg, &mut stream);
        }
        let mut d = Decoder::new(DEFAULT_MAX_FRAME);
        let mut decoded = Vec::new();
        for &b in &stream {
            d.push(&[b]);
            while let Some(msg) = d.next_msg().unwrap() {
                decoded.push(msg);
            }
        }
        assert_eq!(decoded, samples());
    }

    #[test]
    fn oversized_is_rejected_at_the_prefix() {
        let mut d = Decoder::new(64);
        // Declare 65 bytes; send only the prefix — the error fires
        // before any payload exists to buffer.
        d.push(&65u32.to_be_bytes());
        assert_eq!(
            d.next_msg(),
            Err(WireError::Oversized {
                declared: 65,
                max: 64
            })
        );
        // Zero-length frames are equally framing-fatal.
        let mut d = Decoder::new(64);
        d.push(&0u32.to_be_bytes());
        assert!(matches!(d.next_msg(), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn malformed_bodies_are_typed_errors() {
        // Unknown tag.
        assert!(matches!(
            decode_body(&[0x7F]),
            Err(WireError::Malformed { .. })
        ));
        // Fields ending early.
        assert!(matches!(
            decode_body(&[0x04, 0, 0]),
            Err(WireError::Malformed { .. })
        ));
        // Trailing bytes.
        let mut bytes = encode_to_vec(&WireMsg::Bye);
        bytes[3] += 1; // declare one extra body byte
        bytes.push(0xAA);
        let mut d = Decoder::new(DEFAULT_MAX_FRAME);
        d.push(&bytes);
        assert!(matches!(d.next_msg(), Err(WireError::Malformed { .. })));
        // String length lying past the body.
        let mut body = vec![0x01];
        body.extend_from_slice(&100u32.to_be_bytes());
        body.extend_from_slice(b"short");
        assert!(matches!(
            decode_body(&body),
            Err(WireError::Malformed { .. })
        ));
        // Frame dimension overflow is caught, not multiplied.
        let mut body = vec![0x06];
        body.extend_from_slice(&0u64.to_be_bytes());
        body.extend_from_slice(&u32::MAX.to_be_bytes());
        body.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = decode_body(&body).unwrap_err();
        assert!(err.to_string().contains("overflow"), "{err}");
    }

    #[test]
    fn decoder_buffer_stays_bounded_across_messages() {
        let msg = WireMsg::Frame {
            session: 0,
            width: 8,
            height: 8,
            rgb: vec![1; 192],
        };
        let bytes = encode_to_vec(&msg);
        let mut d = Decoder::new(DEFAULT_MAX_FRAME);
        for _ in 0..1000 {
            d.push(&bytes);
            assert!(d.next_msg().unwrap().is_some());
        }
        assert_eq!(d.buffered(), 0);
        // The retained allocation is proportional to one frame, not to
        // the 1000 messages that flowed through.
        assert!(d.buf.capacity() < 16 * bytes.len());
    }
}
