//! Property-based tests for the kinematics crate: the angle algebra of
//! Figure 5, chromosome round trips, forward-kinematics invariants and
//! synthesiser guarantees.

use proptest::prelude::*;
use slj_motion::model::{ALL_STICKS, GENE_COUNT};
use slj_motion::synth::perturb_pose;
use slj_motion::{synthesize_jump, Angle, BodyDims, JumpConfig, JumpFlaw, Pose, PoseSeq};

fn angle_strategy() -> impl Strategy<Value = Angle> {
    (-720.0f64..720.0).prop_map(Angle::from_degrees)
}

fn pose_strategy() -> impl Strategy<Value = Pose> {
    (
        -2.0f64..3.0,
        0.1f64..2.0,
        proptest::collection::vec(-720.0f64..720.0, 8),
    )
        .prop_map(|(x, y, angles)| {
            let mut genes = [0.0; GENE_COUNT];
            genes[0] = x;
            genes[1] = y;
            genes[2..].copy_from_slice(&angles);
            Pose::from_genes(&genes).unwrap()
        })
}

proptest! {
    // ---------- angles ----------

    #[test]
    fn angle_is_normalised(a in angle_strategy()) {
        prop_assert!((0.0..360.0).contains(&a.degrees()));
    }

    #[test]
    fn wrapped_diff_is_antisymmetric_and_bounded(a in angle_strategy(), b in angle_strategy()) {
        let d = a.wrapped_diff(b);
        prop_assert!((-180.0..=180.0).contains(&d));
        // Antisymmetric up to the +180 boundary case.
        if d.abs() < 180.0 - 1e-9 {
            prop_assert!((b.wrapped_diff(a) + d).abs() < 1e-9);
        }
        // Adding the difference back recovers a.
        prop_assert!((b + d).distance(a) < 1e-9);
    }

    #[test]
    fn angle_distance_is_a_metric(a in angle_strategy(), b in angle_strategy(), c in angle_strategy()) {
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
        prop_assert!(a.distance(a) < 1e-12);
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        prop_assert!(a.distance(b) <= 180.0 + 1e-9);
    }

    #[test]
    fn lerp_stays_within_arc(a in angle_strategy(), b in angle_strategy(), t in 0.0f64..1.0) {
        let m = a.lerp(b, t);
        let arc = a.distance(b);
        prop_assert!(a.distance(m) <= arc + 1e-9);
        prop_assert!(b.distance(m) <= arc + 1e-9);
    }

    #[test]
    fn direction_is_unit_and_invertible(a in angle_strategy()) {
        let (x, y) = a.direction();
        prop_assert!((x * x + y * y - 1.0).abs() < 1e-12);
        // atan2 recovers the angle (degrees from +y axis, clockwise
        // toward +x).
        let back = Angle::from_radians(x.atan2(y));
        prop_assert!(back.distance(a) < 1e-9);
    }

    // ---------- poses ----------

    #[test]
    fn gene_roundtrip(p in pose_strategy()) {
        let back = Pose::from_genes(&p.to_genes()).unwrap();
        prop_assert!(back.center.distance(p.center) < 1e-12);
        for s in ALL_STICKS {
            prop_assert!(back.angle(s).distance(p.angle(s)) < 1e-9);
        }
    }

    #[test]
    fn forward_kinematics_respects_lengths_and_topology(p in pose_strategy()) {
        let dims = BodyDims::default();
        let segs = p.segments(&dims);
        for (stick, seg) in segs.iter() {
            prop_assert!((seg.length() - dims.length(stick)).abs() < 1e-9, "stick {stick}");
            if let Some(parent) = stick.parent() {
                let parent_seg = segs.segment(parent);
                // Children anchor at the parent's distal end, except the
                // three sticks that share the trunk's endpoints.
                let anchor = match stick {
                    slj_motion::StickKind::Thigh => parent_seg.a,
                    slj_motion::StickKind::Neck | slj_motion::StickKind::UpperArm => parent_seg.b,
                    _ => parent_seg.b,
                };
                prop_assert!(seg.a.distance(anchor) < 1e-9, "stick {stick}");
            }
        }
        // Bounds contain the centre.
        let (x0, y0, x1, y1) = segs.bounds();
        prop_assert!(p.center.x >= x0 - 1e-9 && p.center.x <= x1 + 1e-9);
        prop_assert!(p.center.y >= y0 - 1e-9 && p.center.y <= y1 + 1e-9);
    }

    #[test]
    fn pose_error_is_symmetric_and_zero_on_self(p in pose_strategy(), q in pose_strategy()) {
        let pq = p.error_against(&q);
        let qp = q.error_against(&p);
        prop_assert!((pq.center_distance - qp.center_distance).abs() < 1e-12);
        prop_assert!((pq.mean_angle_error() - qp.mean_angle_error()).abs() < 1e-9);
        let self_err = p.error_against(&p);
        prop_assert_eq!(self_err.center_distance, 0.0);
        prop_assert_eq!(self_err.max_angle_error(), 0.0);
    }

    #[test]
    fn perturbation_is_bounded(p in pose_strategy(), seed in any::<u64>(), ca in 0.0f64..0.2, aa in 0.0f64..30.0) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let q = perturb_pose(&p, ca, aa, &mut rng);
        let e = q.error_against(&p);
        prop_assert!(e.center_distance <= ca * std::f64::consts::SQRT_2 + 1e-9);
        prop_assert!(e.max_angle_error() <= aa + 1e-9);
    }

    // ---------- sequences ----------

    #[test]
    fn stage_windows_partition_frames(n in 2usize..40) {
        let dims = BodyDims::default();
        let seq = PoseSeq::new(vec![Pose::standing(&dims); n], 10.0);
        let a = seq.stage_range(slj_motion::seq::Stage::Initiation);
        let b = seq.stage_range(slj_motion::seq::Stage::AirLanding);
        prop_assert_eq!(a.end, b.start);
        prop_assert_eq!(a.start, 0);
        prop_assert_eq!(b.end, n);
    }

    #[test]
    fn median_smoothing_preserves_length_and_is_bounded(n in 3usize..25, w in 0usize..3) {
        let window = 2 * w + 1;
        let cfg = JumpConfig { frames: n.max(2), ..JumpConfig::default() };
        let seq = synthesize_jump(&cfg);
        let smoothed = seq.median_smoothed(window);
        prop_assert_eq!(smoothed.len(), seq.len());
        // The smoothed angle at k is one of the window's values offset —
        // it never exceeds the window's extremes.
        for (k, p) in smoothed.poses().iter().enumerate() {
            let lo = k.saturating_sub(window / 2);
            let hi = (k + window / 2 + 1).min(seq.len());
            for s in ALL_STICKS {
                let max_dev = seq.poses()[lo..hi]
                    .iter()
                    .map(|q| q.angle(s).distance(p.angle(s)))
                    .fold(f64::INFINITY, f64::min);
                prop_assert!(max_dev < 1e-6, "frame {k} stick {s} drifted");
            }
        }
    }

    // ---------- synthesiser ----------

    #[test]
    fn synthesis_invariants_for_any_flaw_set(bits in 0u8..128) {
        let flaws: Vec<JumpFlaw> = JumpFlaw::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| bits & (1 << i) != 0)
            .map(|(_, f)| *f)
            .collect();
        let cfg = JumpConfig { flaws, ..JumpConfig::default() };
        let seq = synthesize_jump(&cfg);
        prop_assert_eq!(seq.len(), cfg.frames);
        // Feet never below ground; jumper always travels forward.
        for p in seq.poses() {
            prop_assert!(p.segments(&cfg.dims).lowest_y() > -1e-9);
        }
        prop_assert!(seq.forward_travel() > 0.3);
        // Deterministic.
        prop_assert_eq!(synthesize_jump(&cfg), seq);
    }
}
