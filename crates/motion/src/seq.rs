//! Pose sequences and the paper's scoring windows.
//!
//! The paper's Section 4 evaluates its rules over two frame windows of a
//! ~20-frame clip: the **initiation stage** (frames 1–10) and the
//! **on-the-air/landing stage** (frames 11–20). [`PoseSeq`] generalises
//! that to any length by splitting at the midpoint, and provides the
//! min/max aggregation the rules need.

use crate::error::MotionError;
use crate::pose::Pose;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A time-ordered sequence of poses (one per video frame).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoseSeq {
    poses: Vec<Pose>,
    fps: f64,
}

/// The two stages of the paper's Table 1/2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Frames 1–10 in the paper's 20-frame clips: crouch and arm swing.
    Initiation,
    /// Frames 11–20: flight and landing.
    AirLanding,
}

impl Stage {
    /// Both stages in order.
    pub const ALL: [Stage; 2] = [Stage::Initiation, Stage::AirLanding];

    /// Human-readable name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Initiation => "Initiation Stage",
            Stage::AirLanding => "On the Air/Landing",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl PoseSeq {
    /// Creates a sequence from poses and a frame rate.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not finite and positive.
    pub fn new(poses: Vec<Pose>, fps: f64) -> Self {
        assert!(
            fps.is_finite() && fps > 0.0,
            "fps must be positive, got {fps}"
        );
        PoseSeq { poses, fps }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.poses.len()
    }

    /// Whether the sequence has no frames.
    pub fn is_empty(&self) -> bool {
        self.poses.is_empty()
    }

    /// Frame rate in frames per second.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// All poses in frame order.
    pub fn poses(&self) -> &[Pose] {
        &self.poses
    }

    /// The pose at a frame index, if present.
    pub fn get(&self, frame: usize) -> Option<&Pose> {
        self.poses.get(frame)
    }

    /// Appends a pose.
    pub fn push(&mut self, pose: Pose) {
        self.poses.push(pose);
    }

    /// The frame range of a stage: the paper's frames 1–10 map to the
    /// first half (`0..len/2` zero-based), frames 11–20 to the second
    /// half. For odd lengths the extra frame goes to the second stage,
    /// which is the longer phase of a real jump.
    pub fn stage_range(&self, stage: Stage) -> std::ops::Range<usize> {
        let split = self.len() / 2;
        match stage {
            Stage::Initiation => 0..split,
            Stage::AirLanding => split..self.len(),
        }
    }

    /// The poses of one stage.
    pub fn stage_poses(&self, stage: Stage) -> &[Pose] {
        &self.poses[self.stage_range(stage)]
    }

    /// Maximum of `f` over the poses of a stage — the aggregation the
    /// paper prescribes ("the maximum of all the angle differences is
    /// then used").
    ///
    /// # Errors
    ///
    /// Returns [`MotionError::SequenceTooShort`] when the stage window is
    /// empty.
    pub fn stage_max<F: Fn(&Pose) -> f64>(&self, stage: Stage, f: F) -> Result<f64, MotionError> {
        let poses = self.stage_poses(stage);
        if poses.is_empty() {
            return Err(MotionError::SequenceTooShort {
                got: self.len(),
                need: 2,
            });
        }
        Ok(poses.iter().map(f).fold(f64::NEG_INFINITY, f64::max))
    }

    /// Minimum of `f` over the poses of a stage (used by rules phrased as
    /// "angle drops below a threshold", e.g. R7).
    ///
    /// # Errors
    ///
    /// Returns [`MotionError::SequenceTooShort`] when the stage window is
    /// empty.
    pub fn stage_min<F: Fn(&Pose) -> f64>(&self, stage: Stage, f: F) -> Result<f64, MotionError> {
        let poses = self.stage_poses(stage);
        if poses.is_empty() {
            return Err(MotionError::SequenceTooShort {
                got: self.len(),
                need: 2,
            });
        }
        Ok(poses.iter().map(f).fold(f64::INFINITY, f64::min))
    }

    /// Temporal median filter: every angle channel and both centre
    /// coordinates are replaced by their median over a centred window of
    /// the given (odd) size. Angle medians are computed on shortest-arc
    /// offsets from the window's central frame, so wrap-around angles
    /// smooth correctly.
    ///
    /// Pose estimators produce occasional single-frame outliers; since
    /// the scoring rules aggregate window *extrema*, one outlier can
    /// flip a verdict — a small median filter removes exactly those.
    ///
    /// # Panics
    ///
    /// Panics if `window` is even or zero.
    pub fn median_smoothed(&self, window: usize) -> PoseSeq {
        assert!(window % 2 == 1, "median window must be odd, got {window}");
        if self.len() < 3 || window == 1 {
            return self.clone();
        }
        let half = window / 2;
        let median = |mut v: Vec<f64>| -> f64 {
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let poses: Vec<Pose> = (0..self.len())
            .map(|k| {
                let lo = k.saturating_sub(half);
                let hi = (k + half + 1).min(self.len());
                let win = &self.poses[lo..hi];
                let center_x = median(win.iter().map(|p| p.center.x).collect());
                let center_y = median(win.iter().map(|p| p.center.y).collect());
                let mut out = self.poses[k];
                out.center.x = center_x;
                out.center.y = center_y;
                for l in 0..out.angles.len() {
                    let reference = self.poses[k].angles[l];
                    let offset = median(
                        win.iter()
                            .map(|p| p.angles[l].wrapped_diff(reference))
                            .collect(),
                    );
                    out.angles[l] = reference + offset;
                }
                out
            })
            .collect();
        PoseSeq::new(poses, self.fps)
    }

    /// Horizontal displacement of the trunk centre from the first to the
    /// last frame — a proxy for the jump distance.
    pub fn forward_travel(&self) -> f64 {
        match (self.poses.first(), self.poses.last()) {
            (Some(a), Some(b)) => b.center.x - a.center.x,
            _ => 0.0,
        }
    }
}

impl FromIterator<Pose> for PoseSeq {
    /// Collects poses at the synthesiser's default 10 fps.
    fn from_iter<I: IntoIterator<Item = Pose>>(iter: I) -> Self {
        PoseSeq::new(iter.into_iter().collect(), 10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BodyDims, StickKind};
    use crate::Angle;
    use slj_imgproc::geometry::Vec2;

    fn seq_of(n: usize) -> PoseSeq {
        let d = BodyDims::default();
        let base = Pose::standing(&d);
        PoseSeq::new(
            (0..n)
                .map(|i| {
                    base.with_center(base.center + Vec2::new(i as f64 * 0.1, 0.0))
                        .with_angle(StickKind::Trunk, Angle::from_degrees(i as f64))
                })
                .collect(),
            10.0,
        )
    }

    #[test]
    fn stage_ranges_split_at_midpoint() {
        let s = seq_of(20);
        assert_eq!(s.stage_range(Stage::Initiation), 0..10);
        assert_eq!(s.stage_range(Stage::AirLanding), 10..20);
    }

    #[test]
    fn odd_length_extra_frame_goes_to_second_stage() {
        let s = seq_of(21);
        assert_eq!(s.stage_range(Stage::Initiation), 0..10);
        assert_eq!(s.stage_range(Stage::AirLanding), 10..21);
    }

    #[test]
    fn stage_max_and_min() {
        let s = seq_of(20);
        let max_init = s
            .stage_max(Stage::Initiation, |p| p.angle(StickKind::Trunk).degrees())
            .unwrap();
        assert_eq!(max_init, 9.0);
        let max_air = s
            .stage_max(Stage::AirLanding, |p| p.angle(StickKind::Trunk).degrees())
            .unwrap();
        assert_eq!(max_air, 19.0);
        let min_air = s
            .stage_min(Stage::AirLanding, |p| p.angle(StickKind::Trunk).degrees())
            .unwrap();
        assert_eq!(min_air, 10.0);
    }

    #[test]
    fn stage_aggregate_on_empty_window_errors() {
        let s = seq_of(1); // initiation window is 0..0
        assert!(s.stage_max(Stage::Initiation, |_| 0.0).is_err());
        assert!(s.stage_min(Stage::Initiation, |_| 0.0).is_err());
        // But the air/landing window has the single frame.
        assert!(s.stage_max(Stage::AirLanding, |_| 1.0).is_ok());
    }

    #[test]
    fn forward_travel() {
        let s = seq_of(11);
        assert!((s.forward_travel() - 1.0).abs() < 1e-9);
        assert_eq!(PoseSeq::new(vec![], 10.0).forward_travel(), 0.0);
    }

    #[test]
    fn push_and_get() {
        let d = BodyDims::default();
        let mut s = PoseSeq::new(vec![], 25.0);
        assert!(s.is_empty());
        s.push(Pose::standing(&d));
        assert_eq!(s.len(), 1);
        assert!(s.get(0).is_some());
        assert!(s.get(1).is_none());
        assert_eq!(s.fps(), 25.0);
    }

    #[test]
    fn from_iterator_collects() {
        let d = BodyDims::default();
        let s: PoseSeq = (0..5).map(|_| Pose::standing(&d)).collect();
        assert_eq!(s.len(), 5);
        assert_eq!(s.fps(), 10.0);
    }

    #[test]
    #[should_panic(expected = "fps")]
    fn zero_fps_rejected() {
        PoseSeq::new(vec![], 0.0);
    }

    #[test]
    fn median_smoothing_removes_single_outlier() {
        let d = BodyDims::default();
        let base = Pose::standing(&d);
        let mut poses: Vec<Pose> = (0..7).map(|_| base).collect();
        // One wild outlier in the middle.
        poses[3] = base.with_angle(StickKind::Trunk, Angle::from_degrees(120.0));
        let seq = PoseSeq::new(poses, 10.0);
        let smoothed = seq.median_smoothed(3);
        let trunk = smoothed.poses()[3].angle(StickKind::Trunk);
        assert!(
            trunk.distance(base.angle(StickKind::Trunk)) < 1.0,
            "outlier survived: {trunk}"
        );
        // Non-outlier frames are untouched.
        assert!(
            smoothed.poses()[1]
                .angle(StickKind::Trunk)
                .distance(base.angle(StickKind::Trunk))
                < 1e-9
        );
    }

    #[test]
    fn median_smoothing_handles_wraparound() {
        let d = BodyDims::default();
        let base = Pose::standing(&d);
        // Angles hovering around 0/360.
        let degs = [358.0, 359.0, 2.0, 1.0, 357.0];
        let poses: Vec<Pose> = degs
            .iter()
            .map(|&a| base.with_angle(StickKind::Trunk, Angle::from_degrees(a)))
            .collect();
        let smoothed = PoseSeq::new(poses, 10.0).median_smoothed(5);
        for p in smoothed.poses() {
            let lean = p.angle(StickKind::Trunk).distance(Angle::UP);
            assert!(lean < 4.0, "wraparound mangled: lean {lean}");
        }
    }

    #[test]
    fn median_window_one_is_identity() {
        let s = seq_of(5);
        assert_eq!(s.median_smoothed(1), s);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn median_even_window_panics() {
        seq_of(5).median_smoothed(2);
    }

    #[test]
    fn stage_names_match_paper() {
        assert_eq!(Stage::Initiation.name(), "Initiation Stage");
        assert_eq!(Stage::AirLanding.name(), "On the Air/Landing");
        assert_eq!(Stage::ALL.len(), 2);
    }
}
