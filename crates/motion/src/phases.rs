//! Jump-phase classification from poses.
//!
//! The paper hard-codes its two scoring windows as the first and second
//! halves of the clip. With tracked poses the phases can instead be
//! *detected* — standing, crouch, takeoff, flight, landing, recovery —
//! which makes analyses robust to clips that are not neatly centred on
//! the takeoff. The classifier is rule-based on three pose features:
//! ground clearance (flight), knee bend (crouch/landing) and temporal
//! position relative to the flight interval.

use crate::model::{BodyDims, StickKind};
use crate::pose::Pose;
use crate::seq::PoseSeq;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The phases of a standing long jump.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JumpPhase {
    /// Upright, knees near-straight, before the jump.
    Standing,
    /// Knees bending, before takeoff.
    Crouch,
    /// The last ground-contact frame before flight.
    Takeoff,
    /// Airborne.
    Flight,
    /// First ground contact after flight, knees absorbing.
    Landing,
    /// Back in balance after the landing.
    Recovery,
}

impl JumpPhase {
    /// All phases in temporal order.
    pub const ALL: [JumpPhase; 6] = [
        JumpPhase::Standing,
        JumpPhase::Crouch,
        JumpPhase::Takeoff,
        JumpPhase::Flight,
        JumpPhase::Landing,
        JumpPhase::Recovery,
    ];
}

impl fmt::Display for JumpPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Knee bend of a pose: the signed shank−thigh angle gap, degrees.
pub fn knee_bend(pose: &Pose) -> f64 {
    pose.angle(StickKind::Shank)
        .wrapped_diff(pose.angle(StickKind::Thigh))
}

/// Classifies every frame of a sequence.
///
/// Returns one phase per frame. Sequences without a detectable flight
/// interval are classified as standing/crouch only.
pub fn classify_phases(seq: &PoseSeq, dims: &BodyDims) -> Vec<JumpPhase> {
    let n = seq.len();
    if n == 0 {
        return Vec::new();
    }
    let clearances: Vec<f64> = seq
        .poses()
        .iter()
        .map(|p| p.segments(dims).lowest_y())
        .collect();
    let min_c = clearances.iter().copied().fold(f64::INFINITY, f64::min);
    let max_c = clearances.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max_c - min_c).max(1e-9);
    let flight_threshold = min_c + (0.25 * span).max(2.0 * dims.thickness(StickKind::Foot));

    // Longest airborne run = the flight.
    let airborne: Vec<bool> = clearances.iter().map(|&c| c > flight_threshold).collect();
    let mut best: Option<(usize, usize)> = None;
    let mut start = None;
    for (k, &a) in airborne.iter().enumerate() {
        match (a, start) {
            (true, None) => start = Some(k),
            (false, Some(s)) => {
                if best.is_none_or(|(bs, be)| k - s > be - bs) {
                    best = Some((s, k));
                }
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        if best.is_none_or(|(bs, be)| n - s > be - bs) {
            best = Some((s, n));
        }
    }

    const CROUCH_BEND: f64 = 40.0;
    let mut phases = vec![JumpPhase::Standing; n];
    match best {
        None => {
            for (k, p) in seq.poses().iter().enumerate() {
                phases[k] = if knee_bend(p) > CROUCH_BEND {
                    JumpPhase::Crouch
                } else {
                    JumpPhase::Standing
                };
            }
        }
        Some((fs, fe)) => {
            for (k, phase) in phases.iter_mut().enumerate() {
                let p = &seq.poses()[k];
                *phase = if k < fs {
                    if k + 1 == fs {
                        JumpPhase::Takeoff
                    } else if knee_bend(p) > CROUCH_BEND {
                        JumpPhase::Crouch
                    } else {
                        JumpPhase::Standing
                    }
                } else if k < fe {
                    JumpPhase::Flight
                } else if knee_bend(p) > CROUCH_BEND {
                    JumpPhase::Landing
                } else {
                    JumpPhase::Recovery
                };
            }
        }
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize_jump, JumpConfig};

    #[test]
    fn default_jump_phases_are_temporally_ordered() {
        let cfg = JumpConfig::default();
        let seq = synthesize_jump(&cfg);
        let phases = classify_phases(&seq, &cfg.dims);
        assert_eq!(phases.len(), 20);
        // The order index of each phase must be non-decreasing, except
        // Landing->Recovery may alternate during wobble; allow the
        // canonical coarse ordering check on first occurrences.
        let first = |p: JumpPhase| phases.iter().position(|&x| x == p);
        let crouch = first(JumpPhase::Crouch).expect("has a crouch");
        let takeoff = first(JumpPhase::Takeoff).expect("has a takeoff");
        let flight = first(JumpPhase::Flight).expect("has a flight");
        assert!(crouch < takeoff && takeoff < flight);
        if let (Some(land), Some(rec)) = (first(JumpPhase::Landing), first(JumpPhase::Recovery)) {
            assert!(flight < land);
            assert!(land < rec);
        }
        // Flight is a contiguous block.
        let fs = first(JumpPhase::Flight).unwrap();
        let fe = phases
            .iter()
            .rposition(|&x| x == JumpPhase::Flight)
            .unwrap();
        assert!(phases[fs..=fe].iter().all(|&p| p == JumpPhase::Flight));
    }

    #[test]
    fn first_frame_is_standing_and_flight_covers_midair() {
        let cfg = JumpConfig::default();
        let seq = synthesize_jump(&cfg);
        let phases = classify_phases(&seq, &cfg.dims);
        assert_eq!(phases[0], JumpPhase::Standing);
        // The apex frame (max centre height) must be Flight.
        let apex = seq
            .poses()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.center.y.total_cmp(&b.1.center.y))
            .unwrap()
            .0;
        assert_eq!(phases[apex], JumpPhase::Flight, "apex frame {apex}");
    }

    #[test]
    fn standing_still_has_no_flight_phase() {
        let dims = BodyDims::default();
        let seq = PoseSeq::new(vec![crate::pose::Pose::standing(&dims); 8], 10.0);
        let phases = classify_phases(&seq, &dims);
        assert!(phases.iter().all(|&p| p == JumpPhase::Standing));
    }

    #[test]
    fn empty_sequence_yields_empty() {
        let dims = BodyDims::default();
        let seq = PoseSeq::new(vec![], 10.0);
        assert!(classify_phases(&seq, &dims).is_empty());
    }

    #[test]
    fn knee_bend_reads_the_gap() {
        let dims = BodyDims::default();
        let pose = crate::pose::Pose::standing(&dims)
            .with_angle(StickKind::Thigh, crate::Angle::from_degrees(130.0))
            .with_angle(StickKind::Shank, crate::Angle::from_degrees(235.0));
        assert!((knee_bend(&pose) - 105.0).abs() < 1e-9);
    }

    #[test]
    fn display_matches_debug() {
        assert_eq!(JumpPhase::Flight.to_string(), "Flight");
        assert_eq!(JumpPhase::ALL.len(), 6);
    }
}
