//! The paper's angle convention (Figure 5).
//!
//! Every stick Sₗ carries an angle ρₗ measured **from the vertical (+y)
//! axis toward the facing direction (+x)**, in degrees `[0, 360)`. A
//! value of 0° points straight up, 90° points forward (the jump
//! direction), 180° straight down, 270° backward.
//!
//! [`Angle`] is a newtype over `f64` degrees that normalises on
//! construction and provides the two difference notions the system needs:
//! the **raw** difference used verbatim by the scoring rules of Table 2
//! (`ρ6 − ρ3 > 60°` is a plain subtraction of normalised values in the
//! paper) and the **wrapped** signed difference used for pose-error
//! metrics and for GA mutation ranges.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// An angle in degrees, normalised to `[0, 360)`, measured from the
/// vertical axis per the paper's Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Angle(f64);

impl Angle {
    /// Straight up (the vertical reference axis).
    pub const UP: Angle = Angle(0.0);
    /// Horizontal, facing the jump direction.
    pub const FORWARD: Angle = Angle(90.0);
    /// Straight down.
    pub const DOWN: Angle = Angle(180.0);
    /// Horizontal, against the jump direction.
    pub const BACKWARD: Angle = Angle(270.0);

    /// Creates an angle from degrees, wrapping into `[0, 360)`.
    ///
    /// # Panics
    ///
    /// Panics if `deg` is not finite (a NaN angle would silently poison
    /// the GA's fitness ordering).
    pub fn from_degrees(deg: f64) -> Self {
        assert!(deg.is_finite(), "angle must be finite, got {deg}");
        Angle(deg.rem_euclid(360.0))
    }

    /// Creates an angle from radians.
    ///
    /// # Panics
    ///
    /// Panics if `rad` is not finite.
    pub fn from_radians(rad: f64) -> Self {
        Angle::from_degrees(rad.to_degrees())
    }

    /// The angle in degrees, `[0, 360)`.
    pub fn degrees(self) -> f64 {
        self.0
    }

    /// The angle in radians, `[0, 2π)`.
    pub fn radians(self) -> f64 {
        self.0.to_radians()
    }

    /// Unit direction vector `(sin ρ, cos ρ)` in y-up world coordinates.
    ///
    /// 0° ↦ (0, 1); 90° ↦ (1, 0); 180° ↦ (0, −1); 270° ↦ (−1, 0).
    pub fn direction(self) -> (f64, f64) {
        let r = self.radians();
        (r.sin(), r.cos())
    }

    /// Raw numeric difference `self − other` of the normalised values, in
    /// `(−360, 360)`. This is the subtraction the paper's Table 2 rules
    /// perform (e.g. `ρ6 − ρ3 > 60°`).
    pub fn raw_diff(self, other: Angle) -> f64 {
        self.0 - other.0
    }

    /// Signed shortest angular difference `self − other`, wrapped into
    /// `(−180, 180]`. Used for error metrics and mutation ranges.
    pub fn wrapped_diff(self, other: Angle) -> f64 {
        let mut d = (self.0 - other.0).rem_euclid(360.0);
        if d > 180.0 {
            d -= 360.0;
        }
        d
    }

    /// Absolute shortest angular distance to `other`, in `[0, 180]`.
    pub fn distance(self, other: Angle) -> f64 {
        self.wrapped_diff(other).abs()
    }

    /// Interpolates from `self` to `other` along the shortest arc.
    /// `t = 0` gives `self`, `t = 1` gives `other`.
    pub fn lerp(self, other: Angle, t: f64) -> Angle {
        Angle::from_degrees(self.0 + self.wrapped_diff_to(other) * t)
    }

    /// Signed shortest difference `other − self` in `(−180, 180]`.
    fn wrapped_diff_to(self, other: Angle) -> f64 {
        other.wrapped_diff(self)
    }
}

impl Add<f64> for Angle {
    type Output = Angle;
    /// Rotates by `deg` degrees (wrapping).
    fn add(self, deg: f64) -> Angle {
        Angle::from_degrees(self.0 + deg)
    }
}

impl Sub<f64> for Angle {
    type Output = Angle;
    /// Rotates by `−deg` degrees (wrapping).
    fn sub(self, deg: f64) -> Angle {
        Angle::from_degrees(self.0 - deg)
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}°", self.0)
    }
}

impl From<Angle> for f64 {
    fn from(a: Angle) -> f64 {
        a.degrees()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_wraps() {
        assert_eq!(Angle::from_degrees(370.0).degrees(), 10.0);
        assert_eq!(Angle::from_degrees(-30.0).degrees(), 330.0);
        assert_eq!(Angle::from_degrees(720.0).degrees(), 0.0);
        assert_eq!(Angle::from_degrees(359.999).degrees(), 359.999);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        Angle::from_degrees(f64::NAN);
    }

    #[test]
    fn radians_roundtrip() {
        let a = Angle::from_radians(std::f64::consts::FRAC_PI_2);
        assert!((a.degrees() - 90.0).abs() < 1e-12);
        assert!((Angle::from_degrees(45.0).radians() - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn cardinal_directions() {
        let close =
            |a: (f64, f64), b: (f64, f64)| (a.0 - b.0).abs() < 1e-12 && (a.1 - b.1).abs() < 1e-12;
        assert!(close(Angle::UP.direction(), (0.0, 1.0)));
        assert!(close(Angle::FORWARD.direction(), (1.0, 0.0)));
        assert!(close(Angle::DOWN.direction(), (0.0, -1.0)));
        assert!(close(Angle::BACKWARD.direction(), (-1.0, 0.0)));
    }

    #[test]
    fn direction_is_unit_length() {
        for d in [0.0, 17.0, 95.0, 213.0, 340.0] {
            let (x, y) = Angle::from_degrees(d).direction();
            assert!((x * x + y * y - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn raw_diff_is_plain_subtraction() {
        let shank = Angle::from_degrees(225.0);
        let thigh = Angle::from_degrees(135.0);
        assert_eq!(shank.raw_diff(thigh), 90.0); // knees bent by Table 2
                                                 // Raw diff can be negative and large — no wrapping.
        assert_eq!(thigh.raw_diff(shank), -90.0);
        assert_eq!(
            Angle::from_degrees(10.0).raw_diff(Angle::from_degrees(350.0)),
            -340.0
        );
    }

    #[test]
    fn wrapped_diff_takes_shortest_arc() {
        let a = Angle::from_degrees(10.0);
        let b = Angle::from_degrees(350.0);
        assert_eq!(a.wrapped_diff(b), 20.0);
        assert_eq!(b.wrapped_diff(a), -20.0);
        // Antipodal maps to +180 (half-open interval).
        assert_eq!(Angle::from_degrees(180.0).wrapped_diff(Angle::UP), 180.0);
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        for (x, y) in [(0.0, 359.0), (90.0, 270.0), (13.0, 13.0), (45.0, 200.0)] {
            let a = Angle::from_degrees(x);
            let b = Angle::from_degrees(y);
            assert_eq!(a.distance(b), b.distance(a));
            assert!(a.distance(b) <= 180.0);
        }
        assert_eq!(
            Angle::from_degrees(0.0).distance(Angle::from_degrees(359.0)),
            1.0
        );
    }

    #[test]
    fn lerp_shortest_arc_across_wraparound() {
        let a = Angle::from_degrees(350.0);
        let b = Angle::from_degrees(10.0);
        let mid = a.lerp(b, 0.5);
        assert!((mid.degrees() - 0.0).abs() < 1e-9, "got {mid}");
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0).degrees(), 10.0);
    }

    #[test]
    fn add_sub_rotate() {
        let a = Angle::from_degrees(350.0) + 20.0;
        assert_eq!(a.degrees(), 10.0);
        let b = Angle::from_degrees(10.0) - 20.0;
        assert_eq!(b.degrees(), 350.0);
    }

    #[test]
    fn display_and_into_f64() {
        let a = Angle::from_degrees(123.456);
        assert_eq!(a.to_string(), "123.5°");
        let d: f64 = a.into();
        assert!((d - 123.456).abs() < 1e-9);
    }
}
