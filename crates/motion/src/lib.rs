//! Stick-model kinematics and standing-long-jump motion synthesis.
//!
//! This crate owns the paper's articulated human model (Section 3,
//! Figures 4–5) and everything derived from it:
//!
//! * [`angle`] — the angle convention of Figure 5: degrees measured from
//!   the vertical (+y) axis, rotating toward the facing/jump direction.
//! * [`model`] — the eight sticks S0–S7, anthropometric lengths and
//!   thicknesses, and the paper's crossover gene groups.
//! * [`pose`] — a pose `(x0, y0, ρ0..ρ7)` (the GA chromosome), forward
//!   kinematics to stick segments, and pose-error metrics.
//! * [`seq`] — pose sequences and the paper's two scoring windows
//!   (initiation = frames 1–10, air/landing = frames 11–20).
//! * [`phases`] — rule-based jump-phase classification (standing,
//!   crouch, takeoff, flight, landing, recovery) from poses.
//! * [`synth`] — a keyframed synthesiser that produces biomechanically
//!   plausible standing-long-jump pose sequences, including deliberately
//!   flawed variants matching the paper's standards E1–E7. This is the
//!   ground-truth motor that replaces the paper's filmed jumper.
//!
//! # Coordinate and angle conventions
//!
//! World space is metres with **y up** and the jump travelling toward
//! **+x**. A stick's angle ρ is measured **from the +y axis toward +x**
//! (clockwise when x points right and y up), so a stick at ρ = 0° points
//! straight up, ρ = 90° points forward, ρ = 180° straight down and
//! ρ = 270° backward. The direction vector of a stick is
//! `(sin ρ, cos ρ)`. Image space (y down) is handled exclusively by
//! `slj-video`'s camera.
//!
//! # Example
//!
//! ```
//! use slj_motion::synth::{JumpConfig, synthesize_jump};
//!
//! let seq = synthesize_jump(&JumpConfig::default());
//! assert_eq!(seq.len(), 20);
//! // The jumper moves forward.
//! let dx = seq.poses().last().unwrap().center.x - seq.poses()[0].center.x;
//! assert!(dx > 0.5);
//! ```

pub mod angle;
pub mod error;
pub mod model;
pub mod phases;
pub mod pose;
pub mod seq;
pub mod synth;

pub use angle::Angle;
pub use error::MotionError;
pub use model::{BodyDims, StickKind, GENE_GROUPS, STICK_COUNT};
pub use phases::{classify_phases, JumpPhase};
pub use pose::{Pose, PoseError, StickSegments};
pub use seq::PoseSeq;
pub use synth::{synthesize_jump, JumpConfig, JumpFlaw};
