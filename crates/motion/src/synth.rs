//! Synthesis of standing-long-jump pose sequences.
//!
//! The paper analyses filmed jumps; this reproduction has no footage, so
//! the synthesiser is the ground-truth motor: it produces ~20-frame pose
//! sequences of a keyframed standing long jump whose joint angles follow
//! the phases physical-education texts describe (crouch with arm
//! back-swing → explosive extension → tucked flight → deep-kneed landing
//! with arms forward). A **good** jump satisfies every rule of the
//! paper's Table 2 by construction; each [`JumpFlaw`] edits the keyframes
//! so exactly the corresponding rule fails, which is what lets the
//! scoring experiments report a detection confusion matrix.
//!
//! Interpolation between keyframes is non-uniform Catmull-Rom (cubic
//! Hermite with finite-difference tangents) over *continuous* angle
//! channels — keyframes store unwrapped degrees so an arm swinging from
//! 295° back through 180° down to 60° forward interpolates smoothly
//! instead of taking the short way across 0°.

use crate::angle::Angle;
use crate::model::{BodyDims, StickKind, STICK_COUNT};
use crate::pose::Pose;
use crate::seq::PoseSeq;
use rand::Rng;
use serde::{Deserialize, Serialize};
use slj_imgproc::geometry::Point2;

/// A deliberate fault, each violating exactly one of the paper's
/// standards E1–E7 (Table 1) and hence one scoring rule R1–R7 (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JumpFlaw {
    /// E1/R1 — knees barely bend during initiation.
    ShallowCrouch,
    /// E2/R2 — neck stays upright during initiation.
    NoNeckBend,
    /// E3/R3 — arms never swing back during initiation.
    NoArmSwingBack,
    /// E4/R4 — arms stay straight (elbow locked) during initiation.
    StraightArms,
    /// E5/R5 — knees barely bend in flight and landing.
    StiffLanding,
    /// E6/R6 — trunk stays upright in flight and landing.
    UprightTrunk,
    /// E7/R7 — arms never come forward after landing.
    ArmsStayBack,
}

impl JumpFlaw {
    /// All seven flaws, ordered by standard number.
    pub const ALL: [JumpFlaw; 7] = [
        JumpFlaw::ShallowCrouch,
        JumpFlaw::NoNeckBend,
        JumpFlaw::NoArmSwingBack,
        JumpFlaw::StraightArms,
        JumpFlaw::StiffLanding,
        JumpFlaw::UprightTrunk,
        JumpFlaw::ArmsStayBack,
    ];

    /// The 1-based number of the standard/rule this flaw violates.
    pub fn rule_number(self) -> usize {
        match self {
            JumpFlaw::ShallowCrouch => 1,
            JumpFlaw::NoNeckBend => 2,
            JumpFlaw::NoArmSwingBack => 3,
            JumpFlaw::StraightArms => 4,
            JumpFlaw::StiffLanding => 5,
            JumpFlaw::UprightTrunk => 6,
            JumpFlaw::ArmsStayBack => 7,
        }
    }

    /// Stable kebab-case name (the CLI's spelling).
    pub fn name(self) -> &'static str {
        match self {
            JumpFlaw::ShallowCrouch => "shallow-crouch",
            JumpFlaw::NoNeckBend => "no-neck-bend",
            JumpFlaw::NoArmSwingBack => "no-arm-swing-back",
            JumpFlaw::StraightArms => "straight-arms",
            JumpFlaw::StiffLanding => "stiff-landing",
            JumpFlaw::UprightTrunk => "upright-trunk",
            JumpFlaw::ArmsStayBack => "arms-stay-back",
        }
    }
}

impl std::fmt::Display for JumpFlaw {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a [`JumpFlaw`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFlawError {
    /// The unrecognised input.
    pub input: String,
}

impl std::fmt::Display for ParseFlawError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown flaw '{}' (expected one of: {})",
            self.input,
            JumpFlaw::ALL
                .iter()
                .map(|fl| fl.name())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

impl std::error::Error for ParseFlawError {}

impl std::str::FromStr for JumpFlaw {
    type Err = ParseFlawError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        JumpFlaw::ALL
            .iter()
            .copied()
            .find(|f| f.name() == s)
            .ok_or_else(|| ParseFlawError {
                input: s.to_owned(),
            })
    }
}

/// Configuration of a synthetic jump.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JumpConfig {
    /// Number of frames (the paper's clips have "20 frames or so").
    pub frames: usize,
    /// Frame rate in frames per second.
    pub fps: f64,
    /// Athlete dimensions.
    pub dims: BodyDims,
    /// Horizontal distance covered by the trunk centre, metres.
    pub jump_distance: f64,
    /// World x of the trunk centre in the first frame, metres.
    pub start_x: f64,
    /// Faults to inject. Empty = textbook-good jump.
    pub flaws: Vec<JumpFlaw>,
}

impl Default for JumpConfig {
    fn default() -> Self {
        JumpConfig {
            frames: 20,
            fps: 10.0,
            dims: BodyDims::default(),
            jump_distance: 1.1,
            start_x: 0.35,
            flaws: Vec::new(),
        }
    }
}

impl JumpConfig {
    /// A good jump with one injected flaw.
    pub fn with_flaw(flaw: JumpFlaw) -> Self {
        JumpConfig {
            flaws: vec![flaw],
            ..JumpConfig::default()
        }
    }
}

/// One keyframe of the jump: normalised time, unwrapped stick angles in
/// degrees (paper order ρ0..ρ7), horizontal progress as a fraction of the
/// jump distance, and trunk-centre height as a multiple of the standing
/// centre height.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Keyframe {
    t: f64,
    angles: [f64; STICK_COUNT],
    x_frac: f64,
    y_scale: f64,
}

/// Index of each phase in the keyframe array (kept in sync with
/// `good_jump_keyframes`).
const KF_STAND: usize = 0;
const KF_CROUCH: usize = 1;
const KF_TAKEOFF: usize = 2;
const KF_FLIGHT: usize = 3;
const KF_PREP: usize = 4;
const KF_TOUCHDOWN: usize = 5;
const KF_RECOVERY: usize = 6;

/// The textbook-good jump. Angles follow the crate's convention
/// (degrees clockwise from vertical toward the jump direction) but are
/// kept *continuous* across keyframes for smooth interpolation.
fn good_jump_keyframes() -> Vec<Keyframe> {
    vec![
        // Standing at attention.
        Keyframe {
            t: 0.0,
            angles: [5.0, 8.0, 182.0, 180.0, 6.0, 182.0, 180.0, 95.0],
            x_frac: 0.0,
            y_scale: 1.0,
        },
        // Deep crouch, neck bent, arms swung back and bent.
        Keyframe {
            t: 0.30,
            angles: [45.0, 48.0, 295.0, 130.0, 40.0, 228.0, 235.0, 95.0],
            x_frac: 0.03,
            y_scale: 0.80,
        },
        // Takeoff: full extension along the ~45° line, arms swinging
        // down-forward (295° -> 60° runs through 180°).
        Keyframe {
            t: 0.50,
            angles: [42.0, 25.0, 60.0, 200.0, 20.0, 55.0, 205.0, 160.0],
            x_frac: 0.14,
            y_scale: 1.04,
        },
        // Mid-flight tuck at the top of the arc.
        Keyframe {
            t: 0.68,
            angles: [62.0, 30.0, 80.0, 115.0, 25.0, 95.0, 215.0, 105.0],
            x_frac: 0.48,
            y_scale: 1.22,
        },
        // Landing preparation: legs reach forward.
        Keyframe {
            t: 0.82,
            angles: [50.0, 25.0, 110.0, 112.0, 20.0, 120.0, 150.0, 80.0],
            x_frac: 0.80,
            y_scale: 1.02,
        },
        // Touchdown: deep knee bend, trunk forward, arms coming forward.
        Keyframe {
            t: 0.90,
            angles: [55.0, 30.0, 130.0, 125.0, 25.0, 140.0, 222.0, 95.0],
            x_frac: 0.93,
            y_scale: 0.78,
        },
        // Recovery to balance, arms forward.
        Keyframe {
            t: 1.0,
            angles: [22.0, 15.0, 148.0, 168.0, 12.0, 150.0, 190.0, 95.0],
            x_frac: 1.0,
            y_scale: 0.95,
        },
    ]
}

/// Applies one flaw's keyframe edits.
fn apply_flaw(kfs: &mut [Keyframe], flaw: JumpFlaw) {
    match flaw {
        JumpFlaw::ShallowCrouch => {
            // Knees nearly straight in the crouch: shank-thigh gap stays
            // well under R1's 60°.
            kfs[KF_CROUCH].angles[3] = 170.0; // thigh
            kfs[KF_CROUCH].angles[6] = 188.0; // shank
            kfs[KF_CROUCH].y_scale = 0.96;
            // The takeoff extension keeps the legs near-straight too.
            kfs[KF_TAKEOFF].angles[3] = 185.0;
            kfs[KF_TAKEOFF].angles[6] = 195.0;
        }
        JumpFlaw::NoNeckBend => {
            // Neck (and head) stay upright through initiation.
            for i in [KF_STAND, KF_CROUCH, KF_TAKEOFF] {
                kfs[i].angles[1] = kfs[i].angles[1].min(12.0);
                kfs[i].angles[4] = kfs[i].angles[4].min(10.0);
            }
        }
        JumpFlaw::NoArmSwingBack => {
            // Arms never pass behind the body: keep ρ2 well below R3's
            // 270° during initiation; the forward swing then starts from
            // hanging-down instead of from behind.
            kfs[KF_STAND].angles[2] = 182.0;
            kfs[KF_STAND].angles[5] = 182.0;
            kfs[KF_CROUCH].angles[2] = 200.0;
            kfs[KF_CROUCH].angles[5] = 150.0; // still bends (R4 ok)
            kfs[KF_TAKEOFF].angles[2] = 75.0;
            kfs[KF_TAKEOFF].angles[5] = 70.0;
        }
        JumpFlaw::StraightArms => {
            // Elbow locked: forearm tracks the upper arm through the
            // whole motion (R4's ρ2 − ρ5 never exceeds 45°).
            for kf in kfs.iter_mut() {
                kf.angles[5] = kf.angles[2] + 3.0;
            }
        }
        JumpFlaw::StiffLanding => {
            // Legs near-straight through flight and landing.
            kfs[KF_FLIGHT].angles[3] = 150.0;
            kfs[KF_FLIGHT].angles[6] = 185.0;
            kfs[KF_PREP].angles[3] = 145.0;
            kfs[KF_PREP].angles[6] = 170.0;
            kfs[KF_TOUCHDOWN].angles[3] = 160.0;
            kfs[KF_TOUCHDOWN].angles[6] = 195.0;
            kfs[KF_TOUCHDOWN].y_scale = 0.95;
            kfs[KF_RECOVERY].angles[3] = 172.0;
            kfs[KF_RECOVERY].angles[6] = 185.0;
        }
        JumpFlaw::UprightTrunk => {
            // Trunk never leans past R6's 45° in flight or landing; the
            // takeoff frame sits on the stage boundary, so cap it too.
            kfs[KF_TAKEOFF].angles[0] = kfs[KF_TAKEOFF].angles[0].min(32.0);
            for i in [KF_FLIGHT, KF_PREP, KF_TOUCHDOWN, KF_RECOVERY] {
                kfs[i].angles[0] = kfs[i].angles[0].min(28.0);
            }
        }
        JumpFlaw::ArmsStayBack => {
            // Arms hang down/back from takeoff on: ρ2 never drops below
            // R7's 160° in the air/landing window (with a wide margin,
            // so even noisy estimates read the fault).
            kfs[KF_TAKEOFF].angles[2] = 215.0;
            kfs[KF_TAKEOFF].angles[5] = 220.0;
            kfs[KF_FLIGHT].angles[2] = 205.0;
            kfs[KF_FLIGHT].angles[5] = 210.0;
            kfs[KF_PREP].angles[2] = 200.0;
            kfs[KF_PREP].angles[5] = 205.0;
            kfs[KF_TOUCHDOWN].angles[2] = 210.0;
            kfs[KF_TOUCHDOWN].angles[5] = 215.0;
            kfs[KF_RECOVERY].angles[2] = 200.0;
            kfs[KF_RECOVERY].angles[5] = 204.0;
        }
    }
}

/// Non-uniform Catmull-Rom interpolation of a scalar channel sampled at
/// strictly increasing times `ts`. Clamped outside the keyframe span.
fn interp_channel(ts: &[f64], vs: &[f64], t: f64) -> f64 {
    debug_assert_eq!(ts.len(), vs.len());
    debug_assert!(ts.len() >= 2);
    if t <= ts[0] {
        return vs[0];
    }
    if t >= ts[ts.len() - 1] {
        return vs[vs.len() - 1];
    }
    // Find the segment [i, i+1] containing t.
    let mut i = 0;
    while ts[i + 1] < t {
        i += 1;
    }
    let (t0, t1) = (ts[i], ts[i + 1]);
    let (v0, v1) = (vs[i], vs[i + 1]);
    let h = t1 - t0;
    let u = (t - t0) / h;

    // Finite-difference tangents (one-sided at the ends).
    let m0 = if i == 0 {
        (v1 - v0) / h
    } else {
        (v1 - vs[i - 1]) / (t1 - ts[i - 1])
    };
    let m1 = if i + 2 >= ts.len() {
        (v1 - v0) / h
    } else {
        (vs[i + 2] - v0) / (ts[i + 2] - t0)
    };

    let u2 = u * u;
    let u3 = u2 * u;
    let h00 = 2.0 * u3 - 3.0 * u2 + 1.0;
    let h10 = u3 - 2.0 * u2 + u;
    let h01 = -2.0 * u3 + 3.0 * u2;
    let h11 = u3 - u2;
    h00 * v0 + h10 * m0 * h + h01 * v1 + h11 * m1 * h
}

/// Synthesises a standing-long-jump pose sequence.
///
/// The returned sequence has `config.frames` poses at `config.fps`. The
/// first pose is the standing phase (this is what the paper's "trained
/// person" would annotate); feet never sink below the ground plane
/// `y = 0`.
///
/// # Panics
///
/// Panics if `config.frames < 2`.
pub fn synthesize_jump(config: &JumpConfig) -> PoseSeq {
    assert!(config.frames >= 2, "a jump needs at least 2 frames");
    let mut kfs = good_jump_keyframes();
    for &flaw in &config.flaws {
        apply_flaw(&mut kfs, flaw);
    }

    let ts: Vec<f64> = kfs.iter().map(|k| k.t).collect();
    let standing_center_y = {
        let d = &config.dims;
        d.standing_hip_height() + d.length(StickKind::Trunk) / 2.0
    };

    let mut poses = Vec::with_capacity(config.frames);
    for frame in 0..config.frames {
        let t = frame as f64 / (config.frames - 1) as f64;

        let mut angles = [Angle::UP; STICK_COUNT];
        for (l, a) in angles.iter_mut().enumerate() {
            let channel: Vec<f64> = kfs.iter().map(|k| k.angles[l]).collect();
            *a = Angle::from_degrees(interp_channel(&ts, &channel, t));
        }
        let x_frac = {
            let channel: Vec<f64> = kfs.iter().map(|k| k.x_frac).collect();
            interp_channel(&ts, &channel, t)
        };
        let y_scale = {
            let channel: Vec<f64> = kfs.iter().map(|k| k.y_scale).collect();
            interp_channel(&ts, &channel, t)
        };

        let center = Point2::new(
            config.start_x + x_frac * config.jump_distance,
            (y_scale * standing_center_y).max(0.1),
        );
        let mut pose = Pose::new(center, angles);

        // Keep the feet out of the ground: raise the centre if any joint
        // dips below y = 0.
        let low = pose.segments(&config.dims).lowest_y();
        let margin = config.dims.thickness(StickKind::Foot);
        if low < margin {
            pose.center.y += margin - low;
        }
        poses.push(pose);
    }
    PoseSeq::new(poses, config.fps)
}

/// Randomly perturbs a pose: centre by up to `center_amp` metres per
/// axis, every angle by up to `angle_amp` degrees (both uniform).
///
/// Models the sloppiness of the hand-drawn first-frame stick figure the
/// paper requires, and seeds GA robustness tests.
pub fn perturb_pose<R: Rng>(pose: &Pose, center_amp: f64, angle_amp: f64, rng: &mut R) -> Pose {
    let mut out = *pose;
    out.center.x += rng.gen_range(-center_amp..=center_amp);
    out.center.y += rng.gen_range(-center_amp..=center_amp);
    for a in out.angles.iter_mut() {
        *a = *a + rng.gen_range(-angle_amp..=angle_amp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::Stage;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn good() -> PoseSeq {
        synthesize_jump(&JumpConfig::default())
    }

    fn flawed(flaw: JumpFlaw) -> PoseSeq {
        synthesize_jump(&JumpConfig::with_flaw(flaw))
    }

    // The rule expressions of Table 2, evaluated on true poses.
    fn r1_crouch_depth(seq: &PoseSeq, stage: Stage) -> f64 {
        seq.stage_max(stage, |p| {
            p.angle(StickKind::Shank)
                .raw_diff(p.angle(StickKind::Thigh))
        })
        .unwrap()
    }

    #[test]
    fn produces_requested_frame_count() {
        let seq = good();
        assert_eq!(seq.len(), 20);
        let cfg = JumpConfig {
            frames: 31,
            ..JumpConfig::default()
        };
        assert_eq!(synthesize_jump(&cfg).len(), 31);
    }

    #[test]
    #[should_panic(expected = "at least 2 frames")]
    fn one_frame_rejected() {
        synthesize_jump(&JumpConfig {
            frames: 1,
            ..JumpConfig::default()
        });
    }

    #[test]
    fn jump_travels_forward_by_roughly_the_distance() {
        let seq = good();
        let travel = seq.forward_travel();
        assert!(
            (0.8..=1.3).contains(&travel),
            "travelled {travel} for configured 1.1"
        );
    }

    #[test]
    fn feet_never_sink_below_ground() {
        let cfg = JumpConfig::default();
        let seq = synthesize_jump(&cfg);
        for (i, p) in seq.poses().iter().enumerate() {
            let low = p.segments(&cfg.dims).lowest_y();
            assert!(low > -1e-9, "frame {i} has joint at y={low}");
        }
    }

    #[test]
    fn flight_phase_rises_above_standing() {
        let cfg = JumpConfig::default();
        let seq = synthesize_jump(&cfg);
        let standing_y = seq.poses()[0].center.y;
        let peak = seq
            .poses()
            .iter()
            .map(|p| p.center.y)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            peak > standing_y * 1.1,
            "peak {peak} vs standing {standing_y}"
        );
    }

    #[test]
    fn crouch_dips_below_standing() {
        let cfg = JumpConfig::default();
        let seq = synthesize_jump(&cfg);
        let standing_y = seq.poses()[0].center.y;
        let initiation_min = seq
            .stage_poses(Stage::Initiation)
            .iter()
            .map(|p| p.center.y)
            .fold(f64::INFINITY, f64::min);
        assert!(initiation_min < standing_y * 0.95);
    }

    #[test]
    fn good_jump_satisfies_r1_through_r7() {
        let seq = good();
        // R1: knees bend > 60° during initiation.
        assert!(r1_crouch_depth(&seq, Stage::Initiation) > 60.0);
        // R2: neck > 30°.
        assert!(
            seq.stage_max(Stage::Initiation, |p| p.angle(StickKind::Neck).degrees())
                .unwrap()
                > 30.0
        );
        // R3: arms swing past 270°.
        assert!(
            seq.stage_max(Stage::Initiation, |p| p
                .angle(StickKind::UpperArm)
                .degrees())
                .unwrap()
                > 270.0
        );
        // R4: elbow bend > 45°.
        assert!(
            seq.stage_max(Stage::Initiation, |p| p
                .angle(StickKind::UpperArm)
                .raw_diff(p.angle(StickKind::Forearm)))
                .unwrap()
                > 45.0
        );
        // R5: knees bend > 60° on air/landing.
        assert!(r1_crouch_depth(&seq, Stage::AirLanding) > 60.0);
        // R6: trunk > 45°.
        assert!(
            seq.stage_max(Stage::AirLanding, |p| p.angle(StickKind::Trunk).degrees())
                .unwrap()
                > 45.0
        );
        // R7: arms come forward (ρ2 < 160°) after landing.
        assert!(
            seq.stage_min(Stage::AirLanding, |p| p
                .angle(StickKind::UpperArm)
                .degrees())
                .unwrap()
                < 160.0
        );
    }

    #[test]
    fn shallow_crouch_violates_only_r1() {
        let seq = flawed(JumpFlaw::ShallowCrouch);
        assert!(r1_crouch_depth(&seq, Stage::Initiation) < 60.0);
        // The landing crouch is intact (R5 unaffected).
        assert!(r1_crouch_depth(&seq, Stage::AirLanding) > 60.0);
    }

    #[test]
    fn no_neck_bend_violates_r2() {
        let seq = flawed(JumpFlaw::NoNeckBend);
        let max_neck = seq
            .stage_max(Stage::Initiation, |p| p.angle(StickKind::Neck).degrees())
            .unwrap();
        assert!(max_neck < 30.0, "neck reached {max_neck}");
    }

    #[test]
    fn no_arm_swing_violates_r3_but_not_r4() {
        let seq = flawed(JumpFlaw::NoArmSwingBack);
        let max_arm = seq
            .stage_max(Stage::Initiation, |p| {
                p.angle(StickKind::UpperArm).degrees()
            })
            .unwrap();
        assert!(max_arm < 270.0, "arm reached {max_arm}");
        // Elbow still bends.
        let bend = seq
            .stage_max(Stage::Initiation, |p| {
                p.angle(StickKind::UpperArm)
                    .raw_diff(p.angle(StickKind::Forearm))
            })
            .unwrap();
        assert!(bend > 45.0, "elbow bend only {bend}");
    }

    #[test]
    fn straight_arms_violates_r4() {
        let seq = flawed(JumpFlaw::StraightArms);
        let bend = seq
            .stage_max(Stage::Initiation, |p| {
                p.angle(StickKind::UpperArm)
                    .raw_diff(p.angle(StickKind::Forearm))
            })
            .unwrap();
        assert!(bend < 45.0, "elbow bend {bend}");
    }

    #[test]
    fn stiff_landing_violates_r5_not_r1() {
        let seq = flawed(JumpFlaw::StiffLanding);
        assert!(r1_crouch_depth(&seq, Stage::AirLanding) < 60.0);
        assert!(r1_crouch_depth(&seq, Stage::Initiation) > 60.0);
    }

    #[test]
    fn upright_trunk_violates_r6() {
        let seq = flawed(JumpFlaw::UprightTrunk);
        let max_trunk = seq
            .stage_max(Stage::AirLanding, |p| p.angle(StickKind::Trunk).degrees())
            .unwrap();
        assert!(max_trunk < 45.0, "trunk reached {max_trunk}");
    }

    #[test]
    fn arms_stay_back_violates_r7() {
        let seq = flawed(JumpFlaw::ArmsStayBack);
        let min_arm = seq
            .stage_min(Stage::AirLanding, |p| {
                p.angle(StickKind::UpperArm).degrees()
            })
            .unwrap();
        assert!(min_arm > 160.0, "arm dropped to {min_arm}");
    }

    #[test]
    fn flaws_compose() {
        let cfg = JumpConfig {
            flaws: vec![JumpFlaw::ShallowCrouch, JumpFlaw::UprightTrunk],
            ..JumpConfig::default()
        };
        let seq = synthesize_jump(&cfg);
        assert!(r1_crouch_depth(&seq, Stage::Initiation) < 60.0);
        assert!(
            seq.stage_max(Stage::AirLanding, |p| p.angle(StickKind::Trunk).degrees())
                .unwrap()
                < 45.0
        );
    }

    #[test]
    fn motion_is_temporally_smooth() {
        // Consecutive frames should differ by bounded amounts — the
        // property the paper's temporal GA seeding relies on.
        let seq = good();
        for w in seq.poses().windows(2) {
            let e = w[1].error_against(&w[0]);
            assert!(
                e.max_angle_error() < 100.0,
                "jump of {}° between frames (tracker \u{0394}\u{03c1} ranges must cover this)",
                e.max_angle_error()
            );
            assert!(
                e.center_distance < 0.25,
                "centre jumped {} m",
                e.center_distance
            );
        }
    }

    #[test]
    fn interp_channel_hits_keyframes() {
        let ts = [0.0, 0.3, 1.0];
        let vs = [1.0, 5.0, 2.0];
        for (t, v) in ts.iter().zip(vs.iter()) {
            assert!((interp_channel(&ts, &vs, *t) - v).abs() < 1e-12);
        }
        // Clamped outside.
        assert_eq!(interp_channel(&ts, &vs, -1.0), 1.0);
        assert_eq!(interp_channel(&ts, &vs, 2.0), 2.0);
    }

    #[test]
    fn interp_channel_is_continuous() {
        let ts = [0.0, 0.2, 0.5, 1.0];
        let vs = [0.0, 10.0, -5.0, 3.0];
        let mut prev = interp_channel(&ts, &vs, 0.0);
        let mut t = 0.0;
        while t < 1.0 {
            t += 0.001;
            let cur = interp_channel(&ts, &vs, t);
            assert!((cur - prev).abs() < 0.5, "jump at t={t}");
            prev = cur;
        }
    }

    #[test]
    fn perturb_pose_respects_amplitudes() {
        let d = BodyDims::default();
        let base = Pose::standing(&d);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let p = perturb_pose(&base, 0.05, 10.0, &mut rng);
            assert!((p.center.x - base.center.x).abs() <= 0.05);
            assert!((p.center.y - base.center.y).abs() <= 0.05);
            let e = p.error_against(&base);
            assert!(e.max_angle_error() <= 10.0 + 1e-9);
        }
    }

    #[test]
    fn perturb_zero_amplitude_is_identity() {
        let d = BodyDims::default();
        let base = Pose::standing(&d);
        let mut rng = StdRng::seed_from_u64(6);
        let p = perturb_pose(&base, 0.0, 0.0, &mut rng);
        assert_eq!(p, base);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = good();
        let b = good();
        assert_eq!(a, b);
    }

    #[test]
    fn flaw_names_roundtrip() {
        for f in JumpFlaw::ALL {
            let parsed: JumpFlaw = f.name().parse().unwrap();
            assert_eq!(parsed, f);
            assert_eq!(f.to_string(), f.name());
        }
        let err = "backflip".parse::<JumpFlaw>().unwrap_err();
        assert!(err.to_string().contains("backflip"));
        assert!(err.to_string().contains("shallow-crouch"));
    }

    #[test]
    fn flaw_rule_numbers() {
        for (i, f) in JumpFlaw::ALL.iter().enumerate() {
            assert_eq!(f.rule_number(), i + 1);
        }
    }
}
