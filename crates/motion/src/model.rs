//! The eight-stick body model (paper, Figure 4).
//!
//! The video is taken from the side, so the paper merges the two arms into
//! one arm chain and the two legs into one leg chain, leaving eight
//! sticks: trunk S0, neck S1, upper arm S2, thigh S3, head S4, forearm S5,
//! shank S6, foot S7. [`StickKind`] names them; [`BodyDims`] gives each a
//! length and half-thickness derived from the athlete's standing height
//! (standard anthropometric ratios, scaled for a primary-school child);
//! [`GENE_GROUPS`] is the paper's multi-crossover grouping.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of sticks in the model.
pub const STICK_COUNT: usize = 8;

/// Number of genes in a chromosome: centre `(x0, y0)` plus one angle per
/// stick.
pub const GENE_COUNT: usize = 2 + STICK_COUNT;

/// The sticks of the paper's Figure 4, with their paper indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum StickKind {
    /// S0 — the trunk; the chromosome's centre `(x0, y0)` is its middle.
    Trunk = 0,
    /// S1 — the neck, attached to the trunk's upper end.
    Neck = 1,
    /// S2 — the (merged) upper arm, attached at the shoulder.
    UpperArm = 2,
    /// S3 — the (merged) thigh, attached at the hip.
    Thigh = 3,
    /// S4 — the head, attached to the neck's far end.
    Head = 4,
    /// S5 — the (merged) forearm incl. hand, attached at the elbow.
    Forearm = 5,
    /// S6 — the (merged) shank, attached at the knee.
    Shank = 6,
    /// S7 — the (merged) foot, attached at the ankle.
    Foot = 7,
}

/// All sticks in paper-index order (S0..S7).
pub const ALL_STICKS: [StickKind; STICK_COUNT] = [
    StickKind::Trunk,
    StickKind::Neck,
    StickKind::UpperArm,
    StickKind::Thigh,
    StickKind::Head,
    StickKind::Forearm,
    StickKind::Shank,
    StickKind::Foot,
];

impl StickKind {
    /// The paper's index l of stick Sₗ.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Converts a paper index into a stick, or `None` for `index >= 8`.
    pub fn try_from_index(index: usize) -> Option<StickKind> {
        ALL_STICKS.get(index).copied()
    }

    /// Converts a paper index into a stick.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`; use [`StickKind::try_from_index`] for
    /// untrusted indices.
    pub fn from_index(index: usize) -> StickKind {
        StickKind::try_from_index(index)
            .unwrap_or_else(|| panic!("stick index {index} out of range 0..8"))
    }

    /// The stick this one attaches to, or `None` for the trunk (the
    /// root). Matches Figure 4's topology.
    pub fn parent(self) -> Option<StickKind> {
        match self {
            StickKind::Trunk => None,
            StickKind::Neck | StickKind::UpperArm | StickKind::Thigh => Some(StickKind::Trunk),
            StickKind::Head => Some(StickKind::Neck),
            StickKind::Forearm => Some(StickKind::UpperArm),
            StickKind::Shank => Some(StickKind::Thigh),
            StickKind::Foot => Some(StickKind::Shank),
        }
    }

    /// The paper's notation Sₗ.
    pub fn symbol(self) -> &'static str {
        match self {
            StickKind::Trunk => "S0",
            StickKind::Neck => "S1",
            StickKind::UpperArm => "S2",
            StickKind::Thigh => "S3",
            StickKind::Head => "S4",
            StickKind::Forearm => "S5",
            StickKind::Shank => "S6",
            StickKind::Foot => "S7",
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            StickKind::Trunk => "trunk",
            StickKind::Neck => "neck",
            StickKind::UpperArm => "upper arm",
            StickKind::Thigh => "thigh",
            StickKind::Head => "head",
            StickKind::Forearm => "forearm",
            StickKind::Shank => "shank",
            StickKind::Foot => "foot",
        }
    }
}

impl fmt::Display for StickKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.symbol(), self.name())
    }
}

/// The paper's multi-crossover gene groups:
/// `(x0, y0) (ρ0) (ρ1, ρ4) (ρ2, ρ5) (ρ3, ρ6, ρ7)` — the neck–head pair
/// and each limb chain cross over as a unit. Indices refer to the
/// 10-gene chromosome `(x0, y0, ρ0, …, ρ7)`.
pub const GENE_GROUPS: [&[usize]; 5] = [
    &[0, 1],    // (x0, y0)
    &[2],       // ρ0  trunk
    &[3, 6],    // ρ1, ρ4  neck + head
    &[4, 7],    // ρ2, ρ5  upper arm + forearm
    &[5, 8, 9], // ρ3, ρ6, ρ7  thigh + shank + foot
];

/// Per-stick lengths and half-thicknesses in metres, derived from a
/// standing height.
///
/// These drive both the synthetic renderer (capsule radius per stick) and
/// Eq. 3's per-stick normaliser `t_l` ("the average thickness of the area
/// surrounding stick Sₗ", which the paper estimates from the hand-drawn
/// first-frame model; here it is known exactly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BodyDims {
    /// Standing height in metres.
    height: f64,
    /// Stick lengths in metres, indexed by paper index.
    lengths: [f64; STICK_COUNT],
    /// Stick half-thicknesses (capsule radii) in metres, by paper index.
    thicknesses: [f64; STICK_COUNT],
}

/// Stick length as a fraction of standing height, by paper index.
/// Head/neck/limb fractions follow Drillis–Contini segment ratios,
/// lightly adapted so the merged side-view chains sum to a plausible
/// child figure.
const LENGTH_FRACTIONS: [f64; STICK_COUNT] = [
    0.29, // S0 trunk (hip to shoulder)
    0.06, // S1 neck
    0.17, // S2 upper arm
    0.24, // S3 thigh
    0.11, // S4 head (neck top to crown)
    0.20, // S5 forearm + hand
    0.23, // S6 shank
    0.13, // S7 foot (ankle to toe)
];

/// Stick half-thickness as a fraction of standing height, by paper index.
const THICKNESS_FRACTIONS: [f64; STICK_COUNT] = [
    0.065, // S0 trunk
    0.022, // S1 neck
    0.028, // S2 upper arm
    0.042, // S3 thigh
    0.052, // S4 head
    0.022, // S5 forearm
    0.032, // S6 shank
    0.018, // S7 foot
];

impl BodyDims {
    /// Dimensions for an athlete of the given standing height (metres).
    ///
    /// # Panics
    ///
    /// Panics if `height` is not finite and positive.
    pub fn for_height(height: f64) -> Self {
        assert!(
            height.is_finite() && height > 0.0,
            "height must be positive and finite, got {height}"
        );
        let mut lengths = [0.0; STICK_COUNT];
        let mut thicknesses = [0.0; STICK_COUNT];
        for i in 0..STICK_COUNT {
            lengths[i] = LENGTH_FRACTIONS[i] * height;
            thicknesses[i] = THICKNESS_FRACTIONS[i] * height;
        }
        BodyDims {
            height,
            lengths,
            thicknesses,
        }
    }

    /// The standing height this model was built for, metres.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Length of a stick, metres.
    pub fn length(&self, stick: StickKind) -> f64 {
        self.lengths[stick.index()]
    }

    /// Half-thickness (capsule radius) of a stick, metres. This is the
    /// `t_l` of Eq. 3.
    pub fn thickness(&self, stick: StickKind) -> f64 {
        self.thicknesses[stick.index()]
    }

    /// Standing hip height: foot clearance + shank + thigh. The
    /// synthesiser uses this to place the standing pose on the ground.
    pub fn standing_hip_height(&self) -> f64 {
        // The ankle sits about one foot-thickness above the ground.
        self.length(StickKind::Shank)
            + self.length(StickKind::Thigh)
            + self.thickness(StickKind::Foot)
    }
}

impl Default for BodyDims {
    /// A typical primary-school child of 1.30 m — the paper's test is a
    /// standard test "for primary school students".
    fn default() -> Self {
        BodyDims::for_height(1.30)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_paper() {
        assert_eq!(StickKind::Trunk.index(), 0);
        assert_eq!(StickKind::Neck.index(), 1);
        assert_eq!(StickKind::UpperArm.index(), 2);
        assert_eq!(StickKind::Thigh.index(), 3);
        assert_eq!(StickKind::Head.index(), 4);
        assert_eq!(StickKind::Forearm.index(), 5);
        assert_eq!(StickKind::Shank.index(), 6);
        assert_eq!(StickKind::Foot.index(), 7);
    }

    #[test]
    fn from_index_roundtrip() {
        for s in ALL_STICKS {
            assert_eq!(StickKind::from_index(s.index()), s);
            assert_eq!(StickKind::try_from_index(s.index()), Some(s));
        }
    }

    #[test]
    fn try_from_index_rejects_out_of_range() {
        assert_eq!(StickKind::try_from_index(8), None);
        assert_eq!(StickKind::try_from_index(usize::MAX), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_out_of_range_panics() {
        StickKind::from_index(8);
    }

    #[test]
    fn topology_matches_figure_4() {
        assert_eq!(StickKind::Trunk.parent(), None);
        assert_eq!(StickKind::Neck.parent(), Some(StickKind::Trunk));
        assert_eq!(StickKind::UpperArm.parent(), Some(StickKind::Trunk));
        assert_eq!(StickKind::Thigh.parent(), Some(StickKind::Trunk));
        assert_eq!(StickKind::Head.parent(), Some(StickKind::Neck));
        assert_eq!(StickKind::Forearm.parent(), Some(StickKind::UpperArm));
        assert_eq!(StickKind::Shank.parent(), Some(StickKind::Thigh));
        assert_eq!(StickKind::Foot.parent(), Some(StickKind::Shank));
    }

    #[test]
    fn every_stick_reaches_trunk() {
        for s in ALL_STICKS {
            let mut cur = s;
            let mut hops = 0;
            while let Some(p) = cur.parent() {
                cur = p;
                hops += 1;
                assert!(hops <= 3, "chain too deep at {s}");
            }
            assert_eq!(cur, StickKind::Trunk);
        }
    }

    #[test]
    fn gene_groups_partition_the_chromosome() {
        let mut seen = [false; GENE_COUNT];
        for group in GENE_GROUPS {
            for &g in group {
                assert!(!seen[g], "gene {g} appears in two groups");
                seen[g] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "every gene must be covered");
    }

    #[test]
    fn gene_groups_match_paper_grouping() {
        // (x0,y0), (ρ0), (ρ1,ρ4), (ρ2,ρ5), (ρ3,ρ6,ρ7):
        // angle gene for ρl is at chromosome index 2 + l.
        assert_eq!(GENE_GROUPS[0], &[0, 1]);
        assert_eq!(GENE_GROUPS[1], &[2]);
        assert_eq!(GENE_GROUPS[2], &[2 + 1, 2 + 4]);
        assert_eq!(GENE_GROUPS[3], &[2 + 2, 2 + 5]);
        assert_eq!(GENE_GROUPS[4], &[2 + 3, 2 + 6, 2 + 7]);
    }

    #[test]
    fn body_dims_scale_linearly_with_height() {
        let small = BodyDims::for_height(1.0);
        let big = BodyDims::for_height(2.0);
        for s in ALL_STICKS {
            assert!((big.length(s) - 2.0 * small.length(s)).abs() < 1e-12);
            assert!((big.thickness(s) - 2.0 * small.thickness(s)).abs() < 1e-12);
        }
    }

    #[test]
    fn vertical_chain_is_close_to_height() {
        // Standing: foot clearance + shank + thigh + trunk + neck + head
        // should roughly reach the standing height.
        let d = BodyDims::default();
        let total = d.standing_hip_height()
            + d.length(StickKind::Trunk)
            + d.length(StickKind::Neck)
            + d.length(StickKind::Head);
        let h = d.height();
        assert!(
            (0.9 * h..=1.05 * h).contains(&total),
            "chain {total} vs height {h}"
        );
    }

    #[test]
    fn trunk_is_longest_and_thickest_torso_part() {
        let d = BodyDims::default();
        assert!(d.length(StickKind::Trunk) > d.length(StickKind::Neck));
        assert!(d.thickness(StickKind::Trunk) > d.thickness(StickKind::Forearm));
        // All dimensions positive.
        for s in ALL_STICKS {
            assert!(d.length(s) > 0.0);
            assert!(d.thickness(s) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_height_rejected() {
        BodyDims::for_height(0.0);
    }

    #[test]
    fn display_contains_symbol_and_name() {
        let s = StickKind::Shank.to_string();
        assert!(s.contains("S6") && s.contains("shank"));
    }

    #[test]
    fn default_height_is_child_sized() {
        let d = BodyDims::default();
        assert!((1.0..1.6).contains(&d.height()));
    }
}
