//! Error type for the motion crate.

use std::fmt;

/// Error returned by fallible `slj-motion` operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MotionError {
    /// A chromosome/gene vector did not have the expected length
    /// (2 centre coordinates + 8 angles = 10).
    BadGeneCount {
        /// Number of genes supplied.
        got: usize,
    },
    /// A pose sequence was too short for the requested operation.
    SequenceTooShort {
        /// Frames present.
        got: usize,
        /// Frames required.
        need: usize,
    },
    /// A non-finite value (NaN/∞) appeared where a finite one is
    /// required.
    NonFinite {
        /// Name of the offending quantity.
        what: &'static str,
    },
}

impl fmt::Display for MotionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MotionError::BadGeneCount { got } => {
                write!(f, "expected 10 genes (x0, y0, rho0..rho7), got {got}")
            }
            MotionError::SequenceTooShort { got, need } => {
                write!(f, "pose sequence has {got} frames, need at least {need}")
            }
            MotionError::NonFinite { what } => write!(f, "non-finite value for {what}"),
        }
    }
}

impl std::error::Error for MotionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(MotionError::BadGeneCount { got: 3 }
            .to_string()
            .contains('3'));
        let e = MotionError::SequenceTooShort { got: 1, need: 2 };
        assert!(e.to_string().contains('1') && e.to_string().contains('2'));
        assert!(MotionError::NonFinite { what: "x0" }
            .to_string()
            .contains("x0"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(MotionError::BadGeneCount { got: 0 });
        assert!(e.source().is_none());
    }
}
