//! Poses: the GA chromosome and its forward kinematics.
//!
//! A [`Pose`] is exactly the paper's chromosome
//! `(x0, y0, ρ0, ρ1, …, ρ7)`: the centre of the trunk stick plus one
//! angle per stick. [`Pose::segments`] runs the forward kinematics of
//! Figure 4 — each stick is anchored at its parent's far end (the end
//! "nearer to the trunk" is the anchored one, per Figure 5) — yielding
//! the eight line segments the renderer thickens into a silhouette and
//! the fitness function measures distances to.

use crate::angle::Angle;
use crate::error::MotionError;
use crate::model::{BodyDims, StickKind, ALL_STICKS, GENE_COUNT, STICK_COUNT};
use serde::{Deserialize, Serialize};
use slj_imgproc::geometry::{Point2, Segment, Vec2};
use std::fmt;

/// A body pose: trunk centre plus the eight stick angles of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pose {
    /// Centre `(x0, y0)` of the trunk stick S0, in world metres (y-up).
    pub center: Point2,
    /// Stick angles `ρ0..ρ7`, indexed by paper index.
    pub angles: [Angle; STICK_COUNT],
}

/// The world-space segments of all eight sticks of a pose.
///
/// For every stick the segment runs from its anchored (proximal) end `a`
/// to its free (distal) end `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StickSegments {
    segments: [Segment; STICK_COUNT],
}

/// The discrepancy between two poses, produced by [`Pose::error_against`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoseError {
    /// Euclidean distance between the two trunk centres, metres.
    pub center_distance: f64,
    /// Per-stick absolute wrapped angle error, degrees, by paper index.
    pub angle_errors: [f64; STICK_COUNT],
}

impl Pose {
    /// Creates a pose from a centre and eight angles.
    pub fn new(center: Point2, angles: [Angle; STICK_COUNT]) -> Self {
        Pose { center, angles }
    }

    /// A neutral standing pose: trunk/neck/head upright, arms hanging
    /// down, legs straight down, foot pointing forward. The centre is
    /// placed so the feet touch `y = 0` for the given body.
    pub fn standing(dims: &BodyDims) -> Pose {
        let hip_y = dims.standing_hip_height();
        let center_y = hip_y + dims.length(StickKind::Trunk) / 2.0;
        Pose {
            center: Point2::new(0.0, center_y),
            angles: [
                Angle::from_degrees(0.0),   // ρ0 trunk up
                Angle::from_degrees(0.0),   // ρ1 neck up
                Angle::from_degrees(180.0), // ρ2 arm down
                Angle::from_degrees(180.0), // ρ3 thigh down
                Angle::from_degrees(0.0),   // ρ4 head up
                Angle::from_degrees(180.0), // ρ5 forearm down
                Angle::from_degrees(180.0), // ρ6 shank down
                Angle::from_degrees(95.0),  // ρ7 foot forward
            ],
        }
    }

    /// The angle of one stick.
    pub fn angle(&self, stick: StickKind) -> Angle {
        self.angles[stick.index()]
    }

    /// Replaces the angle of one stick, returning the modified pose.
    pub fn with_angle(mut self, stick: StickKind, angle: Angle) -> Pose {
        self.angles[stick.index()] = angle;
        self
    }

    /// Replaces the centre, returning the modified pose.
    pub fn with_center(mut self, center: Point2) -> Pose {
        self.center = center;
        self
    }

    /// Forward kinematics: the world-space segment of every stick.
    ///
    /// Anchors per Figure 4/5: the trunk's segment runs hip → shoulder
    /// with `center` at its middle; neck, upper arm anchor at the
    /// shoulder; thigh anchors at the hip; head, forearm, shank, foot
    /// anchor at their parent's distal end.
    pub fn segments(&self, dims: &BodyDims) -> StickSegments {
        let dir = |s: StickKind| -> Vec2 {
            let (dx, dy) = self.angle(s).direction();
            Vec2::new(dx, dy) * dims.length(s)
        };

        let half_trunk = dir(StickKind::Trunk) * 0.5;
        let hip = self.center - half_trunk;
        let shoulder = self.center + half_trunk;

        let trunk = Segment::new(hip, shoulder);
        let neck = Segment::new(shoulder, shoulder + dir(StickKind::Neck));
        let head = Segment::new(neck.b, neck.b + dir(StickKind::Head));
        let upper_arm = Segment::new(shoulder, shoulder + dir(StickKind::UpperArm));
        let forearm = Segment::new(upper_arm.b, upper_arm.b + dir(StickKind::Forearm));
        let thigh = Segment::new(hip, hip + dir(StickKind::Thigh));
        let shank = Segment::new(thigh.b, thigh.b + dir(StickKind::Shank));
        let foot = Segment::new(shank.b, shank.b + dir(StickKind::Foot));

        StickSegments {
            segments: [trunk, neck, upper_arm, thigh, head, forearm, shank, foot],
        }
    }

    /// Serialises the pose into the paper's 10-gene chromosome
    /// `[x0, y0, ρ0, …, ρ7]` (angles in degrees).
    pub fn to_genes(&self) -> [f64; GENE_COUNT] {
        let mut g = [0.0; GENE_COUNT];
        g[0] = self.center.x;
        g[1] = self.center.y;
        for (i, a) in self.angles.iter().enumerate() {
            g[2 + i] = a.degrees();
        }
        g
    }

    /// Rebuilds a pose from a 10-gene chromosome slice.
    ///
    /// # Errors
    ///
    /// Returns [`MotionError::BadGeneCount`] when `genes.len() != 10` and
    /// [`MotionError::NonFinite`] when any gene is NaN or infinite.
    pub fn from_genes(genes: &[f64]) -> Result<Pose, MotionError> {
        if genes.len() != GENE_COUNT {
            return Err(MotionError::BadGeneCount { got: genes.len() });
        }
        for (i, g) in genes.iter().enumerate() {
            if !g.is_finite() {
                return Err(MotionError::NonFinite {
                    what: if i < 2 {
                        "center coordinate"
                    } else {
                        "angle gene"
                    },
                });
            }
        }
        let mut angles = [Angle::UP; STICK_COUNT];
        for (i, a) in angles.iter_mut().enumerate() {
            *a = Angle::from_degrees(genes[2 + i]);
        }
        Ok(Pose {
            center: Point2::new(genes[0], genes[1]),
            angles,
        })
    }

    /// Measures this pose against a reference (typically ground truth).
    pub fn error_against(&self, reference: &Pose) -> PoseError {
        let mut angle_errors = [0.0; STICK_COUNT];
        for s in ALL_STICKS {
            angle_errors[s.index()] = self.angle(s).distance(reference.angle(s));
        }
        PoseError {
            center_distance: self.center.distance(reference.center),
            angle_errors,
        }
    }

    /// Linear interpolation between two poses (centre linearly, angles
    /// along the shortest arc).
    pub fn lerp(&self, other: &Pose, t: f64) -> Pose {
        let mut angles = [Angle::UP; STICK_COUNT];
        for (i, a) in angles.iter_mut().enumerate() {
            *a = self.angles[i].lerp(other.angles[i], t);
        }
        Pose {
            center: self.center.lerp(other.center, t),
            angles,
        }
    }
}

impl fmt::Display for Pose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pose[center {} angles", self.center)?;
        for a in &self.angles {
            write!(f, " {a}")?;
        }
        write!(f, "]")
    }
}

impl StickSegments {
    /// The segment of one stick.
    pub fn segment(&self, stick: StickKind) -> Segment {
        self.segments[stick.index()]
    }

    /// All segments in paper-index order.
    pub fn as_array(&self) -> &[Segment; STICK_COUNT] {
        &self.segments
    }

    /// Iterates `(stick, segment)` pairs in paper-index order.
    pub fn iter(&self) -> impl Iterator<Item = (StickKind, Segment)> + '_ {
        ALL_STICKS
            .iter()
            .map(move |&s| (s, self.segments[s.index()]))
    }

    /// The lowest y coordinate over all joints — where the body touches
    /// down (used by the synthesiser to keep feet on the ground).
    pub fn lowest_y(&self) -> f64 {
        self.segments
            .iter()
            .flat_map(|s| [s.a.y, s.b.y])
            .fold(f64::INFINITY, f64::min)
    }

    /// Axis-aligned bounds over all joints:
    /// `(x_min, y_min, x_max, y_max)`.
    pub fn bounds(&self) -> (f64, f64, f64, f64) {
        let mut b = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        for s in &self.segments {
            for p in [s.a, s.b] {
                b.0 = b.0.min(p.x);
                b.1 = b.1.min(p.y);
                b.2 = b.2.max(p.x);
                b.3 = b.3.max(p.y);
            }
        }
        b
    }
}

impl PoseError {
    /// Mean absolute angle error over all eight sticks, degrees.
    pub fn mean_angle_error(&self) -> f64 {
        self.angle_errors.iter().sum::<f64>() / STICK_COUNT as f64
    }

    /// Largest per-stick angle error, degrees.
    pub fn max_angle_error(&self) -> f64 {
        self.angle_errors.iter().copied().fold(0.0, f64::max)
    }
}

impl fmt::Display for PoseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "center {:.3} m, mean angle {:.1}°, max angle {:.1}°",
            self.center_distance,
            self.mean_angle_error(),
            self.max_angle_error()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> BodyDims {
        BodyDims::default()
    }

    #[test]
    fn standing_pose_feet_on_ground() {
        let d = dims();
        let pose = Pose::standing(&d);
        let segs = pose.segments(&d);
        // Ankle is at foot-thickness above ground; the foot stick tilts
        // slightly downward, so the lowest joint is within ~2 cm of 0.
        let low = segs.lowest_y();
        assert!(low.abs() < 0.05, "lowest joint at {low}");
    }

    #[test]
    fn standing_pose_head_near_height() {
        let d = dims();
        let segs = Pose::standing(&d).segments(&d);
        let crown = segs.segment(StickKind::Head).b.y;
        assert!(
            (0.88 * d.height()..=1.02 * d.height()).contains(&crown),
            "crown at {crown} for height {}",
            d.height()
        );
    }

    #[test]
    fn trunk_centered_on_center_gene() {
        let d = dims();
        let pose = Pose::standing(&d);
        let trunk = pose.segments(&d).segment(StickKind::Trunk);
        let mid = trunk.midpoint();
        assert!(mid.distance(pose.center) < 1e-12);
        assert!((trunk.length() - d.length(StickKind::Trunk)).abs() < 1e-12);
    }

    #[test]
    fn children_anchor_at_parent_distal_ends() {
        let d = dims();
        // Use a deliberately bent pose so the check is non-trivial.
        let pose = Pose::standing(&d)
            .with_angle(StickKind::Trunk, Angle::from_degrees(40.0))
            .with_angle(StickKind::UpperArm, Angle::from_degrees(300.0))
            .with_angle(StickKind::Thigh, Angle::from_degrees(135.0))
            .with_angle(StickKind::Shank, Angle::from_degrees(225.0));
        let segs = pose.segments(&d);
        let trunk = segs.segment(StickKind::Trunk);
        let shoulder = trunk.b;
        let hip = trunk.a;
        assert!(segs.segment(StickKind::Neck).a.distance(shoulder) < 1e-12);
        assert!(segs.segment(StickKind::UpperArm).a.distance(shoulder) < 1e-12);
        assert!(segs.segment(StickKind::Thigh).a.distance(hip) < 1e-12);
        assert!(
            segs.segment(StickKind::Head)
                .a
                .distance(segs.segment(StickKind::Neck).b)
                < 1e-12
        );
        assert!(
            segs.segment(StickKind::Forearm)
                .a
                .distance(segs.segment(StickKind::UpperArm).b)
                < 1e-12
        );
        assert!(
            segs.segment(StickKind::Shank)
                .a
                .distance(segs.segment(StickKind::Thigh).b)
                < 1e-12
        );
        assert!(
            segs.segment(StickKind::Foot)
                .a
                .distance(segs.segment(StickKind::Shank).b)
                < 1e-12
        );
    }

    #[test]
    fn segment_lengths_match_dims() {
        let d = dims();
        let segs = Pose::standing(&d).segments(&d);
        for (stick, seg) in segs.iter() {
            assert!(
                (seg.length() - d.length(stick)).abs() < 1e-12,
                "stick {stick} length {} expected {}",
                seg.length(),
                d.length(stick)
            );
        }
    }

    #[test]
    fn angles_rotate_toward_facing_direction() {
        let d = dims();
        // Trunk bent 90° forward: shoulder ends up forward of hip at the
        // same height.
        let pose = Pose::standing(&d).with_angle(StickKind::Trunk, Angle::FORWARD);
        let trunk = pose.segments(&d).segment(StickKind::Trunk);
        assert!(trunk.b.x > trunk.a.x);
        assert!((trunk.b.y - trunk.a.y).abs() < 1e-12);
    }

    #[test]
    fn gene_roundtrip() {
        let d = dims();
        let pose = Pose::standing(&d).with_angle(StickKind::UpperArm, Angle::from_degrees(303.5));
        let genes = pose.to_genes();
        assert_eq!(genes.len(), GENE_COUNT);
        let back = Pose::from_genes(&genes).unwrap();
        assert!(back.center.distance(pose.center) < 1e-12);
        for s in ALL_STICKS {
            assert!(back.angle(s).distance(pose.angle(s)) < 1e-12);
        }
    }

    #[test]
    fn from_genes_validates() {
        assert!(matches!(
            Pose::from_genes(&[0.0; 9]),
            Err(MotionError::BadGeneCount { got: 9 })
        ));
        let mut genes = [0.0; GENE_COUNT];
        genes[3] = f64::NAN;
        assert!(matches!(
            Pose::from_genes(&genes),
            Err(MotionError::NonFinite { .. })
        ));
        genes[3] = f64::INFINITY;
        assert!(Pose::from_genes(&genes).is_err());
    }

    #[test]
    fn from_genes_wraps_angles() {
        let mut genes = [0.0; GENE_COUNT];
        genes[2] = 365.0;
        let pose = Pose::from_genes(&genes).unwrap();
        assert!((pose.angle(StickKind::Trunk).degrees() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn error_against_self_is_zero() {
        let d = dims();
        let pose = Pose::standing(&d);
        let e = pose.error_against(&pose);
        assert_eq!(e.center_distance, 0.0);
        assert_eq!(e.mean_angle_error(), 0.0);
        assert_eq!(e.max_angle_error(), 0.0);
    }

    #[test]
    fn error_uses_wrapped_angles() {
        let d = dims();
        let a = Pose::standing(&d).with_angle(StickKind::Trunk, Angle::from_degrees(359.0));
        let b = Pose::standing(&d).with_angle(StickKind::Trunk, Angle::from_degrees(1.0));
        let e = a.error_against(&b);
        assert!((e.angle_errors[0] - 2.0).abs() < 1e-9);
        assert!((e.max_angle_error() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn error_center_distance() {
        let d = dims();
        let a = Pose::standing(&d);
        let b = a.with_center(a.center + Vec2::new(3.0, 4.0));
        assert!((a.error_against(&b).center_distance - 5.0).abs() < 1e-12);
    }

    #[test]
    fn pose_lerp_midpoint() {
        let d = dims();
        let a = Pose::standing(&d);
        let b = a
            .with_center(a.center + Vec2::new(1.0, 0.0))
            .with_angle(StickKind::Trunk, Angle::from_degrees(40.0));
        let mid = a.lerp(&b, 0.5);
        assert!((mid.center.x - (a.center.x + 0.5)).abs() < 1e-12);
        assert!((mid.angle(StickKind::Trunk).degrees() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn bounds_enclose_all_joints() {
        let d = dims();
        let segs = Pose::standing(&d).segments(&d);
        let (x0, y0, x1, y1) = segs.bounds();
        for (_, seg) in segs.iter() {
            for p in [seg.a, seg.b] {
                assert!(p.x >= x0 && p.x <= x1);
                assert!(p.y >= y0 && p.y <= y1);
            }
        }
        assert!(y1 > y0 && x1 >= x0);
    }

    #[test]
    fn display_mentions_center() {
        let d = dims();
        let s = Pose::standing(&d).to_string();
        assert!(s.contains("Pose"));
        assert!(s.contains("center"));
    }
}
