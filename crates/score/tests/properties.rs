//! Property-based tests for the scoring crate: rule evaluation is total
//! over arbitrary pose sequences, verdicts are consistent with the
//! observed/threshold pair, and the card's aggregates add up.

use proptest::prelude::*;
use slj_motion::model::GENE_COUNT;
use slj_motion::{Pose, PoseSeq};
use slj_score::rules::{Direction, RuleId};
use slj_score::{score_jump, Standard};

fn pose_strategy() -> impl Strategy<Value = Pose> {
    (
        -2.0f64..3.0,
        0.1f64..2.0,
        proptest::collection::vec(0.0f64..360.0, 8),
    )
        .prop_map(|(x, y, angles)| {
            let mut genes = [0.0; GENE_COUNT];
            genes[0] = x;
            genes[1] = y;
            genes[2..].copy_from_slice(&angles);
            Pose::from_genes(&genes).unwrap()
        })
}

fn seq_strategy() -> impl Strategy<Value = PoseSeq> {
    proptest::collection::vec(pose_strategy(), 2..30).prop_map(|poses| PoseSeq::new(poses, 10.0))
}

proptest! {
    #[test]
    fn rules_are_total_and_verdicts_consistent(seq in seq_strategy()) {
        for id in RuleId::ALL {
            let rule = id.rule();
            let result = rule.evaluate(&seq).unwrap();
            let observed = result.observed.unwrap();
            prop_assert!(observed.is_finite(), "{id}");
            let expected = match rule.direction {
                Direction::Above => observed > rule.threshold,
                Direction::Below => observed < rule.threshold,
            };
            prop_assert_eq!(result.satisfied(), expected, "{}", id);
            prop_assert!(!result.masked(), "{}", id);
            prop_assert_eq!(result.rule, id);
            prop_assert_eq!(result.threshold, rule.threshold);
            prop_assert_eq!(result.stage, rule.stage);
        }
    }

    #[test]
    fn observed_value_is_an_extremum_of_the_window(seq in seq_strategy()) {
        for id in RuleId::ALL {
            let rule = id.rule();
            let result = rule.evaluate(&seq).unwrap();
            let window = seq.stage_poses(rule.stage);
            let values: Vec<f64> = window.iter().map(|p| rule.measure(p)).collect();
            let expected = match rule.direction {
                Direction::Above => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                Direction::Below => values.iter().copied().fold(f64::INFINITY, f64::min),
            };
            let observed = result.observed.unwrap();
            prop_assert!((observed - expected).abs() < 1e-12, "{}", id);
            // The observed extremum is attained by some frame.
            prop_assert!(values.iter().any(|v| (v - observed).abs() < 1e-12));
        }
    }

    #[test]
    fn card_aggregates_are_consistent(seq in seq_strategy()) {
        let card = score_jump(&seq).unwrap();
        prop_assert_eq!(card.results().len(), 7);
        prop_assert_eq!(
            card.score(),
            card.results().iter().filter(|r| r.satisfied()).count()
        );
        prop_assert_eq!(card.violations().len(), 7 - card.score());
        prop_assert_eq!(card.advice().len(), card.violations().len());
        prop_assert_eq!(card.is_perfect(), card.score() == 7);
        // Advice standards match the violated rules one-to-one.
        for ((standard, text), rule) in card.advice().iter().zip(card.violations()) {
            prop_assert_eq!(standard.number(), rule.number());
            prop_assert!(!text.is_empty());
        }
    }

    #[test]
    fn lean_rules_are_wrap_safe(backward_lean in 0.5f64..90.0) {
        // Trunk/neck tilted slightly *behind* vertical must not satisfy
        // the forward-lean rules no matter how the angle wraps.
        let dims = slj_motion::BodyDims::default();
        let pose = Pose::standing(&dims)
            .with_angle(slj_motion::StickKind::Trunk, slj_motion::Angle::from_degrees(360.0 - backward_lean))
            .with_angle(slj_motion::StickKind::Neck, slj_motion::Angle::from_degrees(360.0 - backward_lean));
        let seq = PoseSeq::new(vec![pose; 4], 10.0);
        let r6 = RuleId::R6.rule().evaluate(&seq).unwrap();
        prop_assert!(!r6.satisfied(), "backward lean {backward_lean} read as forward");
        prop_assert!(r6.observed.unwrap() < 0.0);
        let r2 = RuleId::R2.rule().evaluate(&seq).unwrap();
        prop_assert!(!r2.satisfied());
    }

    #[test]
    fn standards_rules_bijection_is_stable(_x in 0u8..1) {
        for s in Standard::ALL {
            prop_assert_eq!(Standard::for_rule(s.rule()), s);
            prop_assert_eq!(s.stage(), s.rule().rule().stage);
        }
    }
}
