//! The physical-education standards of Table 1 and their coaching
//! advice.

use crate::rules::RuleId;
use serde::{Deserialize, Serialize};
use slj_motion::seq::Stage;
use std::fmt;

/// A standing-long-jump evaluation standard (Table 1, E1–E7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Standard {
    /// E1 — knees bended (initiation).
    E1,
    /// E2 — neck bended forward (initiation).
    E2,
    /// E3 — arms swung back (initiation).
    E3,
    /// E4 — arms bended (initiation).
    E4,
    /// E5 — knees bended (on the air/landing).
    E5,
    /// E6 — trunk bended forward (on the air/landing).
    E6,
    /// E7 — arms swung forward after landing.
    E7,
}

impl Standard {
    /// All standards in table order.
    pub const ALL: [Standard; 7] = [
        Standard::E1,
        Standard::E2,
        Standard::E3,
        Standard::E4,
        Standard::E5,
        Standard::E6,
        Standard::E7,
    ];

    /// The 1-based standard number.
    pub fn number(self) -> usize {
        match self {
            Standard::E1 => 1,
            Standard::E2 => 2,
            Standard::E3 => 3,
            Standard::E4 => 4,
            Standard::E5 => 5,
            Standard::E6 => 6,
            Standard::E7 => 7,
        }
    }

    /// The Table 1 wording.
    pub fn description(self) -> &'static str {
        match self {
            Standard::E1 => "Knees bended",
            Standard::E2 => "Neck bended forward",
            Standard::E3 => "Arms swung back",
            Standard::E4 => "Arms bended",
            Standard::E5 => "Knees bended",
            Standard::E6 => "Trunk bended forward",
            Standard::E7 => "Arms swung forward after landing",
        }
    }

    /// The stage the standard applies to.
    pub fn stage(self) -> Stage {
        match self {
            Standard::E1 | Standard::E2 | Standard::E3 | Standard::E4 => Stage::Initiation,
            Standard::E5 | Standard::E6 | Standard::E7 => Stage::AirLanding,
        }
    }

    /// The Table 2 rule that operationalises this standard.
    pub fn rule(self) -> RuleId {
        RuleId::ALL[self.number() - 1]
    }

    /// The standard operationalised by a rule.
    pub fn for_rule(rule: RuleId) -> Standard {
        Standard::ALL[rule.number() - 1]
    }

    /// Coaching advice given when the standard is not met — the "detect
    /// improper movements and give advices" part of the paper's
    /// introduction.
    pub fn advice(self) -> &'static str {
        match self {
            Standard::E1 => {
                "Bend your knees deeply before taking off — sink into a crouch so \
                 the legs can drive the jump."
            }
            Standard::E2 => {
                "Lean your head and neck forward as you crouch; looking down the \
                 runway loads the jump forward."
            }
            Standard::E3 => {
                "Swing both arms far behind your body during the crouch — the \
                 backswing powers the jump."
            }
            Standard::E4 => {
                "Keep your elbows bent while swinging; stiff, straight arms waste \
                 the swing's momentum."
            }
            Standard::E5 => {
                "Bend your knees in flight and on landing — stiff legs cut the \
                 jump short and risk injury."
            }
            Standard::E6 => {
                "Lean your trunk forward through the flight so your weight \
                 carries past the landing point."
            }
            Standard::E7 => {
                "Throw your arms forward as you land to keep your balance moving \
                 ahead, not falling back."
            }
        }
    }
}

impl fmt::Display for Standard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}: {}", self.number(), self.description())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standards_and_rules_are_bijective() {
        for s in Standard::ALL {
            assert_eq!(Standard::for_rule(s.rule()), s);
            assert_eq!(s.rule().number(), s.number());
        }
        for r in RuleId::ALL {
            assert_eq!(Standard::for_rule(r).rule(), r);
        }
    }

    #[test]
    fn stages_match_table_1() {
        for s in &Standard::ALL[..4] {
            assert_eq!(s.stage(), Stage::Initiation, "{s}");
        }
        for s in &Standard::ALL[4..] {
            assert_eq!(s.stage(), Stage::AirLanding, "{s}");
        }
        // And each standard's stage matches its rule's stage.
        for s in Standard::ALL {
            assert_eq!(s.stage(), s.rule().rule().stage);
        }
    }

    #[test]
    fn descriptions_match_table_1() {
        assert_eq!(Standard::E1.description(), "Knees bended");
        assert_eq!(Standard::E5.description(), "Knees bended");
        assert_eq!(
            Standard::E7.description(),
            "Arms swung forward after landing"
        );
    }

    #[test]
    fn every_standard_has_nonempty_advice() {
        for s in Standard::ALL {
            assert!(s.advice().len() > 20, "{s} advice too short");
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(Standard::E2.to_string(), "E2: Neck bended forward");
    }
}
