//! Per-frame rule traces.
//!
//! A [`crate::RuleResult`] reports one aggregated number per rule; a
//! [`RuleTrace`] keeps the whole per-frame series of the measured
//! quantity, which is what a coaching UI plots ("your knees reached 40°
//! here, the standard wants 60°") and what the ASCII sparkline renders
//! in terminal reports.

use crate::rules::{Direction, Rule, RuleId};
use serde::{Deserialize, Serialize};
use slj_motion::{MotionError, PoseSeq};
use std::fmt;

/// The per-frame series of one rule's measured quantity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleTrace {
    /// Which rule was traced.
    pub rule: RuleId,
    /// The measured quantity for every frame (whole clip, not just the
    /// rule's stage window), degrees.
    pub values: Vec<f64>,
    /// The frame range of the rule's stage window.
    pub window: (usize, usize),
    /// The rule threshold.
    pub threshold: f64,
    /// Whether the rule is satisfied over its window.
    pub satisfied: bool,
}

impl RuleTrace {
    /// Traces a rule over a sequence.
    ///
    /// # Errors
    ///
    /// Returns [`MotionError::SequenceTooShort`] when the stage window
    /// is empty.
    pub fn new(rule: &Rule, seq: &PoseSeq) -> Result<RuleTrace, MotionError> {
        let result = rule.evaluate(seq)?;
        let range = seq.stage_range(rule.stage);
        Ok(RuleTrace {
            rule: rule.id,
            values: seq.poses().iter().map(|p| rule.measure(p)).collect(),
            window: (range.start, range.end),
            threshold: rule.threshold,
            satisfied: result.satisfied(),
        })
    }

    /// Traces all seven rules.
    ///
    /// # Errors
    ///
    /// Returns [`MotionError::SequenceTooShort`] when a stage window is
    /// empty.
    pub fn all(seq: &PoseSeq) -> Result<Vec<RuleTrace>, MotionError> {
        RuleId::ALL
            .iter()
            .map(|id| RuleTrace::new(&id.rule(), seq))
            .collect()
    }

    /// Renders the trace as a one-line ASCII sparkline. Frames inside
    /// the rule's window use block characters scaled to the value range;
    /// frames outside it are dimmed to `·`. The threshold column is not
    /// drawn — the header carries it.
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let lo = self.values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = self
            .values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(1e-9);
        self.values
            .iter()
            .enumerate()
            .map(|(k, &v)| {
                if k < self.window.0 || k >= self.window.1 {
                    '·'
                } else {
                    let idx = (((v - lo) / span) * (LEVELS.len() - 1) as f64).round() as usize;
                    LEVELS[idx.min(LEVELS.len() - 1)]
                }
            })
            .collect()
    }
}

impl fmt::Display for RuleTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rule = self.rule.rule();
        let op = match rule.direction {
            Direction::Above => '>',
            Direction::Below => '<',
        };
        write!(
            f,
            "{} ({} {op} {:.0}°) {} [{}]",
            self.rule,
            rule.expression,
            self.threshold,
            self.sparkline(),
            if self.satisfied { "ok" } else { "VIOLATED" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_motion::{synthesize_jump, JumpConfig, JumpFlaw};

    #[test]
    fn traces_cover_every_frame() {
        let seq = synthesize_jump(&JumpConfig::default());
        let traces = RuleTrace::all(&seq).unwrap();
        assert_eq!(traces.len(), 7);
        for t in &traces {
            assert_eq!(t.values.len(), 20);
            assert!(t.window.1 <= 20 && t.window.0 < t.window.1);
            assert!(t.satisfied, "{t}");
        }
    }

    #[test]
    fn trace_agrees_with_rule_result() {
        let seq = synthesize_jump(&JumpConfig::with_flaw(JumpFlaw::ShallowCrouch));
        for id in RuleId::ALL {
            let rule = id.rule();
            let trace = RuleTrace::new(&rule, &seq).unwrap();
            let result = rule.evaluate(&seq).unwrap();
            assert_eq!(trace.satisfied, result.satisfied(), "{id}");
            // The window extremum of the trace equals the observed value.
            let window = &trace.values[trace.window.0..trace.window.1];
            let extremum = match rule.direction {
                Direction::Above => window.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                Direction::Below => window.iter().copied().fold(f64::INFINITY, f64::min),
            };
            assert!((extremum - result.observed.unwrap()).abs() < 1e-12, "{id}");
        }
    }

    #[test]
    fn sparkline_shape() {
        let seq = synthesize_jump(&JumpConfig::default());
        let t = RuleTrace::new(&RuleId::R1.rule(), &seq).unwrap();
        let line = t.sparkline();
        assert_eq!(line.chars().count(), 20);
        // R1's window is the first half: the second half is dimmed.
        assert!(line.chars().skip(10).all(|c| c == '·'), "{line}");
        assert!(line.chars().take(10).all(|c| c != '·'), "{line}");
    }

    #[test]
    fn display_mentions_rule_and_verdict() {
        let seq = synthesize_jump(&JumpConfig::with_flaw(JumpFlaw::NoNeckBend));
        let t = RuleTrace::new(&RuleId::R2.rule(), &seq).unwrap();
        let s = t.to_string();
        assert!(s.contains("R2") && s.contains("VIOLATED"), "{s}");
    }

    #[test]
    fn too_short_errors() {
        let dims = slj_motion::BodyDims::default();
        let seq = PoseSeq::new(vec![slj_motion::Pose::standing(&dims)], 10.0);
        assert!(RuleTrace::new(&RuleId::R1.rule(), &seq).is_err());
    }
}
