//! The score card: all seven rule verdicts plus coaching advice.

use crate::rules::{RuleId, RuleResult};
use crate::standards::Standard;
use serde::{Deserialize, Serialize};
use slj_motion::{MotionError, PoseSeq};
use std::fmt;

/// The complete evaluation of one jump.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreCard {
    results: Vec<RuleResult>,
}

/// Scores a jump's pose sequence against all seven rules of Table 2.
///
/// # Errors
///
/// Returns [`MotionError::SequenceTooShort`] when the sequence is too
/// short to populate both stage windows (at least 2 frames).
pub fn score_jump(seq: &PoseSeq) -> Result<ScoreCard, MotionError> {
    let mut results = Vec::with_capacity(RuleId::ALL.len());
    for id in RuleId::ALL {
        results.push(id.rule().evaluate(seq)?);
    }
    Ok(ScoreCard { results })
}

/// Scores a jump while skipping the frames flagged in `excluded`
/// (index-aligned with the sequence) — the best-effort path: window
/// extrema are taken over trusted frames only, so one garbage estimate
/// cannot flip a verdict.
///
/// A rule whose whole window is excluded comes back as
/// [`Verdict::Masked`](crate::rules::Verdict::Masked) rather than an
/// error: see
/// [`Rule::evaluate_masked`](crate::rules::Rule::evaluate_masked).
///
/// # Errors
///
/// Returns [`MotionError::SequenceTooShort`] when a stage window is
/// empty before exclusion (the sequence is genuinely too short).
pub fn score_jump_masked(seq: &PoseSeq, excluded: &[bool]) -> Result<ScoreCard, MotionError> {
    let mut results = Vec::with_capacity(RuleId::ALL.len());
    for id in RuleId::ALL {
        results.push(id.rule().evaluate_masked(seq, excluded)?);
    }
    Ok(ScoreCard { results })
}

impl ScoreCard {
    /// All rule results in table order.
    pub fn results(&self) -> &[RuleResult] {
        &self.results
    }

    /// The result for one rule.
    ///
    /// # Panics
    ///
    /// Never panics for cards built by [`score_jump`] (all seven rules
    /// are present).
    pub fn result(&self, id: RuleId) -> &RuleResult {
        self.results
            .iter()
            .find(|r| r.rule == id)
            .expect("score card holds all seven rules")
    }

    /// Number of satisfied rules, 0–7 — the jump's score.
    pub fn score(&self) -> usize {
        self.results.iter().filter(|r| r.satisfied()).count()
    }

    /// Whether every rule is satisfied.
    pub fn is_perfect(&self) -> bool {
        self.score() == self.results.len()
    }

    /// The violated rules, in table order. Masked rules are *not*
    /// violations: an unobservable window is missing evidence, not
    /// evidence of a flaw.
    pub fn violations(&self) -> Vec<RuleId> {
        self.results
            .iter()
            .filter(|r| r.violated())
            .map(|r| r.rule)
            .collect()
    }

    /// The rules whose whole stage window was confidence-masked, in
    /// table order (always empty on the non-masked scoring path).
    pub fn masked(&self) -> Vec<RuleId> {
        self.results
            .iter()
            .filter(|r| r.masked())
            .map(|r| r.rule)
            .collect()
    }

    /// Coaching advice for each violation, in table order.
    pub fn advice(&self) -> Vec<(Standard, &'static str)> {
        self.violations()
            .into_iter()
            .map(|r| {
                let s = Standard::for_rule(r);
                (s, s.advice())
            })
            .collect()
    }
}

impl fmt::Display for ScoreCard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Score: {}/{}", self.score(), self.results.len())?;
        for r in &self.results {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_motion::{synthesize_jump, JumpConfig, JumpFlaw};

    #[test]
    fn good_jump_scores_seven() {
        let card = score_jump(&synthesize_jump(&JumpConfig::default())).unwrap();
        assert_eq!(card.score(), 7);
        assert!(card.is_perfect());
        assert!(card.violations().is_empty());
        assert!(card.advice().is_empty());
    }

    #[test]
    fn single_flaw_scores_six_with_matching_advice() {
        for flaw in JumpFlaw::ALL {
            let card = score_jump(&synthesize_jump(&JumpConfig::with_flaw(flaw))).unwrap();
            assert_eq!(card.score(), 6, "flaw {flaw:?}");
            let violations = card.violations();
            assert_eq!(violations.len(), 1);
            assert_eq!(violations[0].number(), flaw.rule_number());
            let advice = card.advice();
            assert_eq!(advice.len(), 1);
            assert_eq!(advice[0].0.number(), flaw.rule_number());
            assert!(!advice[0].1.is_empty());
        }
    }

    #[test]
    fn combined_flaws_accumulate() {
        let cfg = JumpConfig {
            flaws: vec![JumpFlaw::ShallowCrouch, JumpFlaw::ArmsStayBack],
            ..JumpConfig::default()
        };
        let card = score_jump(&synthesize_jump(&cfg)).unwrap();
        assert_eq!(card.score(), 5);
        let nums: Vec<usize> = card.violations().iter().map(|r| r.number()).collect();
        assert_eq!(nums, vec![1, 7]);
    }

    #[test]
    fn result_lookup_by_id() {
        let card = score_jump(&synthesize_jump(&JumpConfig::default())).unwrap();
        for id in RuleId::ALL {
            assert_eq!(card.result(id).rule, id);
        }
    }

    #[test]
    fn too_short_errors() {
        let dims = slj_motion::BodyDims::default();
        let seq = PoseSeq::new(vec![slj_motion::Pose::standing(&dims)], 10.0);
        assert!(score_jump(&seq).is_err());
    }

    #[test]
    fn display_contains_score_and_rules() {
        let card = score_jump(&synthesize_jump(&JumpConfig::with_flaw(
            JumpFlaw::NoNeckBend,
        )))
        .unwrap();
        let s = card.to_string();
        assert!(s.contains("Score: 6/7"));
        assert!(s.contains("VIOLATED"));
        assert!(s.contains("R2"));
    }

    #[test]
    fn masked_scoring_ignores_corrupted_frames() {
        use slj_motion::{Angle, StickKind};
        // The extrema aggregation is one-sided: a single garbage frame
        // cannot *break* a satisfied rule, but it can *fake* a violated
        // one. Take a shallow-crouch jump (R1 violated) and corrupt one
        // initiation frame with a deep knee bend: unmasked, the garbage
        // frame satisfies R1; masked, the true violation survives.
        let flawed = synthesize_jump(&JumpConfig::with_flaw(JumpFlaw::ShallowCrouch));
        let flawed_card = score_jump(&flawed).unwrap();
        assert!(!flawed_card.result(RuleId::R1).satisfied());

        let mut poses = flawed.poses().to_vec();
        let k = 2; // inside the initiation window
        poses[k] = poses[k]
            .with_angle(StickKind::Thigh, Angle::from_degrees(130.0))
            .with_angle(StickKind::Shank, Angle::from_degrees(235.0));
        let corrupted = PoseSeq::new(poses, flawed.fps());

        let unmasked = score_jump(&corrupted).unwrap();
        assert!(
            unmasked.result(RuleId::R1).satisfied(),
            "the garbage frame should fake R1"
        );

        let mut excluded = vec![false; corrupted.len()];
        excluded[k] = true;
        let masked = score_jump_masked(&corrupted, &excluded).unwrap();
        assert!(!masked.result(RuleId::R1).satisfied());
        assert_eq!(masked.score(), flawed_card.score());

        // An all-false mask reproduces the plain path exactly.
        let none = score_jump_masked(&flawed, &vec![false; flawed.len()]).unwrap();
        for (a, b) in none.results().iter().zip(flawed_card.results()) {
            assert_eq!(a.observed, b.observed);
            assert_eq!(a.verdict, b.verdict);
        }
    }

    #[test]
    fn masked_scoring_reports_masked_when_a_window_empties() {
        let seq = synthesize_jump(&JumpConfig::default());
        // Exclude the whole initiation window: the four initiation
        // rules surface as Masked (no evidence), the three air/landing
        // rules still score normally, and nothing errors out.
        let split = seq.stage_range(slj_motion::seq::Stage::Initiation).end;
        let mut excluded = vec![false; seq.len()];
        for e in excluded.iter_mut().take(split) {
            *e = true;
        }
        let card = score_jump_masked(&seq, &excluded).unwrap();
        let masked: Vec<usize> = card.masked().iter().map(|r| r.number()).collect();
        assert_eq!(masked, vec![1, 2, 3, 4]);
        assert!(card.violations().is_empty());
        assert_eq!(card.score(), 3);
        assert!(!card.is_perfect());
        for id in [RuleId::R5, RuleId::R6, RuleId::R7] {
            assert!(card.result(id).satisfied(), "{id}");
        }
        assert!(card.to_string().contains("MASKED"));
    }

    #[test]
    fn serde_roundtrip() {
        let card = score_jump(&synthesize_jump(&JumpConfig::default())).unwrap();
        let json = serde_json::to_string(&card).unwrap();
        let back: ScoreCard = serde_json::from_str(&json).unwrap();
        // serde_json's float text is not bit-exact by default; compare
        // semantically.
        assert_eq!(back.score(), card.score());
        for (a, b) in back.results().iter().zip(card.results()) {
            assert_eq!(a.rule, b.rule);
            assert_eq!(a.verdict, b.verdict);
            let (x, y) = (a.observed.unwrap(), b.observed.unwrap());
            assert!((x - y).abs() < 1e-9);
        }
    }
}
