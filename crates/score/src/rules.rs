//! The scoring rules of Table 2.
//!
//! | Rule | Stage        | Condition            |
//! |------|--------------|----------------------|
//! | R1   | Initiation   | ρ6 − ρ3 > 60°        |
//! | R2   | Initiation   | ρ1 > 30°             |
//! | R3   | Initiation   | ρ2 > 270°            |
//! | R4   | Initiation   | ρ2 − ρ5 > 45°        |
//! | R5   | Air/Landing  | ρ6 − ρ3 > 60°        |
//! | R6   | Air/Landing  | ρ0 > 45°             |
//! | R7   | Air/Landing  | ρ2 < 160°            |
//!
//! R1–R6 use the **maximum** of the quantity over the stage window, as
//! the paper prescribes; R7 is a `<` condition, so the natural window
//! aggregate is the **minimum** ("did the arm ever come forward").

use serde::{Deserialize, Serialize};
use slj_motion::seq::Stage;
use slj_motion::{MotionError, Pose, PoseSeq, StickKind};
use std::fmt;

/// Identifier of one of the seven rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleId {
    /// R1 — knees bent during initiation.
    R1,
    /// R2 — neck bent forward during initiation.
    R2,
    /// R3 — arms swung back during initiation.
    R3,
    /// R4 — arms bent during initiation.
    R4,
    /// R5 — knees bent on the air/landing.
    R5,
    /// R6 — trunk bent forward on the air/landing.
    R6,
    /// R7 — arms swung forward after landing.
    R7,
}

impl RuleId {
    /// All rules in table order.
    pub const ALL: [RuleId; 7] = [
        RuleId::R1,
        RuleId::R2,
        RuleId::R3,
        RuleId::R4,
        RuleId::R5,
        RuleId::R6,
        RuleId::R7,
    ];

    /// The 1-based rule number.
    pub fn number(self) -> usize {
        match self {
            RuleId::R1 => 1,
            RuleId::R2 => 2,
            RuleId::R3 => 3,
            RuleId::R4 => 4,
            RuleId::R5 => 5,
            RuleId::R6 => 6,
            RuleId::R7 => 7,
        }
    }

    /// The full rule definition.
    pub fn rule(self) -> Rule {
        match self {
            RuleId::R1 => Rule {
                id: self,
                stage: Stage::Initiation,
                expression: "rho6 - rho3",
                threshold: 60.0,
                direction: Direction::Above,
            },
            RuleId::R2 => Rule {
                id: self,
                stage: Stage::Initiation,
                expression: "rho1",
                threshold: 30.0,
                direction: Direction::Above,
            },
            RuleId::R3 => Rule {
                id: self,
                stage: Stage::Initiation,
                expression: "rho2",
                threshold: 270.0,
                direction: Direction::Above,
            },
            RuleId::R4 => Rule {
                id: self,
                stage: Stage::Initiation,
                expression: "rho2 - rho5",
                threshold: 45.0,
                direction: Direction::Above,
            },
            RuleId::R5 => Rule {
                id: self,
                stage: Stage::AirLanding,
                expression: "rho6 - rho3",
                threshold: 60.0,
                direction: Direction::Above,
            },
            RuleId::R6 => Rule {
                id: self,
                stage: Stage::AirLanding,
                expression: "rho0",
                threshold: 45.0,
                direction: Direction::Above,
            },
            RuleId::R7 => Rule {
                id: self,
                stage: Stage::AirLanding,
                expression: "rho2",
                threshold: 160.0,
                direction: Direction::Below,
            },
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.number())
    }
}

/// Which side of the threshold satisfies the rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// The aggregated quantity must exceed the threshold (R1–R6, using
    /// the stage maximum).
    Above,
    /// The aggregated quantity must drop below the threshold (R7, using
    /// the stage minimum).
    Below,
}

/// One rule of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Which rule this is.
    pub id: RuleId,
    /// The stage whose frames are examined.
    pub stage: Stage,
    /// Human-readable form of the measured expression.
    pub expression: &'static str,
    /// Threshold in degrees.
    pub threshold: f64,
    /// Side of the threshold that satisfies the rule.
    pub direction: Direction,
}

impl Rule {
    /// The per-frame quantity this rule measures, degrees.
    ///
    /// Reproduction note: the paper states the conditions on the raw
    /// normalised angles (e.g. `ρ0 > 45°`), which misreads estimates
    /// that land just *behind* vertical — a trunk at ρ0 = 354°
    /// (leaning 6° backward) would satisfy "bent forward by more than
    /// 45°". Since the paper never implemented its scoring component,
    /// this reproduction evaluates the angular quantities with
    /// wrap-aware semantics: leans (R2, R6) and joint-bend differences
    /// (R1, R4, R5) are signed shortest-arc values in `(−180°, 180°]`.
    /// R3 and R7 genuinely address the full arm revolution and keep the
    /// raw `[0°, 360°)` reading.
    pub fn measure(&self, pose: &Pose) -> f64 {
        match self.id {
            RuleId::R1 | RuleId::R5 => pose
                .angle(StickKind::Shank)
                .wrapped_diff(pose.angle(StickKind::Thigh)),
            RuleId::R2 => pose
                .angle(StickKind::Neck)
                .wrapped_diff(slj_motion::Angle::UP),
            RuleId::R3 | RuleId::R7 => pose.angle(StickKind::UpperArm).degrees(),
            RuleId::R4 => pose
                .angle(StickKind::UpperArm)
                .wrapped_diff(pose.angle(StickKind::Forearm)),
            RuleId::R6 => pose
                .angle(StickKind::Trunk)
                .wrapped_diff(slj_motion::Angle::UP),
        }
    }

    /// Evaluates the rule over a pose sequence.
    ///
    /// # Errors
    ///
    /// Returns [`MotionError::SequenceTooShort`] when the stage window
    /// is empty.
    pub fn evaluate(&self, seq: &PoseSeq) -> Result<RuleResult, MotionError> {
        let observed = match self.direction {
            Direction::Above => seq.stage_max(self.stage, |p| self.measure(p))?,
            Direction::Below => seq.stage_min(self.stage, |p| self.measure(p))?,
        };
        Ok(self.verdict(observed))
    }

    /// Evaluates the rule over a pose sequence, skipping the frames
    /// flagged in `excluded` (index-aligned with the sequence; missing
    /// tail entries count as included). This is the best-effort path:
    /// low-confidence estimates must not decide a window extremum.
    ///
    /// A non-empty window whose every frame is excluded is *not* an
    /// error: the clip simply holds no trustworthy evidence for this
    /// rule, and the result carries [`Verdict::Masked`] with no
    /// observation.
    ///
    /// # Errors
    ///
    /// Returns [`MotionError::SequenceTooShort`] when the stage window
    /// itself is empty (a genuinely too-short sequence).
    pub fn evaluate_masked(
        &self,
        seq: &PoseSeq,
        excluded: &[bool],
    ) -> Result<RuleResult, MotionError> {
        if seq.stage_range(self.stage).is_empty() {
            return Err(MotionError::SequenceTooShort {
                got: seq.len(),
                need: 2,
            });
        }
        let poses = seq.poses();
        let values = seq
            .stage_range(self.stage)
            .filter(|k| !excluded.get(*k).copied().unwrap_or(false))
            .map(|k| self.measure(&poses[k]));
        let observed = match self.direction {
            Direction::Above => values.fold(f64::NEG_INFINITY, f64::max),
            Direction::Below => values.fold(f64::INFINITY, f64::min),
        };
        if !observed.is_finite() {
            // Every frame in the window was confidence-masked.
            return Ok(RuleResult {
                rule: self.id,
                stage: self.stage,
                observed: None,
                threshold: self.threshold,
                verdict: Verdict::Masked,
            });
        }
        Ok(self.verdict(observed))
    }

    fn verdict(&self, observed: f64) -> RuleResult {
        let satisfied = match self.direction {
            Direction::Above => observed > self.threshold,
            Direction::Below => observed < self.threshold,
        };
        RuleResult {
            rule: self.id,
            stage: self.stage,
            observed: Some(observed),
            threshold: self.threshold,
            verdict: if satisfied {
                Verdict::Satisfied
            } else {
                Verdict::Violated
            },
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.direction {
            Direction::Above => '>',
            Direction::Below => '<',
        };
        write!(
            f,
            "{}: {} {op} {}°",
            self.id, self.expression, self.threshold
        )
    }
}

/// The three-way outcome of evaluating one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// The observed extremum satisfies the rule's condition.
    Satisfied,
    /// The observed extremum does not.
    Violated,
    /// Every frame of the rule's stage window was confidence-masked:
    /// the clip carries no trustworthy evidence either way.
    Masked,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Satisfied => "ok",
            Verdict::Violated => "VIOLATED",
            Verdict::Masked => "MASKED",
        })
    }
}

/// The verdict of one rule on one jump.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuleResult {
    /// Which rule was evaluated.
    pub rule: RuleId,
    /// The stage it was evaluated over.
    pub stage: Stage,
    /// The aggregated (max or min) observed value, degrees. `None` when
    /// the verdict is [`Verdict::Masked`] — no frame survived the
    /// confidence mask, so there is nothing to observe.
    pub observed: Option<f64>,
    /// The rule threshold, degrees.
    pub threshold: f64,
    /// The three-way outcome.
    pub verdict: Verdict,
}

impl RuleResult {
    /// Whether the rule is satisfied (false for masked results).
    pub fn satisfied(&self) -> bool {
        self.verdict == Verdict::Satisfied
    }

    /// Whether the rule is violated (false for masked results — an
    /// unobservable rule is *not* evidence of a flaw).
    pub fn violated(&self) -> bool {
        self.verdict == Verdict::Violated
    }

    /// Whether the rule's whole window was confidence-masked.
    pub fn masked(&self) -> bool {
        self.verdict == Verdict::Masked
    }
}

impl fmt::Display for RuleResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.observed {
            Some(observed) => write!(
                f,
                "{} [{}]: observed {:.1}° vs {:.1}° -> {}",
                self.rule, self.stage, observed, self.threshold, self.verdict
            ),
            None => write!(
                f,
                "{} [{}]: no unmasked frames vs {:.1}° -> {}",
                self.rule, self.stage, self.threshold, self.verdict
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_motion::{synthesize_jump, Angle, BodyDims, JumpConfig};

    #[test]
    fn table_2_definitions() {
        assert_eq!(RuleId::R1.rule().threshold, 60.0);
        assert_eq!(RuleId::R2.rule().threshold, 30.0);
        assert_eq!(RuleId::R3.rule().threshold, 270.0);
        assert_eq!(RuleId::R4.rule().threshold, 45.0);
        assert_eq!(RuleId::R5.rule().threshold, 60.0);
        assert_eq!(RuleId::R6.rule().threshold, 45.0);
        assert_eq!(RuleId::R7.rule().threshold, 160.0);
        for id in &RuleId::ALL[..4] {
            assert_eq!(id.rule().stage, Stage::Initiation, "{id}");
        }
        for id in &RuleId::ALL[4..] {
            assert_eq!(id.rule().stage, Stage::AirLanding, "{id}");
        }
        assert_eq!(RuleId::R7.rule().direction, Direction::Below);
    }

    #[test]
    fn measures_read_correct_sticks() {
        let dims = BodyDims::default();
        let pose = slj_motion::Pose::standing(&dims)
            .with_angle(StickKind::Thigh, Angle::from_degrees(130.0))
            .with_angle(StickKind::Shank, Angle::from_degrees(235.0))
            .with_angle(StickKind::Neck, Angle::from_degrees(33.0))
            .with_angle(StickKind::UpperArm, Angle::from_degrees(295.0))
            .with_angle(StickKind::Forearm, Angle::from_degrees(240.0))
            .with_angle(StickKind::Trunk, Angle::from_degrees(50.0));
        assert_eq!(RuleId::R1.rule().measure(&pose), 105.0);
        assert_eq!(RuleId::R2.rule().measure(&pose), 33.0);
        assert_eq!(RuleId::R3.rule().measure(&pose), 295.0);
        assert_eq!(RuleId::R4.rule().measure(&pose), 55.0);
        assert_eq!(RuleId::R5.rule().measure(&pose), 105.0);
        assert_eq!(RuleId::R6.rule().measure(&pose), 50.0);
        assert_eq!(RuleId::R7.rule().measure(&pose), 295.0);
    }

    #[test]
    fn backward_lean_does_not_satisfy_forward_rules() {
        // A trunk/neck just behind vertical reads as a small *negative*
        // lean, not as ~354° (the wrap-aware correction to the paper's
        // raw formulation).
        let dims = BodyDims::default();
        let pose = slj_motion::Pose::standing(&dims)
            .with_angle(StickKind::Trunk, Angle::from_degrees(354.0))
            .with_angle(StickKind::Neck, Angle::from_degrees(350.0));
        assert!((RuleId::R6.rule().measure(&pose) - (-6.0)).abs() < 1e-9);
        assert!((RuleId::R2.rule().measure(&pose) - (-10.0)).abs() < 1e-9);
    }

    #[test]
    fn good_jump_satisfies_every_rule() {
        let seq = synthesize_jump(&JumpConfig::default());
        for id in RuleId::ALL {
            let r = id.rule().evaluate(&seq).unwrap();
            assert!(r.satisfied(), "{r}");
        }
    }

    #[test]
    fn each_flaw_violates_its_rule() {
        use slj_motion::JumpFlaw;
        for flaw in JumpFlaw::ALL {
            let seq = synthesize_jump(&JumpConfig::with_flaw(flaw));
            let id = RuleId::ALL[flaw.rule_number() - 1];
            let r = id.rule().evaluate(&seq).unwrap();
            assert!(r.violated(), "flaw {flaw:?} should violate {id}: {r}");
        }
    }

    #[test]
    fn flaws_do_not_break_other_rules() {
        use slj_motion::JumpFlaw;
        for flaw in JumpFlaw::ALL {
            let seq = synthesize_jump(&JumpConfig::with_flaw(flaw));
            let mut violated: Vec<usize> = RuleId::ALL
                .iter()
                .filter(|id| id.rule().evaluate(&seq).unwrap().violated())
                .map(|id| id.number())
                .collect();
            violated.sort_unstable();
            assert_eq!(
                violated,
                vec![flaw.rule_number()],
                "flaw {flaw:?} violated extra rules"
            );
        }
    }

    #[test]
    fn too_short_sequence_errors() {
        let dims = BodyDims::default();
        let seq = PoseSeq::new(vec![slj_motion::Pose::standing(&dims)], 10.0);
        // One frame -> empty initiation window.
        assert!(RuleId::R1.rule().evaluate(&seq).is_err());
        // But the air/landing window holds the single frame.
        assert!(RuleId::R6.rule().evaluate(&seq).is_ok());
    }

    #[test]
    fn fully_masked_window_yields_masked_verdict_for_every_rule() {
        // A healthy-length clip whose every frame is confidence-masked
        // in one stage: the rule must report Masked, not error out as
        // SequenceTooShort — the sequence isn't short, it's untrusted.
        let seq = synthesize_jump(&JumpConfig::default());
        for id in RuleId::ALL {
            let rule = id.rule();
            let mut excluded = vec![false; seq.len()];
            for k in seq.stage_range(rule.stage) {
                excluded[k] = true;
            }
            let r = rule.evaluate_masked(&seq, &excluded).unwrap();
            assert!(r.masked(), "{id}: {r}");
            assert!(!r.satisfied() && !r.violated(), "{id}");
            assert_eq!(r.observed, None, "{id}");
            assert!(r.to_string().contains("MASKED"), "{id}: {r}");
            // The *other* stage's mask leaves this rule observable.
            let other = vec![false; seq.len()];
            assert!(!rule.evaluate_masked(&seq, &other).unwrap().masked());
        }
    }

    #[test]
    fn masked_path_still_errors_on_genuinely_empty_window() {
        let dims = BodyDims::default();
        let seq = PoseSeq::new(vec![slj_motion::Pose::standing(&dims)], 10.0);
        // One frame -> the initiation window itself is empty: that is a
        // too-short sequence, not a masked one.
        assert!(matches!(
            RuleId::R1.rule().evaluate_masked(&seq, &[false]),
            Err(MotionError::SequenceTooShort { .. })
        ));
    }

    #[test]
    fn displays() {
        let r = RuleId::R1.rule();
        let s = r.to_string();
        assert!(s.contains("R1") && s.contains("60"));
        let res = r
            .evaluate(&synthesize_jump(&JumpConfig::default()))
            .unwrap();
        assert!(res.to_string().contains("ok"));
        assert_eq!(RuleId::R7.to_string(), "R7");
    }
}
