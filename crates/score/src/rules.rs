//! The scoring rules of Table 2.
//!
//! | Rule | Stage        | Condition            |
//! |------|--------------|----------------------|
//! | R1   | Initiation   | ρ6 − ρ3 > 60°        |
//! | R2   | Initiation   | ρ1 > 30°             |
//! | R3   | Initiation   | ρ2 > 270°            |
//! | R4   | Initiation   | ρ2 − ρ5 > 45°        |
//! | R5   | Air/Landing  | ρ6 − ρ3 > 60°        |
//! | R6   | Air/Landing  | ρ0 > 45°             |
//! | R7   | Air/Landing  | ρ2 < 160°            |
//!
//! R1–R6 use the **maximum** of the quantity over the stage window, as
//! the paper prescribes; R7 is a `<` condition, so the natural window
//! aggregate is the **minimum** ("did the arm ever come forward").

use serde::{Deserialize, Serialize};
use slj_motion::seq::Stage;
use slj_motion::{MotionError, Pose, PoseSeq, StickKind};
use std::fmt;

/// Identifier of one of the seven rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleId {
    /// R1 — knees bent during initiation.
    R1,
    /// R2 — neck bent forward during initiation.
    R2,
    /// R3 — arms swung back during initiation.
    R3,
    /// R4 — arms bent during initiation.
    R4,
    /// R5 — knees bent on the air/landing.
    R5,
    /// R6 — trunk bent forward on the air/landing.
    R6,
    /// R7 — arms swung forward after landing.
    R7,
}

impl RuleId {
    /// All rules in table order.
    pub const ALL: [RuleId; 7] = [
        RuleId::R1,
        RuleId::R2,
        RuleId::R3,
        RuleId::R4,
        RuleId::R5,
        RuleId::R6,
        RuleId::R7,
    ];

    /// The 1-based rule number.
    pub fn number(self) -> usize {
        match self {
            RuleId::R1 => 1,
            RuleId::R2 => 2,
            RuleId::R3 => 3,
            RuleId::R4 => 4,
            RuleId::R5 => 5,
            RuleId::R6 => 6,
            RuleId::R7 => 7,
        }
    }

    /// The full rule definition.
    pub fn rule(self) -> Rule {
        match self {
            RuleId::R1 => Rule {
                id: self,
                stage: Stage::Initiation,
                expression: "rho6 - rho3",
                threshold: 60.0,
                direction: Direction::Above,
            },
            RuleId::R2 => Rule {
                id: self,
                stage: Stage::Initiation,
                expression: "rho1",
                threshold: 30.0,
                direction: Direction::Above,
            },
            RuleId::R3 => Rule {
                id: self,
                stage: Stage::Initiation,
                expression: "rho2",
                threshold: 270.0,
                direction: Direction::Above,
            },
            RuleId::R4 => Rule {
                id: self,
                stage: Stage::Initiation,
                expression: "rho2 - rho5",
                threshold: 45.0,
                direction: Direction::Above,
            },
            RuleId::R5 => Rule {
                id: self,
                stage: Stage::AirLanding,
                expression: "rho6 - rho3",
                threshold: 60.0,
                direction: Direction::Above,
            },
            RuleId::R6 => Rule {
                id: self,
                stage: Stage::AirLanding,
                expression: "rho0",
                threshold: 45.0,
                direction: Direction::Above,
            },
            RuleId::R7 => Rule {
                id: self,
                stage: Stage::AirLanding,
                expression: "rho2",
                threshold: 160.0,
                direction: Direction::Below,
            },
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.number())
    }
}

/// Which side of the threshold satisfies the rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// The aggregated quantity must exceed the threshold (R1–R6, using
    /// the stage maximum).
    Above,
    /// The aggregated quantity must drop below the threshold (R7, using
    /// the stage minimum).
    Below,
}

/// One rule of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Which rule this is.
    pub id: RuleId,
    /// The stage whose frames are examined.
    pub stage: Stage,
    /// Human-readable form of the measured expression.
    pub expression: &'static str,
    /// Threshold in degrees.
    pub threshold: f64,
    /// Side of the threshold that satisfies the rule.
    pub direction: Direction,
}

impl Rule {
    /// The per-frame quantity this rule measures, degrees.
    ///
    /// Reproduction note: the paper states the conditions on the raw
    /// normalised angles (e.g. `ρ0 > 45°`), which misreads estimates
    /// that land just *behind* vertical — a trunk at ρ0 = 354°
    /// (leaning 6° backward) would satisfy "bent forward by more than
    /// 45°". Since the paper never implemented its scoring component,
    /// this reproduction evaluates the angular quantities with
    /// wrap-aware semantics: leans (R2, R6) and joint-bend differences
    /// (R1, R4, R5) are signed shortest-arc values in `(−180°, 180°]`.
    /// R3 and R7 genuinely address the full arm revolution and keep the
    /// raw `[0°, 360°)` reading.
    pub fn measure(&self, pose: &Pose) -> f64 {
        match self.id {
            RuleId::R1 | RuleId::R5 => pose
                .angle(StickKind::Shank)
                .wrapped_diff(pose.angle(StickKind::Thigh)),
            RuleId::R2 => pose
                .angle(StickKind::Neck)
                .wrapped_diff(slj_motion::Angle::UP),
            RuleId::R3 | RuleId::R7 => pose.angle(StickKind::UpperArm).degrees(),
            RuleId::R4 => pose
                .angle(StickKind::UpperArm)
                .wrapped_diff(pose.angle(StickKind::Forearm)),
            RuleId::R6 => pose
                .angle(StickKind::Trunk)
                .wrapped_diff(slj_motion::Angle::UP),
        }
    }

    /// Evaluates the rule over a pose sequence.
    ///
    /// # Errors
    ///
    /// Returns [`MotionError::SequenceTooShort`] when the stage window
    /// is empty.
    pub fn evaluate(&self, seq: &PoseSeq) -> Result<RuleResult, MotionError> {
        let observed = match self.direction {
            Direction::Above => seq.stage_max(self.stage, |p| self.measure(p))?,
            Direction::Below => seq.stage_min(self.stage, |p| self.measure(p))?,
        };
        Ok(self.verdict(observed))
    }

    /// Evaluates the rule over a pose sequence, skipping the frames
    /// flagged in `excluded` (index-aligned with the sequence; missing
    /// tail entries count as included). This is the best-effort path:
    /// low-confidence estimates must not decide a window extremum.
    ///
    /// # Errors
    ///
    /// Returns [`MotionError::SequenceTooShort`] when the stage window
    /// is empty, or empty after exclusion.
    pub fn evaluate_masked(
        &self,
        seq: &PoseSeq,
        excluded: &[bool],
    ) -> Result<RuleResult, MotionError> {
        let poses = seq.poses();
        let values = seq
            .stage_range(self.stage)
            .filter(|k| !excluded.get(*k).copied().unwrap_or(false))
            .map(|k| self.measure(&poses[k]));
        let observed = match self.direction {
            Direction::Above => values.fold(f64::NEG_INFINITY, f64::max),
            Direction::Below => values.fold(f64::INFINITY, f64::min),
        };
        if !observed.is_finite() {
            return Err(MotionError::SequenceTooShort { got: 0, need: 1 });
        }
        Ok(self.verdict(observed))
    }

    fn verdict(&self, observed: f64) -> RuleResult {
        let satisfied = match self.direction {
            Direction::Above => observed > self.threshold,
            Direction::Below => observed < self.threshold,
        };
        RuleResult {
            rule: self.id,
            stage: self.stage,
            observed,
            threshold: self.threshold,
            satisfied,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.direction {
            Direction::Above => '>',
            Direction::Below => '<',
        };
        write!(
            f,
            "{}: {} {op} {}°",
            self.id, self.expression, self.threshold
        )
    }
}

/// The verdict of one rule on one jump.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuleResult {
    /// Which rule was evaluated.
    pub rule: RuleId,
    /// The stage it was evaluated over.
    pub stage: Stage,
    /// The aggregated (max or min) observed value, degrees.
    pub observed: f64,
    /// The rule threshold, degrees.
    pub threshold: f64,
    /// Whether the rule is satisfied.
    pub satisfied: bool,
}

impl fmt::Display for RuleResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: observed {:.1}° vs {:.1}° -> {}",
            self.rule,
            self.stage,
            self.observed,
            self.threshold,
            if self.satisfied { "ok" } else { "VIOLATED" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_motion::{synthesize_jump, Angle, BodyDims, JumpConfig};

    #[test]
    fn table_2_definitions() {
        assert_eq!(RuleId::R1.rule().threshold, 60.0);
        assert_eq!(RuleId::R2.rule().threshold, 30.0);
        assert_eq!(RuleId::R3.rule().threshold, 270.0);
        assert_eq!(RuleId::R4.rule().threshold, 45.0);
        assert_eq!(RuleId::R5.rule().threshold, 60.0);
        assert_eq!(RuleId::R6.rule().threshold, 45.0);
        assert_eq!(RuleId::R7.rule().threshold, 160.0);
        for id in &RuleId::ALL[..4] {
            assert_eq!(id.rule().stage, Stage::Initiation, "{id}");
        }
        for id in &RuleId::ALL[4..] {
            assert_eq!(id.rule().stage, Stage::AirLanding, "{id}");
        }
        assert_eq!(RuleId::R7.rule().direction, Direction::Below);
    }

    #[test]
    fn measures_read_correct_sticks() {
        let dims = BodyDims::default();
        let pose = slj_motion::Pose::standing(&dims)
            .with_angle(StickKind::Thigh, Angle::from_degrees(130.0))
            .with_angle(StickKind::Shank, Angle::from_degrees(235.0))
            .with_angle(StickKind::Neck, Angle::from_degrees(33.0))
            .with_angle(StickKind::UpperArm, Angle::from_degrees(295.0))
            .with_angle(StickKind::Forearm, Angle::from_degrees(240.0))
            .with_angle(StickKind::Trunk, Angle::from_degrees(50.0));
        assert_eq!(RuleId::R1.rule().measure(&pose), 105.0);
        assert_eq!(RuleId::R2.rule().measure(&pose), 33.0);
        assert_eq!(RuleId::R3.rule().measure(&pose), 295.0);
        assert_eq!(RuleId::R4.rule().measure(&pose), 55.0);
        assert_eq!(RuleId::R5.rule().measure(&pose), 105.0);
        assert_eq!(RuleId::R6.rule().measure(&pose), 50.0);
        assert_eq!(RuleId::R7.rule().measure(&pose), 295.0);
    }

    #[test]
    fn backward_lean_does_not_satisfy_forward_rules() {
        // A trunk/neck just behind vertical reads as a small *negative*
        // lean, not as ~354° (the wrap-aware correction to the paper's
        // raw formulation).
        let dims = BodyDims::default();
        let pose = slj_motion::Pose::standing(&dims)
            .with_angle(StickKind::Trunk, Angle::from_degrees(354.0))
            .with_angle(StickKind::Neck, Angle::from_degrees(350.0));
        assert!((RuleId::R6.rule().measure(&pose) - (-6.0)).abs() < 1e-9);
        assert!((RuleId::R2.rule().measure(&pose) - (-10.0)).abs() < 1e-9);
    }

    #[test]
    fn good_jump_satisfies_every_rule() {
        let seq = synthesize_jump(&JumpConfig::default());
        for id in RuleId::ALL {
            let r = id.rule().evaluate(&seq).unwrap();
            assert!(r.satisfied, "{r}");
        }
    }

    #[test]
    fn each_flaw_violates_its_rule() {
        use slj_motion::JumpFlaw;
        for flaw in JumpFlaw::ALL {
            let seq = synthesize_jump(&JumpConfig::with_flaw(flaw));
            let id = RuleId::ALL[flaw.rule_number() - 1];
            let r = id.rule().evaluate(&seq).unwrap();
            assert!(!r.satisfied, "flaw {flaw:?} should violate {id}: {r}");
        }
    }

    #[test]
    fn flaws_do_not_break_other_rules() {
        use slj_motion::JumpFlaw;
        for flaw in JumpFlaw::ALL {
            let seq = synthesize_jump(&JumpConfig::with_flaw(flaw));
            let mut violated: Vec<usize> = RuleId::ALL
                .iter()
                .filter(|id| !id.rule().evaluate(&seq).unwrap().satisfied)
                .map(|id| id.number())
                .collect();
            violated.sort_unstable();
            assert_eq!(
                violated,
                vec![flaw.rule_number()],
                "flaw {flaw:?} violated extra rules"
            );
        }
    }

    #[test]
    fn too_short_sequence_errors() {
        let dims = BodyDims::default();
        let seq = PoseSeq::new(vec![slj_motion::Pose::standing(&dims)], 10.0);
        // One frame -> empty initiation window.
        assert!(RuleId::R1.rule().evaluate(&seq).is_err());
        // But the air/landing window holds the single frame.
        assert!(RuleId::R6.rule().evaluate(&seq).is_ok());
    }

    #[test]
    fn displays() {
        let r = RuleId::R1.rule();
        let s = r.to_string();
        assert!(s.contains("R1") && s.contains("60"));
        let res = r
            .evaluate(&synthesize_jump(&JumpConfig::default()))
            .unwrap();
        assert!(res.to_string().contains("ok"));
        assert_eq!(RuleId::R7.to_string(), "R7");
    }
}
