//! Scoring rules for the standing long jump (paper, Section 4).
//!
//! Physical-education experts' standards (Table 1, E1–E7) are encoded as
//! [`standards::Standard`]; their angle translations (Table 2, R1–R7) as
//! [`rules::Rule`]. Each rule aggregates a stick-model quantity over one
//! of the two stages — the paper: *"to check R1, the angle difference
//! between ρ6 and ρ3 should be examined from the first frame to the 10th
//! frame and the maximum of all the angle differences is then used"* —
//! and compares it against a threshold. [`card::ScoreCard`] bundles the
//! seven verdicts with per-violation coaching advice, completing the
//! scoring component the paper leaves as future work.
//!
//! # Example
//!
//! ```
//! use slj_motion::{synthesize_jump, JumpConfig, JumpFlaw};
//! use slj_score::score_jump;
//!
//! let good = synthesize_jump(&JumpConfig::default());
//! let card = score_jump(&good).unwrap();
//! assert_eq!(card.score(), 7);
//!
//! let flawed = synthesize_jump(&JumpConfig::with_flaw(JumpFlaw::ShallowCrouch));
//! let card = score_jump(&flawed).unwrap();
//! assert!(!card.result(slj_score::rules::RuleId::R1).satisfied());
//! ```

pub mod card;
pub mod rules;
pub mod standards;
pub mod trace;

pub use card::{score_jump, score_jump_masked, ScoreCard};
pub use rules::{Direction, Rule, RuleId, RuleResult, Verdict};
pub use standards::Standard;
pub use trace::RuleTrace;
