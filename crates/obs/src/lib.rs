//! Observability for the analysis pipeline: spans, metrics, traces and
//! profiling hooks.
//!
//! The pipeline is deterministic by contract — `Parallelism` is a
//! throughput knob, never a semantics knob — and its observability
//! layer must uphold the same contract, or a trace diff would cry wolf
//! every time someone changes `--threads`. The design therefore splits
//! observation into two strictly separated halves:
//!
//! * **Deterministic span data** ([`SegmentObs`], [`TrackObs`],
//!   [`RuleObs`], assembled per clip into [`ClipObs`]): pure functions
//!   of the analysis *results* (stage masks, GA accounting, rule
//!   verdicts), collected in frame order. Everything derived from it —
//!   the JSONL trace ([`ClipObs::render_trace`]) and the
//!   [`MetricsRegistry`] ([`ClipObs::metrics`]) — is byte-identical at
//!   every thread count because the inputs are.
//! * **Wall-clock profiling** ([`Profiler`]): span-keyed duration
//!   accumulation for benchmarks. Timings are inherently
//!   non-deterministic, so they never enter the trace or the registry;
//!   the perf harness reads them directly.
//!
//! The trace schema is `slj-trace/1`: one JSON object per line, first a
//! header carrying the schema tag, then two records per frame
//! (`frame.segment`, `frame.track`) in frame order, then one
//! `score.rule` record per rule in table order. No wall-clock values,
//! thread counts or host details appear in the trace — see DESIGN.md
//! §12.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// The trace schema identifier emitted in the JSONL header line.
pub const TRACE_SCHEMA: &str = "slj-trace/1";

/// The health-event schema identifier the `slj-serve` supervisor emits
/// in its JSONL header line.
pub const SERVE_SCHEMA: &str = "slj-serve/1";

/// Static metric keys for the `slj-serve` supervisor's per-session
/// [`MetricsRegistry`]. Shared here (like [`spans`]) so the service,
/// its tests and any dashboard agree on the schema by construction.
pub mod serve_keys {
    /// Frames successfully analysed.
    pub const FRAMES: &str = "serve.frames";
    /// Frames shed at the queue (backpressure rejects).
    pub const SHEDS: &str = "serve.sheds";
    /// Frames that blew their per-frame deadline budget.
    pub const DEADLINE_MISSES: &str = "serve.deadline_misses";
    /// Panics caught by the supervisor.
    pub const PANICS: &str = "serve.panics";
    /// Supervisor restarts (checkpoint or cold).
    pub const RESTARTS: &str = "serve.restarts";
    /// Frames rejected for a mid-stream shape mismatch.
    pub const REJECTED: &str = "serve.rejected";
    /// Degraded frames charged against the session budget.
    pub const DEGRADED: &str = "serve.degraded";
    /// Stall strikes recorded against an idle producer.
    pub const STALLS: &str = "serve.stalls";

    /// Every key, for pre-warming a registry so the supervisor's hot
    /// paths never insert (allocation-free rejects).
    pub const ALL: [&str; 8] = [
        FRAMES,
        SHEDS,
        DEADLINE_MISSES,
        PANICS,
        RESTARTS,
        REJECTED,
        DEGRADED,
        STALLS,
    ];
}

/// Static span names for the segmentation stage kernels, shared by the
/// profiling hooks ([`Profiler`]) and the bench harness so stage
/// attribution survives refactors of either side.
pub mod spans {
    /// Fused background subtraction + Eq. 1 shadow predicate.
    pub const SEGMENT_EXTRACT: &str = "segment.extract";
    /// 8-neighbour vote noise filter.
    pub const SEGMENT_DENOISE: &str = "segment.denoise";
    /// Small-spot removal (labelling + area filter).
    pub const SEGMENT_DESPOT: &str = "segment.despot";
    /// Motion-based ghost suppression.
    pub const SEGMENT_DEGHOST: &str = "segment.deghost";
    /// Hole filling.
    pub const SEGMENT_FILL: &str = "segment.fill";
    /// Shadow mask assembly and final-mask subtraction.
    pub const SEGMENT_SHADOW: &str = "segment.shadow";

    /// All segmentation stage spans in pipeline order.
    pub const SEGMENT_STAGES: [&str; 6] = [
        SEGMENT_EXTRACT,
        SEGMENT_DENOISE,
        SEGMENT_DESPOT,
        SEGMENT_DEGHOST,
        SEGMENT_FILL,
        SEGMENT_SHADOW,
    ];
}

// ---------------------------------------------------------------------
// Deterministic span data
// ---------------------------------------------------------------------

/// One frame's segmentation span: the pixel population after every
/// stage of the Section-2 pipeline. Derived from the stage masks, so it
/// is identical however many threads produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SegmentObs {
    /// Foreground pixels after raw background subtraction.
    pub raw_px: u64,
    /// After the 8-neighbour noise vote.
    pub denoised_px: u64,
    /// After small-spot removal.
    pub despotted_px: u64,
    /// After ghost suppression.
    pub deghosted_px: u64,
    /// Connected components examined by the ghost stage (0 when the
    /// stage is disabled or on the first frame).
    pub ghost_components: u64,
    /// Components classified as ghosts and removed.
    pub ghosts_removed: u64,
    /// After hole filling.
    pub filled_px: u64,
    /// Pixels classified as shadow by Eq. 1.
    pub shadow_px: u64,
    /// The final silhouette.
    pub final_px: u64,
}

/// One frame's GA tracking span. Every field is invariant under the
/// parallel fitness fan-out: the GA's control flow is bit-identical at
/// any thread count, unique-genome counts are set sizes (not call
/// counts), and the branch-and-bound statistics are recomputed from the
/// winning pose alone.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrackObs {
    /// GA generations run for this frame (all rungs of the winner's
    /// run; 0 for frame 0 and synthesised frames).
    pub generations: u64,
    /// Fitness requests billed to this frame (memo hits included —
    /// request count is a control-flow fact, unlike the racy hit/miss
    /// split under parallel duplicate evaluation).
    pub evaluations: u64,
    /// Distinct genomes actually evaluated (memo insertions across all
    /// rungs; 0 when the memo is disabled).
    pub unique_genomes: u64,
    /// Fitness evaluations the memo avoided: requests minus distinct
    /// genomes (0 when the memo is disabled).
    pub memo_saved: u64,
    /// Exact Eq. 3 stick evaluations when scoring the frame's final
    /// pose with the branch-and-bound path.
    pub bb_candidates: u64,
    /// Stick evaluations the branch-and-bound skipped on that same
    /// scoring pass. `bb_candidates + bb_pruned = 8 × pixels`.
    pub bb_pruned: u64,
    /// Recovery-ladder rungs that completed a GA run for this frame.
    pub rungs_attempted: u64,
    /// The recovery rung that produced the estimate: `none`, `widened`,
    /// `cold_restart`, `interpolated` or `carried`.
    pub recovery: String,
}

impl TrackObs {
    /// Fraction of branch-and-bound stick tests pruned on the winning
    /// pose's scoring pass (0 when nothing was scored).
    pub fn prune_rate(&self) -> f64 {
        let total = self.bb_candidates + self.bb_pruned;
        if total == 0 {
            0.0
        } else {
            self.bb_pruned as f64 / total as f64
        }
    }
}

/// One frame's spans: segmentation + tracking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameObs {
    /// Frame index within the clip.
    pub frame: u64,
    /// The segmentation stage span.
    pub segment: SegmentObs,
    /// The GA tracking span.
    pub track: TrackObs,
}

/// One rule's scoring span: its stage window and how much of it the
/// confidence mask removed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleObs {
    /// Rule name, `R1`–`R7`.
    pub rule: String,
    /// The stage whose window was examined.
    pub stage: String,
    /// Window start frame (inclusive).
    pub window_start: u64,
    /// Window end frame (exclusive).
    pub window_end: u64,
    /// Frames that entered the extremum after masking.
    pub considered: u64,
    /// Frames excluded by the confidence mask.
    pub masked: u64,
    /// The verdict: `satisfied`, `violated` or `masked`.
    pub verdict: String,
    /// The aggregated observed value, degrees; `None` when the window
    /// was fully masked.
    pub observed: Option<f64>,
}

/// A whole clip's span data: the in-memory collector exposed on
/// `JumpAnalysis` / `AnalysisReport`, and the single source for both
/// the JSONL trace and the metrics registry.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClipObs {
    /// Per-frame spans, in frame order.
    pub frames: Vec<FrameObs>,
    /// Per-rule scoring spans, in table order.
    pub rules: Vec<RuleObs>,
}

/// JSONL record construction (private). The per-line key order is the
/// schema, fixed here explicitly: the vendored serde derive supports
/// neither `flatten` nor lifetime-parameterised structs, so each record
/// is built as an insertion-ordered [`serde::Value::Object`] directly.
mod records {
    use serde::{Serialize, Value};

    fn object(fields: Vec<(&str, Value)>) -> Value {
        Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    pub fn header(schema: &str, frames: u64, rules: u64) -> Value {
        object(vec![
            ("schema", Value::Str(schema.to_owned())),
            ("frames", Value::U64(frames)),
            ("rules", Value::U64(rules)),
        ])
    }

    pub fn segment(frame: u64, s: &super::SegmentObs) -> Value {
        object(vec![
            ("span", Value::Str("frame.segment".to_owned())),
            ("frame", Value::U64(frame)),
            ("raw_px", Value::U64(s.raw_px)),
            ("denoised_px", Value::U64(s.denoised_px)),
            ("despotted_px", Value::U64(s.despotted_px)),
            ("deghosted_px", Value::U64(s.deghosted_px)),
            ("ghost_components", Value::U64(s.ghost_components)),
            ("ghosts_removed", Value::U64(s.ghosts_removed)),
            ("filled_px", Value::U64(s.filled_px)),
            ("shadow_px", Value::U64(s.shadow_px)),
            ("final_px", Value::U64(s.final_px)),
        ])
    }

    pub fn track(frame: u64, t: &super::TrackObs) -> Value {
        object(vec![
            ("span", Value::Str("frame.track".to_owned())),
            ("frame", Value::U64(frame)),
            ("generations", Value::U64(t.generations)),
            ("evaluations", Value::U64(t.evaluations)),
            ("unique_genomes", Value::U64(t.unique_genomes)),
            ("memo_saved", Value::U64(t.memo_saved)),
            ("bb_candidates", Value::U64(t.bb_candidates)),
            ("bb_pruned", Value::U64(t.bb_pruned)),
            ("rungs_attempted", Value::U64(t.rungs_attempted)),
            ("recovery", Value::Str(t.recovery.clone())),
        ])
    }

    pub fn rule(r: &super::RuleObs) -> Value {
        object(vec![
            ("span", Value::Str("score.rule".to_owned())),
            ("rule", Value::Str(r.rule.clone())),
            ("stage", Value::Str(r.stage.clone())),
            ("window_start", Value::U64(r.window_start)),
            ("window_end", Value::U64(r.window_end)),
            ("considered", Value::U64(r.considered)),
            ("masked", Value::U64(r.masked)),
            ("verdict", Value::Str(r.verdict.clone())),
            ("observed", r.observed.to_value()),
        ])
    }
}

impl ClipObs {
    /// Renders the clip as a `slj-trace/1` JSONL document: a header
    /// line, two lines per frame (segment, track) in frame order, one
    /// line per rule in table order. Deterministic byte-for-byte for a
    /// given analysis result — no timings, thread counts or host
    /// details are recorded.
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, line: String| {
            out.push_str(&line);
            out.push('\n');
        };
        push(
            &mut out,
            serde_json::to_string(&records::header(
                TRACE_SCHEMA,
                self.frames.len() as u64,
                self.rules.len() as u64,
            ))
            .expect("trace header serialises"),
        );
        for f in &self.frames {
            push(
                &mut out,
                serde_json::to_string(&records::segment(f.frame, &f.segment))
                    .expect("segment span serialises"),
            );
            push(
                &mut out,
                serde_json::to_string(&records::track(f.frame, &f.track))
                    .expect("track span serialises"),
            );
        }
        for r in &self.rules {
            push(
                &mut out,
                serde_json::to_string(&records::rule(r)).expect("rule span serialises"),
            );
        }
        out
    }

    /// Aggregates the clip's spans into the deterministic metrics
    /// registry. Aggregation folds in frame order over data that is
    /// itself thread-invariant, so the rendered registry is
    /// byte-identical at every `Parallelism` setting.
    pub fn metrics(&self) -> MetricsRegistry {
        /// Generations-per-frame buckets (upper bounds; +inf implied).
        const GENERATION_BOUNDS: &[u64] = &[0, 2, 4, 8, 16, 32, 64];
        /// Final-silhouette-size buckets, pixels.
        const SILHOUETTE_BOUNDS: &[u64] = &[500, 1000, 2000, 4000, 8000, 16000, 32000];

        let mut m = MetricsRegistry::default();
        m.inc("segment.frames", self.frames.len() as u64);
        for f in &self.frames {
            m.inc("segment.final_px", f.segment.final_px);
            m.inc("segment.shadow_px", f.segment.shadow_px);
            m.inc("segment.ghost_components", f.segment.ghost_components);
            m.inc("segment.ghosts_removed", f.segment.ghosts_removed);
            m.observe(
                "segment.final_px.hist",
                SILHOUETTE_BOUNDS,
                f.segment.final_px,
            );
            m.inc("track.generations", f.track.generations);
            m.inc("track.evaluations", f.track.evaluations);
            m.inc("track.unique_genomes", f.track.unique_genomes);
            m.inc("track.memo_saved", f.track.memo_saved);
            m.inc("track.bb_candidates", f.track.bb_candidates);
            m.inc("track.bb_pruned", f.track.bb_pruned);
            m.inc("track.rungs_attempted", f.track.rungs_attempted);
            m.observe(
                "track.generations.hist",
                GENERATION_BOUNDS,
                f.track.generations,
            );
            let rung = match f.track.recovery.as_str() {
                "widened" => "track.recovery.widened",
                "cold_restart" => "track.recovery.cold_restart",
                "interpolated" => "track.recovery.interpolated",
                "carried" => "track.recovery.carried",
                _ => "track.recovery.none",
            };
            m.inc(rung, 1);
        }
        m.inc("score.rules", self.rules.len() as u64);
        for r in &self.rules {
            let verdict = match r.verdict.as_str() {
                "satisfied" => "score.satisfied",
                "violated" => "score.violated",
                _ => "score.masked",
            };
            m.inc(verdict, 1);
            m.inc("score.masked_frames", r.masked);
        }
        m
    }
}

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

/// A fixed-bound histogram over `u64` observations: `bounds[i]` is the
/// inclusive upper edge of bucket `i`, with one overflow bucket above
/// the last bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: &'static [u64],
    counts: Vec<u64>,
    sum: u64,
    total: u64,
}

impl Histogram {
    /// An empty histogram with the given static bucket bounds.
    pub fn new(bounds: &'static [u64]) -> Self {
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            total: 0,
        }
    }

    /// Folds another histogram into this one bucket-wise.
    ///
    /// # Panics
    ///
    /// Panics when the bucket bounds differ — merging histograms of
    /// different shapes is a schema bug, not data.
    pub fn absorb(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "absorbing histograms with different bounds"
        );
        for (count, more) in self.counts.iter_mut().zip(&other.counts) {
            *count += more;
        }
        self.sum += other.sum;
        self.total += other.total;
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.sum += value;
        self.total += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Bucket edges and counts, in order; the final entry is the
    /// overflow bucket (edge `None`).
    pub fn buckets(&self) -> impl Iterator<Item = (Option<u64>, u64)> + '_ {
        self.bounds
            .iter()
            .map(|&b| Some(b))
            .chain(std::iter::once(None))
            .zip(self.counts.iter().copied())
    }
}

/// Monotonic counters and histograms keyed by static names.
///
/// Keys are `&'static str` by design: a metric name is part of the
/// schema, not data, and the `BTreeMap` keeps iteration (and therefore
/// [`MetricsRegistry::render`]) in one deterministic order regardless
/// of insertion order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// Adds `by` to the named monotonic counter (creating it at 0).
    pub fn inc(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// The named counter's value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records one observation into the named histogram, creating it
    /// with the given bounds on first use.
    pub fn observe(&mut self, name: &'static str, bounds: &'static [u64], value: u64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Folds another registry into this one: counters add, histograms
    /// (same bounds) merge bucket-wise. `slj-serve` uses this to roll a
    /// retired session's counters into a service-lifetime aggregate, so
    /// recycling session slots never loses observability data.
    pub fn absorb(&mut self, other: &MetricsRegistry) {
        for (name, value) in other.counters() {
            self.inc(name, value);
        }
        for (&name, histogram) in &other.histograms {
            match self.histograms.entry(name) {
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    slot.get_mut().absorb(histogram);
                }
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(histogram.clone());
                }
            }
        }
    }

    /// Renders the registry as a deterministic text block (names in
    /// lexicographic order, integer-exact values).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "metrics ({TRACE_SCHEMA})");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "  {name} = {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "  {name}: count {}, sum {}, mean {:.1}",
                h.count(),
                h.sum(),
                h.mean()
            );
            for (edge, count) in h.buckets() {
                match edge {
                    Some(e) => {
                        let _ = writeln!(out, "    le {e} = {count}");
                    }
                    None => {
                        let _ = writeln!(out, "    le inf = {count}");
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Profiling hooks
// ---------------------------------------------------------------------

/// Wall-clock span accumulator: the profiling side of the span API.
///
/// Stage kernels report durations against the static span names in
/// [`spans`]; the bench harness sums, merges and reads them back. Wall
/// time is inherently non-deterministic, so a `Profiler` never feeds
/// the trace or the metrics registry — it exists for perf attribution
/// only.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    slots: BTreeMap<&'static str, Duration>,
}

impl Profiler {
    /// Adds `elapsed` to the named span.
    pub fn record(&mut self, span: &'static str, elapsed: Duration) {
        *self.slots.entry(span).or_default() += elapsed;
    }

    /// Runs `work`, billing its wall time to the named span.
    pub fn time<T>(&mut self, span: &'static str, work: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = work();
        self.record(span, start.elapsed());
        out
    }

    /// Accumulated time of one span (zero when never recorded).
    pub fn get(&self, span: &str) -> Duration {
        self.slots.get(span).copied().unwrap_or_default()
    }

    /// Accumulated time of one span, milliseconds.
    pub fn ms(&self, span: &str) -> f64 {
        self.get(span).as_secs_f64() * 1e3
    }

    /// Sum of every span.
    pub fn total(&self) -> Duration {
        self.slots.values().sum()
    }

    /// Merges another profiler's spans into this one (used to combine
    /// per-worker profilers after a parallel fan-out).
    pub fn absorb(&mut self, other: &Profiler) {
        for (&span, &d) in &other.slots {
            self.record(span, d);
        }
    }

    /// All spans in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Duration)> + '_ {
        self.slots.iter().map(|(&k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_clip() -> ClipObs {
        ClipObs {
            frames: vec![
                FrameObs {
                    frame: 0,
                    segment: SegmentObs {
                        raw_px: 120,
                        denoised_px: 110,
                        despotted_px: 100,
                        deghosted_px: 100,
                        ghost_components: 2,
                        ghosts_removed: 1,
                        filled_px: 105,
                        shadow_px: 5,
                        final_px: 100,
                    },
                    track: TrackObs {
                        generations: 0,
                        evaluations: 1,
                        unique_genomes: 0,
                        memo_saved: 0,
                        bb_candidates: 150,
                        bb_pruned: 650,
                        rungs_attempted: 0,
                        recovery: "none".into(),
                    },
                },
                FrameObs {
                    frame: 1,
                    segment: SegmentObs {
                        final_px: 90,
                        ..SegmentObs::default()
                    },
                    track: TrackObs {
                        generations: 9,
                        evaluations: 400,
                        unique_genomes: 240,
                        memo_saved: 160,
                        bb_candidates: 130,
                        bb_pruned: 590,
                        rungs_attempted: 2,
                        recovery: "widened".into(),
                    },
                },
            ],
            rules: vec![
                RuleObs {
                    rule: "R1".into(),
                    stage: "initiation".into(),
                    window_start: 0,
                    window_end: 1,
                    considered: 1,
                    masked: 0,
                    verdict: "satisfied".into(),
                    observed: Some(72.5),
                },
                RuleObs {
                    rule: "R7".into(),
                    stage: "air/landing".into(),
                    window_start: 1,
                    window_end: 2,
                    considered: 0,
                    masked: 1,
                    verdict: "masked".into(),
                    observed: None,
                },
            ],
        }
    }

    #[test]
    fn trace_is_schema_tagged_jsonl() {
        let trace = sample_clip().render_trace();
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 1 + 2 * 2 + 2);
        assert!(
            lines[0].contains("\"schema\":\"slj-trace/1\""),
            "{}",
            lines[0]
        );
        assert!(lines[1].contains("\"span\":\"frame.segment\""));
        assert!(lines[2].contains("\"span\":\"frame.track\""));
        assert!(lines[5].contains("\"span\":\"score.rule\""));
        // A fully-masked rule serialises its observation as null.
        assert!(lines[6].contains("\"observed\":null"), "{}", lines[6]);
    }

    #[test]
    fn trace_rendering_is_reproducible() {
        let clip = sample_clip();
        assert_eq!(clip.render_trace(), clip.render_trace());
        assert_eq!(clip.metrics().render(), clip.metrics().render());
    }

    #[test]
    fn metrics_aggregate_in_frame_order_independent_fashion() {
        let clip = sample_clip();
        let m = clip.metrics();
        assert_eq!(m.counter("segment.frames"), 2);
        assert_eq!(m.counter("segment.final_px"), 190);
        assert_eq!(m.counter("track.evaluations"), 401);
        assert_eq!(m.counter("track.memo_saved"), 160);
        assert_eq!(m.counter("track.recovery.none"), 1);
        assert_eq!(m.counter("track.recovery.widened"), 1);
        assert_eq!(m.counter("score.satisfied"), 1);
        assert_eq!(m.counter("score.masked"), 1);
        let h = m.histogram("track.generations.hist").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 9);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1, 10]);
        for v in [0, 1, 5, 11, 100] {
            h.observe(v);
        }
        let buckets: Vec<(Option<u64>, u64)> = h.buckets().collect();
        assert_eq!(buckets, vec![(Some(1), 2), (Some(10), 1), (None, 2)]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 117);
    }

    #[test]
    fn registry_absorb_folds_counters_and_histograms() {
        let mut a = MetricsRegistry::default();
        a.inc("serve.frames", 3);
        a.observe("h", &[1, 10], 5);
        let mut b = MetricsRegistry::default();
        b.inc("serve.frames", 4);
        b.inc("serve.sheds", 1);
        b.observe("h", &[1, 10], 50);
        b.observe("other", &[2], 1);
        a.absorb(&b);
        assert_eq!(a.counter("serve.frames"), 7);
        assert_eq!(a.counter("serve.sheds"), 1);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 55);
        let buckets: Vec<(Option<u64>, u64)> = h.buckets().collect();
        assert_eq!(buckets, vec![(Some(1), 0), (Some(10), 1), (None, 1)]);
        assert_eq!(a.histogram("other").unwrap().count(), 1);
    }

    #[test]
    fn registry_render_is_name_ordered() {
        let mut m = MetricsRegistry::default();
        m.inc("zzz", 1);
        m.inc("aaa", 2);
        let text = m.render();
        let a = text.find("aaa").unwrap();
        let z = text.find("zzz").unwrap();
        assert!(a < z, "{text}");
    }

    #[test]
    fn profiler_accumulates_and_absorbs() {
        let mut a = Profiler::default();
        a.record(spans::SEGMENT_EXTRACT, Duration::from_millis(2));
        a.record(spans::SEGMENT_EXTRACT, Duration::from_millis(3));
        let mut b = Profiler::default();
        b.record(spans::SEGMENT_EXTRACT, Duration::from_millis(5));
        b.record(spans::SEGMENT_FILL, Duration::from_millis(1));
        a.absorb(&b);
        assert_eq!(a.get(spans::SEGMENT_EXTRACT), Duration::from_millis(10));
        assert_eq!(a.get(spans::SEGMENT_FILL), Duration::from_millis(1));
        assert_eq!(a.total(), Duration::from_millis(11));
        let out = a.time("timed", || 7);
        assert_eq!(out, 7);
        assert!(a.iter().any(|(name, _)| name == "timed"));
    }

    #[test]
    fn prune_rate_is_guarded() {
        let t = TrackObs::default();
        assert_eq!(t.prune_rate(), 0.0);
        let t = TrackObs {
            bb_candidates: 1,
            bb_pruned: 3,
            ..TrackObs::default()
        };
        assert_eq!(t.prune_rate(), 0.75);
    }
}
