//! Deterministic service-level fault scripting.
//!
//! [`ServiceFaultPlan`] is the service half of the chaos story: where
//! `slj_video::FaultInjector` corrupts *pixels* (what a bad camera
//! does), this plan corrupts *service behaviour* — frames that panic
//! the analysis step mid-flight and steps that blow their deadline
//! budget. Faults are keyed by `(session, offer ordinal)`, so a plan is
//! a pure function of the frame schedule: replaying the same offers
//! replays the same faults, which is what lets the chaos suite assert
//! byte-identical outcomes. The orthogonal service scenarios need no
//! hook here — a *stalled producer* is simply a producer that stops
//! offering, a *burst* is more offers than queue slots, and a
//! *mid-stream shape change* is an offered frame with different
//! dimensions.

use crate::session::SessionId;

/// The panic message poisoned frames carry (also what the supervisor
/// reports in the `panicked` health event).
pub const POISON_MESSAGE: &str = "chaos: poisoned frame";

/// A scripted set of service faults for a chaos run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceFaultPlan {
    /// `(session, ordinal)` pairs whose analysis step panics.
    poison: Vec<(SessionId, u64)>,
    /// `(session, ordinal, extra_ticks)` scripted deadline overruns
    /// (only observed under [`DeadlineClock::Scripted`]
    /// (crate::DeadlineClock::Scripted)).
    overruns: Vec<(SessionId, u64, u64)>,
}

impl ServiceFaultPlan {
    /// An empty plan: no service faults.
    pub fn none() -> Self {
        ServiceFaultPlan::default()
    }

    /// Poisons the frame a session's producer offers as its
    /// `ordinal`-th (0-based): its analysis step panics when the
    /// supervisor processes it. The poisoned frame is dropped on
    /// restart-with-replay, so the panic fires exactly once.
    pub fn poison(mut self, session: SessionId, ordinal: u64) -> Self {
        self.poison.push((session, ordinal));
        self
    }

    /// Scripts a deadline overrun: the given offered frame costs
    /// `extra` ticks beyond the nominal 1 under the scripted clock.
    pub fn overrun(mut self, session: SessionId, ordinal: u64, extra: u64) -> Self {
        self.overruns.push((session, ordinal, extra));
        self
    }

    /// Whether this offered frame is poisoned.
    pub fn is_poisoned(&self, session: SessionId, ordinal: u64) -> bool {
        self.poison.contains(&(session, ordinal))
    }

    /// Scripted extra ticks for this offered frame (0 when unscripted).
    pub fn overrun_for(&self, session: SessionId, ordinal: u64) -> u64 {
        self.overruns
            .iter()
            .find(|(s, o, _)| *s == session && *o == ordinal)
            .map_or(0, |(_, _, extra)| *extra)
    }

    /// Whether the plan scripts anything at all.
    pub fn is_empty(&self) -> bool {
        self.poison.is_empty() && self.overruns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_keyed_by_session_and_ordinal() {
        let plan = ServiceFaultPlan::none()
            .poison(3, 7)
            .overrun(1, 2, 9)
            .overrun(1, 4, 1);
        assert!(plan.is_poisoned(3, 7));
        assert!(!plan.is_poisoned(3, 8));
        assert!(!plan.is_poisoned(2, 7));
        assert_eq!(plan.overrun_for(1, 2), 9);
        assert_eq!(plan.overrun_for(1, 4), 1);
        assert_eq!(plan.overrun_for(1, 3), 0);
        assert!(!plan.is_empty());
        assert!(ServiceFaultPlan::none().is_empty());
    }
}
