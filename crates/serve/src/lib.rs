//! Supervised multi-session service core for streaming jump analysis.
//!
//! The analyzer was built for one clip at a time; this crate is the
//! unit that makes *many concurrent clips* safe to hold in one process.
//! A [`SessionManager`] owns up to `max_sessions` live
//! [`StreamingAnalyzer`](slj::StreamingAnalyzer) sessions and wraps
//! each in three containment layers:
//!
//! 1. **Backpressure** — every session sits behind a bounded frame
//!    queue ([`ServeConfig::queue_depth`]). A full queue rejects the
//!    *newest* frame with a typed [`OfferReply::Overloaded`] on an
//!    allocation-free path; nothing in the service ever buffers
//!    unboundedly.
//! 2. **Supervision** — each analysis step runs under `catch_unwind`
//!    with a per-frame deadline budget. A caught panic walks a
//!    deterministic [`Backoff`](slj_runtime::Backoff) restart ladder:
//!    restore the last [`StreamingCheckpoint`](slj::StreamingCheckpoint)
//!    and replay the retained frames (byte-identical to a run that
//!    never crashed), then cold-restart, then quarantine with a
//!    terminal health event. Deadline misses are detected after the
//!    step (there is no preemption) and charged to the degraded budget.
//! 3. **Degradation budget** — degraded frames, panics, deadline
//!    misses and shape-rejected frames accrue per session; crossing
//!    [`ServeConfig::escalate_after`] relaxes the session's
//!    [`RobustnessPolicy`](slj::RobustnessPolicy) so it can still
//!    finish, and crossing [`ServeConfig::trip_after`] trips a circuit
//!    breaker that quarantines the session instead of letting it emit
//!    garbage.
//!
//! Per-session [`MetricsRegistry`](slj_obs::MetricsRegistry) counters
//! (keys in [`slj_obs::serve_keys`]) and an ordered [`HealthEvent`]
//! stream (JSONL schema [`SERVE_SCHEMA`] = `slj-serve/1`) make every
//! supervisor decision observable. The manager's own
//! [`Parallelism`](slj_runtime::Parallelism) knob fans sessions out
//! over worker threads per [`tick`](SessionManager::tick); like every
//! other parallel path in the workspace it is throughput-only — events,
//! metrics and analyses are byte-identical at any thread count.
//!
//! Fault containment is asserted, not assumed: [`ServiceFaultPlan`]
//! scripts service-level chaos — poisoned frames that panic the
//! tracker, scripted deadline overruns — on top of the acquisition
//! faults `slj_video::FaultInjector` injects, and the `serve_chaos`
//! suite drives stalls, bursts and mid-stream shape changes through a
//! full manager, asserting byte-identical healthy outputs at every
//! parallelism setting.

pub mod chaos;
pub mod events;
pub mod manager;
pub mod session;

pub use chaos::ServiceFaultPlan;
pub use events::{render_event, render_events, EventKind, HealthEvent, RestartMode, SERVE_SCHEMA};
pub use manager::{DeadlineClock, OfferReply, ServeConfig, ServeError, SessionManager, WorkerMode};
pub use session::{SessionConfig, SessionId, SessionState};
