//! The supervisor's health-event stream and its `slj-serve/1` JSONL
//! rendering.
//!
//! Events are the client-facing half of supervision: every frame
//! outcome, every supervisor decision (restart, escalation, breaker
//! trip) and every terminal transition appears exactly once, in a
//! deterministic order (session order within a tick, tick order across
//! ticks), with a contiguous sequence number. Rendering follows the
//! obs-crate convention: the vendored serde derive has no `flatten`,
//! so each record is built as an insertion-ordered `Value::Object` and
//! the key order *is* the schema.

use serde::Value;
use slj::FrameUpdate;

pub use slj_obs::SERVE_SCHEMA;

use crate::session::SessionId;

/// How a crashed session was brought back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartMode {
    /// Restored from the last checkpoint; `replayed` retained frames
    /// were re-processed (their updates are suppressed — the client
    /// already saw them).
    Checkpoint {
        /// Frames replayed after the restore.
        replayed: usize,
    },
    /// A fresh analyzer: earlier frames are lost and the session's
    /// eventual analysis covers only the tail.
    Cold,
}

/// One supervisor observation about one session.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A frame was analysed; the incremental update batch-clients
    /// would get from `push_frame` directly.
    Frame {
        /// The analyzer's update for this frame.
        update: FrameUpdate,
    },
    /// A frame's dimensions differed from the clip's established shape;
    /// it was dropped (typed, no pixel loop ran) and the session
    /// continued.
    FrameRejected {
        /// Arrival ordinal of the rejected frame (offer order).
        ordinal: u64,
        /// The clip's established `(width, height)`.
        expected: (usize, usize),
        /// The rejected frame's `(width, height)`.
        got: (usize, usize),
    },
    /// A frame's analysis step exceeded the per-frame deadline budget.
    DeadlineMiss {
        /// Arrival ordinal of the late frame.
        ordinal: u64,
        /// What the step cost (ticks or ms, per the manager's clock).
        cost: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The supervisor caught a panic in this session's analysis step.
    Panicked {
        /// Arrival ordinal of the frame being processed.
        ordinal: u64,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The session was brought back after a crash.
    Restarted {
        /// Which rung of the ladder ran.
        mode: RestartMode,
        /// Backoff delay (ticks) before the session processes again.
        delay: u64,
    },
    /// An open session's producer went quiet for a full stall window.
    Stalled {
        /// Consecutive idle ticks observed.
        idle_ticks: usize,
        /// Stall strikes so far (quarantine when they run out).
        strikes: u32,
    },
    /// The degraded budget crossed `escalate_after`: the session's
    /// robustness policy was relaxed so it can still finish.
    PolicyEscalated {
        /// Degraded frames charged so far.
        degraded: usize,
        /// The new degraded-frame allowance.
        allowance: usize,
    },
    /// The degraded budget crossed `trip_after`: terminal.
    CircuitBreakerTripped {
        /// Degraded frames charged.
        degraded: usize,
        /// The allowance that was exhausted.
        allowance: usize,
    },
    /// Terminal: the session was removed from service.
    Quarantined {
        /// Why (`panic ladder exhausted`, `stalled`, `circuit breaker`).
        reason: String,
    },
    /// Terminal: the clip closed cleanly and scored.
    Finished {
        /// Frames in the final analysis.
        frames: usize,
        /// The jump score (paper scale).
        score: u32,
        /// Degraded frames charged to the session.
        degraded: usize,
    },
    /// Terminal: `finish()` returned a typed error.
    Failed {
        /// The analyzer error, rendered.
        error: String,
    },
}

impl EventKind {
    /// The `event` field value in the JSONL rendering.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Frame { .. } => "frame",
            EventKind::FrameRejected { .. } => "frame_rejected",
            EventKind::DeadlineMiss { .. } => "deadline_miss",
            EventKind::Panicked { .. } => "panicked",
            EventKind::Restarted { .. } => "restarted",
            EventKind::Stalled { .. } => "stalled",
            EventKind::PolicyEscalated { .. } => "policy_escalated",
            EventKind::CircuitBreakerTripped { .. } => "circuit_breaker_tripped",
            EventKind::Quarantined { .. } => "quarantined",
            EventKind::Finished { .. } => "finished",
            EventKind::Failed { .. } => "failed",
        }
    }

    /// Whether this event ends the session.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            EventKind::Quarantined { .. } | EventKind::Finished { .. } | EventKind::Failed { .. }
        )
    }
}

/// One entry of the manager's event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEvent {
    /// Contiguous sequence number across all sessions.
    pub seq: u64,
    /// The session observed.
    pub session: SessionId,
    /// The manager tick that produced the event.
    pub tick: u64,
    /// What happened.
    pub kind: EventKind,
}

fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn kind_fields(kind: &EventKind) -> Vec<(&'static str, Value)> {
    match kind {
        EventKind::Frame { update } => {
            let degraded = update.completed.iter().filter(|h| h.is_degraded()).count() as u64;
            vec![
                ("frame", Value::U64(update.frame as u64)),
                ("buffered", Value::Bool(update.buffered)),
                ("completed", Value::U64(update.completed.len() as u64)),
                ("degraded", Value::U64(degraded)),
            ]
        }
        EventKind::FrameRejected {
            ordinal,
            expected,
            got,
        } => vec![
            ("ordinal", Value::U64(*ordinal)),
            ("expected_w", Value::U64(expected.0 as u64)),
            ("expected_h", Value::U64(expected.1 as u64)),
            ("got_w", Value::U64(got.0 as u64)),
            ("got_h", Value::U64(got.1 as u64)),
        ],
        EventKind::DeadlineMiss {
            ordinal,
            cost,
            budget,
        } => vec![
            ("ordinal", Value::U64(*ordinal)),
            ("cost", Value::U64(*cost)),
            ("budget", Value::U64(*budget)),
        ],
        EventKind::Panicked { ordinal, message } => vec![
            ("ordinal", Value::U64(*ordinal)),
            ("message", Value::Str(message.clone())),
        ],
        EventKind::Restarted { mode, delay } => {
            let (mode_name, replayed) = match mode {
                RestartMode::Checkpoint { replayed } => ("checkpoint", *replayed as u64),
                RestartMode::Cold => ("cold", 0),
            };
            vec![
                ("mode", Value::Str(mode_name.to_owned())),
                ("replayed", Value::U64(replayed)),
                ("delay", Value::U64(*delay)),
            ]
        }
        EventKind::Stalled {
            idle_ticks,
            strikes,
        } => vec![
            ("idle_ticks", Value::U64(*idle_ticks as u64)),
            ("strikes", Value::U64(u64::from(*strikes))),
        ],
        EventKind::PolicyEscalated {
            degraded,
            allowance,
        }
        | EventKind::CircuitBreakerTripped {
            degraded,
            allowance,
        } => vec![
            ("degraded", Value::U64(*degraded as u64)),
            ("allowance", Value::U64(*allowance as u64)),
        ],
        EventKind::Quarantined { reason } => vec![("reason", Value::Str(reason.clone()))],
        EventKind::Finished {
            frames,
            score,
            degraded,
        } => vec![
            ("frames", Value::U64(*frames as u64)),
            ("score", Value::U64(u64::from(*score))),
            ("degraded", Value::U64(*degraded as u64)),
        ],
        EventKind::Failed { error } => vec![("error", Value::Str(error.clone()))],
    }
}

/// Renders one event as its `slj-serve/1` JSONL line (no trailing
/// newline). Key order is fixed (`seq`, `session`, `tick`, `event`,
/// then event-specific fields); no wall-clock values appear, so the
/// line is byte-identical for a given deterministic run. The daemon
/// streams these to clients one at a time.
pub fn render_event(e: &HealthEvent) -> String {
    let mut fields = vec![
        ("seq", Value::U64(e.seq)),
        ("session", Value::U64(e.session as u64)),
        ("tick", Value::U64(e.tick)),
        ("event", Value::Str(e.kind.name().to_owned())),
    ];
    fields.extend(kind_fields(&e.kind));
    serde_json::to_string(&object(fields)).expect("event serialises")
}

/// Renders events as an `slj-serve/1` JSONL document: a header line
/// carrying the schema tag and event count, then one [`render_event`]
/// line per event in stream order.
pub fn render_events(events: &[HealthEvent]) -> String {
    let mut out = String::new();
    let header = object(vec![
        ("schema", Value::Str(SERVE_SCHEMA.to_owned())),
        ("events", Value::U64(events.len() as u64)),
    ]);
    out.push_str(&serde_json::to_string(&header).expect("header serialises"));
    out.push('\n');
    for e in events {
        out.push_str(&render_event(e));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_schema_tagged_and_ordered() {
        let events = vec![
            HealthEvent {
                seq: 0,
                session: 2,
                tick: 1,
                kind: EventKind::Panicked {
                    ordinal: 5,
                    message: "chaos".to_owned(),
                },
            },
            HealthEvent {
                seq: 1,
                session: 2,
                tick: 1,
                kind: EventKind::Restarted {
                    mode: RestartMode::Checkpoint { replayed: 3 },
                    delay: 1,
                },
            },
            HealthEvent {
                seq: 2,
                session: 0,
                tick: 9,
                kind: EventKind::Finished {
                    frames: 20,
                    score: 8,
                    degraded: 1,
                },
            },
        ];
        let text = render_events(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"schema\":\"slj-serve/1\",\"events\":3}"));
        assert!(lines[1].contains("\"event\":\"panicked\""));
        assert!(
            lines[2].contains("\"mode\":\"checkpoint\"") && lines[2].contains("\"replayed\":3")
        );
        assert!(lines[3].contains("\"event\":\"finished\"") && lines[3].contains("\"score\":8"));
        // Key order is fixed: seq leads every event line.
        assert!(lines[1].starts_with("{\"seq\":0,\"session\":2,\"tick\":1,"));
        assert_eq!(text, render_events(&events), "rendering is reproducible");
    }

    #[test]
    fn terminal_kinds_are_flagged() {
        assert!(EventKind::Quarantined {
            reason: "x".to_owned()
        }
        .is_terminal());
        assert!(EventKind::Failed {
            error: "e".to_owned()
        }
        .is_terminal());
        assert!(!EventKind::Stalled {
            idle_ticks: 4,
            strikes: 1
        }
        .is_terminal());
    }
}
