//! One supervised streaming session: bounded queue, panic isolation,
//! checkpointed restarts and the degraded-frame budget.
//!
//! A [`Session`] is the unit the [`SessionManager`](crate::SessionManager)
//! fans out over worker threads, so everything here is strictly
//! deterministic given the offer schedule and the chaos plan: no
//! wall-clock reads outside the optional `Wall` deadline clock, no
//! randomness outside the session-seeded [`Backoff`] jitter.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

use slj::{
    AnalyzeError, AnalyzerConfig, AnalyzerScratch, JumpAnalysis, RobustnessPolicy,
    StreamingAnalyzer, StreamingCheckpoint,
};
use slj_motion::Pose;
use slj_obs::{serve_keys, MetricsRegistry};
use slj_runtime::{Backoff, BackoffConfig};
use slj_video::{Camera, Frame};

use crate::chaos::{ServiceFaultPlan, POISON_MESSAGE};
use crate::events::{EventKind, RestartMode};
use crate::manager::{DeadlineClock, OfferReply, ServeConfig};

/// Index of a session within its manager (stable for the manager's
/// lifetime; slots are never reused).
pub type SessionId = usize;

/// Everything needed to (re)build one session's analyzer — the same
/// four values [`StreamingAnalyzer::new`] takes.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The (streamable) analyzer configuration.
    pub analyzer: AnalyzerConfig,
    /// The clip's camera calibration.
    pub camera: Camera,
    /// The operator-provided first-frame pose.
    pub first_pose: Pose,
    /// The clip frame rate.
    pub fps: f64,
}

/// Where a session is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionState {
    /// Accepting and analysing frames.
    Live,
    /// Terminal: removed from service by the supervisor (ladder
    /// exhausted, stalled out, or circuit breaker).
    Quarantined {
        /// The supervisor's reason.
        reason: String,
    },
    /// Terminal: closed cleanly; the analysis is ready to take.
    Finished,
    /// Terminal: `finish()` returned a typed error (ready to take).
    Failed,
}

impl SessionState {
    /// Whether the session has left service.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, SessionState::Live)
    }
}

/// A frame waiting in the session queue, stamped with its offer
/// ordinal (the chaos plan's key).
#[derive(Debug, Clone)]
struct QueuedFrame {
    ordinal: u64,
    frame: Frame,
}

/// The recyclable storage of a retired session: the analyzer's heavy
/// scratch plus the queue/replay containers and spare frame buffers.
/// [`SessionManager`](crate::SessionManager) pools these so
/// steady-state session churn — retire a terminal session, admit a new
/// one into the freed slot — performs no large allocations. Purely an
/// allocation cache: a session built on a recycled slot is
/// byte-identical to one built fresh.
#[derive(Debug, Default)]
pub(crate) struct SessionSlot {
    scratch: AnalyzerScratch,
    queue: VecDeque<QueuedFrame>,
    retained: Vec<Frame>,
    spares: Vec<Frame>,
}

/// One supervised session. Crate-private: the manager is the API.
#[derive(Debug)]
pub(crate) struct Session {
    id: SessionId,
    config: SessionConfig,
    /// The policy currently applied at finish (escalation rewrites it).
    policy: RobustnessPolicy,
    /// `None` once terminal.
    analyzer: Option<StreamingAnalyzer>,
    checkpoint: StreamingCheckpoint,
    /// Frames processed since the last checkpoint, retained for replay
    /// (bounded by `checkpoint_interval`).
    retained: Vec<Frame>,
    queue: VecDeque<QueuedFrame>,
    /// Frames offered so far (accepted or shed) — the ordinal source.
    offered: u64,
    closed: bool,
    state: SessionState,
    result: Option<Result<JumpAnalysis, AnalyzeError>>,
    backoff: Backoff,
    /// Ticks to sit out before processing again (restart delay).
    cooldown: u64,
    /// Degraded frames charged against the budget.
    degraded: usize,
    escalated: bool,
    clean_streak: usize,
    idle_ticks: usize,
    stall_strikes: u32,
    metrics: MetricsRegistry,
    /// Analyzer scratch salvaged at teardown (finish, failure or
    /// quarantine), held for [`Session::retire`].
    scratch: Option<AnalyzerScratch>,
    /// Spare frame buffers for `offer` copies, recycled from drained
    /// queue/replay frames.
    spares: Vec<Frame>,
    /// Bound on `spares`: the most frames the session can hold at once
    /// (queue + replay buffer + one in flight).
    spare_cap: usize,
}

impl Session {
    pub(crate) fn new(
        id: SessionId,
        config: SessionConfig,
        serve: &ServeConfig,
        mut slot: SessionSlot,
    ) -> Result<Self, AnalyzeError> {
        let analyzer = StreamingAnalyzer::new(
            config.analyzer.clone(),
            &config.camera,
            config.first_pose,
            config.fps,
        )?
        .with_scratch(std::mem::take(&mut slot.scratch));
        let checkpoint = analyzer.checkpoint();
        // Pre-warm every counter so the hot paths (notably the shed
        // reject) never insert into the registry — allocation-free by
        // construction, asserted by the chaos suite.
        let mut metrics = MetricsRegistry::default();
        for key in serve_keys::ALL {
            metrics.inc(key, 0);
        }
        let replay = serve.checkpoint_interval.max(1);
        slot.retained.clear();
        slot.retained.reserve(replay);
        slot.queue.clear();
        slot.queue.reserve(serve.queue_depth);
        Ok(Session {
            id,
            policy: config.analyzer.robustness,
            analyzer: Some(analyzer),
            checkpoint,
            retained: slot.retained,
            queue: slot.queue,
            offered: 0,
            closed: false,
            state: SessionState::Live,
            result: None,
            backoff: Backoff::new(BackoffConfig {
                // Distinct jitter stream per session; same ladder shape.
                seed: serve.restart.seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ..serve.restart
            }),
            cooldown: 0,
            degraded: 0,
            escalated: false,
            clean_streak: 0,
            idle_ticks: 0,
            stall_strikes: 0,
            metrics,
            scratch: None,
            spares: slot.spares,
            spare_cap: serve.queue_depth + replay + 1,
            config,
        })
    }

    pub(crate) fn id(&self) -> SessionId {
        self.id
    }

    /// Consumes a (terminal) session, separating the recyclable storage
    /// from its metrics so the manager can pool the former and fold the
    /// latter into the service-lifetime aggregate.
    pub(crate) fn retire(mut self) -> (SessionSlot, MetricsRegistry) {
        let mut scratch = self.scratch.take().unwrap_or_else(|| {
            // A live session retired by force (the manager guards
            // against this) still salvages its analyzer.
            self.analyzer
                .take()
                .map(StreamingAnalyzer::into_scratch)
                .unwrap_or_default()
        });
        while let Some(queued) = self.queue.pop_front() {
            scratch.recycle_frame(queued.frame);
        }
        while let Some(frame) = self.retained.pop() {
            scratch.recycle_frame(frame);
        }
        let slot = SessionSlot {
            scratch,
            queue: self.queue,
            retained: self.retained,
            spares: self.spares,
        };
        (slot, self.metrics)
    }

    pub(crate) fn state(&self) -> &SessionState {
        &self.state
    }

    pub(crate) fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed
    }

    pub(crate) fn cooldown(&self) -> u64 {
        self.cooldown
    }

    pub(crate) fn degraded(&self) -> usize {
        self.degraded
    }

    pub(crate) fn close(&mut self) {
        self.closed = true;
    }

    pub(crate) fn take_result(&mut self) -> Option<Result<JumpAnalysis, AnalyzeError>> {
        self.result.take()
    }

    /// Offers one frame: copies it into the queue (into a spare buffer
    /// when one is pooled — allocation-free at steady state), or — when
    /// the queue is at `queue_depth` — rejects it on a path that
    /// performs no allocation and no copy. Every offer, accepted or
    /// shed, consumes one ordinal.
    pub(crate) fn offer(&mut self, frame: &Frame, queue_depth: usize) -> OfferReply {
        let ordinal = self.offered;
        self.offered += 1;
        if self.queue.len() >= queue_depth {
            self.metrics.inc(serve_keys::SHEDS, 1);
            return OfferReply::Overloaded {
                ordinal,
                depth: self.queue.len(),
            };
        }
        let mut copy = self.spares.pop().unwrap_or_else(|| Frame::new(0, 0));
        copy.copy_from(frame);
        self.queue.push_back(QueuedFrame {
            ordinal,
            frame: copy,
        });
        OfferReply::Accepted {
            ordinal,
            depth: self.queue.len(),
        }
    }

    /// Returns a frame buffer to the spare pool (dropped when full).
    fn recycle_frame(&mut self, frame: Frame) {
        if self.spares.len() < self.spare_cap {
            self.spares.push(frame);
        }
    }

    /// Drains the queue and replay buffers into the spare pool — the
    /// terminal paths' churn-free replacement for `clear()`.
    fn recycle_buffers(&mut self) {
        while let Some(queued) = self.queue.pop_front() {
            self.recycle_frame(queued.frame);
        }
        while let Some(frame) = self.retained.pop() {
            self.recycle_frame(frame);
        }
    }

    /// One supervisor tick for this session: process a queued frame,
    /// finalize a drained closed clip, or account idleness. Returns
    /// whether the session did (or is still pacing toward) work.
    pub(crate) fn step(
        &mut self,
        serve: &ServeConfig,
        chaos: &ServiceFaultPlan,
        out: &mut Vec<(SessionId, EventKind)>,
    ) -> bool {
        if self.state.is_terminal() {
            return false;
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return true;
        }
        let Some(queued) = self.queue.pop_front() else {
            if self.closed {
                self.finalize(out);
                return true;
            }
            self.observe_idle(serve, out);
            return false;
        };
        self.idle_ticks = 0;
        self.process(queued, serve, chaos, out);
        true
    }

    /// Counts idle ticks against an open producer; a full stall window
    /// is a strike, and running out of strikes quarantines the session.
    fn observe_idle(&mut self, serve: &ServeConfig, out: &mut Vec<(SessionId, EventKind)>) {
        if serve.stall_ticks == 0 {
            return;
        }
        self.idle_ticks += 1;
        if self.idle_ticks >= serve.stall_ticks {
            self.idle_ticks = 0;
            self.stall_strikes += 1;
            self.metrics.inc(serve_keys::STALLS, 1);
            out.push((
                self.id,
                EventKind::Stalled {
                    idle_ticks: serve.stall_ticks,
                    strikes: self.stall_strikes,
                },
            ));
            if self.stall_strikes >= serve.stall_strikes {
                self.quarantine("stalled producer", out);
            }
        }
    }

    /// Runs one frame's analysis step under `catch_unwind` and the
    /// deadline budget, then routes the outcome: success, typed
    /// shape-reject, typed hard failure, or panic → restart ladder.
    fn process(
        &mut self,
        queued: QueuedFrame,
        serve: &ServeConfig,
        chaos: &ServiceFaultPlan,
        out: &mut Vec<(SessionId, EventKind)>,
    ) {
        let ordinal = queued.ordinal;
        let poisoned = chaos.is_poisoned(self.id, ordinal);
        let analyzer = self.analyzer.as_mut().expect("live session has analyzer");
        // The scripted clock never reads wall time at all — that is
        // what makes the chaos suite's runs replayable byte-for-byte.
        let started = (serve.clock == DeadlineClock::Wall).then(std::time::Instant::now);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if poisoned {
                panic!("{POISON_MESSAGE}");
            }
            analyzer.push_frame(&queued.frame)
        }));
        let cost = match serve.clock {
            DeadlineClock::Scripted => 1 + chaos.overrun_for(self.id, ordinal),
            DeadlineClock::Wall => started.map_or(0, |s| s.elapsed().as_millis() as u64),
        };
        match outcome {
            Ok(Ok(update)) => {
                self.metrics.inc(serve_keys::FRAMES, 1);
                let frame_degraded = update.completed.iter().filter(|h| h.is_degraded()).count();
                out.push((self.id, EventKind::Frame { update }));
                self.retained.push(queued.frame);
                if self.retained.len() >= serve.checkpoint_interval.max(1) {
                    self.checkpoint = self
                        .analyzer
                        .as_ref()
                        .expect("analyzer survives a successful step")
                        .checkpoint();
                    while let Some(frame) = self.retained.pop() {
                        self.recycle_frame(frame);
                    }
                }
                self.clean_streak += 1;
                if self.clean_streak >= serve.clean_frames_to_reset && self.backoff.attempt() > 0 {
                    self.backoff.reset();
                }
                if serve.frame_deadline > 0 && cost > serve.frame_deadline {
                    self.metrics.inc(serve_keys::DEADLINE_MISSES, 1);
                    out.push((
                        self.id,
                        EventKind::DeadlineMiss {
                            ordinal,
                            cost,
                            budget: serve.frame_deadline,
                        },
                    ));
                    self.charge_degraded(1, serve, out);
                }
                if frame_degraded > 0 {
                    self.charge_degraded(frame_degraded, serve, out);
                }
            }
            Ok(Err(AnalyzeError::FrameShapeMismatch { expected, got, .. })) => {
                // Typed reject: the analyzer state is untouched; drop
                // the alien frame and keep going.
                self.metrics.inc(serve_keys::REJECTED, 1);
                out.push((
                    self.id,
                    EventKind::FrameRejected {
                        ordinal,
                        expected,
                        got,
                    },
                ));
                self.charge_degraded(1, serve, out);
            }
            Ok(Err(error)) => {
                // A typed mid-stream hard failure (segmentation or
                // tracking): terminal, with the error preserved for the
                // client — never silent garbage.
                out.push((
                    self.id,
                    EventKind::Failed {
                        error: error.to_string(),
                    },
                ));
                self.state = SessionState::Failed;
                self.result = Some(Err(error));
                if let Some(analyzer) = self.analyzer.take() {
                    self.scratch = Some(analyzer.into_scratch());
                }
                self.recycle_buffers();
            }
            Err(payload) => {
                self.metrics.inc(serve_keys::PANICS, 1);
                let message = panic_message(payload.as_ref());
                out.push((self.id, EventKind::Panicked { ordinal, message }));
                // The poisoned frame is dropped (it is not retained),
                // so a checkpoint replay cannot re-trip it.
                self.charge_degraded(1, serve, out);
                if !self.state.is_terminal() {
                    self.crash_restart(out);
                }
            }
        }
    }

    /// Walks one rung of the restart ladder after a caught panic:
    /// checkpoint restore + replay, then cold restart, then quarantine.
    fn crash_restart(&mut self, out: &mut Vec<(SessionId, EventKind)>) {
        let rung = self.backoff.attempt();
        let delay = self.backoff.next_delay();
        self.clean_streak = 0;
        match rung {
            0 => {
                let replayed = self.retained.len();
                // The crashed analyzer's buffers are still structurally
                // sound (they are rewritten wholesale on reuse), so the
                // restore replays with warmed scratch instead of
                // reallocating it.
                let salvaged = self
                    .analyzer
                    .take()
                    .map(StreamingAnalyzer::into_scratch)
                    .unwrap_or_default();
                let mut restored = self.checkpoint.clone().resume().with_scratch(salvaged);
                let replay = catch_unwind(AssertUnwindSafe(|| {
                    for frame in &self.retained {
                        restored.push_frame(frame)?;
                    }
                    Ok::<_, AnalyzeError>(restored)
                }));
                match replay {
                    Ok(Ok(analyzer)) => {
                        self.analyzer = Some(analyzer);
                        self.metrics.inc(serve_keys::RESTARTS, 1);
                        out.push((
                            self.id,
                            EventKind::Restarted {
                                mode: RestartMode::Checkpoint { replayed },
                                delay,
                            },
                        ));
                    }
                    // The replay itself failed (it succeeded once, so
                    // this means real state corruption): skip straight
                    // to the cold rung within the same crash.
                    _ => self.cold_restart(delay, out),
                }
            }
            1 => self.cold_restart(delay, out),
            _ => {
                self.quarantine("panic ladder exhausted", out);
                return;
            }
        }
        self.cooldown = delay;
    }

    /// A fresh analyzer from the session config: earlier frames are
    /// lost, the escalated policy (if any) carries over.
    fn cold_restart(&mut self, delay: u64, out: &mut Vec<(SessionId, EventKind)>) {
        let salvaged = self
            .analyzer
            .take()
            .map(StreamingAnalyzer::into_scratch)
            .unwrap_or_default();
        let mut analyzer = StreamingAnalyzer::new(
            self.config.analyzer.clone(),
            &self.config.camera,
            self.config.first_pose,
            self.config.fps,
        )
        .expect("session config was validated at open")
        .with_scratch(salvaged);
        analyzer.set_robustness(self.policy);
        self.checkpoint = analyzer.checkpoint();
        while let Some(frame) = self.retained.pop() {
            self.recycle_frame(frame);
        }
        self.analyzer = Some(analyzer);
        self.metrics.inc(serve_keys::RESTARTS, 1);
        out.push((
            self.id,
            EventKind::Restarted {
                mode: RestartMode::Cold,
                delay,
            },
        ));
    }

    /// Charges degraded frames against the budget; crossing
    /// `escalate_after` relaxes the robustness policy once, crossing
    /// `trip_after` trips the circuit breaker (terminal).
    fn charge_degraded(
        &mut self,
        count: usize,
        serve: &ServeConfig,
        out: &mut Vec<(SessionId, EventKind)>,
    ) {
        self.degraded += count;
        self.metrics.inc(serve_keys::DEGRADED, count as u64);
        if !self.escalated && self.degraded >= serve.escalate_after {
            self.escalated = true;
            self.policy = RobustnessPolicy::BestEffort {
                max_degraded_frames: serve.trip_after,
            };
            if let Some(analyzer) = self.analyzer.as_mut() {
                analyzer.set_robustness(self.policy);
            }
            out.push((
                self.id,
                EventKind::PolicyEscalated {
                    degraded: self.degraded,
                    allowance: serve.trip_after,
                },
            ));
        }
        if self.degraded >= serve.trip_after && !self.state.is_terminal() {
            out.push((
                self.id,
                EventKind::CircuitBreakerTripped {
                    degraded: self.degraded,
                    allowance: serve.trip_after,
                },
            ));
            self.quarantine("circuit breaker", out);
        }
    }

    /// The manager's disconnect hook: quarantines a live session so it
    /// can be retired (the ingress layer's "producer vanished" path).
    pub(crate) fn abort(&mut self, reason: &str, out: &mut Vec<(SessionId, EventKind)>) {
        self.quarantine(reason, out);
    }

    /// Terminal removal from service; frees the session's memory.
    fn quarantine(&mut self, reason: &str, out: &mut Vec<(SessionId, EventKind)>) {
        out.push((
            self.id,
            EventKind::Quarantined {
                reason: reason.to_owned(),
            },
        ));
        self.state = SessionState::Quarantined {
            reason: reason.to_owned(),
        };
        if let Some(analyzer) = self.analyzer.take() {
            self.scratch = Some(analyzer.into_scratch());
        }
        self.recycle_buffers();
    }

    /// Closes the clip: `finish()` under `catch_unwind` (scoring is
    /// analyzer code too), producing the terminal event either way.
    fn finalize(&mut self, out: &mut Vec<(SessionId, EventKind)>) {
        let analyzer = self.analyzer.take().expect("live session has analyzer");
        match catch_unwind(AssertUnwindSafe(|| analyzer.finish_reclaimed())) {
            Ok((Ok(analysis), scratch)) => {
                self.scratch = Some(scratch);
                out.push((
                    self.id,
                    EventKind::Finished {
                        frames: analysis.health.len(),
                        score: analysis.score.score() as u32,
                        degraded: self.degraded,
                    },
                ));
                self.state = SessionState::Finished;
                self.result = Some(Ok(analysis));
            }
            Ok((Err(error), scratch)) => {
                self.scratch = Some(scratch);
                out.push((
                    self.id,
                    EventKind::Failed {
                        error: error.to_string(),
                    },
                ));
                self.state = SessionState::Failed;
                self.result = Some(Err(error));
            }
            Err(payload) => {
                self.metrics.inc(serve_keys::PANICS, 1);
                self.quarantine(
                    &format!("finish panicked: {}", panic_message(payload.as_ref())),
                    out,
                );
            }
        }
        self.recycle_buffers();
    }
}

/// Renders a caught panic payload (the common `&str` / `String` cases).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
