//! The session manager: the one front door to every supervised
//! session.
//!
//! Producers `open` sessions, `offer` frames (learning about
//! backpressure synchronously via [`OfferReply`]) and `close` clips;
//! the service `tick`s, which processes at most one frame per session
//! per tick — in session order serially, or fanned out over the
//! configured [`Parallelism`] with results merged back in session
//! order, so the event stream, metrics and analyses are byte-identical
//! at every thread count.

use std::fmt;
use std::sync::Mutex;

use slj::{AnalyzeError, JumpAnalysis};
use slj_obs::MetricsRegistry;
use slj_runtime::{BackoffConfig, Parallelism, WorkerPool};
use slj_video::Frame;

use crate::chaos::ServiceFaultPlan;
use crate::events::{EventKind, HealthEvent};
use crate::session::{Session, SessionConfig, SessionId, SessionSlot, SessionState};

/// How the per-frame deadline budget is measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlineClock {
    /// Wall time, milliseconds — the production setting.
    #[default]
    Wall,
    /// Deterministic ticks: a frame costs 1 plus any scripted
    /// [`ServiceFaultPlan::overrun`] — the chaos-test setting (no
    /// wall-clock read at all).
    Scripted,
}

/// How `tick` fans sessions out across threads when the configured
/// [`Parallelism`] resolves to more than one.
///
/// Both modes shard sessions into the same contiguous chunks and merge
/// per-chunk event buffers back in session order, so events, analyses
/// and metrics are byte-identical between them (and with serial) — the
/// choice is throughput-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkerMode {
    /// A persistent [`WorkerPool`]: threads are spawned once (lazily,
    /// on the first parallel tick) and parked between ticks, so the
    /// per-tick cost is an epoch wake-up instead of thread
    /// create/join. The production setting.
    #[default]
    Pool,
    /// Scoped threads spawned and joined every tick. Kept as the
    /// baseline the throughput bench races the pool against.
    Spawn,
}

impl fmt::Display for WorkerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WorkerMode::Pool => "pool",
            WorkerMode::Spawn => "spawn",
        })
    }
}

impl std::str::FromStr for WorkerMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "pool" => Ok(WorkerMode::Pool),
            "spawn" => Ok(WorkerMode::Spawn),
            other => Err(format!("unknown worker mode `{other}` (pool|spawn)")),
        }
    }
}

/// Service-level knobs. Every bound is explicit; nothing in the
/// service buffers without one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Concurrent session cap; `open` past it is refused.
    pub max_sessions: usize,
    /// Per-session frame-queue bound; offers past it shed (newest).
    pub queue_depth: usize,
    /// Per-frame budget (ms under `Wall`, ticks under `Scripted`);
    /// 0 disables deadline accounting.
    pub frame_deadline: u64,
    /// How the budget is measured.
    pub clock: DeadlineClock,
    /// Checkpoint every N successfully processed frames; also the
    /// bound on the replay buffer.
    pub checkpoint_interval: usize,
    /// Degraded frames before the robustness policy is relaxed.
    pub escalate_after: usize,
    /// Degraded frames before the circuit breaker trips (terminal).
    pub trip_after: usize,
    /// Consecutive idle ticks that count as one stall strike for an
    /// open session (0 disables stall detection).
    pub stall_ticks: usize,
    /// Stall strikes before the session is quarantined.
    pub stall_strikes: u32,
    /// Consecutive clean frames that reset the restart ladder.
    pub clean_frames_to_reset: usize,
    /// The supervisor restart ladder's pacing.
    pub restart: BackoffConfig,
    /// Manager-level fan-out: how many sessions step concurrently per
    /// tick. Throughput-only, like every `Parallelism` in the
    /// workspace.
    pub parallelism: Parallelism,
    /// How the fan-out is executed (persistent pool vs per-tick
    /// spawn). Byte-identical results either way.
    pub worker_mode: WorkerMode,
    /// Recycle retired sessions' heavy state (frame arenas, queue
    /// storage, GA scratch) into the next `open`, so steady-state
    /// session churn does no large allocations.
    pub slot_pool: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_sessions: 8,
            queue_depth: 16,
            frame_deadline: 0,
            clock: DeadlineClock::Wall,
            checkpoint_interval: 4,
            escalate_after: 6,
            trip_after: 12,
            stall_ticks: 16,
            stall_strikes: 3,
            clean_frames_to_reset: 8,
            restart: BackoffConfig::default(),
            parallelism: Parallelism::Serial,
            worker_mode: WorkerMode::Pool,
            slot_pool: true,
        }
    }
}

/// The synchronous reply to [`SessionManager::offer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferReply {
    /// The frame is queued.
    Accepted {
        /// The frame's offer ordinal (the chaos plan's key).
        ordinal: u64,
        /// Queue depth after the accept.
        depth: usize,
    },
    /// The queue is full: the frame was shed (reject-newest) without
    /// copying or allocating. The producer may retry after a tick.
    Overloaded {
        /// The ordinal the shed offer consumed.
        ordinal: u64,
        /// The (full) queue depth.
        depth: usize,
    },
}

/// Typed service errors (distinct from per-session health events:
/// these are caller mistakes or capacity refusals, not session
/// outcomes).
#[derive(Debug)]
pub enum ServeError {
    /// No session with this id was ever opened.
    UnknownSession {
        /// The offending id.
        id: SessionId,
    },
    /// `open` would exceed `max_sessions`.
    AtCapacity {
        /// The configured cap.
        max: usize,
    },
    /// The producer already closed this session's clip.
    SessionClosed {
        /// The session.
        id: SessionId,
    },
    /// The session has left service (finished, failed or quarantined).
    SessionTerminal {
        /// The session.
        id: SessionId,
    },
    /// `retire` was asked to remove a session that is still live.
    SessionActive {
        /// The session.
        id: SessionId,
    },
    /// The manager is draining: in-flight sessions finish, new ones
    /// are refused.
    Draining,
    /// The session config failed analyzer validation (e.g. not
    /// streamable).
    Analyzer(AnalyzeError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownSession { id } => write!(f, "unknown session {id}"),
            ServeError::AtCapacity { max } => {
                write!(f, "at capacity: {max} sessions already open")
            }
            ServeError::SessionClosed { id } => write!(f, "session {id} is closed"),
            ServeError::SessionTerminal { id } => {
                write!(f, "session {id} has left service")
            }
            ServeError::SessionActive { id } => {
                write!(
                    f,
                    "session {id} is still active (retire needs a terminal session)"
                )
            }
            ServeError::Draining => {
                write!(
                    f,
                    "draining: finishing in-flight sessions, not admitting new ones"
                )
            }
            ServeError::Analyzer(e) => write!(f, "session rejected: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Analyzer(e) => Some(e),
            _ => None,
        }
    }
}

/// The supervised multi-session service core. See the crate docs for
/// the containment model.
#[derive(Debug)]
pub struct SessionManager {
    config: ServeConfig,
    chaos: ServiceFaultPlan,
    /// In service, ascending by id (ids are monotonic and never
    /// reused, so a push keeps the order and lookups binary-search).
    sessions: Vec<Session>,
    events: Vec<HealthEvent>,
    seq: u64,
    tick: u64,
    next_id: SessionId,
    slots: Vec<SessionSlot>,
    aggregate: MetricsRegistry,
    workers: Option<WorkerPool>,
    draining: bool,
}

impl SessionManager {
    /// An empty manager.
    pub fn new(config: ServeConfig) -> Self {
        SessionManager {
            config,
            chaos: ServiceFaultPlan::none(),
            sessions: Vec::new(),
            events: Vec::new(),
            seq: 0,
            tick: 0,
            next_id: 0,
            slots: Vec::new(),
            aggregate: MetricsRegistry::default(),
            workers: None,
            draining: false,
        }
    }

    /// Installs a chaos plan (testing only; the default plan is empty).
    pub fn with_chaos(mut self, plan: ServiceFaultPlan) -> Self {
        self.chaos = plan;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Ticks elapsed.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Opens a session, validating the analyzer config up front.
    ///
    /// # Errors
    ///
    /// [`ServeError::Draining`] after [`SessionManager::drain`];
    /// [`ServeError::AtCapacity`] past `max_sessions`;
    /// [`ServeError::Analyzer`] when the config is not streamable.
    pub fn open(&mut self, config: SessionConfig) -> Result<SessionId, ServeError> {
        if self.draining {
            return Err(ServeError::Draining);
        }
        if self.sessions.len() >= self.config.max_sessions {
            return Err(ServeError::AtCapacity {
                max: self.config.max_sessions,
            });
        }
        let id = self.next_id;
        let slot = if self.config.slot_pool {
            self.slots.pop().unwrap_or_default()
        } else {
            SessionSlot::default()
        };
        let session = Session::new(id, config, &self.config, slot).map_err(ServeError::Analyzer)?;
        self.next_id += 1;
        self.sessions.push(session);
        Ok(id)
    }

    fn find(&self, id: SessionId) -> Option<&Session> {
        self.sessions
            .binary_search_by_key(&id, Session::id)
            .ok()
            .map(|i| &self.sessions[i])
    }

    fn find_mut(&mut self, id: SessionId) -> Option<&mut Session> {
        match self.sessions.binary_search_by_key(&id, Session::id) {
            Ok(i) => Some(&mut self.sessions[i]),
            Err(_) => None,
        }
    }

    /// Offers one frame to a session. Backpressure is synchronous:
    /// a full queue sheds the frame and says so in the reply; the
    /// reject path neither copies the frame nor allocates.
    ///
    /// # Errors
    ///
    /// Typed errors for caller mistakes — unknown, closed or terminal
    /// sessions. An over-full queue is *not* an error; it is the
    /// [`OfferReply::Overloaded`] reply.
    pub fn offer(&mut self, id: SessionId, frame: &Frame) -> Result<OfferReply, ServeError> {
        let queue_depth = self.config.queue_depth;
        let session = self.find_mut(id).ok_or(ServeError::UnknownSession { id })?;
        if session.state().is_terminal() {
            return Err(ServeError::SessionTerminal { id });
        }
        if session.is_closed() {
            return Err(ServeError::SessionClosed { id });
        }
        Ok(session.offer(frame, queue_depth))
    }

    /// Marks a session's clip complete: once its queue drains, the
    /// next tick runs `finish()` and emits the terminal event.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] / [`ServeError::SessionTerminal`].
    pub fn close(&mut self, id: SessionId) -> Result<(), ServeError> {
        let session = self.find_mut(id).ok_or(ServeError::UnknownSession { id })?;
        if session.state().is_terminal() {
            return Err(ServeError::SessionTerminal { id });
        }
        session.close();
        Ok(())
    }

    /// Retires a **terminal** session: removes it from service (freeing
    /// a `max_sessions` slot for a fresh `open`), folds its metrics
    /// into the service-lifetime aggregate
    /// ([`SessionManager::aggregate_metrics`]) and — when `slot_pool`
    /// is on — recycles its heavy state (frame arenas, queue storage,
    /// GA scratch) into the next `open`. Any untaken analysis result
    /// is discarded, so call [`SessionManager::take_result`] first.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for an id never opened or
    /// already retired; [`ServeError::SessionActive`] while the
    /// session is still live.
    pub fn retire(&mut self, id: SessionId) -> Result<(), ServeError> {
        let index = self
            .sessions
            .binary_search_by_key(&id, Session::id)
            .map_err(|_| ServeError::UnknownSession { id })?;
        if !self.sessions[index].state().is_terminal() {
            return Err(ServeError::SessionActive { id });
        }
        let (slot, metrics) = self.sessions.remove(index).retire();
        self.aggregate.absorb(&metrics);
        if self.config.slot_pool && self.slots.len() < self.config.max_sessions {
            self.slots.push(slot);
        }
        Ok(())
    }

    /// Begins a graceful drain: every further `open` is refused with
    /// [`ServeError::Draining`], while sessions already in flight keep
    /// processing to their natural end. Non-blocking — the caller keeps
    /// ticking (or calls [`SessionManager::run_until_drained`]) and
    /// polls [`SessionManager::is_drained`]. Idempotent.
    pub fn drain(&mut self) {
        self.draining = true;
    }

    /// Whether [`SessionManager::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Whether the drain is complete: draining was requested and every
    /// session still in service has reached a terminal state (finished,
    /// failed or quarantined — retired sessions are gone already).
    pub fn is_drained(&self) -> bool {
        self.draining && self.sessions.iter().all(|s| s.state().is_terminal())
    }

    /// Drains and ticks until every in-flight session is terminal.
    /// Returns the ticks run.
    ///
    /// An open session whose producer never closes it only terminates
    /// through stall detection, so with `stall_ticks == 0` callers must
    /// [`SessionManager::close`] every session first or this loops
    /// forever.
    pub fn run_until_drained(&mut self) -> u64 {
        self.drain();
        let mut ticks = 0;
        while !self.is_drained() {
            self.tick();
            ticks += 1;
        }
        ticks
    }

    /// Force-terminates a **live** session — the ingress layer's hook
    /// for a producer that vanished (client disconnect) rather than
    /// closed. The session is quarantined with `reason`, emitting the
    /// usual terminal health event (stamped with the current tick), and
    /// becomes eligible for [`SessionManager::retire`] immediately. Any
    /// partial analysis is discarded; there is no result to take.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] /
    /// [`ServeError::SessionTerminal`] (aborting twice is the latter).
    pub fn abort(&mut self, id: SessionId, reason: &str) -> Result<(), ServeError> {
        let tick = self.tick;
        let session = self.find_mut(id).ok_or(ServeError::UnknownSession { id })?;
        if session.state().is_terminal() {
            return Err(ServeError::SessionTerminal { id });
        }
        let mut buffer = Vec::new();
        session.abort(reason, &mut buffer);
        for (session, kind) in buffer {
            self.events.push(HealthEvent {
                seq: self.seq,
                session,
                tick,
                kind,
            });
            self.seq += 1;
        }
        Ok(())
    }

    /// One service tick: each live session processes at most one
    /// queued frame (or finalizes, or accrues idleness), in session
    /// order — optionally fanned out over the configured parallelism
    /// with per-session event buffers merged back in session order.
    /// Returns how many sessions did work.
    pub fn tick(&mut self) -> usize {
        self.tick += 1;
        let tick = self.tick;
        let threads = self
            .config
            .parallelism
            .threads()
            .min(self.sessions.len().max(1));
        let mut progressed = 0usize;
        let mut merged: Vec<(SessionId, EventKind)> = Vec::new();
        if threads <= 1 {
            for session in &mut self.sessions {
                if session.step(&self.config, &self.chaos, &mut merged) {
                    progressed += 1;
                }
            }
        } else if self.config.worker_mode == WorkerMode::Spawn {
            let chunk_size = self.sessions.len().div_ceil(threads);
            let config = &self.config;
            let chaos = &self.chaos;
            let chunks: Vec<&mut [Session]> = self.sessions.chunks_mut(chunk_size).collect();
            let mut buffers: Vec<Vec<(SessionId, EventKind)>> =
                (0..chunks.len()).map(|_| Vec::new()).collect();
            let mut counts = vec![0usize; chunks.len()];
            crossbeam::scope(|scope| {
                for ((chunk, buffer), count) in chunks
                    .into_iter()
                    .zip(buffers.iter_mut())
                    .zip(counts.iter_mut())
                {
                    scope.spawn(move |_| {
                        for session in chunk.iter_mut() {
                            if session.step(config, chaos, buffer) {
                                *count += 1;
                            }
                        }
                    });
                }
            })
            .expect("session steps are panic-isolated");
            // Chunks are contiguous and in order, so concatenating the
            // per-chunk buffers restores exact session order — the
            // same stream the serial loop produces.
            for buffer in buffers {
                merged.extend(buffer);
            }
            progressed = counts.iter().sum();
        } else {
            // Persistent pool: same contiguous sharding as the spawn
            // path, so the merged stream is byte-identical — only the
            // thread lifecycle differs (parked workers woken by an
            // epoch bump instead of spawn/join).
            struct Shard<'a> {
                sessions: &'a mut [Session],
                events: Vec<(SessionId, EventKind)>,
                progressed: usize,
            }
            let pool_threads = self.config.parallelism.threads();
            let workers = self
                .workers
                .get_or_insert_with(|| WorkerPool::new(pool_threads));
            let chunk_size = self.sessions.len().div_ceil(threads);
            let config = &self.config;
            let chaos = &self.chaos;
            let shards: Vec<Mutex<Shard<'_>>> = self
                .sessions
                .chunks_mut(chunk_size)
                .map(|sessions| {
                    Mutex::new(Shard {
                        sessions,
                        events: Vec::new(),
                        progressed: 0,
                    })
                })
                .collect();
            workers.run(shards.len(), &|i| {
                // Worker i is the only thread that touches shard i, so
                // the lock is uncontended — it exists to hand the
                // `&mut` through the shared borrow the pool requires.
                let mut shard = shards[i].lock().expect("shard lock");
                let shard = &mut *shard;
                for session in shard.sessions.iter_mut() {
                    if session.step(config, chaos, &mut shard.events) {
                        shard.progressed += 1;
                    }
                }
            });
            for shard in shards {
                let shard = shard.into_inner().expect("shard lock");
                merged.extend(shard.events);
                progressed += shard.progressed;
            }
        }
        for (session, kind) in merged {
            self.events.push(HealthEvent {
                seq: self.seq,
                session,
                tick,
                kind,
            });
            self.seq += 1;
        }
        progressed
    }

    /// Ticks until no session has queued frames, pending finalization
    /// or a restart cooldown (open-but-idle sessions do not keep the
    /// loop alive — their producers may come back). Returns the ticks
    /// run.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut ticks = 0;
        while self.sessions.iter().any(|s| {
            !s.state().is_terminal() && (s.queue_len() > 0 || s.is_closed() || s.cooldown() > 0)
        }) {
            self.tick();
            ticks += 1;
        }
        ticks
    }

    /// Takes the buffered health events (the client's incremental
    /// feed). Draining regularly is what keeps event memory bounded.
    pub fn drain_events(&mut self) -> Vec<HealthEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drains the buffered health events by appending them to `out`
    /// (in order), reusing the caller's storage — the churn-free twin
    /// of [`SessionManager::drain_events`].
    pub fn drain_events_into(&mut self, out: &mut Vec<HealthEvent>) {
        out.append(&mut self.events);
    }

    /// A session's lifecycle state.
    pub fn state(&self, id: SessionId) -> Option<&SessionState> {
        self.find(id).map(Session::state)
    }

    /// A session's supervisor metrics.
    pub fn metrics(&self, id: SessionId) -> Option<&MetricsRegistry> {
        self.find(id).map(Session::metrics)
    }

    /// A session's queued-frame count.
    pub fn queue_len(&self, id: SessionId) -> Option<usize> {
        self.find(id).map(Session::queue_len)
    }

    /// Degraded frames charged to a session so far.
    pub fn degraded(&self, id: SessionId) -> Option<usize> {
        self.find(id).map(Session::degraded)
    }

    /// Takes a finished/failed session's analysis result (once).
    pub fn take_result(&mut self, id: SessionId) -> Option<Result<JumpAnalysis, AnalyzeError>> {
        self.find_mut(id).and_then(Session::take_result)
    }

    /// Ids of every session still in service (live or
    /// terminal-but-unretired), ascending.
    pub fn session_ids(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.sessions.iter().map(Session::id)
    }

    /// Sessions currently in service.
    pub fn sessions_in_service(&self) -> usize {
        self.sessions.len()
    }

    /// Recycled slots waiting for the next `open`.
    pub fn pooled_slots(&self) -> usize {
        self.slots.len()
    }

    /// The service-lifetime metrics aggregate: every retired session's
    /// counters and histograms, folded in at `retire`. Live sessions
    /// are read individually via [`SessionManager::metrics`] until
    /// retirement.
    pub fn aggregate_metrics(&self) -> &MetricsRegistry {
        &self.aggregate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;
    use slj::AnalyzerConfig;
    use slj_motion::{BodyDims, Pose};
    use slj_video::Camera;

    fn session_config() -> SessionConfig {
        SessionConfig {
            analyzer: AnalyzerConfig::streaming(),
            camera: Camera::compact(),
            first_pose: Pose::standing(&BodyDims::default()),
            fps: 10.0,
        }
    }

    fn scripted(config: ServeConfig) -> ServeConfig {
        ServeConfig {
            clock: DeadlineClock::Scripted,
            ..config
        }
    }

    #[test]
    fn open_refuses_past_capacity_and_bad_configs() {
        let mut m = SessionManager::new(scripted(ServeConfig {
            max_sessions: 2,
            ..ServeConfig::default()
        }));
        assert_eq!(m.open(session_config()).unwrap(), 0);
        assert_eq!(m.open(session_config()).unwrap(), 1);
        assert!(matches!(
            m.open(session_config()),
            Err(ServeError::AtCapacity { max: 2 })
        ));
        // A non-streamable analyzer config is refused up front.
        let mut m = SessionManager::new(scripted(ServeConfig::default()));
        let bad = SessionConfig {
            analyzer: AnalyzerConfig::fast(),
            ..session_config()
        };
        let err = m.open(bad).unwrap_err();
        assert!(matches!(err, ServeError::Analyzer(_)), "{err}");
        assert!(err.to_string().contains("cannot stream"), "{err}");
    }

    #[test]
    fn offer_sheds_newest_past_queue_depth() {
        let mut m = SessionManager::new(scripted(ServeConfig {
            queue_depth: 2,
            ..ServeConfig::default()
        }));
        let id = m.open(session_config()).unwrap();
        let frame = Frame::filled(8, 6, slj_imgproc_rgb(40));
        assert_eq!(
            m.offer(id, &frame).unwrap(),
            OfferReply::Accepted {
                ordinal: 0,
                depth: 1
            }
        );
        assert_eq!(
            m.offer(id, &frame).unwrap(),
            OfferReply::Accepted {
                ordinal: 1,
                depth: 2
            }
        );
        // Burst past the bound: reject-newest, typed, ordinal still
        // consumed.
        assert_eq!(
            m.offer(id, &frame).unwrap(),
            OfferReply::Overloaded {
                ordinal: 2,
                depth: 2
            }
        );
        assert_eq!(m.queue_len(id), Some(2));
        assert_eq!(
            m.metrics(id).unwrap().counter(slj_obs::serve_keys::SHEDS),
            1
        );
        // Caller mistakes are typed errors, not replies.
        assert!(matches!(
            m.offer(99, &frame),
            Err(ServeError::UnknownSession { id: 99 })
        ));
        m.close(id).unwrap();
        assert!(matches!(
            m.offer(id, &frame),
            Err(ServeError::SessionClosed { .. })
        ));
    }

    #[test]
    fn closing_an_empty_clip_fails_typed_not_silent() {
        let mut m = SessionManager::new(scripted(ServeConfig::default()));
        let id = m.open(session_config()).unwrap();
        m.close(id).unwrap();
        let ticks = m.run_until_idle();
        assert_eq!(ticks, 1);
        assert_eq!(m.state(id), Some(&SessionState::Failed));
        let events = m.drain_events();
        assert_eq!(events.len(), 1);
        assert!(
            matches!(&events[0].kind, EventKind::Failed { error } if error.contains("at least 2")),
            "{:?}",
            events[0].kind
        );
        let result = m.take_result(id).unwrap();
        assert!(matches!(
            result,
            Err(slj::AnalyzeError::InsufficientWarmup { pushed: 0, .. })
        ));
        // The result is taken exactly once.
        assert!(m.take_result(id).is_none());
        // Closing again: typed terminal error.
        assert!(matches!(
            m.close(id),
            Err(ServeError::SessionTerminal { .. })
        ));
    }

    #[test]
    fn stalled_open_producer_strikes_out_to_quarantine() {
        let mut m = SessionManager::new(scripted(ServeConfig {
            stall_ticks: 2,
            stall_strikes: 2,
            ..ServeConfig::default()
        }));
        let id = m.open(session_config()).unwrap();
        for _ in 0..4 {
            m.tick();
        }
        let events = m.drain_events();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(kinds, vec!["stalled", "stalled", "quarantined"]);
        assert!(matches!(
            m.state(id),
            Some(SessionState::Quarantined { reason }) if reason == "stalled producer"
        ));
        assert_eq!(
            m.metrics(id).unwrap().counter(slj_obs::serve_keys::STALLS),
            2
        );
        // Quarantine is terminal for every API.
        let frame = Frame::filled(8, 6, slj_imgproc_rgb(0));
        assert!(matches!(
            m.offer(id, &frame),
            Err(ServeError::SessionTerminal { .. })
        ));
    }

    #[test]
    fn drain_refuses_opens_and_completes_in_flight() {
        let mut m = SessionManager::new(scripted(ServeConfig::default()));
        let id = m.open(session_config()).unwrap();
        let frame = Frame::filled(8, 6, slj_imgproc_rgb(40));
        assert!(matches!(
            m.offer(id, &frame).unwrap(),
            OfferReply::Accepted { .. }
        ));
        m.drain();
        assert!(m.is_draining());
        assert!(!m.is_drained(), "in-flight session still live");
        assert!(matches!(
            m.open(session_config()),
            Err(ServeError::Draining)
        ));
        // The in-flight session still processes and terminates.
        m.close(id).unwrap();
        let ticks = m.run_until_drained();
        assert!(ticks > 0);
        assert!(m.is_drained());
        assert!(m.state(id).unwrap().is_terminal());
        // Draining an empty manager is immediately drained.
        let mut m = SessionManager::new(scripted(ServeConfig::default()));
        assert_eq!(m.run_until_drained(), 0);
    }

    #[test]
    fn abort_terminalizes_a_live_session_for_retire() {
        let mut m = SessionManager::new(scripted(ServeConfig::default()));
        let id = m.open(session_config()).unwrap();
        let frame = Frame::filled(8, 6, slj_imgproc_rgb(40));
        m.offer(id, &frame).unwrap();
        m.abort(id, "client disconnected").unwrap();
        assert!(matches!(
            m.state(id),
            Some(SessionState::Quarantined { reason }) if reason == "client disconnected"
        ));
        let events = m.drain_events();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            &events[0].kind,
            EventKind::Quarantined { reason } if reason == "client disconnected"
        ));
        // Aborted sessions retire (and free their slot) immediately.
        m.retire(id).unwrap();
        assert_eq!(m.sessions_in_service(), 0);
        // Aborting twice / unknown ids are typed errors.
        assert!(matches!(
            m.abort(id, "again"),
            Err(ServeError::UnknownSession { .. })
        ));
        let id2 = m.open(session_config()).unwrap();
        m.abort(id2, "gone").unwrap();
        assert!(matches!(
            m.abort(id2, "gone"),
            Err(ServeError::SessionTerminal { .. })
        ));
    }

    #[test]
    fn serve_config_defaults_are_bounded() {
        let c = ServeConfig::default();
        assert!(c.max_sessions > 0);
        assert!(c.queue_depth > 0);
        assert!(c.checkpoint_interval > 0);
        assert!(c.escalate_after < c.trip_after);
        assert_eq!(c.clock, DeadlineClock::Wall);
    }

    fn slj_imgproc_rgb(v: u8) -> slj_imgproc::pixel::Rgb {
        slj_imgproc::pixel::Rgb::splat(v)
    }
}
