//! End-to-end tests of the CLI workflow: synth → score → analyze, all
//! through the public `run` entry point (as the binary would call it).

use slj_cli::{run, CliError};
use std::path::PathBuf;

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_owned).collect()
}

fn invoke(cmd: &str) -> Result<String, CliError> {
    let mut out = Vec::new();
    run(&argv(cmd), &mut out)?;
    Ok(String::from_utf8(out).expect("utf-8 output"))
}

fn temp_clip(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slj_cli_test_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn help_prints_usage() {
    let text = invoke("help").unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("synth"));
    assert!(text.contains("analyze"));
    // No args behaves like help.
    let mut out = Vec::new();
    run(&[], &mut out).unwrap();
    assert!(!out.is_empty());
}

#[test]
fn unknown_command_is_usage_error() {
    let err = invoke("frobnicate").unwrap_err();
    assert!(matches!(err, CliError::Usage(_)));
    assert!(err.to_string().contains("frobnicate"));
}

#[test]
fn flaws_lists_all_seven() {
    let text = invoke("flaws").unwrap();
    for name in [
        "shallow-crouch",
        "no-neck-bend",
        "no-arm-swing-back",
        "straight-arms",
        "stiff-landing",
        "upright-trunk",
        "arms-stay-back",
    ] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn synth_then_score_reports_the_injected_fault() {
    let dir = temp_clip("synth_score");
    let synth_out = invoke(&format!(
        "synth --out {} --seed 5 --compact --clean --flaws shallow-crouch",
        dir.display()
    ))
    .unwrap();
    assert!(synth_out.contains("20 frames"));
    assert!(synth_out.contains("shallow-crouch"));
    assert!(dir.join("clip.json").exists());
    assert!(dir.join("truth.json").exists());
    assert!(dir.join("frame_0000.ppm").exists());

    let score_out = invoke(&format!("score --clip {}", dir.display())).unwrap();
    assert!(score_out.contains("Score: 6/7"), "{score_out}");
    assert!(score_out.contains("R1"), "{score_out}");
    assert!(score_out.contains("Bend your knees"), "{score_out}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_runs_the_full_pipeline_and_writes_report() {
    let dir = temp_clip("analyze");
    invoke(&format!("synth --out {} --seed 6 --compact", dir.display())).unwrap();
    let report_path = dir.join("report.json");
    let md_path = dir.join("report.md");
    let text = invoke(&format!(
        "analyze --clip {} --fast --report {} --report-md {}",
        dir.display(),
        report_path.display(),
        md_path.display()
    ))
    .unwrap();
    assert!(text.contains("Score:"), "{text}");
    assert!(text.contains("phase timeline:"), "{text}");
    assert!(text.contains("rule traces:"), "{text}");
    assert!(
        text.contains('F'),
        "timeline should contain flight frames: {text}"
    );
    assert!(text.contains("measured jump:"), "{text}");
    assert!(text.contains("vs ground truth"), "{text}");
    let json = std::fs::read_to_string(&report_path).unwrap();
    let summary: slj::AnalysisSummary = serde_json::from_str(&json).unwrap();
    assert_eq!(summary.frames, 20);
    let md = std::fs::read_to_string(&md_path).unwrap();
    assert!(md.contains("# Standing long jump"), "{md}");
    assert!(md.contains("## Measurement"), "{md}");
    assert!(summary.score >= 5, "pipeline scored only {}", summary.score);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_half_res_works() {
    let dir = temp_clip("half_res");
    invoke(&format!("synth --out {} --seed 8", dir.display())).unwrap();
    let text = invoke(&format!(
        "analyze --clip {} --fast --half-res",
        dir.display()
    ))
    .unwrap();
    assert!(text.contains("half resolution (160x120)"), "{text}");
    assert!(text.contains("Score:"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_injects_faults_and_recovers_in_best_effort_mode() {
    let dir = temp_clip("faults");
    invoke(&format!(
        "synth --out {} --seed 9 --compact --clean",
        dir.display()
    ))
    .unwrap();
    let text = invoke(&format!(
        "analyze --clip {} --fast --inject-faults bars=6,seed=3 --best-effort --max-degraded 12",
        dir.display()
    ))
    .unwrap();
    assert!(text.contains("injected faults into"), "{text}");
    assert!(text.contains("frame health:"), "{text}");
    assert!(text.contains("Score:"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_fault_flags_are_validated() {
    let err = invoke("analyze --clip nowhere --inject-faults nonsense=1").unwrap_err();
    assert!(matches!(err, CliError::Usage(_)), "{err}");
    let err = invoke("analyze --clip nowhere --max-degraded 3").unwrap_err();
    assert!(
        err.to_string().contains("--best-effort"),
        "--max-degraded without --best-effort should explain itself: {err}"
    );
}

#[test]
fn synth_validates_inputs() {
    let dir = temp_clip("validate");
    for bad in [
        format!("synth --out {} --frames 1", dir.display()),
        format!("synth --out {} --height 9", dir.display()),
        format!("synth --out {} --flaws backflip", dir.display()),
        "synth".to_owned(),
        format!("synth --out {} --bogus 1", dir.display()),
    ] {
        let err = invoke(&bad).unwrap_err();
        assert!(
            matches!(err, CliError::Usage(_)),
            "{bad} should be usage error"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_threads_flag_parses_and_produces_identical_output() {
    let dir = temp_clip("threads");
    invoke(&format!(
        "synth --out {} --seed 12 --compact --clean",
        dir.display()
    ))
    .unwrap();
    // Bad specs fail before any work happens.
    for bad in ["0", "-3", "many"] {
        let err = invoke(&format!(
            "analyze --clip {} --fast --threads {bad}",
            dir.display()
        ))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "--threads {bad}: {err}");
    }
    // The thread count changes throughput only: serial, a fixed count,
    // and auto print exactly the same analysis.
    let serial = invoke(&format!(
        "analyze --clip {} --fast --threads 1",
        dir.display()
    ))
    .unwrap();
    assert!(serial.contains("Score:"), "{serial}");
    for spec in ["4", "auto", "serial"] {
        let text = invoke(&format!(
            "analyze --clip {} --fast --threads {spec}",
            dir.display()
        ))
        .unwrap();
        assert_eq!(text, serial, "--threads {spec} changed the output");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_stream_reports_warmup_and_scores() {
    let dir = temp_clip("stream");
    invoke(&format!(
        "synth --out {} --seed 14 --compact --clean",
        dir.display()
    ))
    .unwrap();
    // The warmup background ghosts the jumper's standing spot, so a
    // flight frame or two trips the calibrated quality gate; a small
    // best-effort budget keeps the strict failure path out of the way.
    let text = invoke(&format!(
        "analyze --clip {} --fast --stream --best-effort --max-degraded 3",
        dir.display()
    ))
    .unwrap();
    assert!(text.contains("background locked after 14 frames"), "{text}");
    assert!(text.contains("Score:"), "{text}");
    assert!(text.contains("frame health:"), "{text}");
    // A custom warmup window moves the lock point. A window this short
    // degrades some early frames (the jumper is still part of the
    // background estimate), so tolerate them.
    let text = invoke(&format!(
        "analyze --clip {} --fast --stream --warmup 6 --best-effort --max-degraded 20",
        dir.display()
    ))
    .unwrap();
    assert!(text.contains("background locked after 6 frames"), "{text}");
    // The JSON summary works in streaming mode too.
    let report_path = dir.join("stream_report.json");
    invoke(&format!(
        "analyze --clip {} --fast --stream --best-effort --max-degraded 3 --report {}",
        dir.display(),
        report_path.display()
    ))
    .unwrap();
    let json = std::fs::read_to_string(&report_path).unwrap();
    let summary: slj::AnalysisSummary = serde_json::from_str(&json).unwrap();
    assert_eq!(summary.frames, 20);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_stream_flags_are_validated() {
    let err = invoke("analyze --clip nowhere --warmup 10").unwrap_err();
    assert!(
        err.to_string().contains("--stream"),
        "--warmup without --stream should explain itself: {err}"
    );
    let err = invoke("analyze --clip nowhere --stream --report-md out.md").unwrap_err();
    assert!(
        matches!(err, CliError::Usage(_)) && err.to_string().contains("stage masks"),
        "--stream with --report-md should explain itself: {err}"
    );
}

#[test]
fn analyze_rejects_conflicting_modes_and_missing_clip() {
    let err = invoke("analyze --clip nowhere --fast --paper").unwrap_err();
    assert!(matches!(err, CliError::Usage(_)));
    let err = invoke("analyze --clip definitely_missing_dir_12345").unwrap_err();
    assert!(!matches!(err, CliError::Usage(_)));
}

#[test]
fn eval_flags_are_validated() {
    // Exactly one of the two modes is required.
    let err = invoke("eval").unwrap_err();
    assert!(
        matches!(err, CliError::Usage(_)) && err.to_string().contains("--matrix"),
        "modeless eval should name both modes: {err}"
    );
    let err = invoke("eval --sweep --matrix small").unwrap_err();
    assert!(
        matches!(err, CliError::Usage(_)) && err.to_string().contains("exclusive"),
        "--sweep with --matrix should explain itself: {err}"
    );
    let err = invoke("eval --matrix medium").unwrap_err();
    assert!(
        matches!(err, CliError::Usage(_)) && err.to_string().contains("'medium'"),
        "a bad matrix size should be echoed back: {err}"
    );
    let err = invoke("eval --sweep --summary-md out.md").unwrap_err();
    assert!(
        matches!(err, CliError::Usage(_)) && err.to_string().contains("--summary-md"),
        "--summary-md without --matrix should explain itself: {err}"
    );
    let err = invoke("eval --matrix small --threads lots").unwrap_err();
    assert!(
        matches!(err, CliError::Usage(_)) && err.to_string().contains("--threads"),
        "a bad thread count should be a usage error: {err}"
    );
}

#[test]
fn eval_matrix_small_writes_schema_tagged_report() {
    let dir = temp_clip("eval_matrix");
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("EVAL_accuracy.json");
    let md_path = dir.join("EVAL_accuracy.md");
    let text = invoke(&format!(
        "eval --matrix small --out {} --summary-md {}",
        json_path.display(),
        md_path.display()
    ))
    .unwrap();
    assert!(text.contains("Interpolation A/B"), "summary in:\n{text}");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"slj-eval/1\""), "schema tag in report");
    let md = std::fs::read_to_string(&md_path).unwrap();
    assert!(md.contains("occlusion-dropout"), "profiles in summary");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_streams_sessions_and_writes_health_events() {
    let dir = temp_clip("serve");
    invoke(&format!(
        "synth --out {} --seed 21 --compact --clean",
        dir.display()
    ))
    .unwrap();
    let events_path = dir.join("events.jsonl");
    let text = invoke(&format!(
        "serve --clip {} --sessions 4 --fast --best-effort --threads serial \
         --inject-faults bars=1,seed=9 --events {}",
        dir.display(),
        events_path.display()
    ))
    .unwrap();
    // Session 0 streams the clip as stored; 1..3 get seeded faults.
    assert!(text.contains("session 1: faults injected into"), "{text}");
    assert!(text.contains("session 3: faults injected into"), "{text}");
    assert!(text.contains("service: 4 sessions"), "{text}");
    assert!(text.contains("session 0: finished — 20 frames"), "{text}");
    let jsonl = std::fs::read_to_string(&events_path).unwrap();
    let header = jsonl.lines().next().unwrap();
    assert!(header.contains("\"schema\":\"slj-serve/1\""), "{header}");
    assert!(jsonl.contains("\"event\":\"finished\""), "{jsonl}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_is_byte_identical_across_thread_counts() {
    let dir = temp_clip("serve_threads");
    invoke(&format!(
        "synth --out {} --seed 22 --compact --clean",
        dir.display()
    ))
    .unwrap();
    let run = |tag: &str, spec: &str| {
        let events = dir.join(format!("events_{tag}.jsonl"));
        let text = invoke(&format!(
            "serve --clip {} --sessions 3 --fast --best-effort --threads {spec} \
             --inject-faults bars=1,seed=5 --events {}",
            dir.display(),
            events.display()
        ))
        .unwrap();
        (text, std::fs::read_to_string(&events).unwrap())
    };
    let serial = run("serial", "serial");
    for (tag, spec) in [
        ("2", "2"),
        ("auto", "auto"),
        ("spawn", "2 --worker-mode spawn"),
        ("nopool", "2 --slot-pool off"),
    ] {
        let other = run(tag, spec);
        // The event files differ only in the path echoed on stdout, so
        // compare the JSONL byte-for-byte and stdout minus that line.
        assert_eq!(serial.1, other.1, "--threads {spec} changed the events");
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("health events"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            strip(&serial.0),
            strip(&other.0),
            "--threads {spec} changed the summary"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_flags_are_validated() {
    let err = invoke("serve --clip nowhere --sessions 0").unwrap_err();
    assert!(matches!(err, CliError::Usage(_)), "{err}");
    let err = invoke("serve --clip nowhere --sessions 4 --max-sessions 2").unwrap_err();
    assert!(
        matches!(err, CliError::Usage(_)) && err.to_string().contains("--max-sessions"),
        "an under-sized session cap should explain itself: {err}"
    );
    let err = invoke("serve --clip nowhere --queue-depth 0").unwrap_err();
    assert!(matches!(err, CliError::Usage(_)), "{err}");
    let err = invoke("serve --clip nowhere --max-degraded 3").unwrap_err();
    assert!(
        err.to_string().contains("--best-effort"),
        "--max-degraded without --best-effort should explain itself: {err}"
    );
    let err = invoke("serve --clip nowhere --inject-faults nonsense=1").unwrap_err();
    assert!(matches!(err, CliError::Usage(_)), "{err}");
    let err = invoke("serve --clip nowhere --worker-mode turbo").unwrap_err();
    assert!(
        matches!(err, CliError::Usage(_)) && err.to_string().contains("pool|spawn"),
        "a bad worker mode should list the valid ones: {err}"
    );
    let err = invoke("serve --clip nowhere --slot-pool maybe").unwrap_err();
    assert!(
        matches!(err, CliError::Usage(_)) && err.to_string().contains("on` or `off"),
        "a bad slot-pool value should explain itself: {err}"
    );
}

#[test]
fn gateway_serves_a_clip_over_http_byte_identical_to_analyze() {
    use std::io::{Read, Write};
    use std::os::unix::net::UnixStream;

    let dir = temp_clip("gateway");
    let clip = dir.to_string_lossy().into_owned();
    invoke(&format!("synth --out {clip} --seed 31 --compact --clean")).unwrap();
    let report_path = dir.join("report.json");
    // A small best-effort budget tolerates the warmup background
    // ghosting a flight frame or two (see the stream analyze test).
    invoke(&format!(
        "analyze --clip {clip} --stream --fast --best-effort --max-degraded 10 --report {}",
        report_path.display()
    ))
    .unwrap();
    let reference = std::fs::read_to_string(&report_path).unwrap();

    let daemon_sock = std::env::temp_dir().join(format!("slj-cli-gwd-{}.sock", std::process::id()));
    let gateway_sock =
        std::env::temp_dir().join(format!("slj-cli-gwg-{}.sock", std::process::id()));
    std::fs::remove_file(&gateway_sock).ok();
    let daemon = slj_daemon::Daemon::start(
        &[slj_daemon::Addr::Unix(daemon_sock.clone())],
        slj_daemon::DaemonConfig::default(),
    )
    .unwrap();

    // The gateway command blocks until drained; run it as the binary
    // would, on its own thread, and wait for its socket to appear.
    let command = {
        let cmd = format!(
            "gateway --listen unix:{} --connect unix:{}",
            gateway_sock.display(),
            daemon_sock.display()
        );
        std::thread::spawn(move || invoke(&cmd).unwrap())
    };
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !gateway_sock.exists() {
        assert!(std::time::Instant::now() < deadline, "gateway never bound");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // One HTTP exchange per connection, like any plain HTTP client.
    let exchange = |request: &[u8]| -> (u16, Vec<u8>) {
        let mut sock = UnixStream::connect(&gateway_sock).unwrap();
        sock.write_all(request).unwrap();
        let mut raw = Vec::new();
        sock.read_to_end(&mut raw).unwrap();
        let split = raw.windows(4).position(|w| w == b"\r\n\r\n").unwrap();
        let head = std::str::from_utf8(&raw[..split]).unwrap();
        let status = head
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse::<u16>()
            .unwrap();
        (status, raw[split + 4..].to_vec())
    };

    // Submit the clip exactly as the analyze run was configured.
    let video = slj_video::io::load_video(&dir).unwrap();
    let truth = slj_cli::truth::ClipTruth::load(&dir).unwrap();
    let open = slj_daemon::OpenRequest {
        camera: truth.camera,
        dims: truth.dims.clone(),
        first_pose: truth.first_pose,
        fps: video.fps(),
        warmup: slj::DEFAULT_WARMUP_FRAMES,
        fast: true,
        max_degraded: Some(10),
        want_trace: false,
    };
    let mut body = serde_json::to_string(&open).unwrap().into_bytes();
    body.push(b'\n');
    body.extend_from_slice(&slj_video::io::ppm_stream(&video));
    let mut request = format!(
        "POST /v1/jobs HTTP/1.1\r\nHost: gw\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    request.extend_from_slice(&body);
    let (status, reply) = exchange(&request);
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&reply));
    let reply = String::from_utf8(reply).unwrap();
    let job: u64 = reply
        .split("\"job\":")
        .nth(1)
        .and_then(|rest| rest.split(&[',', '}'][..]).next())
        .unwrap()
        .trim()
        .parse()
        .unwrap();

    let report = loop {
        let (status, body) =
            exchange(format!("GET /v1/jobs/{job} HTTP/1.1\r\nHost: gw\r\n\r\n").as_bytes());
        match status {
            200 => break String::from_utf8(body).unwrap(),
            202 => std::thread::sleep(std::time::Duration::from_millis(10)),
            other => panic!("job failed: {other}"),
        }
        assert!(std::time::Instant::now() < deadline, "job never finished");
    };
    assert_eq!(
        report, reference,
        "HTTP report must be byte-identical to `slj analyze --stream --report`"
    );

    let (status, _) = exchange(b"POST /v1/drain HTTP/1.1\r\nHost: gw\r\nContent-Length: 0\r\n\r\n");
    assert_eq!(status, 200);
    let output = command.join().unwrap();
    assert!(output.contains("gateway listening on"), "{output}");
    assert!(output.contains("gateway drained"), "{output}");
    assert!(output.contains("gateway_jobs_admitted = 1"), "{output}");
    let stats = daemon.join();
    assert_eq!(stats.clip_sessions, 1);
    assert_eq!(stats.sessions_finished, 1);
    std::fs::remove_dir_all(&dir).ok();
}
