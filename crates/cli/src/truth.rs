//! The `truth.json` sidecar, re-exported for compatibility.
//!
//! [`ClipTruth`] moved to `slj-video` (`slj_video::truth`) so libraries
//! and tests can load ground truth without a CLI dependency; this
//! module keeps the old `slj_cli::truth::ClipTruth` path working.

pub use slj_video::truth::{ClipTruth, TruthError, TRUTH_FILE};
