//! Command-line front end for the slj system.
//!
//! The paper's future work imagines a service where "the user will be
//! able to upload a video sequence of a standing long jump … and the
//! system will be able to respond with advices". This crate is that
//! workflow as a local tool:
//!
//! ```text
//! slj synth   --out clip/ --seed 7 --flaws shallow-crouch   # make footage
//! slj analyze --clip clip/ --report report.json             # segment+track+score
//! slj score   --clip clip/                                  # score the true poses
//! ```
//!
//! `synth` writes a frame directory (PPM + `clip.json`) plus a
//! `truth.json` carrying the scene calibration (camera, body
//! dimensions), the ground-truth poses, and the first-frame stick model
//! that stands in for the paper's hand-drawn initialisation. `analyze`
//! needs only the clip directory: it reads the calibration and first
//! pose from `truth.json` — exactly the information the paper's manual
//! step provides.

pub mod args;
pub mod commands;
pub mod error;
pub mod truth;

pub use error::CliError;

use std::io::Write;

/// Top-level usage text.
pub const USAGE: &str = "\
slj — motion analysis for the standing long jump

USAGE:
  slj synth   --out DIR [--seed N] [--frames N] [--flaws a,b,c]
              [--distance M] [--height M] [--compact] [--clean]
  slj analyze --clip DIR [--report FILE.json] [--report-md FILE.md]
              [--fast | --paper] [--half-res] [--threads N|auto|serial]
              [--best-effort [--max-degraded N]] [--inject-faults SPEC]
              [--stream [--warmup N]] [--trace FILE.jsonl] [--metrics]
  slj score   --clip DIR
  slj serve   --clip DIR [--sessions N] [--max-sessions N] [--queue-depth N]
              [--frame-deadline-ms N] [--inject-faults SPEC]
              [--events FILE.jsonl] [--threads N|auto|serial]
              [--worker-mode pool|spawn] [--slot-pool on|off] [--fast]
              [--best-effort [--max-degraded N]] [--warmup N]
  slj daemon  --listen ADDR[,ADDR...] [--max-sessions N] [--queue-depth N]
              [--frame-deadline-ms N] [--threads N|auto|serial]
              [--trace-dir DIR] [--max-frame-mb N] [--idle-timeout-ms N]
  slj submit  --connect ADDR (--clip DIR | --drain) [--warmup N] [--fast]
              [--best-effort [--max-degraded N]] [--report FILE.json]
              [--trace FILE.jsonl] [--events FILE.jsonl]
  slj gateway --listen ADDR --connect ADDR [--max-jobs N] [--max-conns N]
              [--max-body-mb N] [--read-timeout-ms N] [--write-timeout-ms N]
              [--retry-after SECS]
  slj eval    (--matrix small|full | --sweep) [--out FILE.json]
              [--summary-md FILE.md] [--threads N|auto|serial]
  slj flaws
  slj help

COMMANDS:
  synth     render a synthetic jump clip with ground truth
  analyze   run segmentation + GA pose tracking + scoring on a clip
            (--best-effort tolerates degraded frames and masks them out
             of scoring; --inject-faults perturbs the clip first, e.g.
             'drop=0.1,dup=0.05,flicker=0.08,burst=2:3:40,jitter=2,bars=1,seed=9';
             --threads sets worker threads for segmentation and GA
             fitness evaluation — default auto = one per core; results
             are bit-identical at any thread count;
             --stream analyses frame by frame in O(1) memory — the
             background comes from the first --warmup frames (default
             14) and results are byte-identical to a batch run of the
             same streamable configuration;
             --trace writes the slj-trace/1 JSONL span trace and
             --metrics prints the deterministic metrics registry — both
             derived from analysis results only, so they are
             byte-identical at every --threads setting)
  score     score a clip's ground-truth poses (no vision)
  serve     run clips through the supervised multi-session service core
            (each session is an independent streaming analysis behind a
             bounded frame queue with reject-newest backpressure;
             panics, deadline overruns, stalled producers and
             mid-stream shape changes are contained per session by a
             restart ladder — checkpoint restore, cold restart,
             quarantine — and a degraded-frame circuit breaker; session
             0 analyses the clip as stored, and with --inject-faults
             every further session streams an independently seeded
             perturbation; --events writes the slj-serve/1 JSONL
             health-event log; --threads fans session steps out over
             worker threads with byte-identical events and results;
             --worker-mode picks the persistent worker pool (default)
             or per-tick thread spawning, and --slot-pool on|off
             controls recycling of retired sessions' buffers — every
             combination is byte-identical)
  daemon    run the long-lived slj-wire/1 socket service (TCP and/or
            Unix-domain, ADDR = tcp:HOST:PORT or unix:PATH) in front of
            the session manager: concurrent clients open sessions,
            stream frames under bounded queues with typed Overloaded
            backpressure, and receive health events plus the final
            analysis; malformed, oversized, idle or vanished clients
            are contained per connection, and a wire DRAIN (see
            `slj submit --drain`) finishes in-flight sessions and exits
            (--trace-dir additionally exports each session's
             slj-trace/1 JSONL server-side)
  submit    stream a saved clip to a running daemon; the summary JSON
            (--report) and trace (--trace) are byte-identical to
            `slj analyze --stream` on the same clip and configuration,
            and --drain asks the daemon to shut down gracefully
  gateway   run the HTTP/1.1 front end for a running daemon: POST
            /v1/jobs ingests a clip (one open-request JSON line, then
            the clip as concatenated binary PPM frames) through the
            daemon's OPEN_CLIP path — the daemon decodes and feeds the
            frames itself; GET /v1/jobs/ID returns the report JSON
            byte-identical to `slj analyze --stream --report`, GET
            /v1/jobs/ID/events the health JSONL; daemon capacity sheds
            map to 429 + Retry-After, draining to 503, malformed or
            oversized bodies to typed 4xx before any session is opened;
            POST /v1/drain drains gateway and daemon, after which the
            command exits and prints the gateway metrics
  eval      measure tracking accuracy against synthetic ground truth
            (--matrix runs the seeded clip x fault-profile x gap-policy
             grid and writes a deterministic slj-eval/1 JSON report;
             --sweep ROC-scores the segmentation quality-gate
             thresholds and fits per-rung confidence factors; the two
             modes are exclusive and exactly one is required)
  flaws     list the injectable technique faults
";

/// Parses and executes one invocation, writing human-readable output to
/// `out`. The first element of `args` must be the subcommand (the
/// binary name is already stripped).
///
/// # Errors
///
/// Returns [`CliError`] for unknown commands, malformed flags or any
/// failure of the underlying operation.
pub fn run<W: Write>(args: &[String], out: &mut W) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("synth") => commands::synth(&args[1..], out),
        Some("analyze") => commands::analyze(&args[1..], out),
        Some("score") => commands::score(&args[1..], out),
        Some("serve") => commands::serve(&args[1..], out),
        Some("daemon") => commands::daemon(&args[1..], out),
        Some("submit") => commands::submit(&args[1..], out),
        Some("gateway") => commands::gateway(&args[1..], out),
        Some("eval") => commands::eval(&args[1..], out),
        Some("flaws") => commands::flaws(out),
        Some("help") | None => {
            out.write_all(USAGE.as_bytes())?;
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!("unknown command '{other}'"))),
    }
}
