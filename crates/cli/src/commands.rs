//! The CLI subcommands.

use crate::args::Flags;
use crate::error::CliError;
use crate::truth::ClipTruth;
use slj::prelude::*;
use slj_video::io::{load_video, save_video};
use std::io::Write;
use std::str::FromStr;

/// Writes a CLI output file (`--report`, `--events`, `--trace`, …),
/// creating missing parent directories first. Failures become a typed
/// [`CliError::Output`] naming the path, instead of a bare I/O error
/// that loses it.
fn write_output(path: &str, contents: &str) -> Result<(), CliError> {
    let target = std::path::Path::new(path);
    let attempt = (|| {
        if let Some(parent) = target.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(target, contents)
    })();
    attempt.map_err(|error| CliError::Output {
        path: path.to_owned(),
        error,
    })
}

/// `slj synth` — render a synthetic clip with ground truth.
pub fn synth<W: Write>(args: &[String], out: &mut W) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &["out", "seed", "frames", "flaws", "distance", "height"],
        &["compact", "clean"],
    )?;
    let out_dir = flags.required("out")?.to_owned();
    let seed: u64 = flags.get_or("seed", 1)?;
    let frames: usize = flags.get_or("frames", 20)?;
    if frames < 2 {
        return Err(CliError::Usage("--frames must be at least 2".into()));
    }
    let distance: f64 = flags.get_or("distance", 1.1)?;
    let height: f64 = flags.get_or("height", 1.30)?;
    if !(0.5..=2.5).contains(&height) {
        return Err(CliError::Usage(
            "--height must be in 0.5..=2.5 metres".into(),
        ));
    }
    let flaws: Vec<JumpFlaw> = match flags.value("flaws") {
        None => Vec::new(),
        Some(list) => list
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|name| JumpFlaw::from_str(name).map_err(|e| CliError::Usage(e.to_string())))
            .collect::<Result<_, _>>()?,
    };

    let mut scene = if flags.switch("clean") {
        SceneConfig::clean()
    } else {
        SceneConfig::default()
    };
    if flags.switch("compact") {
        scene.camera = Camera::compact();
    }
    let dims = BodyDims::for_height(height);
    let jump_cfg = JumpConfig {
        frames,
        dims: dims.clone(),
        jump_distance: distance,
        flaws: flaws.clone(),
        ..JumpConfig::default()
    };
    let jump = SyntheticJump::generate(&scene, &jump_cfg, seed);

    save_video(&jump.video, &out_dir)?;
    ClipTruth {
        camera: scene.camera,
        dims,
        first_pose: jump.poses.poses()[0],
        poses: jump.poses.clone(),
        flaws: flaws.iter().map(|f| f.name().to_owned()).collect(),
        seed,
    }
    .save(&out_dir)?;

    writeln!(
        out,
        "wrote {} frames ({}x{} px) + truth.json to {}",
        jump.video.len(),
        jump.video.dims().0,
        jump.video.dims().1,
        out_dir
    )?;
    if flaws.is_empty() {
        writeln!(out, "jump quality: textbook-good")?;
    } else {
        let names: Vec<&str> = flaws.iter().map(|f| f.name()).collect();
        writeln!(out, "injected faults: {}", names.join(", "))?;
    }
    Ok(())
}

/// `slj analyze` — the full pipeline on a saved clip.
pub fn analyze<W: Write>(args: &[String], out: &mut W) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &[
            "clip",
            "report",
            "report-md",
            "inject-faults",
            "max-degraded",
            "threads",
            "warmup",
            "trace",
        ],
        &[
            "fast",
            "paper",
            "half-res",
            "best-effort",
            "stream",
            "metrics",
        ],
    )?;
    let clip_dir = flags.required("clip")?.to_owned();
    // Worker threads for segmentation and GA fitness evaluation.
    // Defaults to one per core; results are bit-identical at any
    // setting, so this is safe to leave on auto.
    let parallelism = match flags.value("threads") {
        None => Parallelism::Auto,
        Some(raw) => raw
            .parse::<Parallelism>()
            .map_err(|e| CliError::Usage(format!("--threads: {e}")))?,
    };
    if flags.switch("fast") && flags.switch("paper") {
        return Err(CliError::Usage("--fast and --paper are exclusive".into()));
    }
    if flags.value("max-degraded").is_some() && !flags.switch("best-effort") {
        return Err(CliError::Usage(
            "--max-degraded only makes sense with --best-effort".into(),
        ));
    }
    if flags.value("warmup").is_some() && !flags.switch("stream") {
        return Err(CliError::Usage(
            "--warmup only makes sense with --stream".into(),
        ));
    }
    if flags.switch("stream") && flags.value("report-md").is_some() {
        return Err(CliError::Usage(
            "--report-md needs the retained stage masks, which a streaming \
             run never holds; drop --stream or --report-md"
                .into(),
        ));
    }
    // Validate the fault spec before touching the disk so a typo fails
    // as a usage error, not mid-load.
    let fault_cfg = flags
        .value("inject-faults")
        .map(FaultConfig::parse)
        .transpose()
        .map_err(|e| CliError::Usage(format!("--inject-faults: {e}")))?;
    let mut video = load_video(&clip_dir)?;
    let truth = ClipTruth::load(&clip_dir)?;
    let mut camera = truth.camera;

    if let Some(fault_cfg) = fault_cfg {
        let (faulty, injection) = FaultInjector::new(fault_cfg).inject(&video);
        writeln!(
            out,
            "injected faults into {}/{} frames ({} inputs dropped, {} truncated)",
            injection.faulty_frames(),
            faulty.len(),
            injection.dropped_inputs.len(),
            injection.truncated_inputs.len()
        )?;
        video = faulty;
    }
    if flags.switch("half-res") {
        video = Video::new(
            video.iter().map(slj_imgproc::filter::resize_half).collect(),
            video.fps(),
        );
        camera = camera.halved();
        writeln!(
            out,
            "analysing at half resolution ({}x{})",
            camera.width, camera.height
        )?;
    }

    let mut config = if flags.switch("fast") {
        AnalyzerConfig::fast()
    } else if flags.switch("paper") {
        AnalyzerConfig::paper()
    } else {
        AnalyzerConfig::default()
    };
    config.dims = truth.dims.clone();
    config.parallelism = parallelism;
    if flags.switch("best-effort") {
        // Default budget: a quarter of the clip may degrade before the
        // analysis gives up entirely.
        let max_degraded: usize = flags.get_or("max-degraded", video.len().div_ceil(4))?;
        config.robustness = RobustnessPolicy::BestEffort {
            max_degraded_frames: max_degraded,
        };
    }

    // `--stream` analyses frame by frame through the O(1)-memory
    // streaming front end; results are byte-identical to a batch run of
    // the same (streamable) configuration. Batch keeps the full report
    // around for the markdown renderer, which needs the stage masks a
    // streaming run never retains.
    let mut full_report = None;
    let analysis = if flags.switch("stream") {
        let warmup: usize = flags.get_or("warmup", slj::DEFAULT_WARMUP_FRAMES)?;
        let mut stream = StreamingAnalyzer::new(
            config.into_streaming(warmup),
            &camera,
            truth.first_pose,
            video.fps(),
        )?;
        let mut live_at = None;
        for frame in video.iter() {
            let update = stream.push_frame(frame)?;
            if live_at.is_none() && !update.completed.is_empty() {
                live_at = Some(update.frame);
                writeln!(
                    out,
                    "streaming: background locked after {} frames; {} buffered frames analysed",
                    update.frame + 1,
                    update.completed.len()
                )?;
            }
        }
        if live_at.is_none() {
            writeln!(
                out,
                "streaming: clip ended inside the {warmup}-frame warmup window; \
                 analysing the {} buffered frames now",
                stream.frames_pushed()
            )?;
        }
        stream.finish()?
    } else {
        let report = JumpAnalyzer::new(config).analyze(&video, &camera, truth.first_pose)?;
        let analysis = report.to_analysis();
        full_report = Some(report);
        analysis
    };

    writeln!(out, "{}", analysis.score)?;
    for (standard, advice) in analysis.score.advice() {
        writeln!(out, "{standard}\n  -> {advice}")?;
    }
    // Per-frame rule traces as sparklines (window frames solid, others
    // dimmed).
    if let Ok(traces) = slj_score::RuleTrace::all(&analysis.poses) {
        writeln!(out, "\nrule traces:")?;
        for t in traces {
            writeln!(out, "  {t}")?;
        }
    }
    // Phase timeline: one letter per frame.
    let phases = slj_motion::classify_phases(&analysis.poses, &truth.dims);
    let timeline: String = phases
        .iter()
        .map(|p| match p {
            slj_motion::JumpPhase::Standing => 'S',
            slj_motion::JumpPhase::Crouch => 'C',
            slj_motion::JumpPhase::Takeoff => 'T',
            slj_motion::JumpPhase::Flight => 'F',
            slj_motion::JumpPhase::Landing => 'L',
            slj_motion::JumpPhase::Recovery => 'R',
        })
        .collect();
    writeln!(out, "phase timeline: {timeline}")?;

    // Frame health: confidence timeline plus per-frame detail for
    // anything below the degraded floor.
    let summary = analysis.summary();
    writeln!(
        out,
        "frame health:   {} (# clean, + minor, ~ shaky, ! degraded; mean confidence {:.2})",
        slj::health_timeline(&analysis.health),
        summary.mean_confidence
    )?;
    if !summary.degraded_frames.is_empty() {
        writeln!(
            out,
            "degraded frames excluded from scoring: {:?}",
            summary.degraded_frames
        )?;
    }

    // The measurement carried by the analysis itself — the same one the
    // JSON summary, serve results and daemon ANALYSIS payload surface.
    match analysis.measurement {
        Some(m) => {
            let dir = match m.direction {
                slj::JumpDirection::LeftToRight => "left-to-right",
                slj::JumpDirection::RightToLeft => "right-to-left",
            };
            let partial = if m.is_complete() {
                ""
            } else if !m.takeoff_observed {
                " [partial: clip starts airborne]"
            } else {
                " [partial: clip ends airborne]"
            };
            writeln!(
                out,
                "measured jump: {:.2} m {dir} (takeoff frame {}, landing frame {}, {} airborne frames){partial}",
                m.distance_m, m.takeoff_frame, m.landing_frame, m.flight_frames
            )?;
        }
        None => {
            if let Err(e) = slj::measure_jump(&analysis.poses, &truth.dims) {
                writeln!(out, "measurement unavailable: {e}")?;
            }
        }
    }

    // Accuracy against ground truth (available for synthetic clips).
    let mut angle_err = 0.0;
    for (est, gt) in analysis.poses.poses().iter().zip(truth.poses.poses()) {
        angle_err += est.error_against(gt).mean_angle_error();
    }
    writeln!(
        out,
        "vs ground truth: mean joint-angle error {:.1} deg",
        angle_err / analysis.poses.len().max(1) as f64
    )?;

    // Observability: the deterministic metrics block and the JSONL
    // trace are derived from the same span data and are byte-identical
    // at every --threads setting.
    if flags.switch("metrics") {
        write!(out, "{}", analysis.obs.metrics().render())?;
    }
    if let Some(path) = flags.value("trace") {
        write_output(path, &analysis.obs.render_trace())?;
        writeln!(out, "trace ({}) written to {path}", slj::TRACE_SCHEMA)?;
    }
    if let Some(path) = flags.value("report") {
        let json = serde_json::to_string_pretty(&summary)?;
        write_output(path, &json)?;
        writeln!(out, "summary written to {path}")?;
    }
    if let Some(path) = flags.value("report-md") {
        let report = full_report
            .as_ref()
            .expect("--report-md with --stream is rejected at flag validation");
        write_output(path, &slj::markdown_report(report, &truth.dims))?;
        writeln!(out, "markdown report written to {path}")?;
    }
    Ok(())
}

/// `slj serve` — run clips through the supervised multi-session
/// service core.
///
/// Session 0 analyses the clip exactly as stored; with
/// `--inject-faults` every further session streams an independently
/// seeded perturbation of it (seed, seed+1, …), so one command
/// exercises the service against a small fleet of degraded producers.
/// Every session is one [`StreamingAnalyzer`] behind a bounded frame
/// queue; panics, deadline overruns, stalls and mid-stream shape
/// changes are contained per session by the supervisor.
pub fn serve<W: Write>(args: &[String], out: &mut W) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &[
            "clip",
            "sessions",
            "max-sessions",
            "queue-depth",
            "frame-deadline-ms",
            "inject-faults",
            "events",
            "threads",
            "worker-mode",
            "slot-pool",
            "max-degraded",
            "warmup",
        ],
        &["fast", "best-effort"],
    )?;
    let clip_dir = flags.required("clip")?.to_owned();
    let sessions: usize = flags.get_or("sessions", 4)?;
    if sessions == 0 {
        return Err(CliError::Usage("--sessions must be at least 1".into()));
    }
    let max_sessions: usize = flags.get_or("max-sessions", sessions.max(8))?;
    if max_sessions < sessions {
        return Err(CliError::Usage(format!(
            "--max-sessions {max_sessions} cannot admit --sessions {sessions}"
        )));
    }
    let queue_depth: usize = flags.get_or("queue-depth", 16)?;
    if queue_depth == 0 {
        return Err(CliError::Usage("--queue-depth must be at least 1".into()));
    }
    let frame_deadline: u64 = flags.get_or("frame-deadline-ms", 0)?;
    let parallelism = match flags.value("threads") {
        None => Parallelism::Auto,
        Some(raw) => raw
            .parse::<Parallelism>()
            .map_err(|e| CliError::Usage(format!("--threads: {e}")))?,
    };
    let worker_mode = match flags.value("worker-mode") {
        None => slj_serve::WorkerMode::Pool,
        Some(raw) => raw
            .parse::<slj_serve::WorkerMode>()
            .map_err(|e| CliError::Usage(format!("--worker-mode: {e}")))?,
    };
    let slot_pool = match flags.value("slot-pool") {
        None => true,
        Some("on") => true,
        Some("off") => false,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--slot-pool: expected `on` or `off`, got `{other}`"
            )));
        }
    };
    if flags.value("max-degraded").is_some() && !flags.switch("best-effort") {
        return Err(CliError::Usage(
            "--max-degraded only makes sense with --best-effort".into(),
        ));
    }
    let fault_cfg = flags
        .value("inject-faults")
        .map(FaultConfig::parse)
        .transpose()
        .map_err(|e| CliError::Usage(format!("--inject-faults: {e}")))?;

    let video = load_video(&clip_dir)?;
    let truth = ClipTruth::load(&clip_dir)?;
    let warmup: usize = flags.get_or("warmup", slj::DEFAULT_WARMUP_FRAMES)?;
    let mut config = if flags.switch("fast") {
        AnalyzerConfig::fast()
    } else {
        AnalyzerConfig::default()
    };
    config.dims = truth.dims.clone();
    // Concurrency lives at the manager (whole sessions step in
    // parallel); each session's analyzer stays serial inside its step.
    config.parallelism = Parallelism::Serial;
    if flags.switch("best-effort") {
        let max_degraded: usize = flags.get_or("max-degraded", video.len().div_ceil(4))?;
        config.robustness = RobustnessPolicy::BestEffort {
            max_degraded_frames: max_degraded,
        };
    }
    let config = config.into_streaming(warmup);

    // One clip per session: the original, then seeded perturbations.
    let mut clips = Vec::with_capacity(sessions);
    for k in 0..sessions {
        match (&fault_cfg, k) {
            (Some(cfg), k) if k > 0 => {
                let per_session = FaultConfig {
                    seed: cfg.seed.wrapping_add(k as u64),
                    ..*cfg
                };
                let (faulty, report) = FaultInjector::new(per_session).inject(&video);
                writeln!(
                    out,
                    "session {k}: faults injected into {}/{} frames (seed {})",
                    report.faulty_frames(),
                    faulty.len(),
                    per_session.seed
                )?;
                clips.push(faulty);
            }
            _ => clips.push(video.clone()),
        }
    }

    let mut manager = slj_serve::SessionManager::new(slj_serve::ServeConfig {
        max_sessions,
        queue_depth,
        frame_deadline,
        parallelism,
        worker_mode,
        slot_pool,
        ..slj_serve::ServeConfig::default()
    });
    for clip in &clips {
        manager.open(slj_serve::SessionConfig {
            analyzer: config.clone(),
            camera: truth.camera,
            first_pose: truth.first_pose,
            fps: clip.fps(),
        })?;
    }

    // Interleaved producers: one frame per session per tick. A shed
    // offer is retried after ticking the queue down; a session the
    // supervisor has already removed from service just stops being fed.
    let mut shed_retries = 0u64;
    for i in 0..video.len() {
        for (id, clip) in clips.iter().enumerate() {
            loop {
                match manager.offer(id, &clip.frames()[i]) {
                    Ok(slj_serve::OfferReply::Accepted { .. }) => break,
                    Ok(slj_serve::OfferReply::Overloaded { .. }) => {
                        shed_retries += 1;
                        manager.tick();
                    }
                    Err(slj_serve::ServeError::SessionTerminal { .. }) => break,
                    Err(e) => return Err(e.into()),
                }
            }
        }
        manager.tick();
    }
    // End of input: close every clip, then drain — the manager stops
    // admitting and ticks until every in-flight session is terminal,
    // so no scripted tick count is needed.
    for id in 0..sessions {
        match manager.close(id) {
            Ok(()) | Err(slj_serve::ServeError::SessionTerminal { .. }) => {}
            Err(e) => return Err(e.into()),
        }
    }
    manager.run_until_drained();
    debug_assert!(manager.is_drained());

    let events = manager.drain_events();
    writeln!(
        out,
        "service: {sessions} sessions, {} ticks, {} health events, {shed_retries} backpressure retries",
        manager.ticks(),
        events.len()
    )?;
    for id in 0..sessions {
        let metrics = manager.metrics(id).expect("session was opened");
        let restarts = metrics.counter(slj_obs::serve_keys::RESTARTS);
        let degraded = manager.degraded(id).expect("session was opened");
        match manager.state(id).expect("session was opened").clone() {
            slj_serve::SessionState::Finished => {
                let analysis = manager
                    .take_result(id)
                    .expect("finished session has a result")
                    .expect("finished session result is Ok");
                writeln!(
                    out,
                    "session {id}: finished — {} frames, score {}/7, {degraded} degraded, {restarts} restarts",
                    analysis.health.len(),
                    analysis.score.score()
                )?;
            }
            slj_serve::SessionState::Failed => {
                let error = manager
                    .take_result(id)
                    .expect("failed session has a result")
                    .expect_err("failed session result is Err");
                writeln!(out, "session {id}: failed — {error}")?;
            }
            slj_serve::SessionState::Quarantined { reason } => {
                writeln!(out, "session {id}: quarantined — {reason}")?;
            }
            slj_serve::SessionState::Live => {
                writeln!(out, "session {id}: still live (producer never closed)")?;
            }
        }
    }
    if let Some(path) = flags.value("events") {
        write_output(path, &slj_serve::render_events(&events))?;
        writeln!(
            out,
            "health events ({}) written to {path}",
            slj_serve::SERVE_SCHEMA
        )?;
    }
    Ok(())
}

/// `slj daemon` — run the long-lived socket service in front of the
/// session manager.
///
/// Listens on one or more `tcp:HOST:PORT` / `unix:PATH` addresses
/// (comma-separated) speaking `slj-wire/1`, and blocks until a client
/// sends `DRAIN` (`slj submit --connect ADDR --drain`): in-flight
/// sessions finish, new opens are refused with a typed rejection, then
/// the daemon exits and prints its lifetime counters.
pub fn daemon<W: Write>(args: &[String], out: &mut W) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &[
            "listen",
            "max-sessions",
            "queue-depth",
            "frame-deadline-ms",
            "threads",
            "trace-dir",
            "max-frame-mb",
            "idle-timeout-ms",
        ],
        &[],
    )?;
    let mut addrs = Vec::new();
    for raw in flags.required("listen")?.split(',') {
        addrs.push(
            slj_daemon::Addr::parse(raw).map_err(|e| CliError::Usage(format!("--listen: {e}")))?,
        );
    }
    let mut config = slj_daemon::DaemonConfig::default();
    config.serve.max_sessions = flags.get_or("max-sessions", config.serve.max_sessions)?;
    config.serve.queue_depth = flags.get_or("queue-depth", config.serve.queue_depth)?;
    config.serve.frame_deadline = flags.get_or("frame-deadline-ms", config.serve.frame_deadline)?;
    if config.serve.queue_depth == 0 {
        return Err(CliError::Usage("--queue-depth must be at least 1".into()));
    }
    config.serve.parallelism = match flags.value("threads") {
        None => Parallelism::Auto,
        Some(raw) => raw
            .parse::<Parallelism>()
            .map_err(|e| CliError::Usage(format!("--threads: {e}")))?,
    };
    let max_frame_mb: usize = flags.get_or("max-frame-mb", 0)?;
    if max_frame_mb > 0 {
        config.max_frame = max_frame_mb * 1024 * 1024;
    }
    let idle_timeout_ms: u64 = flags.get_or("idle-timeout-ms", 0)?;
    if idle_timeout_ms > 0 {
        // The reaper counts consecutive quiet read polls.
        config.idle_timeouts = idle_timeout_ms.div_ceil(config.read_timeout_ms).max(1) as u32;
    }
    config.trace_dir = flags.value("trace-dir").map(std::path::PathBuf::from);

    let handle = slj_daemon::Daemon::start(&addrs, config)?;
    for addr in &handle.addrs {
        writeln!(out, "listening on {addr} ({})", slj_daemon::WIRE_SCHEMA)?;
    }
    out.flush()?;
    let stats = handle.join();
    writeln!(
        out,
        "daemon drained: {} connections, {} sessions ({} finished, {} failed, {} aborted, \
         {} clip-ingested), {} events dropped, {} connections torn down, {} ticks",
        stats.connections,
        stats.sessions_opened,
        stats.sessions_finished,
        stats.sessions_failed,
        stats.sessions_aborted,
        stats.clip_sessions,
        stats.events_dropped,
        stats.conns_torn_down,
        stats.ticks
    )?;
    Ok(())
}

/// `slj gateway` — run the HTTP front end against a running daemon.
///
/// Listens on one `tcp:HOST:PORT` / `unix:PATH` address and serves the
/// `/v1` job API: `POST /v1/jobs` ingests a clip (one open-request JSON
/// line followed by concatenated PPM frames) through the daemon's
/// `OPEN_CLIP` path, `GET /v1/jobs/{id}` returns the report JSON
/// byte-identical to `slj analyze --stream --report`, and
/// `POST /v1/drain` drains gateway and daemon both. Blocks until a
/// drain is requested, then finishes in-flight jobs and prints the
/// final metrics.
pub fn gateway<W: Write>(args: &[String], out: &mut W) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &[
            "listen",
            "connect",
            "max-jobs",
            "max-body-mb",
            "max-conns",
            "read-timeout-ms",
            "write-timeout-ms",
            "retry-after",
        ],
        &[],
    )?;
    let listen = slj_daemon::Addr::parse(flags.required("listen")?)
        .map_err(|e| CliError::Usage(format!("--listen: {e}")))?;
    let daemon = slj_daemon::Addr::parse(flags.required("connect")?)
        .map_err(|e| CliError::Usage(format!("--connect: {e}")))?;
    let mut config = slj_gateway::GatewayConfig::default();
    config.max_jobs = flags.get_or("max-jobs", config.max_jobs)?;
    config.max_conns = flags.get_or("max-conns", config.max_conns)?;
    let max_body_mb: usize = flags.get_or("max-body-mb", 0)?;
    if max_body_mb > 0 {
        config.max_body = max_body_mb * 1024 * 1024;
    }
    let read_timeout_ms: u64 = flags.get_or("read-timeout-ms", 0)?;
    if read_timeout_ms > 0 {
        config.read_timeout = std::time::Duration::from_millis(read_timeout_ms);
    }
    let write_timeout_ms: u64 = flags.get_or("write-timeout-ms", 0)?;
    if write_timeout_ms > 0 {
        config.write_timeout = std::time::Duration::from_millis(write_timeout_ms);
    }
    config.retry_after = flags.get_or("retry-after", config.retry_after)?;

    let handle = slj_gateway::Gateway::start(&listen, daemon.clone(), config)?;
    writeln!(
        out,
        "gateway listening on {} -> daemon {daemon}",
        handle.addr
    )?;
    out.flush()?;
    while !handle.is_draining() {
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    // Finish in-flight jobs before tearing the acceptor down.
    while handle.jobs_running() > 0 {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let metrics = handle.shutdown();
    writeln!(out, "gateway drained")?;
    write!(out, "{}", metrics.render())?;
    Ok(())
}

/// `slj submit` — stream a saved clip to a running daemon and collect
/// the analysis.
///
/// The returned summary JSON is byte-identical to what
/// `slj analyze --stream --report` writes for the same clip and
/// configuration, and `--trace` captures the identical `slj-trace/1`
/// JSONL — the daemon adds transport, not drift. With `--drain` the
/// command instead asks the daemon to shut down gracefully.
pub fn submit<W: Write>(args: &[String], out: &mut W) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &[
            "connect",
            "clip",
            "warmup",
            "max-degraded",
            "report",
            "trace",
            "events",
        ],
        &["fast", "best-effort", "drain"],
    )?;
    let addr = slj_daemon::Addr::parse(flags.required("connect")?)
        .map_err(|e| CliError::Usage(format!("--connect: {e}")))?;
    if flags.switch("drain") {
        let in_flight = slj_daemon::client::drain_daemon(&addr)?;
        writeln!(out, "daemon draining ({in_flight} sessions in flight)")?;
        return Ok(());
    }
    let clip_dir = flags.required("clip")?.to_owned();
    if flags.value("max-degraded").is_some() && !flags.switch("best-effort") {
        return Err(CliError::Usage(
            "--max-degraded only makes sense with --best-effort".into(),
        ));
    }
    let video = load_video(&clip_dir)?;
    let truth = ClipTruth::load(&clip_dir)?;
    let warmup: usize = flags.get_or("warmup", slj::DEFAULT_WARMUP_FRAMES)?;
    let max_degraded = if flags.switch("best-effort") {
        Some(flags.get_or("max-degraded", video.len().div_ceil(4))?)
    } else {
        None
    };
    let request = slj_daemon::OpenRequest {
        camera: truth.camera,
        dims: truth.dims.clone(),
        first_pose: truth.first_pose,
        fps: video.fps(),
        warmup,
        fast: flags.switch("fast"),
        max_degraded,
        want_trace: flags.value("trace").is_some(),
    };

    let mut client = slj_daemon::Client::connect(&addr, slj_daemon::ClientOptions::default())?;
    writeln!(out, "connected: {} at {addr}", client.proto())?;
    let analysis = client.analyze_clip(&request, video.frames())?;
    writeln!(
        out,
        "session {}: analysis received ({} frames sent, {} health events)",
        analysis.session,
        video.len(),
        analysis.events.len()
    )?;
    if let Some(path) = flags.value("events") {
        let mut lines = analysis.events.join("\n");
        lines.push('\n');
        write_output(path, &lines)?;
        writeln!(out, "health events written to {path}")?;
    }
    if let Some(path) = flags.value("trace") {
        write_output(path, &analysis.trace_jsonl)?;
        writeln!(out, "trace written to {path}")?;
    }
    match flags.value("report") {
        Some(path) => {
            write_output(path, &analysis.summary_json)?;
            writeln!(out, "summary written to {path}")?;
        }
        None => writeln!(out, "{}", analysis.summary_json)?,
    }
    Ok(())
}

/// `slj eval` — ground-truth accuracy evaluation over the synthetic
/// fault matrix, or the threshold-calibration sweep.
///
/// Exactly one mode must be selected: `--matrix small|full` runs the
/// seeded clip × fault-profile × gap-policy grid and writes the
/// `slj-eval/1` accuracy report; `--sweep` ROC-scores the quality-gate
/// thresholds and fits per-rung confidence factors against the same
/// ground truth.
pub fn eval<W: Write>(args: &[String], out: &mut W) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &["matrix", "out", "summary-md", "threads"],
        &["sweep"],
    )?;
    let matrix_size = flags.value("matrix");
    if flags.switch("sweep") && matrix_size.is_some() {
        return Err(CliError::Usage(
            "--sweep and --matrix are exclusive; pick one mode".into(),
        ));
    }
    if !flags.switch("sweep") && matrix_size.is_none() {
        return Err(CliError::Usage(
            "one of --matrix small|full or --sweep is required".into(),
        ));
    }
    let parallelism = match flags.value("threads") {
        None => Parallelism::Auto,
        Some(raw) => raw
            .parse::<Parallelism>()
            .map_err(|e| CliError::Usage(format!("--threads: {e}")))?,
    };

    if flags.switch("sweep") {
        if flags.value("summary-md").is_some() {
            return Err(CliError::Usage(
                "--summary-md only makes sense with --matrix".into(),
            ));
        }
        let config = slj_eval::MatrixConfig {
            parallelism,
            ..slj_eval::MatrixConfig::small()
        };
        let report = slj_eval::calibrate(&config, &slj_eval::SweepConfig::default());
        write!(out, "{}", slj_eval::calibrate::markdown_summary(&report))?;
        let path = flags.value("out").unwrap_or("EVAL_calibration.json");
        write_output(path, &report.to_json())?;
        writeln!(out, "calibration report written to {path}")?;
    } else {
        let config = match matrix_size.unwrap_or_default() {
            "small" => slj_eval::MatrixConfig::small(),
            "full" => slj_eval::MatrixConfig::full(),
            other => {
                return Err(CliError::Usage(format!(
                    "--matrix must be 'small' or 'full', got '{other}'"
                )))
            }
        };
        let config = slj_eval::MatrixConfig {
            parallelism,
            ..config
        };
        let report = slj_eval::run_matrix(&config);
        let summary = slj_eval::markdown_summary(&report);
        write!(out, "{summary}")?;
        let path = flags.value("out").unwrap_or("EVAL_accuracy.json");
        write_output(path, &report.to_json())?;
        writeln!(out, "accuracy report written to {path}")?;
        if let Some(md_path) = flags.value("summary-md") {
            write_output(md_path, &summary)?;
            writeln!(out, "markdown summary written to {md_path}")?;
        }
    }
    Ok(())
}

/// `slj score` — score a clip's ground-truth poses (no vision).
pub fn score<W: Write>(args: &[String], out: &mut W) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["clip"], &[])?;
    let clip_dir = flags.required("clip")?.to_owned();
    let truth = ClipTruth::load(&clip_dir)?;
    let card =
        score_jump(&truth.poses).map_err(|e| CliError::Usage(format!("cannot score: {e}")))?;
    writeln!(out, "{card}")?;
    for (standard, advice) in card.advice() {
        writeln!(out, "{standard}\n  -> {advice}")?;
    }
    Ok(())
}

/// `slj flaws` — list the injectable faults.
pub fn flaws<W: Write>(out: &mut W) -> Result<(), CliError> {
    writeln!(
        out,
        "injectable technique faults (E1-E7 of the paper's Table 1):"
    )?;
    for f in JumpFlaw::ALL {
        writeln!(
            out,
            "  {:<18} violates R{} ({})",
            f.name(),
            f.rule_number(),
            Standard::for_rule(slj_score::RuleId::ALL[f.rule_number() - 1]).description()
        )?;
    }
    Ok(())
}
