//! The `slj` binary: see `slj help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match slj_cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, slj_cli::CliError::Usage(_)) {
                eprintln!("\n{}", slj_cli::USAGE);
            }
            ExitCode::FAILURE
        }
    }
}
