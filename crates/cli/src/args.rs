//! Minimal flag parser: `--name value` pairs and boolean `--name`
//! switches, with typed accessors and unknown-flag rejection.

use crate::error::CliError;
use std::collections::BTreeMap;
use std::str::FromStr;

/// Parsed flags of one subcommand.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses `args` given the sets of value-taking and boolean flag
    /// names (without the `--` prefix).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] for unknown flags, missing values,
    /// duplicates, or stray positional arguments.
    pub fn parse(
        args: &[String],
        value_flags: &[&str],
        bool_flags: &[&str],
    ) -> Result<Flags, CliError> {
        let mut flags = Flags::default();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(CliError::Usage(format!(
                    "unexpected positional argument '{arg}'"
                )));
            };
            if bool_flags.contains(&name) {
                if flags.switches.iter().any(|s| s == name) {
                    return Err(CliError::Usage(format!("duplicate flag --{name}")));
                }
                flags.switches.push(name.to_owned());
            } else if value_flags.contains(&name) {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?;
                if flags
                    .values
                    .insert(name.to_owned(), value.clone())
                    .is_some()
                {
                    return Err(CliError::Usage(format!("duplicate flag --{name}")));
                }
            } else {
                return Err(CliError::Usage(format!("unknown flag --{name}")));
            }
        }
        Ok(flags)
    }

    /// The raw value of a flag, if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when absent.
    pub fn required(&self, name: &str) -> Result<&str, CliError> {
        self.value(name)
            .ok_or_else(|| CliError::Usage(format!("--{name} is required")))
    }

    /// A typed optional flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when the value does not parse.
    pub fn get_or<T: FromStr>(&self, name: &str, default: T) -> Result<T, CliError>
    where
        T::Err: std::fmt::Display,
    {
        match self.value(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| CliError::Usage(format!("--{name}: cannot parse '{raw}': {e}"))),
        }
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let f = Flags::parse(
            &argv("--out dir --seed 7 --fast"),
            &["out", "seed"],
            &["fast"],
        )
        .unwrap();
        assert_eq!(f.value("out"), Some("dir"));
        assert_eq!(f.get_or("seed", 0u64).unwrap(), 7);
        assert!(f.switch("fast"));
        assert!(!f.switch("paper"));
        assert_eq!(f.get_or("frames", 20usize).unwrap(), 20);
    }

    #[test]
    fn rejects_unknown_flags() {
        let err = Flags::parse(&argv("--bogus 1"), &["out"], &[]).unwrap_err();
        assert!(err.to_string().contains("--bogus"));
    }

    #[test]
    fn rejects_missing_value() {
        let err = Flags::parse(&argv("--out"), &["out"], &[]).unwrap_err();
        assert!(err.to_string().contains("needs a value"));
    }

    #[test]
    fn rejects_duplicates_and_positionals() {
        assert!(Flags::parse(&argv("--out a --out b"), &["out"], &[]).is_err());
        assert!(Flags::parse(&argv("stray"), &["out"], &[]).is_err());
        assert!(Flags::parse(&argv("--fast --fast"), &[], &["fast"]).is_err());
    }

    #[test]
    fn required_and_typed_errors() {
        let f = Flags::parse(&argv("--seed notanumber"), &["seed"], &[]).unwrap();
        assert!(f.required("out").is_err());
        assert!(f.get_or("seed", 0u64).is_err());
    }
}
