//! CLI error type.

use std::fmt;

/// Error returned by the CLI front end.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Malformed command line (bad flag, missing argument, unknown
    /// command). The string is user-facing.
    Usage(String),
    /// An I/O failure while reading or writing clips/reports.
    Io(std::io::Error),
    /// A JSON file did not parse.
    Json(serde_json::Error),
    /// Image/clip decode failure.
    Image(slj_imgproc::ImgError),
    /// The analysis itself failed.
    Analyze(slj::AnalyzeError),
    /// The service layer refused a request.
    Serve(slj_serve::ServeError),
    /// The daemon transport failed (connect, wire protocol, session).
    Daemon(slj_daemon::ClientError),
    /// An output file (`--report`, `--events`, `--trace`, …) could not
    /// be written. Unlike a bare [`CliError::Io`], this names the path.
    Output {
        /// The file that could not be written.
        path: String,
        /// The underlying failure.
        error: std::io::Error,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Json(e) => write!(f, "json error: {e}"),
            CliError::Image(e) => write!(f, "clip error: {e}"),
            CliError::Analyze(e) => write!(f, "analysis error: {e}"),
            CliError::Serve(e) => write!(f, "service error: {e}"),
            CliError::Daemon(e) => write!(f, "daemon error: {e}"),
            CliError::Output { path, error } => {
                write!(f, "cannot write output file '{path}': {error}")
            }
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Usage(_) => None,
            CliError::Io(e) => Some(e),
            CliError::Json(e) => Some(e),
            CliError::Image(e) => Some(e),
            CliError::Analyze(e) => Some(e),
            CliError::Serve(e) => Some(e),
            CliError::Daemon(e) => Some(e),
            CliError::Output { error, .. } => Some(error),
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e)
    }
}

impl From<slj_imgproc::ImgError> for CliError {
    fn from(e: slj_imgproc::ImgError) -> Self {
        CliError::Image(e)
    }
}

impl From<slj::AnalyzeError> for CliError {
    fn from(e: slj::AnalyzeError) -> Self {
        CliError::Analyze(e)
    }
}

impl From<slj_serve::ServeError> for CliError {
    fn from(e: slj_serve::ServeError) -> Self {
        CliError::Serve(e)
    }
}

impl From<slj_daemon::ClientError> for CliError {
    fn from(e: slj_daemon::ClientError) -> Self {
        CliError::Daemon(e)
    }
}

impl From<slj_video::TruthError> for CliError {
    fn from(e: slj_video::TruthError) -> Self {
        match e {
            slj_video::TruthError::Io(io) => CliError::Io(io),
            slj_video::TruthError::Json(json) => CliError::Json(json),
            _ => CliError::Usage(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        use std::error::Error;
        let u = CliError::Usage("bad flag".into());
        assert!(u.to_string().contains("bad flag"));
        assert!(u.source().is_none());
        let io = CliError::from(std::io::Error::other("x"));
        assert!(io.source().is_some());
    }
}
