//! Property-based tests for the image-processing substrate.
//!
//! These check the algebraic laws the pipeline silently relies on:
//! mask set algebra, morphology ordering (erosion ⊆ identity ⊆
//! dilation), opening/closing idempotence, component-area conservation,
//! hole-fill monotonicity, the metric property of the distance
//! transform, colour-conversion round trips, and I/O round trips.

use proptest::prelude::*;
use slj_imgproc::components::{label_components, remove_small_components};
use slj_imgproc::distance::DistanceField;
use slj_imgproc::geometry::{Point2, Segment};
use slj_imgproc::holes::{fill_enclosed_holes, fill_holes_iterated, fill_holes_paper_rule};
use slj_imgproc::image::ImageBuffer;
use slj_imgproc::io;
use slj_imgproc::mask::Mask;
use slj_imgproc::morph::{close, dilate, erode, neighbor_filter, open, Connectivity};
use slj_imgproc::pixel::{Gray, Hsv, Rgb};

/// Strategy: a small mask with arbitrary contents.
fn mask_strategy() -> impl Strategy<Value = Mask> {
    (1usize..20, 1usize..20).prop_flat_map(|(w, h)| {
        proptest::collection::vec(any::<bool>(), w * h).prop_map(move |bits| {
            let mut m = Mask::new(w, h);
            for (i, b) in bits.into_iter().enumerate() {
                if b {
                    m.set(i % w, i / w, true);
                }
            }
            m
        })
    })
}

/// Strategy: a small RGB image.
fn image_strategy() -> impl Strategy<Value = ImageBuffer<Rgb>> {
    (1usize..12, 1usize..12).prop_flat_map(|(w, h)| {
        proptest::collection::vec(any::<(u8, u8, u8)>(), w * h).prop_map(move |px| {
            ImageBuffer::from_vec(
                w,
                h,
                px.into_iter().map(|(r, g, b)| Rgb::new(r, g, b)).collect(),
            )
            .unwrap()
        })
    })
}

fn subset(a: &Mask, b: &Mask) -> bool {
    a.difference(b).unwrap().is_blank()
}

proptest! {
    // ---------- mask set algebra ----------

    #[test]
    fn union_is_commutative_and_bounding(a in mask_strategy()) {
        // Build b with the same dims by shifting a.
        let b = Mask::from_fn(a.width(), a.height(), |x, y| a.get(y % a.width().max(1), x % a.height().max(1)));
        let ab = a.union(&b).unwrap();
        let ba = b.union(&a).unwrap();
        prop_assert_eq!(&ab, &ba);
        prop_assert!(subset(&a, &ab));
        prop_assert!(subset(&b, &ab));
    }

    #[test]
    fn intersection_subset_union(a in mask_strategy()) {
        let b = a.invert();
        let i = a.intersect(&b).unwrap();
        let u = a.union(&b).unwrap();
        prop_assert!(i.is_blank()); // a ∩ ¬a = ∅
        prop_assert_eq!(u.count(), a.width() * a.height()); // a ∪ ¬a = everything
    }

    #[test]
    fn de_morgan(a in mask_strategy()) {
        let b = Mask::from_fn(a.width(), a.height(), |x, y| (x + y) % 3 == 0);
        let left = a.union(&b).unwrap().invert();
        let right = a.invert().intersect(&b.invert()).unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn metrics_counts_conserve_pixels(a in mask_strategy()) {
        let truth = Mask::from_fn(a.width(), a.height(), |x, _| x % 2 == 0);
        let m = a.metrics_against(&truth).unwrap();
        prop_assert_eq!(m.tp + m.fp + m.fn_ + m.tn, a.width() * a.height());
        prop_assert!(m.iou() >= 0.0 && m.iou() <= 1.0);
        prop_assert!(m.f1() >= 0.0 && m.f1() <= 1.0);
    }

    #[test]
    fn iou_with_self_is_one(a in mask_strategy()) {
        prop_assert_eq!(a.iou(&a).unwrap(), 1.0);
    }

    // ---------- morphology ----------

    #[test]
    fn erosion_shrinks_dilation_grows(a in mask_strategy()) {
        for conn in [Connectivity::Four, Connectivity::Eight] {
            let e = erode(&a, conn);
            let d = dilate(&a, conn);
            prop_assert!(subset(&e, &a));
            prop_assert!(subset(&a, &d));
        }
    }

    #[test]
    fn opening_and_closing_are_idempotent(inner in mask_strategy()) {
        // Out-of-bounds reads as background, which makes closing
        // non-extensive *at the border* (the dilated halo is clipped, so
        // border pixels can be eroded away). The classical laws hold for
        // content away from the border, so embed the random mask in a
        // 2-pixel frame of background.
        let a = Mask::from_fn(inner.width() + 4, inner.height() + 4, |x, y| {
            x >= 2 && y >= 2 && inner.get(x - 2, y - 2)
        });
        let conn = Connectivity::Eight;
        let o = open(&a, conn);
        prop_assert_eq!(&open(&o, conn), &o);
        let cl = close(&a, conn);
        prop_assert_eq!(&close(&cl, conn), &cl);
        // Opening is anti-extensive, closing extensive.
        prop_assert!(subset(&o, &a));
        prop_assert!(subset(&a, &cl));
    }

    #[test]
    fn neighbor_filter_is_anti_extensive_and_monotone_in_threshold(a in mask_strategy()) {
        let f2 = neighbor_filter(&a, 2);
        let f4 = neighbor_filter(&a, 4);
        prop_assert!(subset(&f2, &a));
        prop_assert!(subset(&f4, &f2)); // stricter threshold keeps fewer
    }

    // ---------- connected components ----------

    #[test]
    fn component_areas_sum_to_mask_count(a in mask_strategy()) {
        for conn in [Connectivity::Four, Connectivity::Eight] {
            let labeling = label_components(&a, conn);
            let total: usize = labeling.components().iter().map(|c| c.area).sum();
            prop_assert_eq!(total, a.count());
        }
    }

    #[test]
    fn spot_removal_is_anti_extensive_and_monotone(a in mask_strategy()) {
        let r2 = remove_small_components(&a, 2);
        let r5 = remove_small_components(&a, 5);
        prop_assert!(subset(&r2, &a));
        prop_assert!(subset(&r5, &r2));
        prop_assert_eq!(remove_small_components(&a, 1), a);
    }

    // ---------- hole filling ----------

    #[test]
    fn hole_filling_is_extensive_and_idempotent(a in mask_strategy()) {
        let (paper, _) = fill_holes_iterated(&a, 8);
        prop_assert!(subset(&a, &paper));
        let flood = fill_enclosed_holes(&a);
        prop_assert!(subset(&a, &flood));
        prop_assert_eq!(&fill_enclosed_holes(&flood), &flood);
        // The flood fill dominates the local rule.
        prop_assert!(subset(&paper, &flood));
    }

    // ---------- distance transform ----------

    #[test]
    fn distance_field_metric_properties(a in mask_strategy()) {
        prop_assume!(!a.is_blank());
        let df = DistanceField::new(&a);
        for (x, y) in a.foreground_pixels() {
            prop_assert_eq!(df.distance(x, y), 0.0);
        }
        // 1-Lipschitz between 4-neighbours (in chamfer units the step is
        // exactly 1 px).
        for y in 0..a.height() {
            for x in 1..a.width() {
                let d = (df.distance(x, y) - df.distance(x - 1, y)).abs();
                prop_assert!(d <= 1.0 + 1e-9);
            }
        }
    }

    // ---------- geometry ----------

    #[test]
    fn closest_point_is_on_segment_and_optimal(
        ax in -50.0f64..50.0, ay in -50.0f64..50.0,
        bx in -50.0f64..50.0, by in -50.0f64..50.0,
        px in -50.0f64..50.0, py in -50.0f64..50.0,
    ) {
        let s = Segment::new(Point2::new(ax, ay), Point2::new(bx, by));
        let p = Point2::new(px, py);
        let t = s.closest_t(p);
        prop_assert!((0.0..=1.0).contains(&t));
        let c = s.closest_point(p);
        let d = s.distance_to(p);
        // No sampled point on the segment is closer.
        for q in s.sample(11) {
            prop_assert!(p.distance(q) + 1e-9 >= d);
        }
        prop_assert!((p.distance(c) - d).abs() < 1e-9);
        // Distance to segment is bounded by distance to either endpoint.
        prop_assert!(d <= p.distance(s.a) + 1e-9);
        prop_assert!(d <= p.distance(s.b) + 1e-9);
    }

    // ---------- colour ----------

    #[test]
    fn rgb_hsv_roundtrip_within_one_level(r in any::<u8>(), g in any::<u8>(), b in any::<u8>()) {
        let c = Rgb::new(r, g, b);
        let back = c.to_hsv().to_rgb();
        prop_assert!(c.linf_distance(back) <= 1, "{c} -> {back}");
    }

    #[test]
    fn hue_distance_is_a_metric_on_the_circle(h1 in 0.0f64..360.0, h2 in 0.0f64..360.0, h3 in 0.0f64..360.0) {
        let a = Hsv::new(h1, 1.0, 1.0);
        let b = Hsv::new(h2, 1.0, 1.0);
        let c = Hsv::new(h3, 1.0, 1.0);
        prop_assert!((a.hue_distance(b) - b.hue_distance(a)).abs() < 1e-9);
        prop_assert!(a.hue_distance(b) <= 180.0 + 1e-9);
        prop_assert!(a.hue_distance(c) <= a.hue_distance(b) + b.hue_distance(c) + 1e-9);
    }

    #[test]
    fn brightness_scaling_is_monotone(r in any::<u8>(), g in any::<u8>(), b in any::<u8>(), f in 0.0f64..1.0) {
        let c = Rgb::new(r, g, b);
        let dark = c.scale_brightness(f);
        prop_assert!(dark.r <= c.r && dark.g <= c.g && dark.b <= c.b);
        prop_assert!(dark.luma() <= c.luma() + 1.0);
    }

    // ---------- I/O ----------

    #[test]
    fn ppm_roundtrip(img in image_strategy()) {
        let mut buf = Vec::new();
        io::write_ppm(&img, &mut buf).unwrap();
        let back = io::read_ppm(&buf[..]).unwrap();
        prop_assert_eq!(back, img);
    }

    #[test]
    fn pgm_roundtrip(img in image_strategy()) {
        let gray = img.map(Gray::from);
        let mut buf = Vec::new();
        io::write_pgm(&gray, &mut buf).unwrap();
        let back = io::read_pgm(&buf[..]).unwrap();
        prop_assert_eq!(back, gray);
    }

    // ---------- image buffer ----------

    #[test]
    fn crop_contents_match_source(img in image_strategy(), x0 in 0usize..12, y0 in 0usize..12, w in 1usize..12, h in 1usize..12) {
        let c = img.crop(x0, y0, w, h);
        for y in 0..c.height() {
            for x in 0..c.width() {
                prop_assert_eq!(c.get(x, y), img.get(x0 + x, y0 + y));
            }
        }
    }

    #[test]
    fn map_preserves_structure(img in image_strategy()) {
        let luma = img.map(Gray::from);
        prop_assert_eq!(luma.dims(), img.dims());
        for (x, y, p) in img.enumerate_pixels() {
            prop_assert_eq!(luma.get(x, y), Gray::from(p));
        }
    }
}

// ---------- bit-packed kernels vs naive Vec<bool> reference ----------
//
// The `Mask` API is backed by the word-parallel `BitMask` kernels; these
// properties pin every kernel bitwise-equal to a naive per-pixel
// `Vec<bool>` implementation on random masks whose widths straddle the
// 64-bit word boundary.

/// A naive row-major `Vec<bool>` mask, the pre-bit-packing storage.
#[derive(Clone, Debug, PartialEq)]
struct NaiveMask {
    w: usize,
    h: usize,
    data: Vec<bool>,
}

impl NaiveMask {
    fn get(&self, x: isize, y: isize) -> bool {
        x >= 0
            && y >= 0
            && (x as usize) < self.w
            && (y as usize) < self.h
            && self.data[y as usize * self.w + x as usize]
    }

    fn count_neighbors(&self, x: usize, y: usize, conn: Connectivity) -> usize {
        conn.offsets()
            .iter()
            .filter(|&&(dx, dy)| self.get(x as isize + dx, y as isize + dy))
            .count()
    }

    fn map(&self, mut f: impl FnMut(usize, usize) -> bool) -> NaiveMask {
        let mut data = Vec::with_capacity(self.w * self.h);
        for y in 0..self.h {
            for x in 0..self.w {
                data.push(f(x, y));
            }
        }
        NaiveMask {
            w: self.w,
            h: self.h,
            data,
        }
    }

    /// The original stack-based border flood fill.
    fn fill_enclosed(&self) -> NaiveMask {
        let (w, h) = (self.w, self.h);
        let mut outside = vec![false; w * h];
        let mut stack: Vec<(usize, usize)> = Vec::new();
        let push =
            |x: usize, y: usize, outside: &mut Vec<bool>, stack: &mut Vec<(usize, usize)>| {
                if !self.data[y * w + x] && !outside[y * w + x] {
                    outside[y * w + x] = true;
                    stack.push((x, y));
                }
            };
        for x in 0..w {
            push(x, 0, &mut outside, &mut stack);
            push(x, h - 1, &mut outside, &mut stack);
        }
        for y in 0..h {
            push(0, y, &mut outside, &mut stack);
            push(w - 1, y, &mut outside, &mut stack);
        }
        while let Some((x, y)) = stack.pop() {
            for &(dx, dy) in Connectivity::Four.offsets() {
                let (nx, ny) = (x as isize + dx, y as isize + dy);
                if nx >= 0 && ny >= 0 && (nx as usize) < w && (ny as usize) < h {
                    let (nx, ny) = (nx as usize, ny as usize);
                    if !self.data[ny * w + nx] && !outside[ny * w + nx] {
                        outside[ny * w + nx] = true;
                        stack.push((nx, ny));
                    }
                }
            }
        }
        self.map(|x, y| self.data[y * w + x] || !outside[y * w + x])
    }
}

fn to_mask(n: &NaiveMask) -> Mask {
    Mask::from_fn(n.w, n.h, |x, y| n.data[y * n.w + x])
}

fn masks_equal(packed: &Mask, naive: &NaiveMask) -> bool {
    packed.dims() == (naive.w, naive.h)
        && (0..naive.h)
            .all(|y| (0..naive.w).all(|x| packed.get(x, y) == naive.data[y * naive.w + x]))
}

/// Strategy: a naive mask whose width crosses the u64 word boundary often.
fn naive_strategy() -> impl Strategy<Value = NaiveMask> {
    (1usize..140, 1usize..16).prop_flat_map(|(w, h)| {
        proptest::collection::vec(any::<bool>(), w * h).prop_map(move |data| NaiveMask {
            w,
            h,
            data,
        })
    })
}

proptest! {
    #[test]
    fn packed_set_algebra_matches_naive(a in naive_strategy(), seed in any::<u64>()) {
        // Derive a second mask of the same dims from the seed.
        let b = a.map(|x, y| {
            let v = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(((y * a.w + x) as u64).wrapping_mul(1442695040888963407));
            (v >> 32) & 1 == 1
        });
        let (pa, pb) = (to_mask(&a), to_mask(&b));
        let union = a.map(|x, y| a.data[y * a.w + x] | b.data[y * b.w + x]);
        let inter = a.map(|x, y| a.data[y * a.w + x] & b.data[y * b.w + x]);
        let diff = a.map(|x, y| a.data[y * a.w + x] & !b.data[y * b.w + x]);
        let inv = a.map(|x, y| !a.data[y * a.w + x]);
        prop_assert!(masks_equal(&pa.union(&pb).unwrap(), &union));
        prop_assert!(masks_equal(&pa.intersect(&pb).unwrap(), &inter));
        prop_assert!(masks_equal(&pa.difference(&pb).unwrap(), &diff));
        prop_assert!(masks_equal(&pa.invert(), &inv));
        prop_assert_eq!(pa.count(), a.data.iter().filter(|&&v| v).count());
    }

    #[test]
    fn packed_neighbor_vote_matches_naive(a in naive_strategy(), threshold in 0usize..9) {
        let packed = neighbor_filter(&to_mask(&a), threshold);
        let reference = a.map(|x, y| {
            a.data[y * a.w + x] && a.count_neighbors(x, y, Connectivity::Eight) > threshold
        });
        prop_assert!(masks_equal(&packed, &reference));
    }

    #[test]
    fn packed_morphology_matches_naive(a in naive_strategy()) {
        let pa = to_mask(&a);
        for conn in [Connectivity::Four, Connectivity::Eight] {
            let er = a.map(|x, y| {
                a.data[y * a.w + x] && a.count_neighbors(x, y, conn) == conn.offsets().len()
            });
            let di = a.map(|x, y| {
                a.data[y * a.w + x] || a.count_neighbors(x, y, conn) > 0
            });
            prop_assert!(masks_equal(&erode(&pa, conn), &er));
            prop_assert!(masks_equal(&dilate(&pa, conn), &di));
        }
    }

    #[test]
    fn packed_paper_rule_matches_naive(a in naive_strategy()) {
        let packed = fill_holes_paper_rule(&to_mask(&a));
        let reference = a.map(|x, y| {
            a.data[y * a.w + x]
                || Connectivity::Four
                    .offsets()
                    .iter()
                    .all(|&(dx, dy)| a.get(x as isize + dx, y as isize + dy))
        });
        prop_assert!(masks_equal(&packed, &reference));
    }

    #[test]
    fn packed_flood_fill_matches_naive(a in naive_strategy()) {
        let packed = fill_enclosed_holes(&to_mask(&a));
        let reference = a.fill_enclosed();
        prop_assert!(masks_equal(&packed, &reference));
    }

    #[test]
    fn packed_foreground_iteration_matches_naive(a in naive_strategy()) {
        let packed: Vec<(usize, usize)> = to_mask(&a).foreground_pixels().collect();
        let mut reference = Vec::new();
        for y in 0..a.h {
            for x in 0..a.w {
                if a.data[y * a.w + x] {
                    reference.push((x, y));
                }
            }
        }
        prop_assert_eq!(packed, reference);
    }
}
