//! Deterministic noise injection for the synthetic camera.
//!
//! Section 2 of the paper fights three artefacts: per-pixel noise from
//! light changes, "small spots" (non-human moving clutter), and holes in
//! the extracted objects. The synthetic video generator reproduces all
//! three with the functions here so that the pipeline's repair stages have
//! real work to do. All functions take an explicit RNG: a seeded
//! [`rand::rngs::StdRng`] makes every experiment reproducible.

use crate::image::ImageBuffer;
use crate::mask::Mask;
use crate::pixel::Rgb;
use rand::Rng;

/// Adds zero-mean uniform per-channel jitter in `[-amplitude, amplitude]`
/// to every pixel — the "light change" noise of the paper's Step 3.
pub fn add_channel_jitter<R: Rng>(img: &mut ImageBuffer<Rgb>, amplitude: u8, rng: &mut R) {
    if amplitude == 0 {
        return;
    }
    let a = amplitude as i32;
    for p in img.as_mut_slice() {
        let mut jitter = |c: u8| -> u8 { (c as i32 + rng.gen_range(-a..=a)).clamp(0, 255) as u8 };
        *p = Rgb::new(jitter(p.r), jitter(p.g), jitter(p.b));
    }
}

/// Scales the brightness of the whole frame by a factor drawn uniformly
/// from `[1 - flicker, 1 + flicker]`, modelling global lighting flicker
/// between frames. Returns the factor used.
pub fn apply_global_flicker<R: Rng>(img: &mut ImageBuffer<Rgb>, flicker: f64, rng: &mut R) -> f64 {
    let factor = if flicker <= 0.0 {
        1.0
    } else {
        rng.gen_range(1.0 - flicker..=1.0 + flicker)
    };
    if (factor - 1.0).abs() > f64::EPSILON {
        for p in img.as_mut_slice() {
            *p = p.scale_brightness(factor);
        }
    }
    factor
}

/// Flips each pixel of a mask to foreground with probability
/// `salt_prob` and to background with probability `pepper_prob`
/// (mutually exclusive per pixel; salt is tried first).
pub fn salt_and_pepper<R: Rng>(mask: &mut Mask, salt_prob: f64, pepper_prob: f64, rng: &mut R) {
    for y in 0..mask.height() {
        for x in 0..mask.width() {
            let roll: f64 = rng.gen();
            if roll < salt_prob {
                mask.set(x, y, true);
            } else if roll < salt_prob + pepper_prob {
                mask.set(x, y, false);
            }
        }
    }
}

/// Punches `count` square holes of side `hole_size` at random positions
/// into the foreground of a mask — the object holes Step 4 must repair.
/// Holes may land on background, where they have no effect.
pub fn punch_holes<R: Rng>(mask: &mut Mask, count: usize, hole_size: usize, rng: &mut R) {
    let (w, h) = mask.dims();
    if w == 0 || h == 0 || hole_size == 0 {
        return;
    }
    for _ in 0..count {
        let cx = rng.gen_range(0..w);
        let cy = rng.gen_range(0..h);
        for dy in 0..hole_size {
            for dx in 0..hole_size {
                let x = cx + dx;
                let y = cy + dy;
                if x < w && y < h {
                    mask.set(x, y, false);
                }
            }
        }
    }
}

/// A small drifting clutter blob (e.g. a leaf or another child in the
/// background) that the spot-removal stage must delete.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spot {
    /// Blob centre x at frame 0, pixels.
    pub x: f64,
    /// Blob centre y at frame 0, pixels.
    pub y: f64,
    /// Horizontal drift per frame, pixels.
    pub vx: f64,
    /// Vertical drift per frame, pixels.
    pub vy: f64,
    /// Blob radius, pixels.
    pub radius: f64,
    /// Blob colour.
    pub color: Rgb,
}

impl Spot {
    /// Generates a random spot within the image bounds.
    pub fn random<R: Rng>(width: usize, height: usize, max_radius: f64, rng: &mut R) -> Spot {
        Spot {
            x: rng.gen_range(0.0..width.max(1) as f64),
            y: rng.gen_range(0.0..height.max(1) as f64),
            vx: rng.gen_range(-2.0..2.0),
            vy: rng.gen_range(-2.0..2.0),
            radius: rng.gen_range(1.0..max_radius.max(1.5)),
            color: Rgb::new(
                rng.gen_range(30..220),
                rng.gen_range(30..220),
                rng.gen_range(30..220),
            ),
        }
    }

    /// The spot's centre at frame `k`.
    pub fn center_at(&self, frame: usize) -> (f64, f64) {
        (
            self.x + self.vx * frame as f64,
            self.y + self.vy * frame as f64,
        )
    }

    /// Stamps the spot into a frame at time `frame`.
    pub fn render(&self, img: &mut ImageBuffer<Rgb>, frame: usize) {
        let (cx, cy) = self.center_at(frame);
        crate::draw::fill_disc(
            img,
            crate::geometry::Point2::new(cx, cy),
            self.radius,
            self.color,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn jitter_stays_within_amplitude() {
        let mut img = ImageBuffer::filled(20, 20, Rgb::splat(128));
        add_channel_jitter(&mut img, 10, &mut rng(1));
        for &p in img.as_slice() {
            assert!(p.linf_distance(Rgb::splat(128)) <= 10);
        }
        // Some pixel actually changed.
        assert!(img.as_slice().iter().any(|&p| p != Rgb::splat(128)));
    }

    #[test]
    fn jitter_zero_amplitude_is_noop() {
        let mut img = ImageBuffer::filled(5, 5, Rgb::splat(100));
        add_channel_jitter(&mut img, 0, &mut rng(2));
        assert!(img.as_slice().iter().all(|&p| p == Rgb::splat(100)));
    }

    #[test]
    fn jitter_clamps_at_extremes() {
        let mut img = ImageBuffer::filled(10, 10, Rgb::BLACK);
        add_channel_jitter(&mut img, 50, &mut rng(3));
        // No underflow wraparound: channels stay small.
        for &p in img.as_slice() {
            assert!(p.r <= 50 && p.g <= 50 && p.b <= 50);
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mut a = ImageBuffer::filled(8, 8, Rgb::splat(90));
        let mut b = ImageBuffer::filled(8, 8, Rgb::splat(90));
        add_channel_jitter(&mut a, 12, &mut rng(42));
        add_channel_jitter(&mut b, 12, &mut rng(42));
        assert_eq!(a, b);
    }

    #[test]
    fn flicker_scales_uniformly() {
        let mut img = ImageBuffer::filled(4, 4, Rgb::splat(100));
        let f = apply_global_flicker(&mut img, 0.2, &mut rng(7));
        assert!((0.8..=1.2).contains(&f));
        let expected = Rgb::splat(100).scale_brightness(f);
        assert!(img.as_slice().iter().all(|&p| p == expected));
    }

    #[test]
    fn flicker_zero_returns_identity() {
        let mut img = ImageBuffer::filled(4, 4, Rgb::splat(77));
        let f = apply_global_flicker(&mut img, 0.0, &mut rng(8));
        assert_eq!(f, 1.0);
        assert!(img.as_slice().iter().all(|&p| p == Rgb::splat(77)));
    }

    #[test]
    fn salt_and_pepper_rates_are_plausible() {
        let mut m = Mask::new(100, 100);
        salt_and_pepper(&mut m, 0.05, 0.0, &mut rng(9));
        let density = m.density();
        assert!((0.03..0.07).contains(&density), "salt density {density}");

        let mut full = Mask::filled(100, 100, true);
        salt_and_pepper(&mut full, 0.0, 0.1, &mut rng(10));
        let survived = full.density();
        assert!(
            (0.85..0.95).contains(&survived),
            "pepper survived {survived}"
        );
    }

    #[test]
    fn salt_and_pepper_zero_rates_noop() {
        let mut m = Mask::filled(10, 10, true);
        salt_and_pepper(&mut m, 0.0, 0.0, &mut rng(11));
        assert_eq!(m.count(), 100);
    }

    #[test]
    fn punch_holes_reduces_foreground() {
        let mut m = Mask::filled(50, 50, true);
        punch_holes(&mut m, 5, 3, &mut rng(12));
        let removed = 2500 - m.count();
        assert!(removed > 0);
        assert!(removed <= 5 * 9);
    }

    #[test]
    fn punch_holes_zero_size_noop() {
        let mut m = Mask::filled(10, 10, true);
        punch_holes(&mut m, 3, 0, &mut rng(13));
        assert_eq!(m.count(), 100);
    }

    #[test]
    fn spot_drifts_linearly() {
        let s = Spot {
            x: 10.0,
            y: 20.0,
            vx: 1.5,
            vy: -0.5,
            radius: 2.0,
            color: Rgb::splat(50),
        };
        assert_eq!(s.center_at(0), (10.0, 20.0));
        assert_eq!(s.center_at(4), (16.0, 18.0));
    }

    #[test]
    fn spot_renders_its_color() {
        let mut img = ImageBuffer::filled(30, 30, Rgb::BLACK);
        let s = Spot {
            x: 15.0,
            y: 15.0,
            vx: 0.0,
            vy: 0.0,
            radius: 3.0,
            color: Rgb::new(200, 10, 10),
        };
        s.render(&mut img, 0);
        assert_eq!(img.get(15, 15), Rgb::new(200, 10, 10));
        assert_eq!(img.get(0, 0), Rgb::BLACK);
    }

    #[test]
    fn random_spot_within_bounds() {
        for seed in 0..20 {
            let s = Spot::random(64, 48, 4.0, &mut rng(seed));
            assert!((0.0..64.0).contains(&s.x));
            assert!((0.0..48.0).contains(&s.y));
            assert!(s.radius >= 1.0 && s.radius < 4.0);
        }
    }
}
