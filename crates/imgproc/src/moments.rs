//! Geometric moments of binary masks.
//!
//! The GA's temporal initialisation (paper, Section 3) places the trunk
//! centre at "the geometric center of the silhouette", so the centroid is
//! a first-class operation here, along with area and the axis-aligned
//! bounding box.

use crate::geometry::Point2;
use crate::mask::Mask;

/// Inclusive axis-aligned bounding box of a mask's foreground.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundingBox {
    /// Smallest foreground x.
    pub x_min: usize,
    /// Smallest foreground y.
    pub y_min: usize,
    /// Largest foreground x.
    pub x_max: usize,
    /// Largest foreground y.
    pub y_max: usize,
}

impl BoundingBox {
    /// Box width in pixels (inclusive extent).
    pub fn width(&self) -> usize {
        self.x_max - self.x_min + 1
    }

    /// Box height in pixels (inclusive extent).
    pub fn height(&self) -> usize {
        self.y_max - self.y_min + 1
    }

    /// Centre of the box.
    pub fn center(&self) -> Point2 {
        Point2::new(
            (self.x_min + self.x_max) as f64 / 2.0,
            (self.y_min + self.y_max) as f64 / 2.0,
        )
    }

    /// Whether `(x, y)` lies inside the box.
    pub fn contains(&self, x: usize, y: usize) -> bool {
        x >= self.x_min && x <= self.x_max && y >= self.y_min && y <= self.y_max
    }
}

/// Centroid (geometric centre, the mean of foreground coordinates) of a
/// mask, or `None` when the mask is blank.
pub fn centroid(mask: &Mask) -> Option<Point2> {
    let mut sx = 0.0f64;
    let mut sy = 0.0f64;
    let mut n = 0usize;
    for (x, y) in mask.foreground_pixels() {
        sx += x as f64;
        sy += y as f64;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(Point2::new(sx / n as f64, sy / n as f64))
    }
}

/// Inclusive bounding box of the foreground, or `None` when blank.
pub fn bounding_box(mask: &Mask) -> Option<BoundingBox> {
    let mut bb: Option<BoundingBox> = None;
    for (x, y) in mask.foreground_pixels() {
        match &mut bb {
            None => {
                bb = Some(BoundingBox {
                    x_min: x,
                    y_min: y,
                    x_max: x,
                    y_max: y,
                })
            }
            Some(b) => {
                b.x_min = b.x_min.min(x);
                b.y_min = b.y_min.min(y);
                b.x_max = b.x_max.max(x);
                b.y_max = b.y_max.max(y);
            }
        }
    }
    bb
}

/// Second-order central moments `(mu20, mu02, mu11)` of the foreground,
/// or `None` when blank. Used by tests to check that synthetic silhouettes
/// have the elongation a human figure should.
pub fn central_moments(mask: &Mask) -> Option<(f64, f64, f64)> {
    let c = centroid(mask)?;
    let mut mu20 = 0.0;
    let mut mu02 = 0.0;
    let mut mu11 = 0.0;
    let mut n = 0usize;
    for (x, y) in mask.foreground_pixels() {
        let dx = x as f64 - c.x;
        let dy = y as f64 - c.y;
        mu20 += dx * dx;
        mu02 += dy * dy;
        mu11 += dx * dy;
        n += 1;
    }
    let n = n as f64;
    Some((mu20 / n, mu02 / n, mu11 / n))
}

/// Orientation of the principal axis in radians, measured from the x axis,
/// in `(-π/2, π/2]`. `None` when the mask is blank or isotropic.
pub fn orientation(mask: &Mask) -> Option<f64> {
    let (mu20, mu02, mu11) = central_moments(mask)?;
    if mu11.abs() < 1e-12 && (mu20 - mu02).abs() < 1e-12 {
        return None;
    }
    Some(0.5 * (2.0 * mu11).atan2(mu20 - mu02))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(w: usize, h: usize, x0: usize, y0: usize, x1: usize, y1: usize) -> Mask {
        Mask::from_fn(w, h, |x, y| x >= x0 && x < x1 && y >= y0 && y < y1)
    }

    #[test]
    fn centroid_of_square() {
        let m = square(10, 10, 2, 4, 6, 8); // x: 2..=5, y: 4..=7
        let c = centroid(&m).unwrap();
        assert!((c.x - 3.5).abs() < 1e-12);
        assert!((c.y - 5.5).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_blank_is_none() {
        assert!(centroid(&Mask::new(5, 5)).is_none());
    }

    #[test]
    fn centroid_single_pixel() {
        let mut m = Mask::new(5, 5);
        m.set(3, 1, true);
        assert_eq!(centroid(&m).unwrap(), Point2::new(3.0, 1.0));
    }

    #[test]
    fn bounding_box_of_two_points() {
        let mut m = Mask::new(10, 10);
        m.set(2, 3, true);
        m.set(7, 5, true);
        let bb = bounding_box(&m).unwrap();
        assert_eq!(
            bb,
            BoundingBox {
                x_min: 2,
                y_min: 3,
                x_max: 7,
                y_max: 5
            }
        );
        assert_eq!(bb.width(), 6);
        assert_eq!(bb.height(), 3);
        assert!(bb.contains(4, 4));
        assert!(!bb.contains(1, 4));
        assert_eq!(bb.center(), Point2::new(4.5, 4.0));
    }

    #[test]
    fn bounding_box_blank_is_none() {
        assert!(bounding_box(&Mask::new(3, 3)).is_none());
    }

    #[test]
    fn central_moments_of_horizontal_bar() {
        // A wide, short bar: mu20 >> mu02, mu11 ~ 0.
        let m = square(20, 20, 2, 9, 18, 11);
        let (mu20, mu02, mu11) = central_moments(&m).unwrap();
        assert!(mu20 > 10.0 * mu02);
        assert!(mu11.abs() < 1e-9);
    }

    #[test]
    fn orientation_of_bars() {
        let horiz = square(20, 20, 2, 9, 18, 11);
        let th = orientation(&horiz).unwrap();
        assert!(th.abs() < 1e-6, "horizontal bar angle {th}");

        let vert = square(20, 20, 9, 2, 11, 18);
        let tv = orientation(&vert).unwrap();
        assert!((tv.abs() - std::f64::consts::FRAC_PI_2).abs() < 1e-6);
    }

    #[test]
    fn orientation_diagonal_bar() {
        // Diagonal line of pixels at 45°.
        let mut m = Mask::new(20, 20);
        for i in 0..15 {
            m.set(i, i, true);
        }
        let t = orientation(&m).unwrap();
        assert!((t - std::f64::consts::FRAC_PI_4).abs() < 1e-6);
    }

    #[test]
    fn orientation_isotropic_is_none() {
        // A square has no principal axis.
        let m = square(10, 10, 2, 2, 8, 8);
        assert!(orientation(&m).is_none());
        assert!(orientation(&Mask::new(4, 4)).is_none());
    }
}
