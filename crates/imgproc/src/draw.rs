//! Rasterisation of geometric primitives.
//!
//! The synthetic camera draws the jumper as one filled **capsule**
//! (thick rounded segment) per stick; figure dumps overlay one-pixel
//! Bresenham **lines** for estimated stick models; the noise model stamps
//! **discs** for drifting spots. All rasterisers clip to the target.

use crate::geometry::{Point2, Segment};
use crate::image::ImageBuffer;
use crate::mask::Mask;

/// Plots a one-pixel Bresenham line into an image.
pub fn line<P: Copy>(img: &mut ImageBuffer<P>, a: (isize, isize), b: (isize, isize), value: P) {
    let (mut x0, mut y0) = a;
    let (x1, y1) = b;
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    loop {
        img.set_clipped(x0, y0, value);
        if x0 == x1 && y0 == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x0 += sx;
        }
        if e2 <= dx {
            err += dx;
            y0 += sy;
        }
    }
}

/// Plots a Bresenham line into a mask.
pub fn line_mask(mask: &mut Mask, a: (isize, isize), b: (isize, isize)) {
    let (w, h) = mask.dims();
    let mut img = ImageBuffer::from_fn(w, h, |x, y| mask.get(x, y));
    line(&mut img, a, b, true);
    *mask = Mask::from_fn(w, h, |x, y| img.get(x, y));
}

/// Fills all pixels within `radius` of the segment `ab` — a capsule
/// (stadium) shape. This is how sticks acquire their thickness `t_l`.
pub fn fill_capsule<P: Copy>(img: &mut ImageBuffer<P>, seg: Segment, radius: f64, value: P) {
    let r = radius.max(0.0);
    let x_min = (seg.a.x.min(seg.b.x) - r).floor() as isize;
    let x_max = (seg.a.x.max(seg.b.x) + r).ceil() as isize;
    let y_min = (seg.a.y.min(seg.b.y) - r).floor() as isize;
    let y_max = (seg.a.y.max(seg.b.y) + r).ceil() as isize;
    let r_sq = r * r;
    for y in y_min..=y_max {
        for x in x_min..=x_max {
            let p = Point2::new(x as f64, y as f64);
            if seg.distance_sq_to(p) <= r_sq {
                img.set_clipped(x, y, value);
            }
        }
    }
}

/// Fills a capsule into a mask.
pub fn fill_capsule_mask(mask: &mut Mask, seg: Segment, radius: f64) {
    let r = radius.max(0.0);
    let x_min = (seg.a.x.min(seg.b.x) - r).floor().max(0.0) as usize;
    let x_max = ((seg.a.x.max(seg.b.x) + r).ceil() as isize).max(0) as usize;
    let y_min = (seg.a.y.min(seg.b.y) - r).floor().max(0.0) as usize;
    let y_max = ((seg.a.y.max(seg.b.y) + r).ceil() as isize).max(0) as usize;
    let r_sq = r * r;
    for y in y_min..=y_max.min(mask.height().saturating_sub(1)) {
        for x in x_min..=x_max.min(mask.width().saturating_sub(1)) {
            let p = Point2::new(x as f64, y as f64);
            if seg.distance_sq_to(p) <= r_sq {
                mask.set(x, y, true);
            }
        }
    }
}

/// Fills a disc of the given centre and radius.
pub fn fill_disc<P: Copy>(img: &mut ImageBuffer<P>, center: Point2, radius: f64, value: P) {
    fill_capsule(img, Segment::new(center, center), radius, value);
}

/// Fills a disc into a mask.
pub fn fill_disc_mask(mask: &mut Mask, center: Point2, radius: f64) {
    fill_capsule_mask(mask, Segment::new(center, center), radius);
}

/// Fills an axis-aligned rectangle (half-open: `x0..x1`, `y0..y1`),
/// clipped to the image.
pub fn fill_rect<P: Copy>(
    img: &mut ImageBuffer<P>,
    x0: isize,
    y0: isize,
    x1: isize,
    y1: isize,
    value: P,
) {
    for y in y0.max(0)..y1.min(img.height() as isize) {
        for x in x0.max(0)..x1.min(img.width() as isize) {
            img.set_clipped(x, y, value);
        }
    }
}

/// Fills an axis-aligned ellipse with semi-axes `(rx, ry)`.
pub fn fill_ellipse<P: Copy>(img: &mut ImageBuffer<P>, center: Point2, rx: f64, ry: f64, value: P) {
    if rx <= 0.0 || ry <= 0.0 {
        return;
    }
    let x_min = (center.x - rx).floor() as isize;
    let x_max = (center.x + rx).ceil() as isize;
    let y_min = (center.y - ry).floor() as isize;
    let y_max = (center.y + ry).ceil() as isize;
    for y in y_min..=y_max {
        for x in x_min..=x_max {
            let nx = (x as f64 - center.x) / rx;
            let ny = (y as f64 - center.y) / ry;
            if nx * nx + ny * ny <= 1.0 {
                img.set_clipped(x, y, value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::Gray;

    #[test]
    fn line_horizontal_and_vertical() {
        let mut img = ImageBuffer::filled(10, 10, Gray(0));
        line(&mut img, (1, 5), (8, 5), Gray(9));
        for x in 1..=8 {
            assert_eq!(img.get(x, 5), Gray(9));
        }
        assert_eq!(img.get(0, 5), Gray(0));

        let mut img2 = ImageBuffer::filled(10, 10, Gray(0));
        line(&mut img2, (3, 2), (3, 7), Gray(1));
        for y in 2..=7 {
            assert_eq!(img2.get(3, y), Gray(1));
        }
    }

    #[test]
    fn line_diagonal_hits_endpoints() {
        let mut img = ImageBuffer::filled(10, 10, Gray(0));
        line(&mut img, (0, 0), (9, 9), Gray(1));
        assert_eq!(img.get(0, 0), Gray(1));
        assert_eq!(img.get(9, 9), Gray(1));
        assert_eq!(img.get(5, 5), Gray(1));
        // A perfect diagonal paints exactly 10 pixels.
        let n = img.as_slice().iter().filter(|&&p| p == Gray(1)).count();
        assert_eq!(n, 10);
    }

    #[test]
    fn line_clips_outside_image() {
        let mut img = ImageBuffer::filled(4, 4, Gray(0));
        line(&mut img, (-3, 1), (7, 1), Gray(5));
        for x in 0..4 {
            assert_eq!(img.get(x, 1), Gray(5));
        }
    }

    #[test]
    fn line_single_point() {
        let mut img = ImageBuffer::filled(4, 4, Gray(0));
        line(&mut img, (2, 2), (2, 2), Gray(7));
        assert_eq!(img.get(2, 2), Gray(7));
        assert_eq!(img.as_slice().iter().filter(|&&p| p == Gray(7)).count(), 1);
    }

    #[test]
    fn line_mask_draws() {
        let mut m = Mask::new(5, 5);
        line_mask(&mut m, (0, 0), (4, 0));
        assert_eq!(m.count(), 5);
    }

    #[test]
    fn capsule_contains_axis_and_respects_radius() {
        let mut m = Mask::new(30, 30);
        let seg = Segment::new(Point2::new(5.0, 15.0), Point2::new(25.0, 15.0));
        fill_capsule_mask(&mut m, seg, 3.0);
        // On the axis.
        assert!(m.get(15, 15));
        // Within the radius.
        assert!(m.get(15, 12));
        assert!(m.get(15, 18));
        // Outside the radius.
        assert!(!m.get(15, 10));
        // Rounded cap extends past the endpoint by <= radius.
        assert!(m.get(26, 15));
        assert!(!m.get(29, 15));
    }

    #[test]
    fn capsule_area_close_to_analytic() {
        let mut m = Mask::new(60, 40);
        let seg = Segment::new(Point2::new(10.0, 20.0), Point2::new(50.0, 20.0));
        let r = 5.0;
        fill_capsule_mask(&mut m, seg, r);
        let analytic = 2.0 * r * seg.length() + std::f64::consts::PI * r * r;
        let measured = m.count() as f64;
        assert!(
            (measured - analytic).abs() / analytic < 0.1,
            "measured {measured}, analytic {analytic}"
        );
    }

    #[test]
    fn capsule_clips_at_borders() {
        let mut m = Mask::new(10, 10);
        let seg = Segment::new(Point2::new(-5.0, 5.0), Point2::new(15.0, 5.0));
        fill_capsule_mask(&mut m, seg, 2.0);
        assert!(m.get(0, 5));
        assert!(m.get(9, 5));
    }

    #[test]
    fn disc_is_symmetric() {
        let mut m = Mask::new(21, 21);
        fill_disc_mask(&mut m, Point2::new(10.0, 10.0), 4.0);
        assert!(m.get(10, 10));
        assert!(m.get(14, 10));
        assert!(m.get(10, 14));
        assert!(m.get(6, 10));
        assert!(!m.get(15, 10));
        // 4-fold symmetry.
        for dy in 0..5isize {
            for dx in 0..5isize {
                let q1 = m.get_i(10 + dx, 10 + dy);
                assert_eq!(q1, m.get_i(10 - dx, 10 + dy));
                assert_eq!(q1, m.get_i(10 + dx, 10 - dy));
            }
        }
    }

    #[test]
    fn rect_half_open_and_clipped() {
        let mut img = ImageBuffer::filled(8, 8, Gray(0));
        fill_rect(&mut img, 2, 3, 5, 6, Gray(1));
        assert_eq!(img.as_slice().iter().filter(|&&p| p == Gray(1)).count(), 9);
        assert_eq!(img.get(2, 3), Gray(1));
        assert_eq!(img.get(4, 5), Gray(1));
        assert_eq!(img.get(5, 5), Gray(0)); // half-open
                                            // Clipping.
        fill_rect(&mut img, -5, -5, 100, 1, Gray(2));
        for x in 0..8 {
            assert_eq!(img.get(x, 0), Gray(2));
        }
    }

    #[test]
    fn ellipse_semi_axes() {
        let mut img = ImageBuffer::filled(40, 40, Gray(0));
        fill_ellipse(&mut img, Point2::new(20.0, 20.0), 10.0, 4.0, Gray(1));
        assert_eq!(img.get(20, 20), Gray(1));
        assert_eq!(img.get(29, 20), Gray(1));
        assert_eq!(img.get(20, 23), Gray(1));
        assert_eq!(img.get(20, 25), Gray(0));
        assert_eq!(img.get(31, 20), Gray(0));
    }

    #[test]
    fn ellipse_degenerate_radius_noop() {
        let mut img = ImageBuffer::filled(10, 10, Gray(0));
        fill_ellipse(&mut img, Point2::new(5.0, 5.0), 0.0, 3.0, Gray(1));
        assert!(img.as_slice().iter().all(|&p| p == Gray(0)));
    }

    #[test]
    fn zero_radius_capsule_marks_axis_only() {
        let mut m = Mask::new(10, 10);
        fill_capsule_mask(
            &mut m,
            Segment::new(Point2::new(2.0, 2.0), Point2::new(6.0, 2.0)),
            0.0,
        );
        // Radius 0: only pixels whose centres lie exactly on the segment.
        assert_eq!(m.count(), 5);
    }
}
