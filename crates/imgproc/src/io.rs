//! Binary PGM (P5) and PPM (P6) image I/O.
//!
//! The experiment binaries dump the reproduction's counterparts of the
//! paper's Figures 1–3 and 6–7 as portable anymap files, which every image
//! viewer opens and which need no external encoder crate.

use crate::error::ImgError;
use crate::image::ImageBuffer;
use crate::mask::Mask;
use crate::pixel::{Gray, Rgb};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Writes an RGB image as binary PPM (P6).
///
/// # Errors
///
/// Returns [`ImgError::Io`] on any write failure.
pub fn write_ppm<W: Write>(img: &ImageBuffer<Rgb>, mut w: W) -> Result<(), ImgError> {
    write!(w, "P6\n{} {}\n255\n", img.width(), img.height())?;
    let mut buf = Vec::with_capacity(img.len() * 3);
    for &p in img.as_slice() {
        buf.extend_from_slice(&[p.r, p.g, p.b]);
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Writes a grayscale image as binary PGM (P5).
///
/// # Errors
///
/// Returns [`ImgError::Io`] on any write failure.
pub fn write_pgm<W: Write>(img: &ImageBuffer<Gray>, mut w: W) -> Result<(), ImgError> {
    write!(w, "P5\n{} {}\n255\n", img.width(), img.height())?;
    let buf: Vec<u8> = img.as_slice().iter().map(|p| p.0).collect();
    w.write_all(&buf)?;
    Ok(())
}

/// Writes a mask as a black-and-white PGM (foreground = white).
///
/// # Errors
///
/// Returns [`ImgError::Io`] on any write failure.
pub fn write_mask_pgm<W: Write>(mask: &Mask, w: W) -> Result<(), ImgError> {
    let img = ImageBuffer::from_fn(mask.width(), mask.height(), |x, y| {
        Gray(if mask.get(x, y) { 255 } else { 0 })
    });
    write_pgm(&img, w)
}

/// Saves an RGB image to a PPM file, creating parent directories.
///
/// # Errors
///
/// Returns [`ImgError::Io`] on any filesystem failure.
pub fn save_ppm<P: AsRef<Path>>(img: &ImageBuffer<Rgb>, path: P) -> Result<(), ImgError> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    let f = std::fs::File::create(path)?;
    write_ppm(img, std::io::BufWriter::new(f))
}

/// Saves a grayscale image to a PGM file, creating parent directories.
///
/// # Errors
///
/// Returns [`ImgError::Io`] on any filesystem failure.
pub fn save_pgm<P: AsRef<Path>>(img: &ImageBuffer<Gray>, path: P) -> Result<(), ImgError> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    let f = std::fs::File::create(path)?;
    write_pgm(img, std::io::BufWriter::new(f))
}

/// Saves a mask to a PGM file, creating parent directories.
///
/// # Errors
///
/// Returns [`ImgError::Io`] on any filesystem failure.
pub fn save_mask_pgm<P: AsRef<Path>>(mask: &Mask, path: P) -> Result<(), ImgError> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    let f = std::fs::File::create(path)?;
    write_mask_pgm(mask, std::io::BufWriter::new(f))
}

fn read_token<R: BufRead>(r: &mut R) -> Result<String, ImgError> {
    let mut token = String::new();
    let mut byte = [0u8; 1];
    // Skip whitespace and comments.
    loop {
        if r.read(&mut byte)? == 0 {
            return Err(ImgError::Decode("unexpected end of stream".into()));
        }
        match byte[0] {
            b'#' => {
                let mut line = String::new();
                r.read_line(&mut line)?;
            }
            c if c.is_ascii_whitespace() => {}
            c => {
                token.push(c as char);
                break;
            }
        }
    }
    loop {
        if r.read(&mut byte)? == 0 {
            break;
        }
        if byte[0].is_ascii_whitespace() {
            break;
        }
        token.push(byte[0] as char);
    }
    Ok(token)
}

fn parse_header<R: BufRead>(r: &mut R, magic: &str) -> Result<(usize, usize), ImgError> {
    let got = read_token(r)?;
    if got != magic {
        return Err(ImgError::Decode(format!(
            "expected magic {magic}, got {got}"
        )));
    }
    let w: usize = read_token(r)?
        .parse()
        .map_err(|e| ImgError::Decode(format!("bad width: {e}")))?;
    let h: usize = read_token(r)?
        .parse()
        .map_err(|e| ImgError::Decode(format!("bad height: {e}")))?;
    let maxval: usize = read_token(r)?
        .parse()
        .map_err(|e| ImgError::Decode(format!("bad maxval: {e}")))?;
    if maxval != 255 {
        return Err(ImgError::Decode(format!(
            "only maxval 255 supported, got {maxval}"
        )));
    }
    Ok((w, h))
}

/// Reads a binary PPM (P6) image.
///
/// # Errors
///
/// Returns [`ImgError::Decode`] on malformed input and [`ImgError::Io`] on
/// read failure.
pub fn read_ppm<R: Read>(r: R) -> Result<ImageBuffer<Rgb>, ImgError> {
    let mut r = BufReader::new(r);
    let (w, h) = parse_header(&mut r, "P6")?;
    let mut buf = vec![0u8; w * h * 3];
    r.read_exact(&mut buf)
        .map_err(|e| ImgError::Decode(format!("truncated pixel data: {e}")))?;
    let pixels: Vec<Rgb> = buf
        .chunks_exact(3)
        .map(|c| Rgb::new(c[0], c[1], c[2]))
        .collect();
    ImageBuffer::from_vec(w, h, pixels)
}

/// Reads a binary PGM (P5) image.
///
/// # Errors
///
/// Returns [`ImgError::Decode`] on malformed input and [`ImgError::Io`] on
/// read failure.
pub fn read_pgm<R: Read>(r: R) -> Result<ImageBuffer<Gray>, ImgError> {
    let mut r = BufReader::new(r);
    let (w, h) = parse_header(&mut r, "P5")?;
    let mut buf = vec![0u8; w * h];
    r.read_exact(&mut buf)
        .map_err(|e| ImgError::Decode(format!("truncated pixel data: {e}")))?;
    ImageBuffer::from_vec(w, h, buf.into_iter().map(Gray).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppm_roundtrip() {
        let img = ImageBuffer::from_fn(7, 5, |x, y| Rgb::new(x as u8 * 30, y as u8 * 40, 200));
        let mut buf = Vec::new();
        write_ppm(&img, &mut buf).unwrap();
        let back = read_ppm(&buf[..]).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn pgm_roundtrip() {
        let img = ImageBuffer::from_fn(4, 6, |x, y| Gray((x * 10 + y) as u8));
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let back = read_pgm(&buf[..]).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn header_format_is_canonical() {
        let img: ImageBuffer<Gray> = ImageBuffer::new(3, 2);
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        assert!(buf.starts_with(b"P5\n3 2\n255\n"));
        assert_eq!(buf.len(), b"P5\n3 2\n255\n".len() + 6);
    }

    #[test]
    fn mask_pgm_black_and_white() {
        let mut m = Mask::new(2, 1);
        m.set(0, 0, true);
        let mut buf = Vec::new();
        write_mask_pgm(&m, &mut buf).unwrap();
        let img = read_pgm(&buf[..]).unwrap();
        assert_eq!(img.get(0, 0), Gray(255));
        assert_eq!(img.get(1, 0), Gray(0));
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let err = read_pgm(&b"P4\n2 2\n255\n...."[..]).unwrap_err();
        assert!(matches!(err, ImgError::Decode(_)));
    }

    #[test]
    fn decode_rejects_truncated_data() {
        let err = read_pgm(&b"P5\n4 4\n255\nab"[..]).unwrap_err();
        assert!(matches!(err, ImgError::Decode(_)));
    }

    #[test]
    fn decode_rejects_nonnumeric_dims() {
        let err = read_pgm(&b"P5\nxx 4\n255\n"[..]).unwrap_err();
        assert!(matches!(err, ImgError::Decode(_)));
    }

    #[test]
    fn decode_skips_comments() {
        let mut data = b"P5\n# a comment line\n2 1\n255\n".to_vec();
        data.extend_from_slice(&[7, 9]);
        let img = read_pgm(&data[..]).unwrap();
        assert_eq!(img.get(0, 0), Gray(7));
        assert_eq!(img.get(1, 0), Gray(9));
    }

    #[test]
    fn decode_rejects_unsupported_maxval() {
        let err = read_pgm(&b"P5\n2 1\n65535\n"[..]).unwrap_err();
        assert!(matches!(err, ImgError::Decode(_)));
    }

    #[test]
    fn save_and_reload_via_files() {
        let dir = std::env::temp_dir().join("slj_imgproc_io_test");
        let img = ImageBuffer::from_fn(3, 3, |x, y| Rgb::new(x as u8, y as u8, 0));
        let path = dir.join("sub/test.ppm");
        save_ppm(&img, &path).unwrap();
        let back = read_ppm(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(back, img);
        std::fs::remove_dir_all(&dir).ok();
    }
}
