//! Linear and rank smoothing filters.
//!
//! Background subtraction thresholds sit directly on top of sensor
//! noise; a small spatial smoothing pass before subtraction knocks the
//! per-pixel jitter down and lets the threshold drop. [`box_blur`] (via
//! an integral image, O(1) per pixel regardless of radius) and
//! [`median_filter`] (3×3) are provided, plus the [`IntegralImage`]
//! itself for other windowed sums.

use crate::image::ImageBuffer;
use crate::pixel::Rgb;

/// Summed-area table over one channel extractor of an RGB image.
///
/// `sum(x0, y0, x1, y1)` returns the inclusive-rectangle sum in O(1).
#[derive(Debug, Clone)]
pub struct IntegralImage {
    width: usize,
    height: usize,
    /// `(width+1) x (height+1)` table, row-major; entry `(x, y)` holds
    /// the sum over the rectangle `[0, x) x [0, y)`.
    table: Vec<u64>,
}

impl IntegralImage {
    /// Builds the table from a per-pixel `u8` channel.
    pub fn new<F: Fn(Rgb) -> u8>(img: &ImageBuffer<Rgb>, channel: F) -> Self {
        let (w, h) = img.dims();
        let mut table = vec![0u64; (w + 1) * (h + 1)];
        for y in 0..h {
            let mut row_sum = 0u64;
            for x in 0..w {
                row_sum += channel(img.get(x, y)) as u64;
                table[(y + 1) * (w + 1) + (x + 1)] = table[y * (w + 1) + (x + 1)] + row_sum;
            }
        }
        IntegralImage {
            width: w,
            height: h,
            table,
        }
    }

    /// Sum over the inclusive rectangle `[x0..=x1] x [y0..=y1]`, clipped
    /// to the image.
    pub fn sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> u64 {
        if self.width == 0 || self.height == 0 || x0 > x1 || y0 > y1 {
            return 0;
        }
        let x1 = x1.min(self.width - 1) + 1;
        let y1 = y1.min(self.height - 1) + 1;
        let (x0, y0) = (x0.min(self.width), y0.min(self.height));
        let w = self.width + 1;
        self.table[y1 * w + x1] + self.table[y0 * w + x0]
            - self.table[y0 * w + x1]
            - self.table[y1 * w + x0]
    }

    /// Mean over the inclusive rectangle, as `f64`.
    pub fn mean(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> f64 {
        if x0 > x1 || y0 > y1 {
            return 0.0;
        }
        let x1c = x1.min(self.width.saturating_sub(1));
        let y1c = y1.min(self.height.saturating_sub(1));
        let area = (x1c + 1 - x0) * (y1c + 1 - y0);
        if area == 0 {
            0.0
        } else {
            self.sum(x0, y0, x1, y1) as f64 / area as f64
        }
    }
}

/// Box blur with the given radius (window `2r+1`), border-clamped.
/// O(W·H) regardless of radius, via three integral images.
pub fn box_blur(img: &ImageBuffer<Rgb>, radius: usize) -> ImageBuffer<Rgb> {
    if radius == 0 || img.is_empty() {
        return img.clone();
    }
    let ir = IntegralImage::new(img, |p| p.r);
    let ig = IntegralImage::new(img, |p| p.g);
    let ib = IntegralImage::new(img, |p| p.b);
    img.map_indexed(|x, y, _| {
        let x0 = x.saturating_sub(radius);
        let y0 = y.saturating_sub(radius);
        let x1 = x + radius;
        let y1 = y + radius;
        Rgb::new(
            ir.mean(x0, y0, x1, y1).round() as u8,
            ig.mean(x0, y0, x1, y1).round() as u8,
            ib.mean(x0, y0, x1, y1).round() as u8,
        )
    })
}

/// 3×3 per-channel median filter, border-clamped. Kills salt-and-pepper
/// outliers without blurring edges as much as the box filter.
pub fn median_filter(img: &ImageBuffer<Rgb>) -> ImageBuffer<Rgb> {
    if img.width() < 3 || img.height() < 3 {
        return img.clone();
    }
    let (w, h) = img.dims();
    img.map_indexed(|x, y, _| {
        let mut rs = [0u8; 9];
        let mut gs = [0u8; 9];
        let mut bs = [0u8; 9];
        let mut i = 0;
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let sx = (x as i64 + dx).clamp(0, w as i64 - 1) as usize;
                let sy = (y as i64 + dy).clamp(0, h as i64 - 1) as usize;
                let p = img.get(sx, sy);
                rs[i] = p.r;
                gs[i] = p.g;
                bs[i] = p.b;
                i += 1;
            }
        }
        rs.sort_unstable();
        gs.sort_unstable();
        bs.sort_unstable();
        Rgb::new(rs[4], gs[4], bs[4])
    })
}

/// Exact 2×2 box downscale: each output pixel is the average of a 2×2
/// input block. Odd trailing rows/columns are dropped. Used to run the
/// analysis pipeline at half resolution on large footage.
pub fn resize_half(img: &ImageBuffer<Rgb>) -> ImageBuffer<Rgb> {
    let (w, h) = (img.width() / 2, img.height() / 2);
    ImageBuffer::from_fn(w, h, |x, y| {
        let mut r = 0u32;
        let mut g = 0u32;
        let mut b = 0u32;
        for dy in 0..2 {
            for dx in 0..2 {
                let p = img.get(2 * x + dx, 2 * y + dy);
                r += p.r as u32;
                g += p.g as u32;
                b += p.b as u32;
            }
        }
        Rgb::new((r / 4) as u8, (g / 4) as u8, (b / 4) as u8)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_sums_match_naive() {
        let img = ImageBuffer::from_fn(7, 5, |x, y| Rgb::new((x * 11 + y) as u8, 0, 0));
        let integral = IntegralImage::new(&img, |p| p.r);
        for (x0, y0, x1, y1) in [(0, 0, 6, 4), (2, 1, 4, 3), (3, 3, 3, 3), (0, 0, 0, 0)] {
            let naive: u64 = (y0..=y1)
                .flat_map(|y| (x0..=x1).map(move |x| (x, y)))
                .map(|(x, y)| img.get(x, y).r as u64)
                .sum();
            assert_eq!(
                integral.sum(x0, y0, x1, y1),
                naive,
                "({x0},{y0})-({x1},{y1})"
            );
        }
    }

    #[test]
    fn integral_clips_out_of_range() {
        let img = ImageBuffer::filled(4, 4, Rgb::splat(1));
        let integral = IntegralImage::new(&img, |p| p.r);
        assert_eq!(integral.sum(0, 0, 100, 100), 16);
        assert_eq!(integral.sum(3, 3, 10, 10), 1);
    }

    #[test]
    fn blur_preserves_constant_image() {
        let img = ImageBuffer::filled(10, 8, Rgb::new(30, 60, 90));
        assert_eq!(box_blur(&img, 2), img);
    }

    #[test]
    fn blur_radius_zero_is_identity() {
        let img = ImageBuffer::from_fn(6, 6, |x, y| Rgb::splat((x * y) as u8));
        assert_eq!(box_blur(&img, 0), img);
    }

    #[test]
    fn blur_attenuates_impulse() {
        let mut img = ImageBuffer::filled(9, 9, Rgb::BLACK);
        img.set(4, 4, Rgb::splat(255));
        let blurred = box_blur(&img, 1);
        // The impulse spreads to its 3x3 window: 255/9 ≈ 28 each.
        assert_eq!(blurred.get(4, 4), Rgb::splat(28));
        assert_eq!(blurred.get(3, 3), Rgb::splat(28));
        assert_eq!(blurred.get(6, 6), Rgb::BLACK);
    }

    #[test]
    fn blur_reduces_noise_variance() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let img = ImageBuffer::from_fn(32, 32, |_, _| Rgb::splat(rng.gen_range(100..140)));
        let blurred = box_blur(&img, 2);
        let var = |im: &ImageBuffer<Rgb>| {
            let mean: f64 = im.as_slice().iter().map(|p| p.r as f64).sum::<f64>() / im.len() as f64;
            im.as_slice()
                .iter()
                .map(|p| (p.r as f64 - mean).powi(2))
                .sum::<f64>()
                / im.len() as f64
        };
        assert!(var(&blurred) < var(&img) / 4.0);
    }

    #[test]
    fn median_removes_salt_keeps_edges() {
        // Left half dark, right half bright, one salt pixel in the dark
        // half.
        let mut img = ImageBuffer::from_fn(10, 10, |x, _| {
            if x < 5 {
                Rgb::splat(20)
            } else {
                Rgb::splat(200)
            }
        });
        img.set(2, 5, Rgb::splat(255));
        let filtered = median_filter(&img);
        assert_eq!(filtered.get(2, 5), Rgb::splat(20), "salt survived");
        // Edge stays sharp: pixels adjacent to the boundary keep their
        // side's value.
        assert_eq!(filtered.get(4, 2), Rgb::splat(20));
        assert_eq!(filtered.get(5, 2), Rgb::splat(200));
    }

    #[test]
    fn resize_half_averages_blocks() {
        let img = ImageBuffer::from_fn(4, 4, |x, y| Rgb::splat(((y * 4 + x) * 10) as u8));
        let half = resize_half(&img);
        assert_eq!(half.dims(), (2, 2));
        // Top-left block: values 0,10,40,50 -> mean 25.
        assert_eq!(half.get(0, 0), Rgb::splat(25));
        // Bottom-right block: 100,110,140,150 -> 125.
        assert_eq!(half.get(1, 1), Rgb::splat(125));
    }

    #[test]
    fn resize_half_drops_odd_edges() {
        let img = ImageBuffer::filled(5, 3, Rgb::splat(9));
        let half = resize_half(&img);
        assert_eq!(half.dims(), (2, 1));
        assert!(half.as_slice().iter().all(|&p| p == Rgb::splat(9)));
    }

    #[test]
    fn median_on_tiny_image_is_identity() {
        let img = ImageBuffer::from_fn(2, 2, |x, y| Rgb::splat((x + y) as u8));
        assert_eq!(median_filter(&img), img);
    }
}
