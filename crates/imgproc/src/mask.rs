//! Binary masks: the lingua franca of the segmentation pipeline.
//!
//! Every stage of the paper's Section 2 pipeline consumes and produces a
//! binary foreground image. [`Mask`] keeps its pixels bit-packed in a
//! [`BitMask`] (one `u64` word per 64 pixels), which makes the set
//! algebra, counting and the morphology kernels word-parallel while the
//! API stays pixel-addressed. Because the synthetic substrate gives us
//! ground truth, accuracy metrics ([`MaskMetrics`]) turn the paper's
//! qualitative figures into numbers.

use crate::bitmask::{BitMask, SetBits};
use crate::error::ImgError;
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// A binary image; `true` = foreground. Storage is bit-packed: see
/// [`BitMask`] for the word-level layout and kernels.
#[derive(Debug, PartialEq, Eq)]
pub struct Mask {
    bits: BitMask,
}

impl Clone for Mask {
    fn clone(&self) -> Self {
        Mask {
            bits: self.bits.clone(),
        }
    }

    /// Reuses the existing word buffer ([`BitMask::clone_from`]), so
    /// arena-style callers pay no allocation in steady state.
    fn clone_from(&mut self, source: &Self) {
        self.bits.clone_from(&source.bits);
    }
}

/// Pixel-level accuracy of a predicted mask against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaskMetrics {
    /// True positives: predicted foreground that is foreground.
    pub tp: usize,
    /// False positives: predicted foreground that is background.
    pub fp: usize,
    /// False negatives: missed foreground.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
}

impl Mask {
    /// Creates an all-background mask.
    pub fn new(width: usize, height: usize) -> Self {
        Mask {
            bits: BitMask::new(width, height),
        }
    }

    /// Creates a mask filled with `value`.
    pub fn filled(width: usize, height: usize, value: bool) -> Self {
        Mask {
            bits: BitMask::filled(width, height, value),
        }
    }

    /// Creates a mask by evaluating `f(x, y)` per pixel, row-major.
    pub fn from_fn<F: FnMut(usize, usize) -> bool>(width: usize, height: usize, mut f: F) -> Self {
        let mut bits = BitMask::new(width, height);
        let wpr = bits.words_per_row();
        for y in 0..height {
            for j in 0..wpr {
                let x0 = j * 64;
                let x1 = (x0 + 64).min(width);
                let mut word = 0u64;
                for x in x0..x1 {
                    if f(x, y) {
                        word |= 1u64 << (x - x0);
                    }
                }
                bits.row_mut(y)[j] = word;
            }
        }
        Mask { bits }
    }

    /// Wraps an existing bit-packed plane.
    pub fn from_bits(bits: BitMask) -> Self {
        Mask { bits }
    }

    /// The underlying bit-packed plane.
    #[inline]
    pub fn bits(&self) -> &BitMask {
        &self.bits
    }

    /// Mutable access to the bit-packed plane (word-level kernels).
    #[inline]
    pub fn bits_mut(&mut self) -> &mut BitMask {
        &mut self.bits
    }

    /// Mask width in pixels.
    pub fn width(&self) -> usize {
        self.bits.width()
    }

    /// Mask height in pixels.
    pub fn height(&self) -> usize {
        self.bits.height()
    }

    /// `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        self.bits.dims()
    }

    /// Whether `(x, y)` lies inside the mask.
    pub fn in_bounds(&self, x: usize, y: usize) -> bool {
        self.bits.in_bounds(x, y)
    }

    /// Returns the pixel; out-of-bounds coordinates read as background,
    /// which is the convention every pipeline stage wants at the borders.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> bool {
        self.bits.get(x, y)
    }

    /// Signed-coordinate variant of [`Mask::get`]; negative reads as
    /// background.
    #[inline]
    pub fn get_i(&self, x: isize, y: isize) -> bool {
        if x >= 0 && y >= 0 {
            self.bits.get(x as usize, y as usize)
        } else {
            false
        }
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: bool) {
        self.bits.set(x, y, value);
    }

    /// Number of foreground pixels.
    pub fn count(&self) -> usize {
        self.bits.count()
    }

    /// Whether the mask has no foreground pixels.
    pub fn is_blank(&self) -> bool {
        self.bits.is_blank()
    }

    /// Fraction of pixels that are foreground, in `[0, 1]`.
    /// Returns 0 for an empty mask.
    pub fn density(&self) -> f64 {
        let (w, h) = self.dims();
        if w * h == 0 {
            0.0
        } else {
            self.count() as f64 / (w * h) as f64
        }
    }

    /// Iterates over the coordinates of all foreground pixels.
    pub fn foreground_pixels(&self) -> SetBits<'_> {
        self.bits.set_bits()
    }

    /// Reshapes to `width x height` and clears to background, reusing
    /// the existing buffer when possible (arena-friendly).
    pub fn reset(&mut self, width: usize, height: usize) {
        self.bits.reset(width, height);
    }

    /// Pixel-wise union.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::DimensionMismatch`] when dimensions differ.
    pub fn union(&self, other: &Mask) -> Result<Mask, ImgError> {
        self.checked(other)?;
        let mut out = BitMask::new(0, 0);
        self.bits.union_into(&other.bits, &mut out);
        Ok(Mask { bits: out })
    }

    /// Pixel-wise intersection.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::DimensionMismatch`] when dimensions differ.
    pub fn intersect(&self, other: &Mask) -> Result<Mask, ImgError> {
        self.checked(other)?;
        let mut out = BitMask::new(0, 0);
        self.bits.intersect_into(&other.bits, &mut out);
        Ok(Mask { bits: out })
    }

    /// Pixels in `self` but not in `other`.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::DimensionMismatch`] when dimensions differ.
    pub fn difference(&self, other: &Mask) -> Result<Mask, ImgError> {
        self.checked(other)?;
        let mut out = BitMask::new(0, 0);
        self.bits.difference_into(&other.bits, &mut out);
        Ok(Mask { bits: out })
    }

    /// Pixel-wise complement.
    pub fn invert(&self) -> Mask {
        let mut out = BitMask::new(0, 0);
        self.bits.invert_into(&mut out);
        Mask { bits: out }
    }

    fn checked(&self, other: &Mask) -> Result<(), ImgError> {
        if self.dims() != other.dims() {
            return Err(ImgError::DimensionMismatch {
                left: self.dims(),
                right: other.dims(),
            });
        }
        Ok(())
    }

    /// Intersection-over-union with another mask of the same size.
    ///
    /// Returns 1.0 when both masks are blank (they agree perfectly).
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::DimensionMismatch`] when dimensions differ.
    pub fn iou(&self, other: &Mask) -> Result<f64, ImgError> {
        let m = self.metrics_against(other)?;
        Ok(m.iou())
    }

    /// Computes the confusion counts of `self` (prediction) against
    /// `truth`, word-parallel via popcounts.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::DimensionMismatch`] when dimensions differ.
    pub fn metrics_against(&self, truth: &Mask) -> Result<MaskMetrics, ImgError> {
        self.checked(truth)?;
        let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
        for (&a, &b) in self.bits.words().iter().zip(truth.bits.words()) {
            tp += (a & b).count_ones() as usize;
            fp += (a & !b).count_ones() as usize;
            fn_ += (!a & b).count_ones() as usize;
        }
        let (w, h) = self.dims();
        Ok(MaskMetrics {
            tp,
            fp,
            fn_,
            tn: w * h - tp - fp - fn_,
        })
    }

    /// Renders the mask as an ASCII art string (`#` foreground, `.`
    /// background), handy in test failures.
    pub fn to_ascii(&self) -> String {
        let (w, h) = self.dims();
        let mut s = String::with_capacity((w + 1) * h);
        for y in 0..h {
            for x in 0..w {
                s.push(if self.get(x, y) { '#' } else { '.' });
            }
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Mask {}x{} ({} fg px)",
            self.width(),
            self.height(),
            self.count()
        )
    }
}

/// Serialized form: the pre-bit-packing row-major `Vec<bool>` layout, so
/// persisted masks stay readable and backward-compatible.
#[derive(Serialize, Deserialize)]
struct MaskRepr {
    width: usize,
    height: usize,
    data: Vec<bool>,
}

impl Serialize for Mask {
    fn to_value(&self) -> Value {
        let (width, height) = self.dims();
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(self.get(x, y));
            }
        }
        MaskRepr {
            width,
            height,
            data,
        }
        .to_value()
    }
}

impl Deserialize for Mask {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let repr = MaskRepr::from_value(value)?;
        if repr.data.len() != repr.width * repr.height {
            return Err(DeError::custom(format!(
                "mask data length {} does not match {}x{}",
                repr.data.len(),
                repr.width,
                repr.height
            )));
        }
        Ok(Mask::from_fn(repr.width, repr.height, |x, y| {
            repr.data[y * repr.width + x]
        }))
    }
}

impl MaskMetrics {
    /// Intersection over union: `tp / (tp + fp + fn)`. 1.0 when there is
    /// no foreground in either mask.
    pub fn iou(&self) -> f64 {
        let denom = self.tp + self.fp + self.fn_;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Precision: `tp / (tp + fp)`. 1.0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall: `tp / (tp + fn)`. 1.0 when there is no true foreground.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 score, the harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl fmt::Display for MaskMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IoU {:.3} P {:.3} R {:.3} F1 {:.3}",
            self.iou(),
            self.precision(),
            self.recall(),
            self.f1()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(w: usize, h: usize, x0: usize, y0: usize, x1: usize, y1: usize) -> Mask {
        Mask::from_fn(w, h, |x, y| x >= x0 && x < x1 && y >= y0 && y < y1)
    }

    #[test]
    fn count_and_density() {
        let m = square(10, 10, 0, 0, 5, 4);
        assert_eq!(m.count(), 20);
        assert!((m.density() - 0.2).abs() < 1e-12);
        assert!(!m.is_blank());
        assert!(Mask::new(4, 4).is_blank());
    }

    #[test]
    fn out_of_bounds_reads_background() {
        let m = Mask::filled(3, 3, true);
        assert!(m.get(2, 2));
        assert!(!m.get(3, 0));
        assert!(!m.get(0, 3));
        assert!(!m.get_i(-1, 0));
        assert!(m.get_i(1, 1));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_out_of_bounds_panics() {
        Mask::new(2, 2).set(2, 0, true);
    }

    #[test]
    fn set_and_get() {
        let mut m = Mask::new(4, 4);
        m.set(1, 2, true);
        assert!(m.get(1, 2));
        m.set(1, 2, false);
        assert!(!m.get(1, 2));
    }

    #[test]
    fn union_intersect_difference() {
        let a = square(6, 6, 0, 0, 4, 4); // 16 px
        let b = square(6, 6, 2, 2, 6, 6); // 16 px, overlap 2x2 = 4 px
        assert_eq!(a.union(&b).unwrap().count(), 28);
        assert_eq!(a.intersect(&b).unwrap().count(), 4);
        assert_eq!(a.difference(&b).unwrap().count(), 12);
        assert_eq!(b.difference(&a).unwrap().count(), 12);
    }

    #[test]
    fn set_ops_reject_mismatched_dims() {
        let a = Mask::new(3, 3);
        let b = Mask::new(4, 3);
        assert!(a.union(&b).is_err());
        assert!(a.intersect(&b).is_err());
        assert!(a.difference(&b).is_err());
        assert!(a.iou(&b).is_err());
    }

    #[test]
    fn invert_involution() {
        let a = square(5, 5, 1, 1, 3, 4);
        assert_eq!(a.invert().invert(), a);
        assert_eq!(a.invert().count(), 25 - a.count());
    }

    #[test]
    fn invert_respects_word_tails() {
        // Width straddles a word boundary: the complement must not leak
        // set bits into the padding tail.
        let a = square(70, 3, 0, 0, 70, 3);
        assert_eq!(a.invert().count(), 0);
        let b = Mask::new(70, 3);
        assert_eq!(b.invert().count(), 210);
    }

    #[test]
    fn iou_values() {
        let a = square(6, 6, 0, 0, 4, 4);
        let b = square(6, 6, 2, 2, 6, 6);
        // |∩| = 4, |∪| = 28.
        assert!((a.iou(&b).unwrap() - 4.0 / 28.0).abs() < 1e-12);
        assert_eq!(a.iou(&a).unwrap(), 1.0);
        // Two blank masks agree perfectly.
        assert_eq!(Mask::new(3, 3).iou(&Mask::new(3, 3)).unwrap(), 1.0);
    }

    #[test]
    fn metrics_confusion_counts() {
        let truth = square(4, 4, 0, 0, 2, 4); // left half, 8 px
        let pred = square(4, 4, 1, 0, 3, 4); // middle strip, 8 px
        let m = pred.metrics_against(&truth).unwrap();
        assert_eq!(m.tp, 4);
        assert_eq!(m.fp, 4);
        assert_eq!(m.fn_, 4);
        assert_eq!(m.tn, 4);
        assert!((m.precision() - 0.5).abs() < 1e-12);
        assert!((m.recall() - 0.5).abs() < 1e-12);
        assert!((m.f1() - 0.5).abs() < 1e-12);
        assert!((m.iou() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_degenerate_cases() {
        let blank = Mask::new(3, 3);
        let m = blank.metrics_against(&blank).unwrap();
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.iou(), 1.0);
        assert_eq!(m.f1(), 1.0);

        let full = Mask::filled(3, 3, true);
        let m2 = blank.metrics_against(&full).unwrap();
        assert_eq!(m2.recall(), 0.0);
        assert_eq!(m2.precision(), 1.0); // nothing predicted
        assert_eq!(m2.f1(), 0.0);
    }

    #[test]
    fn foreground_pixels_enumerates_coords() {
        let mut m = Mask::new(3, 3);
        m.set(0, 0, true);
        m.set(2, 1, true);
        let px: Vec<_> = m.foreground_pixels().collect();
        assert_eq!(px, vec![(0, 0), (2, 1)]);
    }

    #[test]
    fn ascii_rendering() {
        let m = square(3, 2, 0, 0, 1, 2);
        assert_eq!(m.to_ascii(), "#..\n#..\n");
    }

    #[test]
    fn display_mentions_dims_and_count() {
        let m = square(5, 4, 0, 0, 2, 2);
        let s = m.to_string();
        assert!(s.contains("5x4"));
        assert!(s.contains('4'));
    }

    #[test]
    fn serde_round_trip_keeps_vec_bool_format() {
        let m = square(66, 3, 1, 0, 65, 2);
        let json = serde_json::to_string(&m).unwrap();
        assert!(json.contains("\"width\":66"));
        assert!(json.contains("\"data\":["));
        let back: Mask = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        // A length mismatch is rejected rather than mis-indexed.
        let bad = r#"{"width":2,"height":2,"data":[true]}"#;
        assert!(serde_json::from_str::<Mask>(bad).is_err());
    }
}
