//! Binary masks: the lingua franca of the segmentation pipeline.
//!
//! Every stage of the paper's Section 2 pipeline consumes and produces a
//! binary foreground image. [`Mask`] stores one bit per pixel (as `bool`),
//! offers set algebra, and — because the synthetic substrate gives us
//! ground truth — accuracy metrics ([`MaskMetrics`]) that turn the paper's
//! qualitative figures into numbers.

use crate::error::ImgError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A binary image; `true` = foreground.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mask {
    width: usize,
    height: usize,
    data: Vec<bool>,
}

/// Pixel-level accuracy of a predicted mask against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaskMetrics {
    /// True positives: predicted foreground that is foreground.
    pub tp: usize,
    /// False positives: predicted foreground that is background.
    pub fp: usize,
    /// False negatives: missed foreground.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
}

impl Mask {
    /// Creates an all-background mask.
    pub fn new(width: usize, height: usize) -> Self {
        Mask {
            width,
            height,
            data: vec![false; width * height],
        }
    }

    /// Creates a mask filled with `value`.
    pub fn filled(width: usize, height: usize, value: bool) -> Self {
        Mask {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Creates a mask by evaluating `f(x, y)` per pixel.
    pub fn from_fn<F: FnMut(usize, usize) -> bool>(width: usize, height: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Mask {
            width,
            height,
            data,
        }
    }

    /// Mask width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mask height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Whether `(x, y)` lies inside the mask.
    pub fn in_bounds(&self, x: usize, y: usize) -> bool {
        x < self.width && y < self.height
    }

    /// Returns the pixel; out-of-bounds coordinates read as background,
    /// which is the convention every pipeline stage wants at the borders.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> bool {
        if self.in_bounds(x, y) {
            self.data[y * self.width + x]
        } else {
            false
        }
    }

    /// Signed-coordinate variant of [`Mask::get`]; negative reads as
    /// background.
    #[inline]
    pub fn get_i(&self, x: isize, y: isize) -> bool {
        if x >= 0 && y >= 0 {
            self.get(x as usize, y as usize)
        } else {
            false
        }
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: bool) {
        assert!(
            self.in_bounds(x, y),
            "pixel ({x}, {y}) out of bounds for {}x{} mask",
            self.width,
            self.height
        );
        self.data[y * self.width + x] = value;
    }

    /// Number of foreground pixels.
    pub fn count(&self) -> usize {
        self.data.iter().filter(|&&b| b).count()
    }

    /// Whether the mask has no foreground pixels.
    pub fn is_blank(&self) -> bool {
        !self.data.iter().any(|&b| b)
    }

    /// Fraction of pixels that are foreground, in `[0, 1]`.
    /// Returns 0 for an empty mask.
    pub fn density(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.count() as f64 / self.data.len() as f64
        }
    }

    /// Iterates over the coordinates of all foreground pixels.
    pub fn foreground_pixels(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(move |(i, _)| (i % w, i / w))
    }

    /// Raw row-major bit slice.
    pub fn as_slice(&self) -> &[bool] {
        &self.data
    }

    /// Pixel-wise union.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::DimensionMismatch`] when dimensions differ.
    pub fn union(&self, other: &Mask) -> Result<Mask, ImgError> {
        self.zip(other, |a, b| a | b)
    }

    /// Pixel-wise intersection.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::DimensionMismatch`] when dimensions differ.
    pub fn intersect(&self, other: &Mask) -> Result<Mask, ImgError> {
        self.zip(other, |a, b| a & b)
    }

    /// Pixels in `self` but not in `other`.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::DimensionMismatch`] when dimensions differ.
    pub fn difference(&self, other: &Mask) -> Result<Mask, ImgError> {
        self.zip(other, |a, b| a & !b)
    }

    /// Pixel-wise complement.
    pub fn invert(&self) -> Mask {
        Mask {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&b| !b).collect(),
        }
    }

    fn zip<F: Fn(bool, bool) -> bool>(&self, other: &Mask, f: F) -> Result<Mask, ImgError> {
        if self.dims() != other.dims() {
            return Err(ImgError::DimensionMismatch {
                left: self.dims(),
                right: other.dims(),
            });
        }
        Ok(Mask {
            width: self.width,
            height: self.height,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Intersection-over-union with another mask of the same size.
    ///
    /// Returns 1.0 when both masks are blank (they agree perfectly).
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::DimensionMismatch`] when dimensions differ.
    pub fn iou(&self, other: &Mask) -> Result<f64, ImgError> {
        let m = self.metrics_against(other)?;
        Ok(m.iou())
    }

    /// Computes the confusion counts of `self` (prediction) against
    /// `truth`.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::DimensionMismatch`] when dimensions differ.
    pub fn metrics_against(&self, truth: &Mask) -> Result<MaskMetrics, ImgError> {
        if self.dims() != truth.dims() {
            return Err(ImgError::DimensionMismatch {
                left: self.dims(),
                right: truth.dims(),
            });
        }
        let mut m = MaskMetrics {
            tp: 0,
            fp: 0,
            fn_: 0,
            tn: 0,
        };
        for (&pred, &gt) in self.data.iter().zip(truth.data.iter()) {
            match (pred, gt) {
                (true, true) => m.tp += 1,
                (true, false) => m.fp += 1,
                (false, true) => m.fn_ += 1,
                (false, false) => m.tn += 1,
            }
        }
        Ok(m)
    }

    /// Renders the mask as an ASCII art string (`#` foreground, `.`
    /// background), handy in test failures.
    pub fn to_ascii(&self) -> String {
        let mut s = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                s.push(if self.get(x, y) { '#' } else { '.' });
            }
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Mask {}x{} ({} fg px)",
            self.width,
            self.height,
            self.count()
        )
    }
}

impl MaskMetrics {
    /// Intersection over union: `tp / (tp + fp + fn)`. 1.0 when there is
    /// no foreground in either mask.
    pub fn iou(&self) -> f64 {
        let denom = self.tp + self.fp + self.fn_;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Precision: `tp / (tp + fp)`. 1.0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall: `tp / (tp + fn)`. 1.0 when there is no true foreground.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 score, the harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl fmt::Display for MaskMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IoU {:.3} P {:.3} R {:.3} F1 {:.3}",
            self.iou(),
            self.precision(),
            self.recall(),
            self.f1()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(w: usize, h: usize, x0: usize, y0: usize, x1: usize, y1: usize) -> Mask {
        Mask::from_fn(w, h, |x, y| x >= x0 && x < x1 && y >= y0 && y < y1)
    }

    #[test]
    fn count_and_density() {
        let m = square(10, 10, 0, 0, 5, 4);
        assert_eq!(m.count(), 20);
        assert!((m.density() - 0.2).abs() < 1e-12);
        assert!(!m.is_blank());
        assert!(Mask::new(4, 4).is_blank());
    }

    #[test]
    fn out_of_bounds_reads_background() {
        let m = Mask::filled(3, 3, true);
        assert!(m.get(2, 2));
        assert!(!m.get(3, 0));
        assert!(!m.get(0, 3));
        assert!(!m.get_i(-1, 0));
        assert!(m.get_i(1, 1));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_out_of_bounds_panics() {
        Mask::new(2, 2).set(2, 0, true);
    }

    #[test]
    fn set_and_get() {
        let mut m = Mask::new(4, 4);
        m.set(1, 2, true);
        assert!(m.get(1, 2));
        m.set(1, 2, false);
        assert!(!m.get(1, 2));
    }

    #[test]
    fn union_intersect_difference() {
        let a = square(6, 6, 0, 0, 4, 4); // 16 px
        let b = square(6, 6, 2, 2, 6, 6); // 16 px, overlap 2x2 = 4 px
        assert_eq!(a.union(&b).unwrap().count(), 28);
        assert_eq!(a.intersect(&b).unwrap().count(), 4);
        assert_eq!(a.difference(&b).unwrap().count(), 12);
        assert_eq!(b.difference(&a).unwrap().count(), 12);
    }

    #[test]
    fn set_ops_reject_mismatched_dims() {
        let a = Mask::new(3, 3);
        let b = Mask::new(4, 3);
        assert!(a.union(&b).is_err());
        assert!(a.intersect(&b).is_err());
        assert!(a.difference(&b).is_err());
        assert!(a.iou(&b).is_err());
    }

    #[test]
    fn invert_involution() {
        let a = square(5, 5, 1, 1, 3, 4);
        assert_eq!(a.invert().invert(), a);
        assert_eq!(a.invert().count(), 25 - a.count());
    }

    #[test]
    fn iou_values() {
        let a = square(6, 6, 0, 0, 4, 4);
        let b = square(6, 6, 2, 2, 6, 6);
        // |∩| = 4, |∪| = 28.
        assert!((a.iou(&b).unwrap() - 4.0 / 28.0).abs() < 1e-12);
        assert_eq!(a.iou(&a).unwrap(), 1.0);
        // Two blank masks agree perfectly.
        assert_eq!(Mask::new(3, 3).iou(&Mask::new(3, 3)).unwrap(), 1.0);
    }

    #[test]
    fn metrics_confusion_counts() {
        let truth = square(4, 4, 0, 0, 2, 4); // left half, 8 px
        let pred = square(4, 4, 1, 0, 3, 4); // middle strip, 8 px
        let m = pred.metrics_against(&truth).unwrap();
        assert_eq!(m.tp, 4);
        assert_eq!(m.fp, 4);
        assert_eq!(m.fn_, 4);
        assert_eq!(m.tn, 4);
        assert!((m.precision() - 0.5).abs() < 1e-12);
        assert!((m.recall() - 0.5).abs() < 1e-12);
        assert!((m.f1() - 0.5).abs() < 1e-12);
        assert!((m.iou() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_degenerate_cases() {
        let blank = Mask::new(3, 3);
        let m = blank.metrics_against(&blank).unwrap();
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.iou(), 1.0);
        assert_eq!(m.f1(), 1.0);

        let full = Mask::filled(3, 3, true);
        let m2 = blank.metrics_against(&full).unwrap();
        assert_eq!(m2.recall(), 0.0);
        assert_eq!(m2.precision(), 1.0); // nothing predicted
        assert_eq!(m2.f1(), 0.0);
    }

    #[test]
    fn foreground_pixels_enumerates_coords() {
        let mut m = Mask::new(3, 3);
        m.set(0, 0, true);
        m.set(2, 1, true);
        let px: Vec<_> = m.foreground_pixels().collect();
        assert_eq!(px, vec![(0, 0), (2, 1)]);
    }

    #[test]
    fn ascii_rendering() {
        let m = square(3, 2, 0, 0, 1, 2);
        assert_eq!(m.to_ascii(), "#..\n#..\n");
    }

    #[test]
    fn display_mentions_dims_and_count() {
        let m = square(5, 4, 0, 0, 2, 2);
        let s = m.to_string();
        assert!(s.contains("5x4"));
        assert!(s.contains('4'));
    }
}
