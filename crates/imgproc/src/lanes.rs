//! Structure-of-arrays point lanes for data-parallel kernels.
//!
//! [`PreparedFrame`] materialises a sampled point set (typically every
//! `stride`-th silhouette pixel) into separate `x[]` / `y[]` f64 planes,
//! padded to a whole number of [`LANES`]-wide chunks so a kernel can
//! process a fixed-width chunk per iteration with no tail branch in the
//! inner loop. The padding lanes duplicate the last real point — they
//! hold valid, in-bounds coordinates, so chunk-level bounding boxes and
//! per-lane arithmetic need no masking; consumers simply do not
//! *accumulate* the dead lanes (see [`PreparedFrame::chunk_live`]).
//!
//! Each chunk also carries its points' bounding box
//! ([`PreparedFrame::chunk_bounds`]): because points arrive in scanline
//! order, consecutive points are spatially close and the box stays
//! tight, which is what makes chunk-granular branch-and-bound tests
//! (one lower-bound test per chunk instead of one per point) effective.

use crate::geometry::Point2;
use crate::mask::Mask;

/// Lane width of a [`PreparedFrame`] chunk. Eight f64 lanes: one
/// AVX-512 vector, two AVX2 vectors, or four SSE2 vectors — wide enough
/// for every tier the dispatching kernels target, narrow enough that
/// chunk bounding boxes stay tight under scanline ordering.
pub const LANES: usize = 8;

/// Axis-aligned bounding box of one chunk's real points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkBounds {
    /// Smallest x coordinate in the chunk.
    pub min_x: f64,
    /// Smallest y coordinate in the chunk.
    pub min_y: f64,
    /// Largest x coordinate in the chunk.
    pub max_x: f64,
    /// Largest y coordinate in the chunk.
    pub max_y: f64,
}

/// A point set laid out as `LANES`-chunked structure-of-arrays planes.
///
/// Built once per frame, read many times (every genome of every GA
/// generation walks it). See the module docs for the layout invariants.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedFrame {
    /// X coordinates, padded to a multiple of [`LANES`].
    xs: Vec<f64>,
    /// Y coordinates, padded to a multiple of [`LANES`].
    ys: Vec<f64>,
    /// Per-chunk bounding boxes (over the chunk's real points; padding
    /// duplicates a real point so it never widens the box).
    bounds: Vec<ChunkBounds>,
    /// Number of real (un-padded) points.
    len: usize,
}

impl PreparedFrame {
    /// Prepares every `stride`-th foreground pixel of `mask`, in
    /// scanline order, as a lane-chunked point set. `stride` must be
    /// positive; an empty mask yields an empty frame.
    pub fn from_mask(mask: &Mask, stride: usize) -> PreparedFrame {
        Self::from_points(
            mask.foreground_pixels()
                .step_by(stride)
                .map(|(x, y)| Point2::new(x as f64, y as f64)),
        )
    }

    /// Prepares an explicit point sequence (kept in iteration order).
    pub fn from_points(points: impl IntoIterator<Item = Point2>) -> PreparedFrame {
        let mut frame = PreparedFrame {
            xs: Vec::new(),
            ys: Vec::new(),
            bounds: Vec::new(),
            len: 0,
        };
        frame.rebuild_from_points(points);
        frame
    }

    /// Rebuilds this frame in place from `mask`, reusing the existing
    /// plane and bounds storage. Value-identical to replacing it with
    /// [`PreparedFrame::from_mask`]; with warmed buffers of sufficient
    /// capacity the rebuild performs no heap allocation.
    pub fn rebuild_from_mask(&mut self, mask: &Mask, stride: usize) {
        self.rebuild_from_points(
            mask.foreground_pixels()
                .step_by(stride)
                .map(|(x, y)| Point2::new(x as f64, y as f64)),
        );
    }

    /// In-place twin of [`PreparedFrame::from_points`].
    pub fn rebuild_from_points(&mut self, points: impl IntoIterator<Item = Point2>) {
        self.xs.clear();
        self.ys.clear();
        for p in points {
            self.xs.push(p.x);
            self.ys.push(p.y);
        }
        let len = self.xs.len();
        self.len = len;
        if len > 0 {
            let pad = len.next_multiple_of(LANES);
            let (last_x, last_y) = (self.xs[len - 1], self.ys[len - 1]);
            self.xs.resize(pad, last_x);
            self.ys.resize(pad, last_y);
        }
        let PreparedFrame { xs, ys, bounds, .. } = self;
        bounds.clear();
        bounds.extend(
            xs.chunks_exact(LANES)
                .zip(ys.chunks_exact(LANES))
                .map(|(cx, cy)| {
                    let mut b = ChunkBounds {
                        min_x: cx[0],
                        min_y: cy[0],
                        max_x: cx[0],
                        max_y: cy[0],
                    };
                    for l in 1..LANES {
                        b.min_x = b.min_x.min(cx[l]);
                        b.min_y = b.min_y.min(cy[l]);
                        b.max_x = b.max_x.max(cx[l]);
                        b.max_y = b.max_y.max(cy[l]);
                    }
                    b
                }),
        );
    }

    /// Number of real points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the frame holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of `LANES`-wide chunks (including the padded tail chunk).
    pub fn num_chunks(&self) -> usize {
        self.bounds.len()
    }

    /// The `i`-th real point (same value the source iterator yielded).
    pub fn point(&self, i: usize) -> Point2 {
        debug_assert!(i < self.len);
        Point2::new(self.xs[i], self.ys[i])
    }

    /// Iterates the real points in their original order.
    pub fn iter(&self) -> impl Iterator<Item = Point2> + '_ {
        self.xs[..self.len]
            .iter()
            .zip(&self.ys[..self.len])
            .map(|(&x, &y)| Point2::new(x, y))
    }

    /// Chunk `c`'s coordinate lanes, always exactly [`LANES`] wide.
    pub fn chunk(&self, c: usize) -> (&[f64; LANES], &[f64; LANES]) {
        let s = c * LANES;
        (
            self.xs[s..s + LANES].try_into().expect("chunk width"),
            self.ys[s..s + LANES].try_into().expect("chunk width"),
        )
    }

    /// Bounding box of chunk `c`'s real points.
    pub fn chunk_bounds(&self, c: usize) -> ChunkBounds {
        self.bounds[c]
    }

    /// Number of real (non-padding) lanes in chunk `c`: [`LANES`] for
    /// every chunk but possibly the last.
    pub fn chunk_live(&self, c: usize) -> usize {
        (self.len - c * LANES).min(LANES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_with(points: &[(usize, usize)]) -> Mask {
        let mut m = Mask::new(16, 16);
        for &(x, y) in points {
            m.set(x, y, true);
        }
        m
    }

    #[test]
    fn empty_mask_yields_empty_frame() {
        let f = PreparedFrame::from_mask(&Mask::new(8, 8), 1);
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        assert_eq!(f.num_chunks(), 0);
        assert_eq!(f.iter().count(), 0);
    }

    #[test]
    fn points_survive_in_scanline_order() {
        let m = mask_with(&[(3, 0), (1, 2), (5, 2), (0, 7)]);
        let f = PreparedFrame::from_mask(&m, 1);
        let got: Vec<(f64, f64)> = f.iter().map(|p| (p.x, p.y)).collect();
        assert_eq!(got, vec![(3.0, 0.0), (1.0, 2.0), (5.0, 2.0), (0.0, 7.0)]);
        for (i, &(x, y)) in got.iter().enumerate() {
            assert_eq!(f.point(i), Point2::new(x, y));
        }
    }

    #[test]
    fn padding_duplicates_last_point() {
        let m = mask_with(&[(3, 0), (1, 2), (5, 2)]);
        let f = PreparedFrame::from_mask(&m, 1);
        assert_eq!(f.len(), 3);
        assert_eq!(f.num_chunks(), 1);
        assert_eq!(f.chunk_live(0), 3);
        let (xs, ys) = f.chunk(0);
        for l in 3..LANES {
            assert_eq!((xs[l], ys[l]), (5.0, 2.0));
        }
    }

    #[test]
    fn rebuild_matches_fresh_build_across_reuse() {
        // One frame rebuilt for a sequence of differently-shaped masks
        // must equal a fresh build every time (the cross-frame reuse
        // pattern), including the shrink-to-empty and regrow cases.
        let mut reused = PreparedFrame::from_mask(&Mask::new(4, 4), 1);
        for (pixels, stride) in [
            (vec![(3usize, 0usize), (1, 2), (5, 2), (0, 7), (7, 7)], 1),
            (vec![(0, 0)], 1),
            (vec![], 1),
            ((0..30).map(|i| (i % 9, i / 9)).collect::<Vec<_>>(), 2),
        ] {
            let m = mask_with(&pixels);
            reused.rebuild_from_mask(&m, stride);
            assert_eq!(reused, PreparedFrame::from_mask(&m, stride));
        }
    }

    #[test]
    fn chunk_bounds_cover_their_points() {
        let pts: Vec<Point2> = (0..19)
            .map(|i| Point2::new((i * 3 % 11) as f64, (i * 7 % 5) as f64))
            .collect();
        let f = PreparedFrame::from_points(pts.clone());
        assert_eq!(f.len(), 19);
        assert_eq!(f.num_chunks(), 3);
        assert_eq!(f.chunk_live(2), 3);
        for c in 0..f.num_chunks() {
            let b = f.chunk_bounds(c);
            let live = f.chunk_live(c);
            for l in 0..live {
                let p = f.point(c * LANES + l);
                assert!(p.x >= b.min_x && p.x <= b.max_x);
                assert!(p.y >= b.min_y && p.y <= b.max_y);
            }
            // Padding must not widen the box: every lane (dead ones
            // included) stays inside.
            let (xs, ys) = f.chunk(c);
            for l in 0..LANES {
                assert!(xs[l] >= b.min_x && xs[l] <= b.max_x);
                assert!(ys[l] >= b.min_y && ys[l] <= b.max_y);
            }
        }
    }

    #[test]
    fn stride_subsamples_like_step_by() {
        let m = mask_with(&[(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)]);
        let f = PreparedFrame::from_mask(&m, 2);
        let got: Vec<f64> = f.iter().map(|p| p.x).collect();
        assert_eq!(got, vec![0.0, 2.0, 4.0]);
    }
}
