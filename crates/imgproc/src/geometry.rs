//! Planar geometry used throughout the workspace.
//!
//! The stick-model fitness function of the paper (Eq. 3) is built on the
//! distance from a silhouette pixel to a line segment (a "stick"), so this
//! module provides [`Point2`], [`Vec2`], [`Segment`] and the associated
//! distance queries. Coordinates are `f64`; whether they mean metres
//! (world space, y-up) or pixels (image space, y-down) is decided by the
//! caller — `slj-video`'s camera owns the conversion between the two.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// A displacement in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Point2 {
    /// Creates a point from its coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// The origin, `(0, 0)`.
    pub fn origin() -> Self {
        Point2::default()
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point2) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to another point (no square root).
    pub fn distance_sq(self, other: Point2) -> f64 {
        (self - other).norm_sq()
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    ///
    /// `t` is not clamped; values outside `[0, 1]` extrapolate.
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        self + (other - self) * t
    }

    /// Midpoint between `self` and `other`.
    pub fn midpoint(self, other: Point2) -> Point2 {
        self.lerp(other, 0.5)
    }

    /// Interprets the point as a displacement from the origin.
    pub fn to_vec(self) -> Vec2 {
        Vec2 {
            x: self.x,
            y: self.y,
        }
    }
}

impl Vec2 {
    /// Creates a vector from its components.
    pub fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// The zero vector.
    pub fn zero() -> Self {
        Vec2::default()
    }

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean length.
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Scalar (z-component of the 3-D) cross product.
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction.
    ///
    /// Returns the zero vector when the input has (near-)zero length, which
    /// is the behaviour the rasteriser wants for degenerate sticks.
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n <= f64::EPSILON {
            Vec2::zero()
        } else {
            self / n
        }
    }

    /// Perpendicular vector, rotated +90° counter-clockwise (in y-up
    /// coordinates).
    pub fn perp(self) -> Vec2 {
        Vec2 {
            x: -self.y,
            y: self.x,
        }
    }

    /// Interprets the displacement as an absolute point.
    pub fn to_point(self) -> Point2 {
        Point2 {
            x: self.x,
            y: self.y,
        }
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.3}, {:.3}>", self.x, self.y)
    }
}

impl Add<Vec2> for Point2 {
    type Output = Point2;
    fn add(self, v: Vec2) -> Point2 {
        Point2::new(self.x + v.x, self.y + v.y)
    }
}

impl AddAssign<Vec2> for Point2 {
    fn add_assign(&mut self, v: Vec2) {
        self.x += v.x;
        self.y += v.y;
    }
}

impl Sub<Vec2> for Point2 {
    type Output = Point2;
    fn sub(self, v: Vec2) -> Point2 {
        Point2::new(self.x - v.x, self.y - v.y)
    }
}

impl SubAssign<Vec2> for Point2 {
    fn sub_assign(&mut self, v: Vec2) {
        self.x -= v.x;
        self.y -= v.y;
    }
}

impl Sub for Point2 {
    type Output = Vec2;
    fn sub(self, other: Point2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x + other.x, self.y + other.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, s: f64) -> Vec2 {
        Vec2::new(self.x / s, self.y / s)
    }
}

/// A line segment between two points.
///
/// A "stick" of the paper's stick model is a segment plus a thickness; the
/// thickness lives in `slj-motion`, the geometry lives here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point (for sticks: the end nearer the trunk).
    pub a: Point2,
    /// End point.
    pub b: Point2,
}

impl Segment {
    /// Creates a segment between two points. Degenerate segments
    /// (`a == b`) are allowed and behave as a single point.
    pub fn new(a: Point2, b: Point2) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Midpoint of the segment.
    pub fn midpoint(&self) -> Point2 {
        self.a.midpoint(self.b)
    }

    /// The parameter `t ∈ [0, 1]` of the point on the segment closest to
    /// `p`.
    pub fn closest_t(&self, p: Point2) -> f64 {
        let d = self.b - self.a;
        let len_sq = d.norm_sq();
        if len_sq <= f64::EPSILON {
            return 0.0;
        }
        ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0)
    }

    /// The point on the segment closest to `p`.
    pub fn closest_point(&self, p: Point2) -> Point2 {
        self.a.lerp(self.b, self.closest_t(p))
    }

    /// Euclidean distance from `p` to the segment.
    ///
    /// This is the `d(x_i, y_j)` of the paper's Eq. 3 for a single stick.
    pub fn distance_to(&self, p: Point2) -> f64 {
        p.distance(self.closest_point(p))
    }

    /// Squared distance from `p` to the segment.
    pub fn distance_sq_to(&self, p: Point2) -> f64 {
        p.distance_sq(self.closest_point(p))
    }

    /// Samples `n` points evenly along the segment (including both ends).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn sample(&self, n: usize) -> Vec<Point2> {
        self.sample_iter(n).collect()
    }

    /// As [`Segment::sample`] but yielding the points lazily — the
    /// allocation-free form for hot loops. Same values in the same
    /// order.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn sample_iter(&self, n: usize) -> impl Iterator<Item = Point2> {
        assert!(n > 0, "sample count must be positive");
        let (a, b) = (self.a, self.b);
        let mid = self.midpoint();
        (0..n).map(move |i| {
            if n == 1 {
                mid
            } else {
                a.lerp(b, i as f64 / (n - 1) as f64)
            }
        })
    }
}

/// Converts degrees to radians.
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * std::f64::consts::PI / 180.0
}

/// Converts radians to degrees.
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / std::f64::consts::PI
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn point_arithmetic() {
        let a = p(1.0, 2.0);
        let b = p(4.0, 6.0);
        let d = b - a;
        assert_eq!(d, Vec2::new(3.0, 4.0));
        assert_eq!(d.norm(), 5.0);
        assert_eq!(a + d, b);
        assert_eq!(b - d, a);
    }

    #[test]
    fn point_assign_ops() {
        let mut a = p(1.0, 1.0);
        a += Vec2::new(2.0, 3.0);
        assert_eq!(a, p(3.0, 4.0));
        a -= Vec2::new(3.0, 4.0);
        assert_eq!(a, p(0.0, 0.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = p(0.0, 0.0);
        let b = p(10.0, -2.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), p(5.0, -1.0));
    }

    #[test]
    fn vector_dot_cross_perp() {
        let u = Vec2::new(1.0, 0.0);
        let v = Vec2::new(0.0, 1.0);
        assert_eq!(u.dot(v), 0.0);
        assert_eq!(u.cross(v), 1.0);
        assert_eq!(u.perp(), v);
        assert_eq!(v.perp(), Vec2::new(-1.0, 0.0));
    }

    #[test]
    fn normalized_zero_vector_is_zero() {
        assert_eq!(Vec2::zero().normalized(), Vec2::zero());
    }

    #[test]
    fn normalized_has_unit_length() {
        let v = Vec2::new(3.0, -4.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segment_distance_interior() {
        // Horizontal segment from (0,0) to (10,0); point above its middle.
        let s = Segment::new(p(0.0, 0.0), p(10.0, 0.0));
        assert_eq!(s.distance_to(p(5.0, 3.0)), 3.0);
        assert_eq!(s.closest_point(p(5.0, 3.0)), p(5.0, 0.0));
    }

    #[test]
    fn segment_distance_clamps_to_endpoints() {
        let s = Segment::new(p(0.0, 0.0), p(10.0, 0.0));
        // Beyond the right end: closest point must be the endpoint.
        assert_eq!(s.closest_point(p(14.0, 3.0)), p(10.0, 0.0));
        assert_eq!(s.distance_to(p(14.0, 3.0)), 5.0);
        // Beyond the left end.
        assert_eq!(s.closest_point(p(-3.0, 4.0)), p(0.0, 0.0));
        assert_eq!(s.distance_to(p(-3.0, 4.0)), 5.0);
    }

    #[test]
    fn degenerate_segment_acts_as_point() {
        let s = Segment::new(p(2.0, 2.0), p(2.0, 2.0));
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.distance_to(p(5.0, 6.0)), 5.0);
        assert_eq!(s.closest_t(p(5.0, 6.0)), 0.0);
    }

    #[test]
    fn segment_sampling() {
        let s = Segment::new(p(0.0, 0.0), p(4.0, 0.0));
        let pts = s.sample(5);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], p(0.0, 0.0));
        assert_eq!(pts[4], p(4.0, 0.0));
        assert_eq!(pts[2], p(2.0, 0.0));
        // n = 1 returns the midpoint.
        assert_eq!(s.sample(1), vec![p(2.0, 0.0)]);
        // The lazy form yields the same points in the same order.
        let t = Segment::new(p(1.0, -2.0), p(-3.0, 7.5));
        for n in [1, 2, 5, 7] {
            assert_eq!(t.sample_iter(n).collect::<Vec<_>>(), t.sample(n));
        }
    }

    #[test]
    #[should_panic(expected = "sample count")]
    fn segment_sample_zero_panics() {
        Segment::new(p(0.0, 0.0), p(1.0, 0.0)).sample(0);
    }

    #[test]
    fn degree_radian_roundtrip() {
        for d in [0.0, 45.0, 90.0, 180.0, 270.0, 359.0] {
            assert!((rad_to_deg(deg_to_rad(d)) - d).abs() < 1e-10);
        }
        assert!((deg_to_rad(180.0) - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert!(!p(1.0, 2.0).to_string().is_empty());
        assert!(!Vec2::new(1.0, 2.0).to_string().is_empty());
    }

    #[test]
    fn distance_sq_consistent_with_distance() {
        let s = Segment::new(p(1.0, 1.0), p(7.0, 5.0));
        let q = p(-2.0, 9.0);
        let d = s.distance_to(q);
        assert!((s.distance_sq_to(q) - d * d).abs() < 1e-9);
    }
}
