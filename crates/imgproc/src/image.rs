//! A generic owned 2-D pixel buffer.
//!
//! [`ImageBuffer<P>`] is the storage type behind every frame, difference
//! image and label map in the workspace. It is deliberately simple: a
//! row-major `Vec<P>` with checked and unchecked accessors, functional
//! constructors and mapping helpers.

use crate::error::ImgError;
use serde::{Deserialize, Serialize};

/// An owned, row-major 2-D buffer of pixels.
///
/// Coordinates are `(x, y)` with `x` growing rightward and `y` growing
/// downward (image convention). `(0, 0)` is the top-left pixel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageBuffer<P> {
    width: usize,
    height: usize,
    data: Vec<P>,
}

impl<P: Copy + Default> ImageBuffer<P> {
    /// Creates an image filled with `P::default()`.
    ///
    /// # Panics
    ///
    /// Panics if `width * height` overflows `usize`.
    pub fn new(width: usize, height: usize) -> Self {
        Self::filled(width, height, P::default())
    }
}

impl<P: Copy> ImageBuffer<P> {
    /// Creates an image filled with `value`.
    pub fn filled(width: usize, height: usize, value: P) -> Self {
        let len = width
            .checked_mul(height)
            .expect("image dimensions overflow");
        ImageBuffer {
            width,
            height,
            data: vec![value; len],
        }
    }

    /// Creates an image by evaluating `f(x, y)` for every pixel.
    pub fn from_fn<F: FnMut(usize, usize) -> P>(width: usize, height: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        ImageBuffer {
            width,
            height,
            data,
        }
    }

    /// Creates an image from a row-major pixel vector.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::DimensionMismatch`] when `data.len()` is not
    /// `width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<P>) -> Result<Self, ImgError> {
        if data.len() != width * height {
            return Err(ImgError::DimensionMismatch {
                left: (width, height),
                right: (data.len(), 1),
            });
        }
        Ok(ImageBuffer {
            width,
            height,
            data,
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Total number of pixels.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the image has zero pixels.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether `(x, y)` is inside the image.
    pub fn in_bounds(&self, x: usize, y: usize) -> bool {
        x < self.width && y < self.height
    }

    /// Whether a signed coordinate is inside the image (convenience for
    /// neighbour scans that step off the edges).
    pub fn in_bounds_i(&self, x: isize, y: isize) -> bool {
        x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height
    }

    /// Returns the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> P {
        assert!(
            self.in_bounds(x, y),
            "pixel ({x}, {y}) out of bounds for {}x{} image",
            self.width,
            self.height
        );
        self.data[y * self.width + x]
    }

    /// Returns the pixel at `(x, y)`, or `None` when out of bounds.
    #[inline]
    pub fn try_get(&self, x: usize, y: usize) -> Option<P> {
        if self.in_bounds(x, y) {
            Some(self.data[y * self.width + x])
        } else {
            None
        }
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: P) {
        assert!(
            self.in_bounds(x, y),
            "pixel ({x}, {y}) out of bounds for {}x{} image",
            self.width,
            self.height
        );
        self.data[y * self.width + x] = value;
    }

    /// Sets the pixel at `(x, y)` if it is in bounds; silently ignores
    /// out-of-bounds writes (useful for rasterisers that clip).
    #[inline]
    pub fn set_clipped(&mut self, x: isize, y: isize, value: P) {
        if self.in_bounds_i(x, y) {
            self.data[y as usize * self.width + x as usize] = value;
        }
    }

    /// Raw row-major pixel slice.
    pub fn as_slice(&self) -> &[P] {
        &self.data
    }

    /// Mutable raw row-major pixel slice.
    pub fn as_mut_slice(&mut self) -> &mut [P] {
        &mut self.data
    }

    /// Consumes the buffer and returns the row-major pixel vector.
    pub fn into_vec(self) -> Vec<P> {
        self.data
    }

    /// Iterates over `(x, y, pixel)` in row-major order.
    pub fn enumerate_pixels(&self) -> impl Iterator<Item = (usize, usize, P)> + '_ {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &p)| (i % w, i / w, p))
    }

    /// Applies `f` to every pixel, producing a new image of the same size.
    pub fn map<Q: Copy, F: FnMut(P) -> Q>(&self, mut f: F) -> ImageBuffer<Q> {
        ImageBuffer {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&p| f(p)).collect(),
        }
    }

    /// Applies `f(x, y, pixel)` to every pixel, producing a new image.
    pub fn map_indexed<Q: Copy, F: FnMut(usize, usize, P) -> Q>(&self, mut f: F) -> ImageBuffer<Q> {
        let w = self.width;
        ImageBuffer {
            width: self.width,
            height: self.height,
            data: self
                .data
                .iter()
                .enumerate()
                .map(|(i, &p)| f(i % w, i / w, p))
                .collect(),
        }
    }

    /// Combines two same-sized images pixel-wise.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::DimensionMismatch`] when dimensions differ.
    pub fn zip_map<Q: Copy, R: Copy, F: FnMut(P, Q) -> R>(
        &self,
        other: &ImageBuffer<Q>,
        mut f: F,
    ) -> Result<ImageBuffer<R>, ImgError> {
        if self.dims() != other.dims() {
            return Err(ImgError::DimensionMismatch {
                left: self.dims(),
                right: other.dims(),
            });
        }
        Ok(ImageBuffer {
            width: self.width,
            height: self.height,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Fills the whole image with `value`.
    pub fn fill(&mut self, value: P) {
        self.data.fill(value);
    }

    /// Makes this image a copy of `src`, reusing the existing pixel
    /// storage. Value-identical to `*self = src.clone()`, but does not
    /// allocate when the current capacity covers `src` — even when the
    /// two images have different dimensions.
    pub fn copy_from(&mut self, src: &ImageBuffer<P>) {
        self.width = src.width;
        self.height = src.height;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Extracts a rectangular sub-image. The rectangle is clipped to the
    /// image bounds; an empty intersection yields a `0x0` image.
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> ImageBuffer<P> {
        let x1 = (x0 + w).min(self.width);
        let y1 = (y0 + h).min(self.height);
        if x0 >= x1 || y0 >= y1 {
            return ImageBuffer {
                width: 0,
                height: 0,
                data: Vec::new(),
            };
        }
        ImageBuffer::from_fn(x1 - x0, y1 - y0, |x, y| self.get(x0 + x, y0 + y))
    }
}

impl<P: Copy> AsRef<[P]> for ImageBuffer<P> {
    fn as_ref(&self) -> &[P] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::{Gray, Rgb};

    #[test]
    fn new_is_default_filled() {
        let img: ImageBuffer<Gray> = ImageBuffer::new(4, 3);
        assert_eq!(img.dims(), (4, 3));
        assert_eq!(img.len(), 12);
        assert!(img.as_slice().iter().all(|&p| p == Gray(0)));
    }

    #[test]
    fn from_fn_row_major_order() {
        let img = ImageBuffer::from_fn(3, 2, |x, y| Gray((y * 10 + x) as u8));
        assert_eq!(img.get(0, 0), Gray(0));
        assert_eq!(img.get(2, 0), Gray(2));
        assert_eq!(img.get(0, 1), Gray(10));
        assert_eq!(img.get(2, 1), Gray(12));
        assert_eq!(
            img.as_slice(),
            &[Gray(0), Gray(1), Gray(2), Gray(10), Gray(11), Gray(12)]
        );
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(ImageBuffer::from_vec(2, 2, vec![Gray(0); 4]).is_ok());
        assert!(ImageBuffer::from_vec(2, 2, vec![Gray(0); 3]).is_err());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut img = ImageBuffer::filled(5, 5, Rgb::BLACK);
        img.set(3, 4, Rgb::WHITE);
        assert_eq!(img.get(3, 4), Rgb::WHITE);
        assert_eq!(img.get(4, 3), Rgb::BLACK);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let img: ImageBuffer<Gray> = ImageBuffer::new(2, 2);
        img.get(2, 0);
    }

    #[test]
    fn try_get_returns_none_out_of_bounds() {
        let img: ImageBuffer<Gray> = ImageBuffer::new(2, 2);
        assert_eq!(img.try_get(1, 1), Some(Gray(0)));
        assert_eq!(img.try_get(2, 1), None);
        assert_eq!(img.try_get(1, 2), None);
    }

    #[test]
    fn set_clipped_ignores_out_of_bounds() {
        let mut img = ImageBuffer::filled(2, 2, Gray(0));
        img.set_clipped(-1, 0, Gray(9));
        img.set_clipped(0, -1, Gray(9));
        img.set_clipped(2, 0, Gray(9));
        img.set_clipped(1, 1, Gray(9));
        assert_eq!(img.get(1, 1), Gray(9));
        assert_eq!(img.get(0, 0), Gray(0));
    }

    #[test]
    fn map_preserves_dims() {
        let img = ImageBuffer::from_fn(4, 2, |x, _| Gray(x as u8));
        let doubled = img.map(|p| Gray(p.0 * 2));
        assert_eq!(doubled.dims(), (4, 2));
        assert_eq!(doubled.get(3, 1), Gray(6));
    }

    #[test]
    fn map_indexed_sees_coordinates() {
        let img: ImageBuffer<Gray> = ImageBuffer::new(3, 3);
        let coords = img.map_indexed(|x, y, _| Gray((x + 3 * y) as u8));
        assert_eq!(coords.get(2, 2), Gray(8));
    }

    #[test]
    fn zip_map_combines_and_checks_dims() {
        let a = ImageBuffer::filled(2, 2, Gray(10));
        let b = ImageBuffer::filled(2, 2, Gray(3));
        let sum = a.zip_map(&b, |x, y| Gray(x.0 + y.0)).unwrap();
        assert!(sum.as_slice().iter().all(|&p| p == Gray(13)));

        let c = ImageBuffer::filled(3, 2, Gray(0));
        assert!(a.zip_map(&c, |x, _| x).is_err());
    }

    #[test]
    fn enumerate_pixels_covers_all() {
        let img = ImageBuffer::from_fn(3, 2, |x, y| Gray((x + y) as u8));
        let collected: Vec<_> = img.enumerate_pixels().collect();
        assert_eq!(collected.len(), 6);
        assert_eq!(collected[0], (0, 0, Gray(0)));
        assert_eq!(collected[5], (2, 1, Gray(3)));
    }

    #[test]
    fn crop_clips_to_bounds() {
        let img = ImageBuffer::from_fn(6, 4, |x, y| Gray((10 * y + x) as u8));
        let c = img.crop(4, 2, 10, 10);
        assert_eq!(c.dims(), (2, 2));
        assert_eq!(c.get(0, 0), Gray(24));
        assert_eq!(c.get(1, 1), Gray(35));
        // Fully outside -> empty.
        let e = img.crop(6, 0, 1, 1);
        assert!(e.is_empty());
        assert_eq!(e.dims(), (0, 0));
    }

    #[test]
    fn fill_overwrites_everything() {
        let mut img = ImageBuffer::from_fn(3, 3, |x, _| Gray(x as u8));
        img.fill(Gray(7));
        assert!(img.as_slice().iter().all(|&p| p == Gray(7)));
    }

    #[test]
    fn copy_from_matches_clone_and_reuses_capacity() {
        let src = ImageBuffer::from_fn(4, 3, |x, y| Gray((4 * y + x) as u8));
        let mut dst = ImageBuffer::filled(5, 5, Gray(0));
        let ptr = dst.as_slice().as_ptr();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.as_slice().as_ptr(), ptr, "capacity was not reused");
        // Shrinking and re-growing within capacity also stays in place.
        let small = ImageBuffer::filled(2, 2, Gray(9));
        dst.copy_from(&small);
        assert_eq!(dst, small);
        assert_eq!(dst.as_slice().as_ptr(), ptr);
    }

    #[test]
    fn into_vec_is_row_major() {
        let img = ImageBuffer::from_fn(2, 2, |x, y| Gray((2 * y + x) as u8));
        assert_eq!(img.into_vec(), vec![Gray(0), Gray(1), Gray(2), Gray(3)]);
    }
}
