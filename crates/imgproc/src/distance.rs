//! Chamfer distance transform.
//!
//! Evaluating the paper's Eq. 3 fitness needs, for every silhouette pixel,
//! the distance to the nearest stick. Computed directly this is
//! `O(pixels × sticks)` per chromosome. The GA crate also offers an
//! accelerated variant that rasterises the candidate stick model once and
//! reads distances from a precomputed transform; this module provides that
//! transform. The 3-4 chamfer metric approximates Euclidean distance to
//! within ~8%, which benchmarks show is ample for ranking chromosomes.

use crate::mask::Mask;

/// A per-pixel map of approximate distances (in pixels) to the nearest
/// foreground pixel of the source mask.
#[derive(Debug, Clone)]
pub struct DistanceField {
    width: usize,
    height: usize,
    /// Scaled chamfer distances; divide by [`CHAMFER_SCALE`] for pixels.
    data: Vec<u32>,
}

/// The 3-4 chamfer weights: 3 per axial step, 4 per diagonal step. All
/// stored distances are in units of `1/CHAMFER_SCALE` pixels.
pub const CHAMFER_SCALE: u32 = 3;

/// Sentinel for "no foreground anywhere" (blank source mask).
const INF: u32 = u32::MAX / 2;

/// Reusable backing storage for [`DistanceField::build_into`].
///
/// The transform allocates one `u32` per pixel; rebuilding a field for
/// every frame of every session makes that a steady-state allocation.
/// A scratch handed back via [`DistanceField::recycle`] (or threaded
/// through `build_into` directly) keeps one buffer alive across frames
/// — and across pooled serve sessions — so steady-state rebuilds are
/// allocation-free once the capacity has been reached.
#[derive(Debug, Clone, Default)]
pub struct DistanceScratch {
    data: Vec<u32>,
}

impl DistanceField {
    /// Computes the chamfer distance transform of `mask`: distance from
    /// each pixel to the nearest **foreground** pixel.
    ///
    /// A blank mask yields a field that reports [`f64::INFINITY`]
    /// everywhere.
    pub fn new(mask: &Mask) -> Self {
        Self::build_into(mask, &mut DistanceScratch::default())
    }

    /// Computes the transform reusing the scratch's backing buffer.
    ///
    /// Value-identical to [`DistanceField::new`] (property-tested): the
    /// scratch only donates capacity, every element is rewritten before
    /// it is read. Return the field's storage with
    /// [`DistanceField::recycle`] to complete the reuse cycle.
    pub fn build_into(mask: &Mask, scratch: &mut DistanceScratch) -> Self {
        let (w, h) = mask.dims();
        let mut d = std::mem::take(&mut scratch.data);
        d.clear();
        d.resize(w * h, INF);
        for (x, y) in mask.foreground_pixels() {
            d[y * w + x] = 0;
        }
        if w == 0 || h == 0 {
            return DistanceField {
                width: w,
                height: h,
                data: d,
            };
        }

        // Forward pass: top-left to bottom-right.
        for y in 0..h {
            for x in 0..w {
                let i = y * w + x;
                let mut best = d[i];
                if x > 0 {
                    best = best.min(d[i - 1] + 3);
                }
                if y > 0 {
                    best = best.min(d[i - w] + 3);
                    if x > 0 {
                        best = best.min(d[i - w - 1] + 4);
                    }
                    if x + 1 < w {
                        best = best.min(d[i - w + 1] + 4);
                    }
                }
                d[i] = best;
            }
        }
        // Backward pass: bottom-right to top-left.
        for y in (0..h).rev() {
            for x in (0..w).rev() {
                let i = y * w + x;
                let mut best = d[i];
                if x + 1 < w {
                    best = best.min(d[i + 1] + 3);
                }
                if y + 1 < h {
                    best = best.min(d[i + w] + 3);
                    if x + 1 < w {
                        best = best.min(d[i + w + 1] + 4);
                    }
                    if x > 0 {
                        best = best.min(d[i + w - 1] + 4);
                    }
                }
                d[i] = best;
            }
        }

        DistanceField {
            width: w,
            height: h,
            data: d,
        }
    }

    /// Rebuilds this field in place for a new mask, reusing the
    /// existing storage. Equivalent to `*self = DistanceField::new(mask)`
    /// without the allocation.
    pub fn rebuild(&mut self, mask: &Mask) {
        let mut scratch = DistanceScratch {
            data: std::mem::take(&mut self.data),
        };
        *self = DistanceField::build_into(mask, &mut scratch);
    }

    /// Returns the field's backing buffer to a scratch for reuse by a
    /// later [`DistanceField::build_into`].
    pub fn recycle(self, scratch: &mut DistanceScratch) {
        scratch.data = self.data;
    }

    /// Field width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Field height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Approximate distance in pixels from `(x, y)` to the nearest
    /// foreground pixel. Infinity when the source mask was blank.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn distance(&self, x: usize, y: usize) -> f64 {
        assert!(
            x < self.width && y < self.height,
            "({x}, {y}) out of bounds for {}x{} field",
            self.width,
            self.height
        );
        let raw = self.data[y * self.width + x];
        if raw >= INF {
            f64::INFINITY
        } else {
            raw as f64 / CHAMFER_SCALE as f64
        }
    }

    /// Largest finite distance in the field, or `None` when the source was
    /// blank.
    pub fn max_distance(&self) -> Option<f64> {
        let m = *self.data.iter().max()?;
        if m >= INF {
            None
        } else {
            Some(m as f64 / CHAMFER_SCALE as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_on_foreground() {
        let mut m = Mask::new(9, 9);
        m.set(4, 4, true);
        let df = DistanceField::new(&m);
        assert_eq!(df.distance(4, 4), 0.0);
    }

    #[test]
    fn axial_distances_exact() {
        let mut m = Mask::new(11, 11);
        m.set(5, 5, true);
        let df = DistanceField::new(&m);
        assert_eq!(df.distance(8, 5), 3.0);
        assert_eq!(df.distance(5, 1), 4.0);
        assert_eq!(df.distance(0, 5), 5.0);
    }

    #[test]
    fn diagonal_distance_chamfer_approximation() {
        let mut m = Mask::new(11, 11);
        m.set(5, 5, true);
        let df = DistanceField::new(&m);
        // True distance to (8,8) is 3*sqrt(2) = 4.243; chamfer 3-4 gives
        // 3 diagonal steps * 4/3 = 4.0 (within ~8%).
        let d = df.distance(8, 8);
        let true_d = 3.0 * std::f64::consts::SQRT_2;
        assert!(
            (d - true_d).abs() / true_d < 0.09,
            "chamfer {d} vs {true_d}"
        );
    }

    #[test]
    fn chamfer_error_bound_over_grid() {
        // Single seed; every pixel's chamfer distance must be within 8.1%
        // of Euclidean.
        let mut m = Mask::new(41, 41);
        m.set(20, 20, true);
        let df = DistanceField::new(&m);
        for y in 0..41 {
            for x in 0..41 {
                let true_d = (((x as f64 - 20.0).powi(2)) + ((y as f64 - 20.0).powi(2))).sqrt();
                let d = df.distance(x, y);
                if true_d > 0.0 {
                    let rel = (d - true_d).abs() / true_d;
                    assert!(rel < 0.081, "({x},{y}): chamfer {d} vs true {true_d}");
                }
            }
        }
    }

    #[test]
    fn nearest_of_two_seeds_wins() {
        let mut m = Mask::new(20, 5);
        m.set(0, 2, true);
        m.set(19, 2, true);
        let df = DistanceField::new(&m);
        assert_eq!(df.distance(3, 2), 3.0);
        assert_eq!(df.distance(16, 2), 3.0);
        // Midpoint is equidistant.
        assert!((df.distance(9, 2) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn blank_mask_is_infinite() {
        let df = DistanceField::new(&Mask::new(5, 5));
        assert!(df.distance(2, 2).is_infinite());
        assert!(df.max_distance().is_none());
    }

    #[test]
    fn full_mask_is_zero_everywhere() {
        let df = DistanceField::new(&Mask::filled(6, 6, true));
        for y in 0..6 {
            for x in 0..6 {
                assert_eq!(df.distance(x, y), 0.0);
            }
        }
        assert_eq!(df.max_distance(), Some(0.0));
    }

    #[test]
    fn max_distance_corner_case() {
        let mut m = Mask::new(10, 1);
        m.set(0, 0, true);
        let df = DistanceField::new(&m);
        assert_eq!(df.max_distance(), Some(9.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn distance_out_of_bounds_panics() {
        let mut m = Mask::new(3, 3);
        m.set(1, 1, true);
        DistanceField::new(&m).distance(3, 0);
    }

    #[test]
    fn build_into_reuses_capacity_and_recycle_round_trips() {
        let mut m = Mask::new(16, 12);
        m.set(5, 5, true);
        let mut scratch = DistanceScratch::default();
        let first = DistanceField::build_into(&m, &mut scratch);
        first.recycle(&mut scratch);
        let ptr = scratch.data.as_ptr();
        // Same-or-smaller rebuilds reuse the exact buffer.
        let second = DistanceField::build_into(&m, &mut scratch);
        assert_eq!(second.data.as_ptr(), ptr);
        let reference = DistanceField::new(&m);
        assert_eq!(second.data, reference.data);
        // In-place rebuild for a different mask matches a fresh build.
        let mut third = second;
        let mut m2 = Mask::new(16, 12);
        m2.set(1, 9, true);
        m2.set(14, 2, true);
        third.rebuild(&m2);
        assert_eq!(third.data, DistanceField::new(&m2).data);
    }

    proptest::proptest! {
        /// The scratch-reusing path is value-identical to the allocating
        /// one, across a sequence of differently-sized masks rebuilt
        /// into one shared scratch (the cross-frame / cross-session
        /// reuse pattern).
        #[test]
        fn build_into_matches_new_for_any_mask_sequence(
            clips in proptest::collection::vec(
                (1usize..20, 1usize..20, proptest::collection::vec(proptest::prelude::any::<bool>(), 0..400)),
                1..8,
            )
        ) {
            let mut scratch = DistanceScratch::default();
            for (w, h, bits) in clips {
                let mut m = Mask::new(w, h);
                for (k, set) in bits.iter().enumerate().take(w * h) {
                    if *set {
                        m.set(k % w, k / w, true);
                    }
                }
                let reused = DistanceField::build_into(&m, &mut scratch);
                let fresh = DistanceField::new(&m);
                proptest::prop_assert_eq!(&reused.data, &fresh.data);
                proptest::prop_assert_eq!((reused.width, reused.height), (fresh.width, fresh.height));
                reused.recycle(&mut scratch);
            }
        }
    }

    #[test]
    fn distance_is_one_lipschitz_along_rows() {
        // The transform must not jump by more than the step cost between
        // adjacent pixels (metric property).
        let mut m = Mask::new(30, 30);
        m.set(3, 7, true);
        m.set(22, 19, true);
        let df = DistanceField::new(&m);
        for y in 0..30 {
            for x in 1..30 {
                let delta = (df.distance(x, y) - df.distance(x - 1, y)).abs();
                assert!(delta <= 1.0 + 1e-9);
            }
        }
    }
}
