//! Binary morphology and neighbour counting.
//!
//! Step 3 of the paper's segmentation pipeline deletes noise by counting
//! the non-zero 8-neighbours of each pixel and keeping the pixel only when
//! the count exceeds a threshold — that exact operation is
//! [`neighbor_filter`]. Classic erosion/dilation/open/close are provided
//! as well; the pipeline does not require them, but the synthetic-camera
//! tests and the ablation benches do.

use crate::mask::Mask;

/// Structuring-element connectivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Connectivity {
    /// The 4 edge-adjacent neighbours (von Neumann neighbourhood).
    Four,
    /// The 8 edge- and corner-adjacent neighbours (Moore neighbourhood).
    Eight,
}

impl Connectivity {
    /// The coordinate offsets of the neighbourhood.
    pub fn offsets(self) -> &'static [(isize, isize)] {
        match self {
            Connectivity::Four => &[(0, -1), (-1, 0), (1, 0), (0, 1)],
            Connectivity::Eight => &[
                (-1, -1),
                (0, -1),
                (1, -1),
                (-1, 0),
                (1, 0),
                (-1, 1),
                (0, 1),
                (1, 1),
            ],
        }
    }
}

/// Counts the foreground pixels among the neighbours of `(x, y)`.
///
/// Out-of-bounds neighbours count as background.
pub fn count_neighbors(mask: &Mask, x: usize, y: usize, conn: Connectivity) -> usize {
    let (xi, yi) = (x as isize, y as isize);
    conn.offsets()
        .iter()
        .filter(|&&(dx, dy)| mask.get_i(xi + dx, yi + dy))
        .count()
}

/// The paper's Step-3 noise filter: a foreground pixel survives only when
/// strictly more than `threshold` of its 8-neighbours are foreground.
///
/// Background pixels are never promoted. With `threshold = 0` the filter
/// removes exactly the isolated pixels; typical values are 2–4.
/// Implemented as the word-parallel neighbour vote on the bit-packed
/// plane ([`crate::bitmask::BitMask::neighbor_filter_into`]).
pub fn neighbor_filter(mask: &Mask, threshold: usize) -> Mask {
    let mut out = crate::bitmask::BitMask::new(0, 0);
    mask.bits().neighbor_filter_into(threshold, &mut out);
    Mask::from_bits(out)
}

/// Morphological erosion: a pixel survives when it and its whole
/// neighbourhood are foreground.
pub fn erode(mask: &Mask, conn: Connectivity) -> Mask {
    let mut out = crate::bitmask::BitMask::new(0, 0);
    mask.bits()
        .erode_into(conn == Connectivity::Eight, &mut out);
    Mask::from_bits(out)
}

/// Morphological dilation: a pixel becomes foreground when it or any
/// neighbour is foreground.
pub fn dilate(mask: &Mask, conn: Connectivity) -> Mask {
    let mut out = crate::bitmask::BitMask::new(0, 0);
    mask.bits()
        .dilate_into(conn == Connectivity::Eight, &mut out);
    Mask::from_bits(out)
}

/// Opening: erosion followed by dilation (removes specks).
pub fn open(mask: &Mask, conn: Connectivity) -> Mask {
    dilate(&erode(mask, conn), conn)
}

/// Closing: dilation followed by erosion (fills cracks).
pub fn close(mask: &Mask, conn: Connectivity) -> Mask {
    erode(&dilate(mask, conn), conn)
}

/// The 8-connected boundary of the foreground: foreground pixels with at
/// least one background neighbour.
pub fn boundary(mask: &Mask) -> Mask {
    let mut out = crate::bitmask::BitMask::new(0, 0);
    mask.bits().boundary_into(&mut out);
    Mask::from_bits(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(w: usize, h: usize, x0: usize, y0: usize, x1: usize, y1: usize) -> Mask {
        Mask::from_fn(w, h, |x, y| x >= x0 && x < x1 && y >= y0 && y < y1)
    }

    #[test]
    fn count_neighbors_full_and_corner() {
        let full = Mask::filled(5, 5, true);
        assert_eq!(count_neighbors(&full, 2, 2, Connectivity::Eight), 8);
        assert_eq!(count_neighbors(&full, 2, 2, Connectivity::Four), 4);
        // At a corner, off-image neighbours read as background.
        assert_eq!(count_neighbors(&full, 0, 0, Connectivity::Eight), 3);
        assert_eq!(count_neighbors(&full, 0, 0, Connectivity::Four), 2);
    }

    #[test]
    fn neighbor_filter_removes_isolated_pixels() {
        let mut m = square(9, 9, 2, 2, 7, 7);
        m.set(0, 0, true); // isolated speck
        let filtered = neighbor_filter(&m, 0);
        assert!(!filtered.get(0, 0));
        // Interior of the square survives.
        assert!(filtered.get(4, 4));
    }

    #[test]
    fn neighbor_filter_threshold_behaviour() {
        // A 2x2 block: each pixel has exactly 3 fg neighbours.
        let m = square(6, 6, 2, 2, 4, 4);
        assert_eq!(neighbor_filter(&m, 2).count(), 4); // 3 > 2: keep
        assert_eq!(neighbor_filter(&m, 3).count(), 0); // 3 > 3 fails: drop
    }

    #[test]
    fn neighbor_filter_never_promotes_background() {
        let m = square(5, 5, 1, 1, 4, 4);
        let f = neighbor_filter(&m, 0);
        for (x, y) in f.foreground_pixels() {
            assert!(m.get(x, y));
        }
    }

    #[test]
    fn erode_shrinks_square_by_one_ring() {
        let m = square(10, 10, 2, 2, 8, 8); // 6x6
        let e = erode(&m, Connectivity::Eight);
        assert_eq!(e.count(), 16); // 4x4
        assert!(e.get(4, 4));
        assert!(!e.get(2, 2));
    }

    #[test]
    fn dilate_grows_square_by_one_ring() {
        let m = square(10, 10, 4, 4, 6, 6); // 2x2
        let d = dilate(&m, Connectivity::Eight);
        assert_eq!(d.count(), 16); // 4x4
        let d4 = dilate(&m, Connectivity::Four);
        assert_eq!(d4.count(), 12); // plus shape: 4 + 4*2
    }

    #[test]
    fn erosion_dilation_duality_on_blank_and_full() {
        let blank = Mask::new(6, 6);
        assert!(erode(&blank, Connectivity::Eight).is_blank());
        assert!(dilate(&blank, Connectivity::Eight).is_blank());
        let full = Mask::filled(6, 6, true);
        // Dilation of full stays full; erosion eats the border.
        assert_eq!(dilate(&full, Connectivity::Eight), full);
        assert_eq!(erode(&full, Connectivity::Eight).count(), 16);
    }

    #[test]
    fn open_removes_speck_keeps_blob() {
        let mut m = square(12, 12, 3, 3, 9, 9);
        m.set(0, 11, true);
        let o = open(&m, Connectivity::Eight);
        assert!(!o.get(0, 11));
        assert!(o.get(5, 5));
        // Opening never adds pixels outside the original.
        assert!(o.difference(&m).unwrap().is_blank());
    }

    #[test]
    fn close_fills_small_gap() {
        // Square with a single-pixel hole in the middle.
        let mut m = square(9, 9, 2, 2, 7, 7);
        m.set(4, 4, false);
        let c = close(&m, Connectivity::Eight);
        assert!(c.get(4, 4));
        // Closing never removes original pixels.
        assert!(m.difference(&c).unwrap().is_blank());
    }

    #[test]
    fn boundary_of_square_is_its_ring() {
        let m = square(10, 10, 2, 2, 8, 8); // 6x6 -> ring of 20 px
        let b = boundary(&m);
        assert_eq!(b.count(), 20);
        assert!(b.get(2, 2));
        assert!(!b.get(4, 4));
    }

    #[test]
    fn connectivity_offsets_have_expected_sizes() {
        assert_eq!(Connectivity::Four.offsets().len(), 4);
        assert_eq!(Connectivity::Eight.offsets().len(), 8);
        // No duplicate offsets, none are (0,0).
        for conn in [Connectivity::Four, Connectivity::Eight] {
            let offs = conn.offsets();
            for (i, &a) in offs.iter().enumerate() {
                assert_ne!(a, (0, 0));
                for &b in &offs[i + 1..] {
                    assert_ne!(a, b);
                }
            }
        }
    }
}
