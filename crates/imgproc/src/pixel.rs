//! Pixel types and colour-space conversion.
//!
//! The segmentation pipeline of the paper works in two colour spaces: plain
//! RGB for background subtraction, and HSV for the shadow mask of Eqs. 1–2
//! (following Cucchiara et al.). [`Rgb`] is the storage format of frames;
//! [`Hsv`] is the analysis format; [`Gray`] is used for difference images
//! and figure dumps.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An 8-bit-per-channel RGB pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rgb {
    /// Red channel, `0..=255`.
    pub r: u8,
    /// Green channel, `0..=255`.
    pub g: u8,
    /// Blue channel, `0..=255`.
    pub b: u8,
}

/// A pixel in the Hue–Saturation–Value space used by the shadow detector.
///
/// Ranges follow the paper's conventions: hue is angular in degrees
/// `[0, 360)`, saturation and value are normalised to `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Hsv {
    /// Hue in degrees, `[0, 360)`. Zero for achromatic pixels.
    pub h: f64,
    /// Saturation, `[0, 1]`.
    pub s: f64,
    /// Value (brightness), `[0, 1]`.
    pub v: f64,
}

/// An 8-bit grayscale pixel.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Gray(pub u8);

impl Rgb {
    /// Pure black.
    pub const BLACK: Rgb = Rgb { r: 0, g: 0, b: 0 };
    /// Pure white.
    pub const WHITE: Rgb = Rgb {
        r: 255,
        g: 255,
        b: 255,
    };

    /// Creates a pixel from its channels.
    pub fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb { r, g, b }
    }

    /// Creates a gray pixel with all channels equal.
    pub fn splat(v: u8) -> Self {
        Rgb { r: v, g: v, b: v }
    }

    /// Rec. 601 luma in `[0, 255]`.
    pub fn luma(self) -> f64 {
        0.299 * self.r as f64 + 0.587 * self.g as f64 + 0.114 * self.b as f64
    }

    /// L1 (sum of absolute channel differences) distance to another pixel,
    /// in `[0, 765]`. This is the change measure used for background
    /// estimation and subtraction.
    pub fn l1_distance(self, other: Rgb) -> u32 {
        (self.r as i32 - other.r as i32).unsigned_abs()
            + (self.g as i32 - other.g as i32).unsigned_abs()
            + (self.b as i32 - other.b as i32).unsigned_abs()
    }

    /// Maximum absolute per-channel difference, in `[0, 255]`.
    pub fn linf_distance(self, other: Rgb) -> u32 {
        let dr = (self.r as i32 - other.r as i32).unsigned_abs();
        let dg = (self.g as i32 - other.g as i32).unsigned_abs();
        let db = (self.b as i32 - other.b as i32).unsigned_abs();
        dr.max(dg).max(db)
    }

    /// Converts to HSV.
    pub fn to_hsv(self) -> Hsv {
        let r = self.r as f64 / 255.0;
        let g = self.g as f64 / 255.0;
        let b = self.b as f64 / 255.0;
        let max = r.max(g).max(b);
        let min = r.min(g).min(b);
        let delta = max - min;

        let h = if delta <= f64::EPSILON {
            0.0
        } else if (max - r).abs() <= f64::EPSILON {
            60.0 * (((g - b) / delta).rem_euclid(6.0))
        } else if (max - g).abs() <= f64::EPSILON {
            60.0 * ((b - r) / delta + 2.0)
        } else {
            60.0 * ((r - g) / delta + 4.0)
        };
        let s = if max <= f64::EPSILON {
            0.0
        } else {
            delta / max
        };
        Hsv {
            h: h.rem_euclid(360.0),
            s,
            v: max,
        }
    }

    /// Scales brightness by `factor`, saturating each channel at 255.
    ///
    /// Used by the synthetic camera for lighting flicker and by the shadow
    /// caster (factors below 1 darken, preserving hue approximately — the
    /// property the HSV shadow detector of the paper relies on).
    pub fn scale_brightness(self, factor: f64) -> Rgb {
        let s = |c: u8| ((c as f64 * factor).round().clamp(0.0, 255.0)) as u8;
        Rgb::new(s(self.r), s(self.g), s(self.b))
    }
}

impl Hsv {
    /// Creates an HSV pixel; hue is wrapped into `[0, 360)`, saturation and
    /// value are clamped to `[0, 1]`.
    pub fn new(h: f64, s: f64, v: f64) -> Self {
        Hsv {
            h: h.rem_euclid(360.0),
            s: s.clamp(0.0, 1.0),
            v: v.clamp(0.0, 1.0),
        }
    }

    /// Converts to RGB.
    pub fn to_rgb(self) -> Rgb {
        let c = self.v * self.s;
        let hp = self.h / 60.0;
        let x = c * (1.0 - (hp.rem_euclid(2.0) - 1.0).abs());
        let (r1, g1, b1) = match hp as u32 {
            0 => (c, x, 0.0),
            1 => (x, c, 0.0),
            2 => (0.0, c, x),
            3 => (0.0, x, c),
            4 => (x, 0.0, c),
            _ => (c, 0.0, x),
        };
        let m = self.v - c;
        let q = |v: f64| ((v + m) * 255.0).round().clamp(0.0, 255.0) as u8;
        Rgb::new(q(r1), q(g1), q(b1))
    }

    /// Angular hue distance to another pixel, in degrees `[0, 180]`.
    ///
    /// This is the paper's Eq. 2:
    /// `DH_k(p) = min(|F.H − B.H|, 360 − |F.H − B.H|)`.
    pub fn hue_distance(self, other: Hsv) -> f64 {
        let d = (self.h - other.h).abs();
        d.min(360.0 - d)
    }
}

impl Gray {
    /// Creates a grayscale pixel.
    pub fn new(v: u8) -> Self {
        Gray(v)
    }

    /// The underlying intensity.
    pub fn value(self) -> u8 {
        self.0
    }
}

impl From<Gray> for Rgb {
    fn from(g: Gray) -> Rgb {
        Rgb::splat(g.0)
    }
}

impl From<Rgb> for Gray {
    fn from(c: Rgb) -> Gray {
        Gray(c.luma().round().clamp(0.0, 255.0) as u8)
    }
}

impl From<Rgb> for Hsv {
    fn from(c: Rgb) -> Hsv {
        c.to_hsv()
    }
}

impl From<Hsv> for Rgb {
    fn from(c: Hsv) -> Rgb {
        c.to_rgb()
    }
}

impl fmt::Display for Rgb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }
}

impl fmt::Display for Hsv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hsv({:.1}°, {:.3}, {:.3})", self.h, self.s, self.v)
    }
}

impl fmt::Display for Gray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gray({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_colors_to_hsv() {
        let red = Rgb::new(255, 0, 0).to_hsv();
        assert!((red.h - 0.0).abs() < 1e-9);
        assert!((red.s - 1.0).abs() < 1e-9);
        assert!((red.v - 1.0).abs() < 1e-9);

        let green = Rgb::new(0, 255, 0).to_hsv();
        assert!((green.h - 120.0).abs() < 1e-9);

        let blue = Rgb::new(0, 0, 255).to_hsv();
        assert!((blue.h - 240.0).abs() < 1e-9);
    }

    #[test]
    fn achromatic_pixels_have_zero_saturation() {
        for v in [0u8, 37, 128, 255] {
            let hsv = Rgb::splat(v).to_hsv();
            assert_eq!(hsv.s, 0.0);
            assert_eq!(hsv.h, 0.0);
            assert!((hsv.v - v as f64 / 255.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rgb_hsv_roundtrip_exact_corners() {
        for c in [
            Rgb::BLACK,
            Rgb::WHITE,
            Rgb::new(255, 0, 0),
            Rgb::new(0, 255, 0),
            Rgb::new(0, 0, 255),
            Rgb::new(255, 255, 0),
            Rgb::new(0, 255, 255),
            Rgb::new(255, 0, 255),
        ] {
            assert_eq!(c.to_hsv().to_rgb(), c);
        }
    }

    #[test]
    fn rgb_hsv_roundtrip_within_quantisation() {
        // Every conversion round trip must land within 1 intensity level
        // per channel (HSV is continuous; RGB is quantised).
        for r in (0..=255).step_by(17) {
            for g in (0..=255).step_by(23) {
                for b in (0..=255).step_by(29) {
                    let c = Rgb::new(r as u8, g as u8, b as u8);
                    let back = c.to_hsv().to_rgb();
                    assert!(c.linf_distance(back) <= 1, "{c} -> {back}");
                }
            }
        }
    }

    #[test]
    fn hue_distance_is_angular() {
        let a = Hsv::new(10.0, 1.0, 1.0);
        let b = Hsv::new(350.0, 1.0, 1.0);
        // Across the wrap-around the distance is 20°, not 340°.
        assert!((a.hue_distance(b) - 20.0).abs() < 1e-9);
        assert!((b.hue_distance(a) - 20.0).abs() < 1e-9);
        // Maximum possible angular distance is 180°.
        let c = Hsv::new(0.0, 1.0, 1.0);
        let d = Hsv::new(180.0, 1.0, 1.0);
        assert!((c.hue_distance(d) - 180.0).abs() < 1e-9);
    }

    #[test]
    fn hsv_new_normalises() {
        let p = Hsv::new(-30.0, 2.0, -1.0);
        assert!((p.h - 330.0).abs() < 1e-9);
        assert_eq!(p.s, 1.0);
        assert_eq!(p.v, 0.0);
        assert!((Hsv::new(720.0, 0.5, 0.5).h - 0.0).abs() < 1e-9);
    }

    #[test]
    fn l1_and_linf_distances() {
        let a = Rgb::new(10, 20, 30);
        let b = Rgb::new(13, 16, 30);
        assert_eq!(a.l1_distance(b), 7);
        assert_eq!(a.linf_distance(b), 4);
        assert_eq!(a.l1_distance(a), 0);
        assert_eq!(Rgb::BLACK.l1_distance(Rgb::WHITE), 765);
    }

    #[test]
    fn luma_bounds_and_ordering() {
        assert_eq!(Rgb::BLACK.luma(), 0.0);
        assert!((Rgb::WHITE.luma() - 255.0).abs() < 1e-9);
        // Green contributes most to luma.
        assert!(Rgb::new(0, 255, 0).luma() > Rgb::new(255, 0, 0).luma());
        assert!(Rgb::new(255, 0, 0).luma() > Rgb::new(0, 0, 255).luma());
    }

    #[test]
    fn scale_brightness_darkens_preserving_hue() {
        let c = Rgb::new(200, 100, 50);
        let dark = c.scale_brightness(0.5);
        assert_eq!(dark, Rgb::new(100, 50, 25));
        let dh = c.to_hsv().hue_distance(dark.to_hsv());
        assert!(dh < 2.0, "hue shifted by {dh}°");
        // Value drops proportionally.
        assert!((dark.to_hsv().v - 0.5 * c.to_hsv().v).abs() < 0.01);
    }

    #[test]
    fn scale_brightness_saturates() {
        assert_eq!(Rgb::new(200, 200, 200).scale_brightness(2.0), Rgb::WHITE);
        assert_eq!(Rgb::WHITE.scale_brightness(0.0), Rgb::BLACK);
    }

    #[test]
    fn gray_conversions() {
        let g: Gray = Rgb::new(255, 255, 255).into();
        assert_eq!(g, Gray(255));
        let c: Rgb = Gray(100).into();
        assert_eq!(c, Rgb::splat(100));
        assert_eq!(Gray::new(7).value(), 7);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Rgb::new(255, 0, 16).to_string(), "#ff0010");
        assert!(Hsv::new(120.0, 0.5, 0.25).to_string().contains("120.0"));
        assert_eq!(Gray(9).to_string(), "gray(9)");
    }
}
