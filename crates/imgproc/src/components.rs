//! Connected-component labelling and small-spot removal.
//!
//! The second half of the paper's Step 3 removes "smaller spots" from the
//! foreground because the target is a single human-sized object. We label
//! components with a union-find pass and filter by area
//! ([`remove_small_components`]), or keep only the largest component
//! ([`keep_largest_component`]) — the strictest reading of "we are looking
//! for human objects".

use crate::mask::Mask;
use crate::morph::Connectivity;

/// A labelled connected component of a mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Stable label (1-based; 0 is background in the label map).
    pub label: u32,
    /// Number of pixels.
    pub area: usize,
    /// Inclusive bounding box `(x_min, y_min, x_max, y_max)`.
    pub bbox: (usize, usize, usize, usize),
}

/// The result of labelling: a per-pixel label map (0 = background) plus
/// per-component statistics.
///
/// A `Labeling` owns all the buffers the two-pass union-find algorithm
/// needs, so one instance can be re-used across frames via
/// [`Labeling::relabel`] without per-frame heap allocation.
#[derive(Debug, Clone, Default)]
pub struct Labeling {
    width: usize,
    height: usize,
    labels: Vec<u32>,
    components: Vec<Component>,
    // Union-find / dense-relabel scratch, retained between relabels.
    parent: Vec<u32>,
    remap: Vec<u32>,
}

impl Labeling {
    /// An empty labelling ready for [`Labeling::relabel`].
    pub fn empty() -> Self {
        Labeling::default()
    }

    /// Pre-sizes every internal buffer for masks up to `width x height`
    /// so subsequent [`Labeling::relabel`] calls never allocate. The
    /// provisional-label bound is `w*h/4 + 2`: a fresh label needs all
    /// four previously-scanned neighbours background, which at most one
    /// pixel in four can satisfy.
    pub fn reserve_for(&mut self, width: usize, height: usize) {
        let labels_cap = width * height;
        let comp_cap = labels_cap / 4 + 2;
        if self.labels.capacity() < labels_cap {
            self.labels.reserve(labels_cap - self.labels.len());
        }
        if self.parent.capacity() < comp_cap {
            self.parent.reserve(comp_cap - self.parent.len());
        }
        if self.remap.capacity() < comp_cap {
            self.remap.reserve(comp_cap - self.remap.len());
        }
        if self.components.capacity() < comp_cap {
            self.components.reserve(comp_cap - self.components.len());
        }
    }

    /// Relabels `mask` in place, reusing this labelling's buffers.
    ///
    /// Identical output to [`label_components`]; the scan skips
    /// background 64 pixels at a time via the bit-packed rows.
    pub fn relabel(&mut self, mask: &Mask, conn: Connectivity) {
        let (w, h) = mask.dims();
        self.width = w;
        self.height = h;
        self.labels.clear();
        self.labels.resize(w * h, 0);
        self.parent.clear();
        self.parent.push(0); // parent[0] unused (background)
        self.components.clear();

        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                let gp = parent[parent[x as usize] as usize];
                parent[x as usize] = gp;
                x = gp;
            }
            x
        }
        fn union(parent: &mut [u32], a: u32, b: u32) {
            let ra = find(parent, a);
            let rb = find(parent, b);
            if ra != rb {
                // Attach the larger root label to the smaller to keep
                // labels biased toward scan order.
                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                parent[hi as usize] = lo;
            }
        }

        // First pass: provisional labels + equivalences. Only neighbours
        // already scanned (above / left, diagonals for 8-conn) matter,
        // and a non-zero label entry implies the pixel is foreground.
        let prior: &[(isize, isize)] = match conn {
            Connectivity::Four => &[(0, -1), (-1, 0)],
            Connectivity::Eight => &[(-1, -1), (0, -1), (1, -1), (-1, 0)],
        };
        let bits = mask.bits();
        let mut next_label = 1u32;
        for y in 0..h {
            let row = bits.row(y);
            for (j, &word) in row.iter().enumerate() {
                let mut wbits = word;
                while wbits != 0 {
                    let b = wbits.trailing_zeros() as usize;
                    wbits &= wbits - 1;
                    let x = j * 64 + b;
                    let mut neighbor_label = 0u32;
                    for &(dx, dy) in prior {
                        let (nx, ny) = (x as isize + dx, y as isize + dy);
                        if nx >= 0 && ny >= 0 && (nx as usize) < w {
                            let nl = self.labels[ny as usize * w + nx as usize];
                            if nl != 0 {
                                if neighbor_label == 0 {
                                    neighbor_label = nl;
                                } else if nl != neighbor_label {
                                    union(&mut self.parent, neighbor_label, nl);
                                }
                            }
                        }
                    }
                    if neighbor_label == 0 {
                        self.parent.push(next_label);
                        self.labels[y * w + x] = next_label;
                        next_label += 1;
                    } else {
                        self.labels[y * w + x] = neighbor_label;
                    }
                }
            }
        }

        // Compress equivalences into dense 1..=n labels in scan order.
        self.remap.clear();
        self.remap.resize(next_label as usize, 0);
        for y in 0..h {
            let row = bits.row(y);
            for (j, &word) in row.iter().enumerate() {
                let mut wbits = word;
                while wbits != 0 {
                    let b = wbits.trailing_zeros() as usize;
                    wbits &= wbits - 1;
                    let x = j * 64 + b;
                    let l = self.labels[y * w + x];
                    let root = find(&mut self.parent, l);
                    let dense = if self.remap[root as usize] == 0 {
                        let d = self.components.len() as u32 + 1;
                        self.remap[root as usize] = d;
                        self.components.push(Component {
                            label: d,
                            area: 0,
                            bbox: (x, y, x, y),
                        });
                        d
                    } else {
                        self.remap[root as usize]
                    };
                    self.labels[y * w + x] = dense;
                    let c = &mut self.components[dense as usize - 1];
                    c.area += 1;
                    c.bbox.0 = c.bbox.0.min(x);
                    c.bbox.1 = c.bbox.1.min(y);
                    c.bbox.2 = c.bbox.2.max(x);
                    c.bbox.3 = c.bbox.3.max(y);
                }
            }
        }
    }

    /// Writes the mask of all components with area ≥ `min_area` into
    /// `out`, allocation-free given `mask` is the mask this labelling
    /// was computed from.
    pub fn filter_by_area_into(&self, mask: &Mask, min_area: usize, out: &mut Mask) {
        debug_assert_eq!(mask.dims(), (self.width, self.height));
        out.reset(self.width, self.height);
        for (x, y) in mask.foreground_pixels() {
            let l = self.labels[y * self.width + x] as usize;
            if l != 0 && self.components[l - 1].area >= min_area {
                out.set(x, y, true);
            }
        }
    }
    /// The label at `(x, y)`; 0 means background. Out-of-bounds reads 0.
    pub fn label_at(&self, x: usize, y: usize) -> u32 {
        if x < self.width && y < self.height {
            self.labels[y * self.width + x]
        } else {
            0
        }
    }

    /// Statistics for every component, ordered by label.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether there are no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The component with the largest area, if any. Ties break toward the
    /// lower label (scan order), keeping results deterministic.
    pub fn largest(&self) -> Option<&Component> {
        self.components
            .iter()
            .max_by(|a, b| a.area.cmp(&b.area).then_with(|| b.label.cmp(&a.label)))
    }

    /// Builds the mask of one labelled component.
    pub fn component_mask(&self, label: u32) -> Mask {
        Mask::from_fn(self.width, self.height, |x, y| {
            self.labels[y * self.width + x] == label
        })
    }

    /// Builds the mask of all components whose area is at least
    /// `min_area`.
    pub fn filter_by_area(&self, min_area: usize) -> Mask {
        let keep: Vec<bool> = {
            let mut keep = vec![false; self.components.len() + 1];
            for c in &self.components {
                keep[c.label as usize] = c.area >= min_area;
            }
            keep
        };
        Mask::from_fn(self.width, self.height, |x, y| {
            let l = self.labels[y * self.width + x] as usize;
            l != 0 && keep[l]
        })
    }
}

/// Labels the connected components of `mask`.
///
/// Uses a two-pass union-find labelling; labels are assigned in raster-scan
/// order of each component's first pixel, so results are deterministic.
/// Allocating wrapper over [`Labeling::relabel`].
pub fn label_components(mask: &Mask, conn: Connectivity) -> Labeling {
    let mut labeling = Labeling::empty();
    labeling.relabel(mask, conn);
    labeling
}

/// Removes all 8-connected components with fewer than `min_area` pixels —
/// the paper's "smaller spots can be removed from the scene".
pub fn remove_small_components(mask: &Mask, min_area: usize) -> Mask {
    label_components(mask, Connectivity::Eight).filter_by_area(min_area)
}

/// Keeps only the largest 8-connected component (blank input stays blank).
pub fn keep_largest_component(mask: &Mask) -> Mask {
    let labeling = label_components(mask, Connectivity::Eight);
    match labeling.largest() {
        Some(c) => labeling.component_mask(c.label),
        None => Mask::new(mask.width(), mask.height()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_ascii(art: &str) -> Mask {
        let rows: Vec<&str> = art.trim().lines().map(str::trim).collect();
        let h = rows.len();
        let w = rows[0].len();
        Mask::from_fn(w, h, |x, y| rows[y].as_bytes()[x] == b'#')
    }

    #[test]
    fn single_blob_single_label() {
        let m = from_ascii(
            "....
             .##.
             .##.
             ....",
        );
        let l = label_components(&m, Connectivity::Eight);
        assert_eq!(l.len(), 1);
        assert_eq!(l.components()[0].area, 4);
        assert_eq!(l.components()[0].bbox, (1, 1, 2, 2));
    }

    #[test]
    fn two_blobs_two_labels() {
        let m = from_ascii(
            "##...
             ##...
             .....
             ...##
             ...##",
        );
        let l = label_components(&m, Connectivity::Eight);
        assert_eq!(l.len(), 2);
        assert_eq!(l.components()[0].area, 4);
        assert_eq!(l.components()[1].area, 4);
        assert_ne!(l.label_at(0, 0), l.label_at(4, 4));
        assert_eq!(l.label_at(2, 2), 0);
    }

    #[test]
    fn diagonal_touch_depends_on_connectivity() {
        let m = from_ascii(
            "#.
             .#",
        );
        assert_eq!(label_components(&m, Connectivity::Eight).len(), 1);
        assert_eq!(label_components(&m, Connectivity::Four).len(), 2);
    }

    #[test]
    fn u_shape_merges_via_union_find() {
        // A 'U' forces provisional labels on the two prongs that must be
        // merged when the bottom connects them.
        let m = from_ascii(
            "#.#
             #.#
             ###",
        );
        let l = label_components(&m, Connectivity::Four);
        assert_eq!(l.len(), 1);
        assert_eq!(l.components()[0].area, 7);
    }

    #[test]
    fn w_shape_multiple_merges() {
        let m = from_ascii(
            "#.#.#
             #.#.#
             #####",
        );
        let l = label_components(&m, Connectivity::Four);
        assert_eq!(l.len(), 1);
        assert_eq!(l.components()[0].area, 11);
    }

    #[test]
    fn labels_are_dense_and_scan_ordered() {
        let m = from_ascii(
            "#..#
             ....
             #..#",
        );
        let l = label_components(&m, Connectivity::Eight);
        assert_eq!(l.len(), 4);
        assert_eq!(l.label_at(0, 0), 1);
        assert_eq!(l.label_at(3, 0), 2);
        assert_eq!(l.label_at(0, 2), 3);
        assert_eq!(l.label_at(3, 2), 4);
    }

    #[test]
    fn remove_small_components_keeps_big_blob() {
        let m = from_ascii(
            "#....
             .....
             ..###
             ..###",
        );
        let cleaned = remove_small_components(&m, 4);
        assert_eq!(cleaned.count(), 6);
        assert!(!cleaned.get(0, 0));
        assert!(cleaned.get(3, 3));
    }

    #[test]
    fn remove_small_components_min_area_boundary() {
        let m = from_ascii(
            "##...
             .....
             ...##
             ...##",
        );
        // 2-px blob and 4-px blob; threshold exactly 2 keeps both.
        assert_eq!(remove_small_components(&m, 2).count(), 6);
        assert_eq!(remove_small_components(&m, 3).count(), 4);
        assert_eq!(remove_small_components(&m, 5).count(), 0);
    }

    #[test]
    fn keep_largest_component_selects_by_area() {
        let m = from_ascii(
            "###..
             ###..
             ....#
             ....#",
        );
        let kept = keep_largest_component(&m);
        assert_eq!(kept.count(), 6);
        assert!(kept.get(1, 1));
        assert!(!kept.get(4, 3));
    }

    #[test]
    fn keep_largest_on_blank_is_blank() {
        let blank = Mask::new(4, 4);
        assert!(keep_largest_component(&blank).is_blank());
    }

    #[test]
    fn component_mask_roundtrip() {
        let m = from_ascii(
            "##..
             ##..
             ...#",
        );
        let l = label_components(&m, Connectivity::Eight);
        let all: Mask = l.components().iter().fold(Mask::new(4, 3), |acc, c| {
            acc.union(&l.component_mask(c.label)).unwrap()
        });
        assert_eq!(all, m);
    }

    #[test]
    fn largest_is_none_on_blank() {
        let l = label_components(&Mask::new(3, 3), Connectivity::Eight);
        assert!(l.largest().is_none());
        assert!(l.is_empty());
    }
}
