//! Bit-packed binary-image storage: one `u64` word per 64 pixels.
//!
//! [`BitMask`] is the storage substrate behind [`crate::mask::Mask`].
//! Rows are padded to a whole number of words (`words_per_row`), bit `b`
//! of word `j` in row `y` is pixel `(j * 64 + b, y)`, and the *tail
//! invariant* keeps every bit at `x >= width` zero so that word-parallel
//! kernels can treat out-of-bounds neighbours as background for free.
//!
//! On top of the packed layout this module implements the pipeline's
//! per-pixel hot loops as word-parallel kernels:
//!
//! - set algebra (`union_into` & co.): one boolean op per 64 pixels;
//! - the 8/4-neighbour vote (`neighbor_filter_into`, `erode_into`, …):
//!   shifted-word neighbour planes summed with a bit-sliced half-adder
//!   network into four count planes, compared against the threshold with
//!   a bitwise magnitude comparator;
//! - the paper's Step-4 pinhole rule (`fill_paper_rule_into`): the
//!   four-neighbour AND of shifted words;
//! - enclosed-hole filling (`fill_enclosed_holes_into`): border-seeded
//!   flood fill run as alternating top-down/bottom-up sweeps with a
//!   Kogge–Stone horizontal smear inside each row, iterated to fixpoint.
//!
//! Every kernel writes into caller-provided buffers (`*_into`), so the
//! steady-state segmentation path performs no heap allocation; the
//! allocating convenience wrappers live on `Mask`.

/// A bit-packed binary image; bit set = foreground.
#[derive(Debug, PartialEq, Eq)]
pub struct BitMask {
    width: usize,
    height: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl Clone for BitMask {
    fn clone(&self) -> Self {
        BitMask {
            width: self.width,
            height: self.height,
            words_per_row: self.words_per_row,
            words: self.words.clone(),
        }
    }

    /// Reuses the existing word buffer when its capacity suffices, so
    /// arena-held masks can be refreshed without allocating.
    fn clone_from(&mut self, source: &Self) {
        self.width = source.width;
        self.height = source.height;
        self.words_per_row = source.words_per_row;
        self.words.clear();
        self.words.extend_from_slice(&source.words);
    }
}

/// Mask of the valid bits in the last word of a row.
#[inline]
fn tail_mask(width: usize) -> u64 {
    let rem = width & 63;
    if rem == 0 {
        !0
    } else {
        (1u64 << rem) - 1
    }
}

/// The value of each pixel's west neighbour (`x - 1`), aligned to `x`.
#[inline]
fn shift_west(row: &[u64], j: usize) -> u64 {
    (row[j] << 1) | if j > 0 { row[j - 1] >> 63 } else { 0 }
}

/// The value of each pixel's east neighbour (`x + 1`), aligned to `x`.
#[inline]
fn shift_east(row: &[u64], j: usize) -> u64 {
    (row[j] >> 1)
        | if j + 1 < row.len() {
            row[j + 1] << 63
        } else {
            0
        }
}

/// Adds a one-bit plane into a 4-plane bit-sliced counter (max value 8).
#[inline]
fn add_plane(c: &mut [u64; 4], mut a: u64) {
    for plane in c.iter_mut() {
        if a == 0 {
            return;
        }
        let carry = *plane & a;
        *plane ^= a;
        a = carry;
    }
}

/// Bits where the 4-bit sliced counter is strictly greater than `k`.
#[inline]
fn count_gt(c: &[u64; 4], k: usize) -> u64 {
    if k >= 8 {
        return 0;
    }
    let mut gt = 0u64;
    let mut eq = !0u64;
    for i in (0..4).rev() {
        let kb = if (k >> i) & 1 == 1 { !0u64 } else { 0 };
        gt |= eq & c[i] & !kb;
        eq &= !(c[i] ^ kb);
    }
    gt
}

/// Bits where the 4-bit sliced counter equals `k`.
#[inline]
fn count_eq(c: &[u64; 4], k: usize) -> u64 {
    if k > 8 {
        return 0;
    }
    let mut eq = !0u64;
    for (i, &plane) in c.iter().enumerate() {
        let kb = if (k >> i) & 1 == 1 { !0u64 } else { 0 };
        eq &= !(plane ^ kb);
    }
    eq
}

/// Smears the set bits of `out` horizontally through the propagator
/// `allow` (both directions, Kogge–Stone inside each word, sequential
/// carries across words). Returns whether anything changed.
fn smear_row(out: &mut [u64], allow: &[u64]) -> bool {
    let n = out.len();
    let mut changed = false;
    // West → east.
    let mut carry = 0u64;
    for j in 0..n {
        let t = allow[j];
        let mut v = out[j] | (carry & t);
        let mut m = t;
        v |= m & (v << 1);
        m &= m << 1;
        v |= m & (v << 2);
        m &= m << 2;
        v |= m & (v << 4);
        m &= m << 4;
        v |= m & (v << 8);
        m &= m << 8;
        v |= m & (v << 16);
        m &= m << 16;
        v |= m & (v << 32);
        if v != out[j] {
            out[j] = v;
            changed = true;
        }
        carry = v >> 63;
    }
    // East → west.
    let mut carry = 0u64;
    for j in (0..n).rev() {
        let t = allow[j];
        let mut v = out[j] | (carry & t);
        let mut m = t;
        v |= m & (v >> 1);
        m &= m >> 1;
        v |= m & (v >> 2);
        m &= m >> 2;
        v |= m & (v >> 4);
        m &= m >> 4;
        v |= m & (v >> 8);
        m &= m >> 8;
        v |= m & (v >> 16);
        m &= m >> 16;
        v |= m & (v >> 32);
        if v != out[j] {
            out[j] = v;
            changed = true;
        }
        carry = (v & 1) << 63;
    }
    changed
}

impl BitMask {
    /// Creates an all-background mask.
    pub fn new(width: usize, height: usize) -> Self {
        let words_per_row = width.div_ceil(64);
        BitMask {
            width,
            height,
            words_per_row,
            words: vec![0; words_per_row * height],
        }
    }

    /// Creates a mask filled with `value`.
    pub fn filled(width: usize, height: usize, value: bool) -> Self {
        let mut m = BitMask::new(width, height);
        m.fill(value);
        m
    }

    /// Mask width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mask height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Number of `u64` words storing each row.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The full word buffer, row-major.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The words of row `y`.
    #[inline]
    pub fn row(&self, y: usize) -> &[u64] {
        &self.words[y * self.words_per_row..(y + 1) * self.words_per_row]
    }

    /// Mutable words of row `y`. Callers must preserve the tail
    /// invariant (bits at `x >= width` stay zero).
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [u64] {
        &mut self.words[y * self.words_per_row..(y + 1) * self.words_per_row]
    }

    /// Whether `(x, y)` lies inside the mask.
    #[inline]
    pub fn in_bounds(&self, x: usize, y: usize) -> bool {
        x < self.width && y < self.height
    }

    /// Reads a pixel; out-of-bounds coordinates read as background.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> bool {
        if self.in_bounds(x, y) {
            (self.words[y * self.words_per_row + (x >> 6)] >> (x & 63)) & 1 == 1
        } else {
            false
        }
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: bool) {
        assert!(
            self.in_bounds(x, y),
            "pixel ({x}, {y}) out of bounds for {}x{} mask",
            self.width,
            self.height
        );
        let w = &mut self.words[y * self.words_per_row + (x >> 6)];
        let bit = 1u64 << (x & 63);
        if value {
            *w |= bit;
        } else {
            *w &= !bit;
        }
    }

    /// Number of foreground pixels (a word-parallel popcount).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the mask has no foreground pixels.
    pub fn is_blank(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Sets every pixel to `value`.
    pub fn fill(&mut self, value: bool) {
        if value {
            self.words.fill(!0);
            self.clear_tails();
        } else {
            self.words.fill(0);
        }
    }

    /// Reshapes to `width x height` and clears to background. Allocates
    /// only when the new size exceeds the buffer's current capacity.
    pub fn reset(&mut self, width: usize, height: usize) {
        self.width = width;
        self.height = height;
        self.words_per_row = width.div_ceil(64);
        let n = self.words_per_row * height;
        self.words.clear();
        self.words.resize(n, 0);
    }

    /// Re-establishes the tail invariant after raw word writes.
    pub fn clear_tails(&mut self) {
        if self.words_per_row == 0 {
            return;
        }
        let tail = tail_mask(self.width);
        if tail == !0 {
            return;
        }
        let wpr = self.words_per_row;
        for y in 0..self.height {
            self.words[y * wpr + wpr - 1] &= tail;
        }
    }

    /// Iterates the coordinates of set pixels in row-major order.
    pub fn set_bits(&self) -> SetBits<'_> {
        SetBits {
            mask: self,
            word_idx: 0,
            current: 0,
        }
    }

    fn check_dims(&self, other: &BitMask) -> bool {
        self.dims() == other.dims()
    }

    fn combine_into(&self, other: &BitMask, out: &mut BitMask, f: impl Fn(u64, u64) -> u64) {
        debug_assert!(self.check_dims(other));
        out.reset(self.width, self.height);
        for ((o, &a), &b) in out.words.iter_mut().zip(&self.words).zip(&other.words) {
            *o = f(a, b);
        }
        out.clear_tails();
    }

    /// `self | other` into `out` (dims must match).
    pub fn union_into(&self, other: &BitMask, out: &mut BitMask) {
        self.combine_into(other, out, |a, b| a | b);
    }

    /// `self & other` into `out` (dims must match).
    pub fn intersect_into(&self, other: &BitMask, out: &mut BitMask) {
        self.combine_into(other, out, |a, b| a & b);
    }

    /// `self & !other` into `out` (dims must match).
    pub fn difference_into(&self, other: &BitMask, out: &mut BitMask) {
        self.combine_into(other, out, |a, b| a & !b);
    }

    /// `!self` into `out`.
    pub fn invert_into(&self, out: &mut BitMask) {
        out.reset(self.width, self.height);
        for (o, &a) in out.words.iter_mut().zip(&self.words) {
            *o = !a;
        }
        out.clear_tails();
    }

    /// Runs the neighbour-counting network and maps every word through
    /// `f(self_word, count_planes)`; the result is tail-masked.
    fn neighbor_map_into(&self, eight: bool, out: &mut BitMask, f: impl Fn(u64, &[u64; 4]) -> u64) {
        out.reset(self.width, self.height);
        let wpr = self.words_per_row;
        if wpr == 0 || self.height == 0 {
            return;
        }
        let tail = tail_mask(self.width);
        for y in 0..self.height {
            let above = (y > 0).then(|| self.row(y - 1));
            let below = (y + 1 < self.height).then(|| self.row(y + 1));
            let cur = self.row(y);
            for j in 0..wpr {
                let mut c = [0u64; 4];
                add_plane(&mut c, shift_west(cur, j));
                add_plane(&mut c, shift_east(cur, j));
                if let Some(a) = above {
                    add_plane(&mut c, a[j]);
                    if eight {
                        add_plane(&mut c, shift_west(a, j));
                        add_plane(&mut c, shift_east(a, j));
                    }
                }
                if let Some(b) = below {
                    add_plane(&mut c, b[j]);
                    if eight {
                        add_plane(&mut c, shift_west(b, j));
                        add_plane(&mut c, shift_east(b, j));
                    }
                }
                let mut v = f(cur[j], &c);
                if j == wpr - 1 {
                    v &= tail;
                }
                self::row_store(out, y, j, v);
            }
        }
    }

    /// The paper's Step-3 vote: foreground survives only when strictly
    /// more than `threshold` of its 8 neighbours are foreground.
    pub fn neighbor_filter_into(&self, threshold: usize, out: &mut BitMask) {
        self.neighbor_map_into(true, out, |s, c| s & count_gt(c, threshold));
    }

    /// Morphological erosion (neighbourhood must be all-foreground).
    pub fn erode_into(&self, eight: bool, out: &mut BitMask) {
        let n = if eight { 8 } else { 4 };
        self.neighbor_map_into(eight, out, |s, c| s & count_eq(c, n));
    }

    /// Morphological dilation (any foreground neighbour promotes).
    pub fn dilate_into(&self, eight: bool, out: &mut BitMask) {
        self.neighbor_map_into(eight, out, |s, c| s | count_gt(c, 0));
    }

    /// Foreground pixels with at least one background 8-neighbour.
    pub fn boundary_into(&self, out: &mut BitMask) {
        self.neighbor_map_into(true, out, |s, c| s & !count_eq(c, 8));
    }

    /// One application of the paper's Step-4 rule: background pixels
    /// whose four edge-neighbours are all foreground become foreground.
    pub fn fill_paper_rule_into(&self, out: &mut BitMask) {
        out.reset(self.width, self.height);
        let wpr = self.words_per_row;
        if wpr == 0 || self.height == 0 {
            return;
        }
        let tail = tail_mask(self.width);
        for y in 0..self.height {
            let north = (y > 0).then(|| self.row(y - 1));
            let south = (y + 1 < self.height).then(|| self.row(y + 1));
            let cur = self.row(y);
            for j in 0..wpr {
                let n = north.map_or(0, |r| r[j]);
                let s = south.map_or(0, |r| r[j]);
                let w = shift_west(cur, j);
                let e = shift_east(cur, j);
                let mut v = cur[j] | (n & s & w & e);
                if j == wpr - 1 {
                    v &= tail;
                }
                self::row_store(out, y, j, v);
            }
        }
    }

    /// Iterates [`BitMask::fill_paper_rule_into`] to a fixpoint or
    /// `max_iters` applications, leaving the result in `out` and using
    /// `tmp` as the ping-pong buffer. Returns the number of iterations
    /// actually applied (matching `fill_holes_iterated`).
    pub fn fill_paper_rule_iterated_into(
        &self,
        max_iters: usize,
        out: &mut BitMask,
        tmp: &mut BitMask,
    ) -> usize {
        out.clone_from(self);
        for i in 0..max_iters {
            out.fill_paper_rule_into(tmp);
            if tmp == out {
                return i;
            }
            std::mem::swap(out, tmp);
        }
        max_iters
    }

    /// Fills every background region not 4-connected to the image border
    /// into `out`. `scratch` holds the background plane; its capacity is
    /// reused across calls.
    pub fn fill_enclosed_holes_into(&self, out: &mut BitMask, scratch: &mut Vec<u64>) {
        let (w, h) = self.dims();
        out.clone_from(self);
        if w == 0 || h == 0 {
            return;
        }
        let wpr = self.words_per_row;
        let tail = tail_mask(w);
        // Background plane (tail-masked complement of the mask).
        scratch.clear();
        scratch.extend(self.words.iter().map(|&x| !x));
        for y in 0..h {
            scratch[y * wpr + wpr - 1] &= tail;
        }
        // `out` doubles as the `outside` plane during propagation: seed
        // it with every border background pixel.
        out.words.fill(0);
        let first_bit = 1u64;
        let last_word = wpr - 1;
        let last_bit = 1u64 << ((w - 1) & 63);
        for y in 0..h {
            let bg = &scratch[y * wpr..(y + 1) * wpr];
            let row = &mut out.words[y * wpr..(y + 1) * wpr];
            if y == 0 || y == h - 1 {
                row.copy_from_slice(bg);
            } else {
                row[0] |= bg[0] & first_bit;
                row[last_word] |= bg[last_word] & last_bit;
            }
        }
        // Alternating top-down / bottom-up sweeps; each sweep ORs in the
        // vertically adjacent row then smears horizontally through the
        // background, until a full round changes nothing.
        loop {
            let mut changed = false;
            for y in 0..h {
                if y > 0 {
                    let (prev, cur) = out.words.split_at_mut(y * wpr);
                    let above = &prev[(y - 1) * wpr..y * wpr];
                    let row = &mut cur[..wpr];
                    let bg = &scratch[y * wpr..(y + 1) * wpr];
                    for j in 0..wpr {
                        let add = above[j] & bg[j] & !row[j];
                        if add != 0 {
                            row[j] |= add;
                            changed = true;
                        }
                    }
                }
                {
                    let row = &mut out.words[y * wpr..(y + 1) * wpr];
                    let bg = &scratch[y * wpr..(y + 1) * wpr];
                    changed |= smear_row(row, bg);
                }
            }
            for y in (0..h).rev() {
                if y + 1 < h {
                    let (cur, next) = out.words.split_at_mut((y + 1) * wpr);
                    let below = &next[..wpr];
                    let row = &mut cur[y * wpr..];
                    let bg = &scratch[y * wpr..(y + 1) * wpr];
                    for j in 0..wpr {
                        let add = below[j] & bg[j] & !row[j];
                        if add != 0 {
                            row[j] |= add;
                            changed = true;
                        }
                    }
                }
                {
                    let row = &mut out.words[y * wpr..(y + 1) * wpr];
                    let bg = &scratch[y * wpr..(y + 1) * wpr];
                    changed |= smear_row(row, bg);
                }
            }
            if !changed {
                break;
            }
        }
        // Holes are everything that is neither foreground nor outside:
        // result = self | (bg & !outside) = !outside (tail-masked).
        for o in out.words.iter_mut() {
            *o = !*o;
        }
        out.clear_tails();
    }
}

/// Stores a word into `out` row `y`, word `j` (free fn to sidestep the
/// borrow of `self` held by the kernel loops).
#[inline]
fn row_store(out: &mut BitMask, y: usize, j: usize, v: u64) {
    let wpr = out.words_per_row;
    out.words[y * wpr + j] = v;
}

/// Iterator over the set pixels of a [`BitMask`], row-major.
pub struct SetBits<'a> {
    mask: &'a BitMask,
    word_idx: usize,
    current: u64,
}

impl Iterator for SetBits<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        loop {
            if self.current != 0 {
                let b = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let wi = self.word_idx - 1;
                let wpr = self.mask.words_per_row;
                return Some(((wi % wpr) * 64 + b, wi / wpr));
            }
            if self.word_idx >= self.mask.words.len() {
                return None;
            }
            self.current = self.mask.words[self.word_idx];
            self.word_idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_invariant_on_fill_and_reset() {
        let mut m = BitMask::filled(70, 3, true);
        assert_eq!(m.count(), 210);
        assert!(!m.get(70, 0));
        m.reset(5, 2);
        assert_eq!(m.dims(), (5, 2));
        assert!(m.is_blank());
    }

    #[test]
    fn get_set_roundtrip_across_word_boundary() {
        let mut m = BitMask::new(130, 2);
        for &(x, y) in &[(0, 0), (63, 0), (64, 0), (127, 1), (128, 1), (129, 1)] {
            m.set(x, y, true);
            assert!(m.get(x, y), "({x},{y})");
        }
        assert_eq!(m.count(), 6);
        m.set(64, 0, false);
        assert!(!m.get(64, 0));
    }

    #[test]
    fn set_bits_iterates_row_major() {
        let mut m = BitMask::new(70, 2);
        m.set(69, 0, true);
        m.set(1, 1, true);
        m.set(65, 1, true);
        let px: Vec<_> = m.set_bits().collect();
        assert_eq!(px, vec![(69, 0), (1, 1), (65, 1)]);
    }

    #[test]
    fn count_planes_compare() {
        for k in 0..=8usize {
            let mut c = [0u64; 4];
            for (i, plane) in c.iter_mut().enumerate() {
                if (k >> i) & 1 == 1 {
                    *plane = !0;
                }
            }
            for t in 0..=9usize {
                let expect_gt = if k > t { !0u64 } else { 0 };
                assert_eq!(count_gt(&c, t), expect_gt, "count {k} > {t}");
                let expect_eq = if k == t { !0u64 } else { 0 };
                assert_eq!(count_eq(&c, t), expect_eq, "count {k} == {t}");
            }
        }
    }

    #[test]
    fn zero_sized_masks_are_inert() {
        let m = BitMask::new(0, 5);
        assert_eq!(m.count(), 0);
        let mut out = BitMask::new(0, 0);
        m.neighbor_filter_into(0, &mut out);
        assert_eq!(out.dims(), (0, 5));
        let mut scratch = Vec::new();
        m.fill_enclosed_holes_into(&mut out, &mut scratch);
        assert_eq!(out.dims(), (0, 5));
    }
}
