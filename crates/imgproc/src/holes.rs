//! Hole filling (Step 4 of the paper's pipeline).
//!
//! The paper's rule is local: *"If a pixel in the object is 0 and the four
//! neighbors of the pixel are all 1, the value of the pixel is set to 1."*
//! That is [`fill_holes_paper_rule`], optionally iterated to a fixpoint.
//! The rule only closes pinholes; for the larger holes the synthetic noise
//! model can punch, [`fill_enclosed_holes`] performs the classic
//! flood-fill-from-border fill, which the pipeline exposes as an optional
//! stronger mode.

use crate::bitmask::BitMask;
use crate::mask::Mask;

/// One application of the paper's Step-4 rule: background pixels whose
/// four edge-neighbours are all foreground become foreground.
///
/// Word-parallel: the filled plane is `self | (N & S & W & E)` over
/// shifted words ([`BitMask::fill_paper_rule_into`]).
pub fn fill_holes_paper_rule(mask: &Mask) -> Mask {
    let mut out = BitMask::new(0, 0);
    mask.bits().fill_paper_rule_into(&mut out);
    Mask::from_bits(out)
}

/// Iterates [`fill_holes_paper_rule`] until it stops changing the mask or
/// `max_iters` applications have run, returning the mask and the number of
/// iterations actually applied.
pub fn fill_holes_iterated(mask: &Mask, max_iters: usize) -> (Mask, usize) {
    let mut out = BitMask::new(0, 0);
    let mut tmp = BitMask::new(0, 0);
    let iters = mask
        .bits()
        .fill_paper_rule_iterated_into(max_iters, &mut out, &mut tmp);
    (Mask::from_bits(out), iters)
}

/// Fills every background region *not* connected to the image border —
/// i.e. all fully enclosed holes, of any size.
///
/// Background connectivity uses the 4-neighbourhood (the standard dual of
/// 8-connected foreground). The border flood fill runs word-parallel as
/// alternating vertical sweeps with a Kogge–Stone horizontal smear
/// ([`BitMask::fill_enclosed_holes_into`]).
pub fn fill_enclosed_holes(mask: &Mask) -> Mask {
    let mut out = BitMask::new(0, 0);
    let mut scratch = Vec::new();
    mask.bits().fill_enclosed_holes_into(&mut out, &mut scratch);
    Mask::from_bits(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_ascii(art: &str) -> Mask {
        let rows: Vec<&str> = art.trim().lines().map(str::trim).collect();
        let h = rows.len();
        let w = rows[0].len();
        Mask::from_fn(w, h, |x, y| rows[y].as_bytes()[x] == b'#')
    }

    #[test]
    fn paper_rule_fills_pinhole() {
        let m = from_ascii(
            ".....
             ..#..
             .#.#.
             ..#..
             .....",
        );
        let filled = fill_holes_paper_rule(&m);
        assert!(filled.get(2, 2));
        assert_eq!(filled.count(), m.count() + 1);
    }

    #[test]
    fn paper_rule_needs_all_four_neighbors() {
        // Hole with only 3 of 4 neighbours set: must not fill.
        let m = from_ascii(
            "..#..
             .#.#.
             .....",
        );
        let filled = fill_holes_paper_rule(&m);
        assert!(!filled.get(2, 1));
        assert_eq!(filled, m);
    }

    #[test]
    fn paper_rule_never_removes_pixels() {
        let m = from_ascii(
            "###
             #.#
             ###",
        );
        let filled = fill_holes_paper_rule(&m);
        assert!(m.difference(&filled).unwrap().is_blank());
        assert!(filled.get(1, 1));
    }

    #[test]
    fn iterated_rule_reaches_fixpoint() {
        let m = from_ascii(
            ".....
             ..#..
             .#.#.
             ..#..
             .....",
        );
        let (filled, iters) = fill_holes_iterated(&m, 10);
        // One pass fills the hole, the second detects no change.
        assert!(iters <= 2);
        assert!(filled.get(2, 2));
        let (again, zero_iters) = fill_holes_iterated(&filled, 10);
        assert_eq!(again, filled);
        assert_eq!(zero_iters, 0);
    }

    #[test]
    fn iterated_rule_stuck_on_plus_shaped_hole() {
        // A plus-shaped cavity: no hole pixel ever has all four
        // neighbours set, so even iterating the paper rule cannot fill
        // it. This is the documented limitation that motivates
        // fill_enclosed_holes.
        let m = from_ascii(
            "#####
             ##.##
             #...#
             ##.##
             #####",
        );
        let (filled, iters) = fill_holes_iterated(&m, 10);
        assert_eq!(filled, m);
        assert_eq!(iters, 0);
        assert_eq!(fill_enclosed_holes(&m).count(), 25);
    }

    #[test]
    fn iterated_rule_fills_separated_pinholes_in_one_pass() {
        // Two pinholes that are not 4-adjacent both fill on the first
        // application.
        let m = from_ascii(
            "######
             #.####
             ####.#
             ######",
        );
        let (filled, iters) = fill_holes_iterated(&m, 10);
        assert_eq!(filled.count(), 24);
        assert_eq!(iters, 1);
    }

    #[test]
    fn paper_rule_cannot_fill_wide_hole() {
        // 2x2 hole: no pixel has all four neighbours set, so the local
        // rule is stuck — this motivates fill_enclosed_holes.
        let m = from_ascii(
            "####
             #..#
             #..#
             ####",
        );
        let (filled, iters) = fill_holes_iterated(&m, 10);
        assert_eq!(filled, m);
        assert_eq!(iters, 0);
        let flooded = fill_enclosed_holes(&m);
        assert_eq!(flooded.count(), 16);
    }

    #[test]
    fn flood_fill_ignores_open_bays() {
        // A bay open to the border must NOT be filled.
        let m = from_ascii(
            "####
             #..#
             #..#
             #..#",
        );
        let flooded = fill_enclosed_holes(&m);
        assert_eq!(flooded, m);
    }

    #[test]
    fn flood_fill_multiple_holes() {
        let m = from_ascii(
            "#######
             #.##..#
             #.##..#
             #######",
        );
        let flooded = fill_enclosed_holes(&m);
        assert_eq!(flooded.count(), 28);
    }

    #[test]
    fn flood_fill_blank_and_full() {
        assert!(fill_enclosed_holes(&Mask::new(4, 4)).is_blank());
        let full = Mask::filled(4, 4, true);
        assert_eq!(fill_enclosed_holes(&full), full);
    }

    #[test]
    fn flood_fill_diagonal_leak_stays_hole_free() {
        // Background connected to the border only diagonally: with
        // 4-connected background this interior stays a hole and fills.
        let m = from_ascii(
            "###.
             #.##
             ####",
        );
        let flooded = fill_enclosed_holes(&m);
        assert!(flooded.get(1, 1));
    }

    #[test]
    fn fill_enclosed_preserves_foreground() {
        let m = from_ascii(
            "#####
             #...#
             #####",
        );
        let flooded = fill_enclosed_holes(&m);
        assert!(m.difference(&flooded).unwrap().is_blank());
    }
}
