//! Image-processing substrate for the `slj` standing-long-jump motion
//! analysis system.
//!
//! The ICDCSW'06 paper this workspace reproduces operates on short RGB video
//! sequences: it estimates a background, subtracts it, repairs the binary
//! foreground, suppresses shadows in HSV space, and finally fits a stick
//! model to the silhouette. None of the mature Rust vision crates were
//! available to the reproduction, so this crate provides the small set of
//! primitives those steps need, built from scratch:
//!
//! * pixel types and colour conversion ([`pixel`]),
//! * a generic owned image buffer ([`image`]),
//! * binary masks with set algebra and accuracy metrics ([`mask`]),
//! * the bit-packed word-parallel mask substrate behind them ([`bitmask`]),
//! * box/median smoothing filters and integral images ([`filter`]),
//! * morphology and neighbour counting ([`morph`]),
//! * connected-component labelling ([`components`]),
//! * hole filling, including the paper's exact 4-neighbour rule ([`holes`]),
//! * area/centroid/bounding-box moments ([`moments`]),
//! * rasterisation of lines, capsules, discs and rectangles ([`draw`]),
//! * planar geometry: points, vectors, point–segment distance ([`geometry`]),
//! * a two-pass chamfer distance transform ([`distance`]),
//! * binary PGM/PPM I/O for figure dumps ([`io`]),
//! * deterministic noise injection for the synthetic camera ([`noise`]).
//!
//! # Example
//!
//! ```
//! use slj_imgproc::image::ImageBuffer;
//! use slj_imgproc::pixel::Rgb;
//! use slj_imgproc::mask::Mask;
//!
//! // A dark frame with a bright 4x4 square, thresholded into a mask.
//! let frame = ImageBuffer::from_fn(16, 16, |x, y| {
//!     if (4..8).contains(&x) && (4..8).contains(&y) {
//!         Rgb::new(250, 250, 250)
//!     } else {
//!         Rgb::new(10, 10, 10)
//!     }
//! });
//! let mask = Mask::from_fn(frame.width(), frame.height(), |x, y| {
//!     frame.get(x, y).luma() > 128.0
//! });
//! assert_eq!(mask.count(), 16);
//! ```

pub mod bitmask;
pub mod components;
pub mod distance;
pub mod draw;
pub mod error;
pub mod filter;
pub mod geometry;
pub mod holes;
pub mod image;
pub mod io;
pub mod lanes;
pub mod mask;
pub mod moments;
pub mod morph;
pub mod noise;
pub mod pixel;

pub use bitmask::BitMask;
pub use error::ImgError;
pub use geometry::{Point2, Vec2};
pub use image::ImageBuffer;
pub use mask::Mask;
pub use pixel::{Gray, Hsv, Rgb};
