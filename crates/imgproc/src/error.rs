//! Error type shared by the fallible operations of this crate.

use std::fmt;

/// Error returned by fallible `slj-imgproc` operations.
///
/// The crate prefers static enforcement (dimensions are checked at
/// construction), so errors are limited to dimension mismatches between two
/// images/masks and to I/O and decode failures in [`crate::io`].
#[derive(Debug)]
#[non_exhaustive]
pub enum ImgError {
    /// Two buffers that must share dimensions do not.
    DimensionMismatch {
        /// Dimensions of the left operand, `(width, height)`.
        left: (usize, usize),
        /// Dimensions of the right operand, `(width, height)`.
        right: (usize, usize),
    },
    /// A buffer with zero width or height was requested where a non-empty
    /// one is required.
    EmptyImage,
    /// A coordinate was outside the image bounds.
    OutOfBounds {
        /// The offending coordinate, `(x, y)`.
        coord: (usize, usize),
        /// The image dimensions, `(width, height)`.
        dims: (usize, usize),
    },
    /// An underlying I/O failure while reading or writing an image file.
    Io(std::io::Error),
    /// A PGM/PPM stream did not parse.
    Decode(String),
}

impl fmt::Display for ImgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImgError::DimensionMismatch { left, right } => write!(
                f,
                "dimension mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            ImgError::EmptyImage => write!(f, "image must have non-zero width and height"),
            ImgError::OutOfBounds { coord, dims } => write!(
                f,
                "coordinate ({}, {}) outside {}x{} image",
                coord.0, coord.1, dims.0, dims.1
            ),
            ImgError::Io(e) => write!(f, "i/o error: {e}"),
            ImgError::Decode(msg) => write!(f, "decode error: {msg}"),
        }
    }
}

impl std::error::Error for ImgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImgError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImgError {
    fn from(e: std::io::Error) -> Self {
        ImgError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = ImgError::DimensionMismatch {
            left: (3, 4),
            right: (5, 6),
        };
        assert_eq!(e.to_string(), "dimension mismatch: 3x4 vs 5x6");
    }

    #[test]
    fn display_out_of_bounds() {
        let e = ImgError::OutOfBounds {
            coord: (10, 2),
            dims: (8, 8),
        };
        assert!(e.to_string().contains("(10, 2)"));
        assert!(e.to_string().contains("8x8"));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e = ImgError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ImgError>();
    }

    #[test]
    fn empty_image_display_nonempty() {
        assert!(!ImgError::EmptyImage.to_string().is_empty());
    }
}
