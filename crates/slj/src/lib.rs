//! # slj — Motion Analysis for the Standing Long Jump
//!
//! A production-quality Rust reproduction of Hsu, Hsieh, Chen, Chen &
//! Yang, *"Motion Analysis for the Standing Long Jump"* (ICDCSW 2006).
//!
//! The paper builds a system that watches a side-view video of a child's
//! standing long jump and (1) segments the jumper from the background,
//! (2) fits an articulated 8-stick model to every frame with a
//! temporally-seeded genetic algorithm, and (3) scores the jump against
//! physical-education standards. This crate is the façade over the whole
//! workspace:
//!
//! | Crate | Role |
//! |---|---|
//! | `slj-imgproc` | image-processing substrate |
//! | `slj-motion`  | stick model, kinematics, jump synthesis |
//! | `slj-video`   | synthetic side-view camera with ground truth |
//! | `slj-segment` | the five-step segmentation pipeline (Section 2) |
//! | `slj-ga`      | the GA pose estimator and temporal tracker (Section 3) |
//! | `slj-score`   | rules R1–R7 and coaching advice (Section 4) |
//!
//! [`JumpAnalyzer`] wires them into the end-to-end flow:
//! video → background → silhouettes → tracked poses → score card.
//!
//! # Quick start
//!
//! ```
//! use slj::prelude::*;
//!
//! // Film a jump (synthetic camera; the paper used a real one).
//! let scene = SceneConfig { camera: Camera::compact(), ..SceneConfig::clean() };
//! let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 42);
//!
//! // Analyse it: the first-frame pose plays the role of the paper's
//! // hand-drawn stick figure.
//! let analyzer = JumpAnalyzer::new(AnalyzerConfig::fast());
//! let report = analyzer
//!     .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
//!     .unwrap();
//! println!("{}", report.score);
//! assert!(report.score.score() >= 6);
//! ```

pub mod analyzer;
pub mod error;
pub mod measure;
pub mod obs;
pub mod report;
pub mod stream;
pub mod viz;

pub use analyzer::{
    AnalysisReport, AnalysisSummary, AnalyzerConfig, ConfidenceModel, FrameHealth, JumpAnalyzer,
    RobustnessPolicy, DEFAULT_WARMUP_FRAMES,
};
pub use error::AnalyzeError;
pub use measure::{measure_jump, JumpDirection, JumpMeasurement, MeasureError};
pub use report::{health_timeline, markdown_report, suspect_frames};
pub use slj_obs::{
    ClipObs, FrameObs, MetricsRegistry, Profiler, RuleObs, SegmentObs, TrackObs, TRACE_SCHEMA,
};
pub use slj_runtime::Parallelism;
pub use stream::{
    AnalyzerScratch, FrameUpdate, JumpAnalysis, StreamingAnalyzer, StreamingCheckpoint,
};

/// Convenience re-exports of the workspace's primary types.
pub mod prelude {
    pub use crate::analyzer::{
        AnalysisReport, AnalyzerConfig, ConfidenceModel, FrameHealth, JumpAnalyzer,
        RobustnessPolicy, DEFAULT_WARMUP_FRAMES,
    };
    pub use crate::error::AnalyzeError;
    pub use crate::measure::{measure_jump, JumpMeasurement};
    pub use crate::stream::{FrameUpdate, JumpAnalysis, StreamingAnalyzer, StreamingCheckpoint};
    pub use slj_ga::tracker::{TemporalTracker, TrackerConfig};
    pub use slj_motion::{
        synthesize_jump, Angle, BodyDims, JumpConfig, JumpFlaw, Pose, PoseSeq, StickKind,
    };
    pub use slj_obs::{ClipObs, MetricsRegistry, TRACE_SCHEMA};
    pub use slj_runtime::Parallelism;
    pub use slj_score::{score_jump, RuleId, ScoreCard, Standard};
    pub use slj_segment::pipeline::{PipelineConfig, SegmentPipeline};
    pub use slj_video::{
        Camera, FaultConfig, FaultInjector, Frame, SceneConfig, SyntheticJump, Video,
    };
}
