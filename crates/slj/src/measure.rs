//! Jump measurement from tracked poses.
//!
//! The paper scores *technique*; the test itself is scored by *distance*
//! (takeoff line to the nearest landing contact). With calibrated
//! tracked poses both are available from the same data, so this module
//! completes the measurement side: flight-phase detection, official
//! jump distance (takeoff toe → landing heel), and flight apex height.

use serde::{Deserialize, Serialize};
use slj_motion::{BodyDims, PoseSeq, StickKind};

/// Which way the jumper travelled, detected from the centre-of-mass
/// displacement between takeoff and landing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JumpDirection {
    /// Travel toward +x (the synthesizer's canonical orientation).
    LeftToRight,
    /// Travel toward −x (e.g. a mirrored or reversed camera).
    RightToLeft,
}

impl JumpDirection {
    /// The sign that maps a +x-convention displacement onto the travel
    /// axis: `+1.0` for left-to-right, `−1.0` for right-to-left.
    pub fn sign(self) -> f64 {
        match self {
            JumpDirection::LeftToRight => 1.0,
            JumpDirection::RightToLeft => -1.0,
        }
    }
}

/// What was measured from one jump.
///
/// Sign convention: `distance_m` is measured *along the direction of
/// travel* and is therefore positive for a valid forward jump whichever
/// way the jumper faces; the raw x-axis displacement is
/// `distance_m * direction.sign()`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JumpMeasurement {
    /// Last frame with ground contact before flight. When
    /// `takeoff_observed` is false the clip starts airborne and this is
    /// clamped to the first frame instead of a true contact.
    pub takeoff_frame: usize,
    /// First frame with ground contact after flight. When
    /// `landing_observed` is false the clip ends airborne and this is
    /// clamped to the last frame instead of a true contact.
    pub landing_frame: usize,
    /// Official distance: from the toe at takeoff to the heel (ankle)
    /// at landing, metres, along the direction of travel (positive for
    /// a normal jump in either screen direction). A lower bound when
    /// either contact was not observed.
    pub distance_m: f64,
    /// Detected direction of travel.
    pub direction: JumpDirection,
    /// Number of airborne frames.
    pub flight_frames: usize,
    /// Maximum clearance of the lowest body point during flight,
    /// metres.
    pub peak_clearance_m: f64,
    /// True when a real pre-flight contact frame exists in the clip;
    /// false when the recording starts with the jumper already airborne
    /// (partial measurement).
    pub takeoff_observed: bool,
    /// True when a real post-flight contact frame exists in the clip;
    /// false when the recording ends mid-flight (partial measurement).
    pub landing_observed: bool,
}

impl JumpMeasurement {
    /// True when both contact frames were actually observed in the
    /// clip; false marks a typed partial measurement whose
    /// `distance_m` is only a lower bound.
    pub fn is_complete(&self) -> bool {
        self.takeoff_observed && self.landing_observed
    }
}

/// Why a measurement could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MeasureError {
    /// The sequence is empty or has a single frame.
    TooShort,
    /// No airborne phase was found (the jumper never left the ground).
    NoFlightPhase,
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureError::TooShort => write!(f, "sequence too short to measure"),
            MeasureError::NoFlightPhase => write!(f, "no airborne phase found"),
        }
    }
}

impl std::error::Error for MeasureError {}

/// Ground clearance of a pose: the lowest joint's height above `y = 0`.
fn clearance(pose: &slj_motion::Pose, dims: &BodyDims) -> f64 {
    pose.segments(dims).lowest_y()
}

/// Measures a jump from a (calibrated) pose sequence.
///
/// Candidate airborne phases are runs of frames whose ground clearance
/// exceeds an adaptive threshold — the clip's minimum clearance plus a
/// quarter of its clearance range (floored at twice the foot
/// thickness). The adaptive baseline makes the detector robust to
/// tracked poses whose feet hover a few centimetres off the ground from
/// estimation noise. Among candidate runs the flight is the one with
/// the greatest clearance integrated above the threshold, not the
/// longest: flawed jumps can produce a shallow pre-takeoff bounce of
/// the same frame count as the true flight, and integrating height
/// keeps the detector on the real jump. Takeoff and landing frames
/// bracket the chosen run.
///
/// # Errors
///
/// * [`MeasureError::TooShort`] for sequences with fewer than 3 frames.
/// * [`MeasureError::NoFlightPhase`] when the jumper never clears the
///   ground (e.g. a walking clip).
pub fn measure_jump(seq: &PoseSeq, dims: &BodyDims) -> Result<JumpMeasurement, MeasureError> {
    if seq.len() < 3 {
        return Err(MeasureError::TooShort);
    }
    let clearances: Vec<f64> = seq.poses().iter().map(|p| clearance(p, dims)).collect();
    let min_c = clearances.iter().copied().fold(f64::INFINITY, f64::min);
    let max_c = clearances.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max_c - min_c;
    if span < 2.0 * dims.thickness(StickKind::Foot) {
        // The body never rose meaningfully: no jump.
        return Err(MeasureError::NoFlightPhase);
    }
    let threshold = min_c + (0.25 * span).max(2.0 * dims.thickness(StickKind::Foot));
    let airborne: Vec<bool> = clearances.iter().map(|&c| c > threshold).collect();

    // The airborne run with the most clearance integrated above the
    // threshold. A length criterion is fooled by shallow pre-takeoff
    // bounces of the same duration as the flight; height is not.
    let lift = |s: usize, e: usize| -> f64 { clearances[s..e].iter().map(|c| c - threshold).sum() };
    let mut best: Option<(usize, usize)> = None; // [start, end)
    let mut run_start = None;
    for (k, &a) in airborne.iter().enumerate() {
        match (a, run_start) {
            (true, None) => run_start = Some(k),
            (false, Some(s)) => {
                if best.is_none_or(|(bs, be)| lift(s, k) > lift(bs, be)) {
                    best = Some((s, k));
                }
                run_start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = run_start {
        let k = airborne.len();
        if best.is_none_or(|(bs, be)| lift(s, k) > lift(bs, be)) {
            best = Some((s, k));
        }
    }
    let (flight_start, flight_end) = best.ok_or(MeasureError::NoFlightPhase)?;

    // Hysteresis: the high threshold found the flight; the contact
    // frames are where clearance returns to near its baseline. Walk
    // outward from the flight to the nearest low-clearance frames. When
    // no such frame exists on a side the clip starts (or ends) airborne:
    // falling back *into* the flight would measure a mid-air pose as a
    // contact, so instead clamp to the clip edge and mark that side as
    // unobserved — a typed partial measurement.
    let low = min_c + 2.0 * dims.thickness(StickKind::Foot);
    let (takeoff_frame, takeoff_observed) =
        match (0..flight_start).rev().find(|&k| clearances[k] <= low) {
            Some(k) => (k, true),
            None => (0, false),
        };
    let (landing_frame, landing_observed) =
        match (flight_end..seq.len()).find(|&k| clearances[k] <= low) {
            Some(k) => (k, true),
            None => (seq.len() - 1, false),
        };

    // Official measurement: toe position at takeoff, heel (ankle) at
    // landing — the rearmost contact decides. The raw heel−toe gap is a
    // +x-convention displacement; normalising by the detected travel
    // direction keeps the reported distance positive for a valid jump
    // whichever way the jumper crosses the frame.
    let takeoff_pose = &seq.poses()[takeoff_frame];
    let landing_pose = &seq.poses()[landing_frame];
    let travel = landing_pose.center.x - takeoff_pose.center.x;
    let direction = if travel < 0.0 {
        JumpDirection::RightToLeft
    } else {
        JumpDirection::LeftToRight
    };
    let toe = takeoff_pose.segments(dims).segment(StickKind::Foot).b.x;
    let heel = landing_pose.segments(dims).segment(StickKind::Foot).a.x;
    let distance_m = (heel - toe) * direction.sign();

    let peak_clearance_m = clearances[flight_start..flight_end]
        .iter()
        .copied()
        .fold(0.0, f64::max);

    Ok(JumpMeasurement {
        takeoff_frame,
        landing_frame,
        distance_m,
        direction,
        flight_frames: flight_end - flight_start,
        peak_clearance_m,
        takeoff_observed,
        landing_observed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_motion::{synthesize_jump, JumpConfig, Pose};

    #[test]
    fn measures_the_default_jump() {
        let cfg = JumpConfig::default();
        let seq = synthesize_jump(&cfg);
        let m = measure_jump(&seq, &cfg.dims).unwrap();
        // Takeoff happens around mid-clip (the stage boundary), landing
        // near the end.
        assert!(
            (6..=11).contains(&m.takeoff_frame),
            "takeoff at {}",
            m.takeoff_frame
        );
        assert!(m.landing_frame > m.takeoff_frame + 2);
        assert!(m.flight_frames >= 3, "{} airborne frames", m.flight_frames);
        // Toe-to-heel distance is shorter than the centre's travel but
        // clearly a jump.
        assert!(
            (0.3..=1.4).contains(&m.distance_m),
            "distance {}",
            m.distance_m
        );
        assert!(m.peak_clearance_m > 0.05, "peak {}", m.peak_clearance_m);
        assert_eq!(m.direction, JumpDirection::LeftToRight);
        assert!(m.is_complete());
    }

    /// Mirrors a pose about the vertical axis: `x → −x` and every limb
    /// angle `ρ → 360 − ρ` (the paper's ρ is measured from vertical, so
    /// reflection negates it).
    fn mirror(seq: &PoseSeq) -> PoseSeq {
        let poses = seq
            .poses()
            .iter()
            .map(|p| {
                let mut angles = p.angles;
                for a in &mut angles {
                    *a = slj_motion::Angle::from_degrees(360.0 - a.degrees());
                }
                Pose::new(slj_imgproc::Point2::new(-p.center.x, p.center.y), angles)
            })
            .collect();
        PoseSeq::new(poses, seq.fps())
    }

    #[test]
    fn mirrored_clip_measures_the_same_positive_distance() {
        // Regression: `distance_m = heel − toe` assumed +x travel, so a
        // right-to-left jump measured negative. The distance must be
        // reported along the direction of travel.
        let cfg = JumpConfig::default();
        let seq = synthesize_jump(&cfg);
        let m = measure_jump(&seq, &cfg.dims).unwrap();
        let mm = measure_jump(&mirror(&seq), &cfg.dims).unwrap();
        assert_eq!(mm.direction, JumpDirection::RightToLeft);
        assert!(mm.distance_m > 0.0, "mirrored distance {}", mm.distance_m);
        assert!(
            (mm.distance_m - m.distance_m).abs() < 1e-9,
            "mirror changed the measurement: {} vs {}",
            mm.distance_m,
            m.distance_m
        );
        assert_eq!(mm.takeoff_frame, m.takeoff_frame);
        assert_eq!(mm.landing_frame, m.landing_frame);
        assert_eq!(mm.flight_frames, m.flight_frames);
    }

    /// The frame with the greatest ground clearance (the flight apex).
    fn apex_frame(seq: &PoseSeq, dims: &BodyDims) -> usize {
        (0..seq.len())
            .max_by(|&a, &b| {
                clearance(&seq.poses()[a], dims).total_cmp(&clearance(&seq.poses()[b], dims))
            })
            .unwrap()
    }

    #[test]
    fn clip_starting_airborne_is_a_typed_partial_measurement() {
        // Regression: with no pre-flight contact the hysteresis walk
        // fell back to frame 0 *inside* the flight and presented it as
        // a takeoff. Starting the clip at the flight apex must instead
        // clamp to the edge and mark the takeoff unobserved.
        let cfg = JumpConfig::default();
        let seq = synthesize_jump(&cfg);
        let apex = apex_frame(&seq, &cfg.dims);
        let cut = PoseSeq::new(seq.poses()[apex..].to_vec(), seq.fps());
        let m = measure_jump(&cut, &cfg.dims).unwrap();
        assert!(!m.takeoff_observed, "takeoff cannot be observed: {m:?}");
        assert_eq!(m.takeoff_frame, 0);
        assert!(m.landing_observed, "landing is in the clip: {m:?}");
        assert!(!m.is_complete());
        assert!(m.distance_m > 0.0, "partial distance {}", m.distance_m);
    }

    #[test]
    fn clip_ending_airborne_is_a_typed_partial_measurement() {
        // The symmetric edge: the recording stops mid-flight, so the
        // landing contact never appears. The old walk picked the last
        // frame and presented a mid-air pose as the landing.
        let cfg = JumpConfig::default();
        let seq = synthesize_jump(&cfg);
        let apex = apex_frame(&seq, &cfg.dims);
        let cut = PoseSeq::new(seq.poses()[..=apex].to_vec(), seq.fps());
        let m = measure_jump(&cut, &cfg.dims).unwrap();
        assert!(m.takeoff_observed, "takeoff is in the clip: {m:?}");
        assert!(!m.landing_observed, "landing cannot be observed: {m:?}");
        assert_eq!(m.landing_frame, cut.len() - 1);
        assert!(!m.is_complete());
    }

    #[test]
    fn longer_configured_jump_measures_longer() {
        let short = JumpConfig {
            jump_distance: 0.8,
            ..JumpConfig::default()
        };
        let long = JumpConfig {
            jump_distance: 1.4,
            ..JumpConfig::default()
        };
        let ms = measure_jump(&synthesize_jump(&short), &short.dims).unwrap();
        let ml = measure_jump(&synthesize_jump(&long), &long.dims).unwrap();
        assert!(
            ml.distance_m > ms.distance_m + 0.3,
            "long {} vs short {}",
            ml.distance_m,
            ms.distance_m
        );
    }

    #[test]
    fn shallow_prejump_bounce_does_not_win_flight_detection() {
        // Regression: this flawed short clip produces a 2-frame bounce
        // before takeoff with the same frame count as the 2-frame true
        // flight. Length-based run selection measured the bounce and
        // reported a negative jump distance; height-integrated selection
        // must find the real flight.
        use slj_motion::JumpFlaw;
        let cfg = JumpConfig {
            frames: 10,
            jump_distance: 1.26,
            dims: BodyDims::for_height(1.19),
            flaws: vec![
                JumpFlaw::NoNeckBend,
                JumpFlaw::StraightArms,
                JumpFlaw::StiffLanding,
                JumpFlaw::UprightTrunk,
                JumpFlaw::ArmsStayBack,
            ],
            ..JumpConfig::default()
        };
        let seq = synthesize_jump(&cfg);
        let m = measure_jump(&seq, &cfg.dims).unwrap();
        assert!(m.distance_m > 0.0, "measured {} m", m.distance_m);
        assert!(m.takeoff_frame >= 4, "takeoff at {}", m.takeoff_frame);
    }

    #[test]
    fn standing_still_has_no_flight() {
        let dims = BodyDims::default();
        let seq = PoseSeq::new(vec![Pose::standing(&dims); 10], 10.0);
        assert_eq!(measure_jump(&seq, &dims), Err(MeasureError::NoFlightPhase));
    }

    #[test]
    fn too_short_rejected() {
        let dims = BodyDims::default();
        let seq = PoseSeq::new(vec![Pose::standing(&dims); 2], 10.0);
        assert_eq!(measure_jump(&seq, &dims), Err(MeasureError::TooShort));
    }

    #[test]
    fn errors_display() {
        assert!(!MeasureError::TooShort.to_string().is_empty());
        assert!(!MeasureError::NoFlightPhase.to_string().is_empty());
    }
}
