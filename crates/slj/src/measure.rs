//! Jump measurement from tracked poses.
//!
//! The paper scores *technique*; the test itself is scored by *distance*
//! (takeoff line to the nearest landing contact). With calibrated
//! tracked poses both are available from the same data, so this module
//! completes the measurement side: flight-phase detection, official
//! jump distance (takeoff toe → landing heel), and flight apex height.

use serde::{Deserialize, Serialize};
use slj_motion::{BodyDims, PoseSeq, StickKind};

/// What was measured from one jump.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JumpMeasurement {
    /// Last frame with ground contact before flight.
    pub takeoff_frame: usize,
    /// First frame with ground contact after flight.
    pub landing_frame: usize,
    /// Official distance: from the toe at takeoff to the heel (ankle)
    /// at landing, metres.
    pub distance_m: f64,
    /// Number of airborne frames.
    pub flight_frames: usize,
    /// Maximum clearance of the lowest body point during flight,
    /// metres.
    pub peak_clearance_m: f64,
}

/// Why a measurement could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MeasureError {
    /// The sequence is empty or has a single frame.
    TooShort,
    /// No airborne phase was found (the jumper never left the ground).
    NoFlightPhase,
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureError::TooShort => write!(f, "sequence too short to measure"),
            MeasureError::NoFlightPhase => write!(f, "no airborne phase found"),
        }
    }
}

impl std::error::Error for MeasureError {}

/// Ground clearance of a pose: the lowest joint's height above `y = 0`.
fn clearance(pose: &slj_motion::Pose, dims: &BodyDims) -> f64 {
    pose.segments(dims).lowest_y()
}

/// Measures a jump from a (calibrated) pose sequence.
///
/// Candidate airborne phases are runs of frames whose ground clearance
/// exceeds an adaptive threshold — the clip's minimum clearance plus a
/// quarter of its clearance range (floored at twice the foot
/// thickness). The adaptive baseline makes the detector robust to
/// tracked poses whose feet hover a few centimetres off the ground from
/// estimation noise. Among candidate runs the flight is the one with
/// the greatest clearance integrated above the threshold, not the
/// longest: flawed jumps can produce a shallow pre-takeoff bounce of
/// the same frame count as the true flight, and integrating height
/// keeps the detector on the real jump. Takeoff and landing frames
/// bracket the chosen run.
///
/// # Errors
///
/// * [`MeasureError::TooShort`] for sequences with fewer than 3 frames.
/// * [`MeasureError::NoFlightPhase`] when the jumper never clears the
///   ground (e.g. a walking clip).
pub fn measure_jump(seq: &PoseSeq, dims: &BodyDims) -> Result<JumpMeasurement, MeasureError> {
    if seq.len() < 3 {
        return Err(MeasureError::TooShort);
    }
    let clearances: Vec<f64> = seq.poses().iter().map(|p| clearance(p, dims)).collect();
    let min_c = clearances.iter().copied().fold(f64::INFINITY, f64::min);
    let max_c = clearances.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max_c - min_c;
    if span < 2.0 * dims.thickness(StickKind::Foot) {
        // The body never rose meaningfully: no jump.
        return Err(MeasureError::NoFlightPhase);
    }
    let threshold = min_c + (0.25 * span).max(2.0 * dims.thickness(StickKind::Foot));
    let airborne: Vec<bool> = clearances.iter().map(|&c| c > threshold).collect();

    // The airborne run with the most clearance integrated above the
    // threshold. A length criterion is fooled by shallow pre-takeoff
    // bounces of the same duration as the flight; height is not.
    let lift = |s: usize, e: usize| -> f64 { clearances[s..e].iter().map(|c| c - threshold).sum() };
    let mut best: Option<(usize, usize)> = None; // [start, end)
    let mut run_start = None;
    for (k, &a) in airborne.iter().enumerate() {
        match (a, run_start) {
            (true, None) => run_start = Some(k),
            (false, Some(s)) => {
                if best.is_none_or(|(bs, be)| lift(s, k) > lift(bs, be)) {
                    best = Some((s, k));
                }
                run_start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = run_start {
        let k = airborne.len();
        if best.is_none_or(|(bs, be)| lift(s, k) > lift(bs, be)) {
            best = Some((s, k));
        }
    }
    let (flight_start, flight_end) = best.ok_or(MeasureError::NoFlightPhase)?;

    // Hysteresis: the high threshold found the flight; the contact
    // frames are where clearance returns to near its baseline. Walk
    // outward from the flight to the nearest low-clearance frames.
    let low = min_c + 2.0 * dims.thickness(StickKind::Foot);
    let takeoff_frame = (0..flight_start)
        .rev()
        .find(|&k| clearances[k] <= low)
        .unwrap_or(flight_start.saturating_sub(1));
    let landing_frame = (flight_end..seq.len())
        .find(|&k| clearances[k] <= low)
        .unwrap_or(seq.len() - 1);

    // Official measurement: toe position at takeoff, heel (ankle) at
    // landing — the rearmost contact decides.
    let takeoff_pose = &seq.poses()[takeoff_frame];
    let landing_pose = &seq.poses()[landing_frame];
    let toe = takeoff_pose.segments(dims).segment(StickKind::Foot).b.x;
    let heel = landing_pose.segments(dims).segment(StickKind::Foot).a.x;
    let distance_m = heel - toe;

    let peak_clearance_m = clearances[flight_start..flight_end]
        .iter()
        .copied()
        .fold(0.0, f64::max);

    Ok(JumpMeasurement {
        takeoff_frame,
        landing_frame,
        distance_m,
        flight_frames: flight_end - flight_start,
        peak_clearance_m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_motion::{synthesize_jump, JumpConfig, Pose};

    #[test]
    fn measures_the_default_jump() {
        let cfg = JumpConfig::default();
        let seq = synthesize_jump(&cfg);
        let m = measure_jump(&seq, &cfg.dims).unwrap();
        // Takeoff happens around mid-clip (the stage boundary), landing
        // near the end.
        assert!(
            (6..=11).contains(&m.takeoff_frame),
            "takeoff at {}",
            m.takeoff_frame
        );
        assert!(m.landing_frame > m.takeoff_frame + 2);
        assert!(m.flight_frames >= 3, "{} airborne frames", m.flight_frames);
        // Toe-to-heel distance is shorter than the centre's travel but
        // clearly a jump.
        assert!(
            (0.3..=1.4).contains(&m.distance_m),
            "distance {}",
            m.distance_m
        );
        assert!(m.peak_clearance_m > 0.05, "peak {}", m.peak_clearance_m);
    }

    #[test]
    fn longer_configured_jump_measures_longer() {
        let short = JumpConfig {
            jump_distance: 0.8,
            ..JumpConfig::default()
        };
        let long = JumpConfig {
            jump_distance: 1.4,
            ..JumpConfig::default()
        };
        let ms = measure_jump(&synthesize_jump(&short), &short.dims).unwrap();
        let ml = measure_jump(&synthesize_jump(&long), &long.dims).unwrap();
        assert!(
            ml.distance_m > ms.distance_m + 0.3,
            "long {} vs short {}",
            ml.distance_m,
            ms.distance_m
        );
    }

    #[test]
    fn shallow_prejump_bounce_does_not_win_flight_detection() {
        // Regression: this flawed short clip produces a 2-frame bounce
        // before takeoff with the same frame count as the 2-frame true
        // flight. Length-based run selection measured the bounce and
        // reported a negative jump distance; height-integrated selection
        // must find the real flight.
        use slj_motion::JumpFlaw;
        let cfg = JumpConfig {
            frames: 10,
            jump_distance: 1.26,
            dims: BodyDims::for_height(1.19),
            flaws: vec![
                JumpFlaw::NoNeckBend,
                JumpFlaw::StraightArms,
                JumpFlaw::StiffLanding,
                JumpFlaw::UprightTrunk,
                JumpFlaw::ArmsStayBack,
            ],
            ..JumpConfig::default()
        };
        let seq = synthesize_jump(&cfg);
        let m = measure_jump(&seq, &cfg.dims).unwrap();
        assert!(m.distance_m > 0.0, "measured {} m", m.distance_m);
        assert!(m.takeoff_frame >= 4, "takeoff at {}", m.takeoff_frame);
    }

    #[test]
    fn standing_still_has_no_flight() {
        let dims = BodyDims::default();
        let seq = PoseSeq::new(vec![Pose::standing(&dims); 10], 10.0);
        assert_eq!(measure_jump(&seq, &dims), Err(MeasureError::NoFlightPhase));
    }

    #[test]
    fn too_short_rejected() {
        let dims = BodyDims::default();
        let seq = PoseSeq::new(vec![Pose::standing(&dims); 2], 10.0);
        assert_eq!(measure_jump(&seq, &dims), Err(MeasureError::TooShort));
    }

    #[test]
    fn errors_display() {
        assert!(!MeasureError::TooShort.to_string().is_empty());
        assert!(!MeasureError::NoFlightPhase.to_string().is_empty());
    }
}
