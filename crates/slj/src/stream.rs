//! Frame-at-a-time analysis with O(1)-in-frames memory.
//!
//! [`StreamingAnalyzer`] is [`JumpAnalyzer`](crate::JumpAnalyzer)
//! restructured around arrival order: frames go in one at a time via
//! [`push_frame`](StreamingAnalyzer::push_frame), per-frame
//! [`FrameHealth`] comes back incrementally, and
//! [`finish`](StreamingAnalyzer::finish) closes the clip with the same
//! degraded-frame policy and R1–R7 scoring as the batch path.
//!
//! The streaming state is O(1) in clip length: one reusable
//! [`FrameStages`], one scratch arena inside the frame segmenter, the
//! previous input frame (ghost suppression's reference), the tracker's
//! previous pose, and small per-frame scalars (areas, poses, health) —
//! never the frames or masks themselves. Before the background warmup
//! window fills, pushed frames are buffered (bounded by the warmup
//! length, not the clip length).
//!
//! **Byte-identity with batch:** a streamable configuration
//! ([`AnalyzerConfig::into_streaming`]) confines the whole-clip
//! dependencies — background estimation and quality references — to
//! causal windows that [`JumpAnalyzer::analyze`](crate::JumpAnalyzer)
//! honours identically, the segmentation engine is the same
//! [`FrameSegmenter`] the batch pipeline runs, and tracking/scoring go
//! through the very functions the batch path calls
//! ([`TrackerStream`](slj_ga::tracker::TrackerStream) is the loop body
//! of `track`). The `streaming_determinism` integration test asserts
//! equality field-by-field on clean and fault-injected clips at every
//! `Parallelism` setting.

use crate::analyzer::{enforce_robustness, score_with_policy, AnalyzerConfig, FrameHealth};
use crate::error::AnalyzeError;
use slj_ga::tracker::{TemporalTracker, TrackResult, TrackerConfig, TrackerStream};
use slj_motion::{Pose, PoseSeq};
use slj_score::ScoreCard;
use slj_segment::background::{BackgroundEstimator, EstimatedBackground};
use slj_segment::pipeline::{FrameStages, PipelineConfig};
use slj_segment::quality::{causal_reference_area, FrameQuality, ReferenceMode};
use slj_segment::segmenter::{FrameSegmenter, PreparedBackground};
use slj_video::{Camera, Frame, Video};
use std::sync::Arc;

/// What one [`StreamingAnalyzer::push_frame`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameUpdate {
    /// Index of the frame just pushed.
    pub frame: usize,
    /// Whether that frame is still buffered awaiting the background
    /// warmup window (its health will arrive with a later update).
    pub buffered: bool,
    /// Health of frames completed by this push, in frame order. Empty
    /// while warming up; the whole backlog when the warmup window
    /// fills; exactly one entry per push thereafter.
    pub completed: Vec<FrameHealth>,
    /// Observability spans of the same completed frames (index-aligned
    /// with `completed`): segmentation stage populations and GA
    /// tracking accounting, identical to what the batch report's
    /// [`ClipObs`](slj_obs::ClipObs) holds for those frames.
    pub observed: Vec<slj_obs::FrameObs>,
}

/// A finished streaming analysis: everything
/// [`AnalysisReport`](crate::AnalysisReport) holds except the per-frame
/// pixel data (stage masks), which a streaming run never retains.
#[derive(Debug, Clone, PartialEq)]
pub struct JumpAnalysis {
    /// The estimated (smoothed) pose sequence.
    pub poses: PoseSeq,
    /// The rule verdicts and score.
    pub score: ScoreCard,
    /// Per-frame GA tracking diagnostics.
    pub tracking: Vec<TrackResult>,
    /// Per-frame health timeline.
    pub health: Vec<FrameHealth>,
    /// Per-frame silhouette quality.
    pub quality: Vec<FrameQuality>,
    /// The observability spans — bit-identical to the batch report's
    /// [`obs`](crate::AnalysisReport::obs) over the same clip and
    /// configuration.
    pub obs: slj_obs::ClipObs,
}

impl JumpAnalysis {
    /// A compact serialisable summary (no pixel data) — the same
    /// [`AnalysisSummary`](crate::AnalysisSummary) a batch
    /// [`AnalysisReport`](crate::AnalysisReport) over the same clip and
    /// configuration produces.
    pub fn summary(&self) -> crate::AnalysisSummary {
        crate::analyzer::summarize(&self.poses, &self.score, &self.tracking, &self.health)
    }
}

impl crate::AnalysisReport {
    /// The streaming-comparable subset of this report: everything but
    /// the retained pixel data. Equal (`==`) to the [`JumpAnalysis`]
    /// of a streaming run over the same clip and configuration.
    pub fn to_analysis(&self) -> JumpAnalysis {
        JumpAnalysis {
            poses: self.poses.clone(),
            score: self.score.clone(),
            tracking: self.tracking.clone(),
            health: self.health.clone(),
            quality: self.segmentation.quality.clone(),
            obs: self.obs.clone(),
        }
    }
}

/// Everything live segmentation + tracking needs once the background
/// warmup window has filled.
#[derive(Debug, Clone)]
struct LiveState {
    background: EstimatedBackground,
    segmenter: FrameSegmenter,
    /// The one reusable stage buffer — masks never accumulate.
    stages: FrameStages,
    tracker: TrackerStream,
    /// Previous *input* frame: ghost suppression's motion reference.
    previous_input: Option<Frame>,
    /// Per-frame final-mask areas, for the causal quality reference.
    areas: Vec<usize>,
    poses: Vec<Pose>,
    tracking: Vec<TrackResult>,
    quality: Vec<FrameQuality>,
    health: Vec<FrameHealth>,
    /// Per-frame observability spans, collected as each frame
    /// completes (the stage masks are reused, so `SegmentObs` must be
    /// taken before the next frame overwrites them).
    obs_frames: Vec<slj_obs::FrameObs>,
}

/// The frame-at-a-time analyzer. See the module docs for the contract;
/// see [`AnalyzerConfig::into_streaming`] for what makes a
/// configuration streamable.
#[derive(Debug, Clone)]
pub struct StreamingAnalyzer {
    segmentation: PipelineConfig,
    config: AnalyzerConfig,
    camera: Camera,
    first_pose: Pose,
    fps: f64,
    warmup: usize,
    /// Presmoothed frames awaiting the warmup window (≤ `warmup`).
    pending: Vec<Frame>,
    live: Option<LiveState>,
    frames_pushed: usize,
}

impl StreamingAnalyzer {
    /// Creates a streaming analyzer for one clip.
    ///
    /// `first_pose` and `camera` play the same roles as in
    /// [`JumpAnalyzer::analyze`](crate::JumpAnalyzer::analyze); `fps`
    /// is the clip frame rate (batch reads it off the `Video`).
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError::NotStreamable`] unless the configuration
    /// is causal: a background warmup window of at least 2 frames and
    /// [`ReferenceMode::Causal`] quality references (use
    /// [`AnalyzerConfig::into_streaming`]).
    pub fn new(
        config: AnalyzerConfig,
        camera: &Camera,
        first_pose: Pose,
        fps: f64,
    ) -> Result<Self, AnalyzeError> {
        let warmup = match config.segmentation.background.warmup {
            Some(w) if w >= 2 => w,
            Some(w) => {
                return Err(AnalyzeError::NotStreamable {
                    reason: format!(
                        "background warmup window is {w}, but estimation needs at \
                         least 2 frames"
                    ),
                })
            }
            None => {
                return Err(AnalyzeError::NotStreamable {
                    reason: "background estimation reads the whole clip; set \
                             `segmentation.background.warmup` (see \
                             AnalyzerConfig::into_streaming)"
                        .to_owned(),
                })
            }
        };
        if config.segmentation.quality.reference != ReferenceMode::Causal {
            return Err(AnalyzeError::NotStreamable {
                reason: "quality references use the whole-clip median; set \
                         `segmentation.quality.reference = ReferenceMode::Causal` \
                         (see AnalyzerConfig::into_streaming)"
                    .to_owned(),
            });
        }
        // As in batch: the analyzer-level parallelism knob is
        // authoritative for every phase. Frames arrive one at a time,
        // so here it parallelises the GA's per-genome fitness
        // evaluation (bit-identical at any thread count, tested).
        let segmentation = PipelineConfig {
            parallelism: config.parallelism,
            ..config.segmentation.clone()
        };
        Ok(StreamingAnalyzer {
            segmentation,
            camera: *camera,
            first_pose,
            fps,
            warmup,
            pending: Vec::new(),
            live: None,
            frames_pushed: 0,
            config,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Frames pushed so far.
    pub fn frames_pushed(&self) -> usize {
        self.frames_pushed
    }

    /// The background estimate, once the warmup window has filled.
    pub fn background(&self) -> Option<&EstimatedBackground> {
        self.live.as_ref().map(|l| &l.background)
    }

    /// Replaces the robustness policy applied at
    /// [`finish`](StreamingAnalyzer::finish). Robustness is only read
    /// when the clip closes, so a supervisor may relax the policy
    /// mid-stream (e.g. escalating `Strict` to `BestEffort` once a
    /// degraded-frame budget is spent) without perturbing any per-frame
    /// output.
    pub fn set_robustness(&mut self, policy: crate::RobustnessPolicy) {
        self.config.robustness = policy;
    }

    /// Captures the complete analysis state as a resumable
    /// [`StreamingCheckpoint`].
    ///
    /// The checkpoint is a deep copy: segmenter scratch arenas are
    /// reset rather than copied (they are per-frame scratch and carry
    /// no cross-frame state), so resuming and replaying the frames
    /// pushed after the checkpoint yields output byte-identical to the
    /// uninterrupted run — the supervisor's crash-recovery contract.
    pub fn checkpoint(&self) -> StreamingCheckpoint {
        StreamingCheckpoint {
            state: self.clone(),
        }
    }

    /// Feeds the next frame, in arrival order.
    ///
    /// Until the background warmup window fills, frames are buffered
    /// and the update carries no health entries. The push that fills
    /// the window estimates the background, drains the backlog and
    /// returns every buffered frame's health at once; every later push
    /// segments, tracks and assesses its frame immediately and returns
    /// exactly one entry.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError::FrameShapeMismatch`] — with the analyzer
    /// state untouched, so the caller may drop the frame and continue —
    /// when the frame's dimensions differ from the clip's established
    /// shape, and [`AnalyzeError::Segment`] / [`AnalyzeError::Tracking`]
    /// exactly where the batch path would.
    pub fn push_frame(&mut self, frame: &Frame) -> Result<FrameUpdate, AnalyzeError> {
        let index = self.frames_pushed;
        let expected = self
            .live
            .as_ref()
            .map(|l| l.background.image.dims())
            .or_else(|| self.pending.first().map(Frame::dims));
        if let Some(expected) = expected {
            if frame.dims() != expected {
                return Err(AnalyzeError::FrameShapeMismatch {
                    frame: index,
                    expected,
                    got: frame.dims(),
                });
            }
        }
        let observed_from = self.live.as_ref().map_or(0, |l| l.obs_frames.len());
        let smoothed = self.segmentation.presmooth.apply(frame);
        let completed = if self.live.is_some() {
            vec![self.process(smoothed)?]
        } else {
            self.pending.push(smoothed);
            if self.pending.len() >= self.warmup {
                self.go_live()?
            } else {
                Vec::new()
            }
        };
        self.frames_pushed = index + 1;
        let observed = self
            .live
            .as_ref()
            .map(|l| l.obs_frames[observed_from..].to_vec())
            .unwrap_or_default();
        Ok(FrameUpdate {
            frame: index,
            buffered: completed.is_empty(),
            completed,
            observed,
        })
    }

    /// Closes the clip: flushes any still-buffered frames (a clip
    /// shorter than the warmup window goes live here, estimating the
    /// background from what arrived — exactly what batch does when the
    /// clip is shorter than the window), applies the robustness policy
    /// and scores.
    ///
    /// # Errors
    ///
    /// The same errors as [`JumpAnalyzer::analyze`](crate::JumpAnalyzer::analyze):
    /// too few frames, a degraded clip under the policy's budget, or a
    /// sequence too short to score.
    pub fn finish(mut self) -> Result<JumpAnalysis, AnalyzeError> {
        if self.live.is_none() {
            // Degrading to a whole-backlog background estimate still
            // needs the estimator's two-frame minimum; fail the 0/1
            // frame case cleanly instead of surfacing a confusing
            // segmentation error from deep inside `go_live`.
            if self.frames_pushed < 2 {
                return Err(AnalyzeError::InsufficientWarmup {
                    pushed: self.frames_pushed,
                    warmup: self.warmup,
                });
            }
            self.go_live()?;
        }
        let live = self.live.expect("go_live sets live state");
        let mut poses = PoseSeq::new(live.poses, self.fps);
        if self.config.smoothing_window > 1 {
            poses = poses.median_smoothed(self.config.smoothing_window);
        }
        enforce_robustness(&live.health, self.config.robustness)?;
        let score = score_with_policy(&poses, &live.health, self.config.robustness)?;
        let excluded = crate::obs::excluded_frames(&live.health, self.config.robustness);
        let obs = slj_obs::ClipObs {
            frames: live.obs_frames,
            rules: crate::obs::rule_obs(&poses, &excluded, &score),
        };
        Ok(JumpAnalysis {
            poses,
            score,
            tracking: live.tracking,
            health: live.health,
            quality: live.quality,
            obs,
        })
    }

    /// Estimates the background from the buffered warmup frames, builds
    /// the live state and drains the backlog through it.
    fn go_live(&mut self) -> Result<Vec<FrameHealth>, AnalyzeError> {
        let backlog = std::mem::take(&mut self.pending);
        // `estimate` windows itself to `min(warmup, len)` frames; the
        // buffer never exceeds the warmup, so this reads all of it —
        // identical to batch on both full-length and short clips.
        let video = Video::new(backlog, self.fps);
        let background = BackgroundEstimator::new(self.segmentation.background).estimate(&video)?;
        let prepared = Arc::new(PreparedBackground::new(&background.image));
        let segmenter = FrameSegmenter::new(&self.segmentation, prepared);
        let tracker_config = TrackerConfig {
            parallelism: self.config.parallelism,
            ..self.config.tracker
        };
        let tracker = TemporalTracker::new(tracker_config).stream(
            self.first_pose,
            &self.config.dims,
            &self.camera,
        );
        self.live = Some(LiveState {
            background,
            segmenter,
            stages: FrameStages::empty(),
            tracker,
            previous_input: None,
            areas: Vec::new(),
            poses: Vec::new(),
            tracking: Vec::new(),
            quality: Vec::new(),
            health: Vec::new(),
            obs_frames: Vec::new(),
        });
        video
            .iter()
            .map(|frame| self.process(frame.clone()))
            .collect()
    }

    /// Segments, quality-assesses, tracks and health-scores one frame,
    /// taking ownership of it as the next ghost-suppression reference.
    fn process(&mut self, frame: Frame) -> Result<FrameHealth, AnalyzeError> {
        let live = self.live.as_mut().expect("process requires live state");
        let k = live.health.len();
        live.segmenter
            .segment_into(&frame, live.previous_input.as_ref(), &mut live.stages)?;
        let final_mask = &live.stages.final_mask;
        live.areas.push(final_mask.count());
        let reference = causal_reference_area(&live.areas, k);
        let quality = FrameQuality::measure(final_mask, reference, &self.segmentation.quality);
        let track = live.tracker.push(final_mask)?;
        let health = FrameHealth::with_model(k, quality.clone(), &track, &self.config.confidence);
        // The stage buffer is reused by the next frame: take its span
        // data now, while the masks are still this frame's.
        live.obs_frames.push(slj_obs::FrameObs {
            frame: k as u64,
            segment: live.stages.observe(),
            track: crate::obs::track_obs(&track),
        });
        live.poses.push(track.pose);
        live.tracking.push(track);
        live.quality.push(quality);
        live.health.push(health.clone());
        live.previous_input = Some(frame);
        Ok(health)
    }
}

/// A frozen copy of a [`StreamingAnalyzer`] mid-clip, taken with
/// [`checkpoint`](StreamingAnalyzer::checkpoint).
///
/// Resuming yields an analyzer byte-identical to the original at the
/// moment of capture: replaying the same subsequent frames produces the
/// same [`FrameUpdate`]s and the same final [`JumpAnalysis`] as the
/// uninterrupted run. `slj-serve` uses this as the first rung of its
/// restart ladder — restore the last checkpoint, replay the retained
/// frames minus the poisoned one, and the session continues as if the
/// panic never happened.
#[derive(Debug, Clone)]
pub struct StreamingCheckpoint {
    state: StreamingAnalyzer,
}

impl StreamingCheckpoint {
    /// Frames the captured analyzer had ingested — the index the next
    /// pushed frame will get after [`resume`](StreamingCheckpoint::resume).
    pub fn frames_pushed(&self) -> usize {
        self.state.frames_pushed
    }

    /// Reconstructs a live analyzer from this checkpoint. The
    /// checkpoint is reusable: cloning before resuming lets a
    /// supervisor restore the same point more than once.
    pub fn resume(self) -> StreamingAnalyzer {
        self.state
    }
}
