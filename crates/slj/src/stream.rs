//! Frame-at-a-time analysis with O(1)-in-frames memory.
//!
//! [`StreamingAnalyzer`] is [`JumpAnalyzer`](crate::JumpAnalyzer)
//! restructured around arrival order: frames go in one at a time via
//! [`push_frame`](StreamingAnalyzer::push_frame), per-frame
//! [`FrameHealth`] comes back incrementally, and
//! [`finish`](StreamingAnalyzer::finish) closes the clip with the same
//! degraded-frame policy and R1–R7 scoring as the batch path.
//!
//! The streaming state is O(1) in clip length: one reusable
//! [`FrameStages`], one scratch arena inside the frame segmenter, the
//! previous input frame (ghost suppression's reference), the tracker's
//! previous pose, and small per-frame scalars (areas, poses, health) —
//! never the frames or masks themselves. Before the background warmup
//! window fills, pushed frames are buffered (bounded by the warmup
//! length, not the clip length).
//!
//! **Byte-identity with batch:** a streamable configuration
//! ([`AnalyzerConfig::into_streaming`]) confines the whole-clip
//! dependencies — background estimation and quality references — to
//! causal windows that [`JumpAnalyzer::analyze`](crate::JumpAnalyzer)
//! honours identically, the segmentation engine is the same
//! [`FrameSegmenter`] the batch pipeline runs, and tracking/scoring go
//! through the very functions the batch path calls
//! ([`TrackerStream`](slj_ga::tracker::TrackerStream) is the loop body
//! of `track`). The `streaming_determinism` integration test asserts
//! equality field-by-field on clean and fault-injected clips at every
//! `Parallelism` setting.

use crate::analyzer::{enforce_robustness, score_with_policy, AnalyzerConfig, FrameHealth};
use crate::error::AnalyzeError;
use slj_ga::tracker::{TemporalTracker, TrackResult, TrackScratch, TrackerConfig, TrackerStream};
use slj_imgproc::components::Labeling;
use slj_imgproc::image::ImageBuffer;
use slj_motion::{Pose, PoseSeq};
use slj_score::ScoreCard;
use slj_segment::background::{BackgroundEstimator, BackgroundScratch, EstimatedBackground};
use slj_segment::pipeline::{FrameStages, PipelineConfig};
use slj_segment::quality::{causal_reference_area, FrameQuality, ReferenceMode};
use slj_segment::segmenter::{FrameArena, FrameSegmenter, PreparedBackground};
use slj_video::{Camera, Frame, Video};
use std::sync::Arc;

/// What one [`StreamingAnalyzer::push_frame`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameUpdate {
    /// Index of the frame just pushed.
    pub frame: usize,
    /// Whether that frame is still buffered awaiting the background
    /// warmup window (its health will arrive with a later update).
    pub buffered: bool,
    /// Health of frames completed by this push, in frame order. Empty
    /// while warming up; the whole backlog when the warmup window
    /// fills; exactly one entry per push thereafter.
    pub completed: Vec<FrameHealth>,
    /// Observability spans of the same completed frames (index-aligned
    /// with `completed`): segmentation stage populations and GA
    /// tracking accounting, identical to what the batch report's
    /// [`ClipObs`](slj_obs::ClipObs) holds for those frames.
    pub observed: Vec<slj_obs::FrameObs>,
}

/// A finished streaming analysis: everything
/// [`AnalysisReport`](crate::AnalysisReport) holds except the per-frame
/// pixel data (stage masks), which a streaming run never retains.
#[derive(Debug, Clone, PartialEq)]
pub struct JumpAnalysis {
    /// The estimated (smoothed) pose sequence.
    pub poses: PoseSeq,
    /// The rule verdicts and score.
    pub score: ScoreCard,
    /// Per-frame GA tracking diagnostics.
    pub tracking: Vec<TrackResult>,
    /// Per-frame health timeline.
    pub health: Vec<FrameHealth>,
    /// Per-frame silhouette quality.
    pub quality: Vec<FrameQuality>,
    /// The observability spans — bit-identical to the batch report's
    /// [`obs`](crate::AnalysisReport::obs) over the same clip and
    /// configuration.
    pub obs: slj_obs::ClipObs,
    /// Jump-performance measurement from the final pose sequence —
    /// identical to the batch report's
    /// [`measurement`](crate::AnalysisReport::measurement); `None` when
    /// the clip holds no measurable jump.
    pub measurement: Option<crate::JumpMeasurement>,
}

impl JumpAnalysis {
    /// A compact serialisable summary (no pixel data) — the same
    /// [`AnalysisSummary`](crate::AnalysisSummary) a batch
    /// [`AnalysisReport`](crate::AnalysisReport) over the same clip and
    /// configuration produces.
    pub fn summary(&self) -> crate::AnalysisSummary {
        crate::analyzer::summarize(
            &self.poses,
            &self.score,
            &self.tracking,
            &self.health,
            self.measurement,
        )
    }
}

impl crate::AnalysisReport {
    /// The streaming-comparable subset of this report: everything but
    /// the retained pixel data. Equal (`==`) to the [`JumpAnalysis`]
    /// of a streaming run over the same clip and configuration.
    pub fn to_analysis(&self) -> JumpAnalysis {
        JumpAnalysis {
            poses: self.poses.clone(),
            score: self.score.clone(),
            tracking: self.tracking.clone(),
            health: self.health.clone(),
            quality: self.segmentation.quality.clone(),
            obs: self.obs.clone(),
            measurement: self.measurement,
        }
    }
}

/// Cap on the spare input-frame pool a scratch carries: enough to cover
/// any realistic warmup backlog plus the in-flight frame, small enough
/// that a retired session never pins more than a few dozen frames.
const MAX_SPARE_FRAMES: usize = 32;

/// The recyclable heavy state of a retired [`StreamingAnalyzer`]:
/// every buffer whose size scales with the frame area or the GA
/// configuration, reclaimed by [`finish_reclaimed`] and re-installed
/// into a successor with [`with_scratch`]. Purely an allocation cache —
/// analyses are byte-identical with or without it — which is what lets
/// `slj-serve` recycle session slots with zero steady-state large
/// allocations.
///
/// Cloning yields an *empty* scratch: checkpoints deep-copy analysis
/// state, never allocation caches.
///
/// [`finish_reclaimed`]: StreamingAnalyzer::finish_reclaimed
/// [`with_scratch`]: StreamingAnalyzer::with_scratch
#[derive(Debug)]
pub struct AnalyzerScratch {
    /// Background estimate planes (image + support), re-estimated in
    /// place per clip.
    background: Option<EstimatedBackground>,
    /// Median-stack scratch for background estimation.
    estimator: BackgroundScratch,
    /// Channel-split background planes, refreshed in place on reuse.
    prepared: Option<PreparedBackground>,
    /// The frame segmenter's per-frame scratch arena.
    arena: FrameArena,
    /// The reusable segmentation stage buffer.
    stages: FrameStages,
    /// The tracker's recyclable state (Eq. 3 evaluator + rung memos).
    track: TrackScratch,
    /// The quality assessor's connected-component label map.
    labeling: Labeling,
    /// Spare input-frame buffers, capped at [`MAX_SPARE_FRAMES`].
    frames: Vec<Frame>,
}

impl Default for AnalyzerScratch {
    fn default() -> Self {
        AnalyzerScratch {
            background: None,
            estimator: BackgroundScratch::default(),
            prepared: None,
            arena: FrameArena::default(),
            stages: FrameStages::empty(),
            track: TrackScratch::default(),
            labeling: Labeling::empty(),
            frames: Vec::new(),
        }
    }
}

impl Clone for AnalyzerScratch {
    fn clone(&self) -> Self {
        AnalyzerScratch::default()
    }
}

impl AnalyzerScratch {
    /// A spare frame buffer (empty when the pool is dry).
    pub fn take_frame(&mut self) -> Frame {
        self.frames.pop().unwrap_or_else(|| Frame::new(0, 0))
    }

    /// Returns a frame buffer to the pool (e.g. a queued frame a
    /// supervisor is discarding), dropping it when the pool is full.
    pub fn recycle_frame(&mut self, frame: Frame) {
        if self.frames.len() < MAX_SPARE_FRAMES {
            self.frames.push(frame);
        }
    }

    /// Reabsorbs a retired live state's heavy buffers. The prepared
    /// background is recovered only when nothing else (a checkpoint)
    /// still shares it.
    fn absorb_live(
        &mut self,
        background: EstimatedBackground,
        segmenter: FrameSegmenter,
        stages: FrameStages,
        tracker: TrackerStream,
        labeling: Labeling,
        previous_input: Option<Frame>,
    ) {
        self.background = Some(background);
        let (prepared, arena) = segmenter.into_parts();
        self.arena = arena;
        if let Ok(p) = Arc::try_unwrap(prepared) {
            self.prepared = Some(p);
        }
        self.stages = stages;
        self.track = tracker.reclaim_scratch();
        self.labeling = labeling;
        if let Some(frame) = previous_input {
            self.recycle_frame(frame);
        }
    }
}

/// Everything live segmentation + tracking needs once the background
/// warmup window has filled.
#[derive(Debug, Clone)]
struct LiveState {
    background: EstimatedBackground,
    segmenter: FrameSegmenter,
    /// The one reusable stage buffer — masks never accumulate.
    stages: FrameStages,
    tracker: TrackerStream,
    /// The quality assessor's reusable component label map.
    labeling: Labeling,
    /// Previous *input* frame: ghost suppression's motion reference.
    previous_input: Option<Frame>,
    /// Per-frame final-mask areas, for the causal quality reference.
    areas: Vec<usize>,
    poses: Vec<Pose>,
    tracking: Vec<TrackResult>,
    quality: Vec<FrameQuality>,
    health: Vec<FrameHealth>,
    /// Per-frame observability spans, collected as each frame
    /// completes (the stage masks are reused, so `SegmentObs` must be
    /// taken before the next frame overwrites them).
    obs_frames: Vec<slj_obs::FrameObs>,
}

/// The frame-at-a-time analyzer. See the module docs for the contract;
/// see [`AnalyzerConfig::into_streaming`] for what makes a
/// configuration streamable.
#[derive(Debug, Clone)]
pub struct StreamingAnalyzer {
    segmentation: PipelineConfig,
    config: AnalyzerConfig,
    camera: Camera,
    first_pose: Pose,
    fps: f64,
    warmup: usize,
    /// Presmoothed frames awaiting the warmup window (≤ `warmup`).
    pending: Vec<Frame>,
    live: Option<LiveState>,
    frames_pushed: usize,
    /// Recyclable heavy state (see [`AnalyzerScratch`]); cloned (i.e.
    /// checkpointed) analyzers start with an empty one.
    scratch: AnalyzerScratch,
}

impl StreamingAnalyzer {
    /// Creates a streaming analyzer for one clip.
    ///
    /// `first_pose` and `camera` play the same roles as in
    /// [`JumpAnalyzer::analyze`](crate::JumpAnalyzer::analyze); `fps`
    /// is the clip frame rate (batch reads it off the `Video`).
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError::NotStreamable`] unless the configuration
    /// is causal: a background warmup window of at least 2 frames and
    /// [`ReferenceMode::Causal`] quality references (use
    /// [`AnalyzerConfig::into_streaming`]).
    pub fn new(
        config: AnalyzerConfig,
        camera: &Camera,
        first_pose: Pose,
        fps: f64,
    ) -> Result<Self, AnalyzeError> {
        let warmup = match config.segmentation.background.warmup {
            Some(w) if w >= 2 => w,
            Some(w) => {
                return Err(AnalyzeError::NotStreamable {
                    reason: format!(
                        "background warmup window is {w}, but estimation needs at \
                         least 2 frames"
                    ),
                })
            }
            None => {
                return Err(AnalyzeError::NotStreamable {
                    reason: "background estimation reads the whole clip; set \
                             `segmentation.background.warmup` (see \
                             AnalyzerConfig::into_streaming)"
                        .to_owned(),
                })
            }
        };
        if config.segmentation.quality.reference != ReferenceMode::Causal {
            return Err(AnalyzeError::NotStreamable {
                reason: "quality references use the whole-clip median; set \
                         `segmentation.quality.reference = ReferenceMode::Causal` \
                         (see AnalyzerConfig::into_streaming)"
                    .to_owned(),
            });
        }
        // As in batch: the analyzer-level parallelism knob is
        // authoritative for every phase. Frames arrive one at a time,
        // so here it parallelises the GA's per-genome fitness
        // evaluation (bit-identical at any thread count, tested).
        let segmentation = PipelineConfig {
            parallelism: config.parallelism,
            ..config.segmentation.clone()
        };
        Ok(StreamingAnalyzer {
            segmentation,
            camera: *camera,
            first_pose,
            fps,
            warmup,
            pending: Vec::new(),
            live: None,
            frames_pushed: 0,
            config,
            scratch: AnalyzerScratch::default(),
        })
    }

    /// Installs heavy state reclaimed from a finished analyzer
    /// ([`finish_reclaimed`](StreamingAnalyzer::finish_reclaimed)).
    /// With warmed buffers the whole steady-state analysis loop —
    /// presmoothing, background estimation, segmentation, Eq. 3
    /// tracking — performs no large allocations; results are
    /// byte-identical either way.
    pub fn with_scratch(mut self, scratch: AnalyzerScratch) -> Self {
        self.scratch = scratch;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Frames pushed so far.
    pub fn frames_pushed(&self) -> usize {
        self.frames_pushed
    }

    /// The background estimate, once the warmup window has filled.
    pub fn background(&self) -> Option<&EstimatedBackground> {
        self.live.as_ref().map(|l| &l.background)
    }

    /// Replaces the robustness policy applied at
    /// [`finish`](StreamingAnalyzer::finish). Robustness is only read
    /// when the clip closes, so a supervisor may relax the policy
    /// mid-stream (e.g. escalating `Strict` to `BestEffort` once a
    /// degraded-frame budget is spent) without perturbing any per-frame
    /// output.
    pub fn set_robustness(&mut self, policy: crate::RobustnessPolicy) {
        self.config.robustness = policy;
    }

    /// Captures the complete analysis state as a resumable
    /// [`StreamingCheckpoint`].
    ///
    /// The checkpoint is a deep copy: segmenter scratch arenas are
    /// reset rather than copied (they are per-frame scratch and carry
    /// no cross-frame state), so resuming and replaying the frames
    /// pushed after the checkpoint yields output byte-identical to the
    /// uninterrupted run — the supervisor's crash-recovery contract.
    pub fn checkpoint(&self) -> StreamingCheckpoint {
        StreamingCheckpoint {
            state: self.clone(),
        }
    }

    /// Feeds the next frame, in arrival order.
    ///
    /// Until the background warmup window fills, frames are buffered
    /// and the update carries no health entries. The push that fills
    /// the window estimates the background, drains the backlog and
    /// returns every buffered frame's health at once; every later push
    /// segments, tracks and assesses its frame immediately and returns
    /// exactly one entry.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError::FrameShapeMismatch`] — with the analyzer
    /// state untouched, so the caller may drop the frame and continue —
    /// when the frame's dimensions differ from the clip's established
    /// shape, and [`AnalyzeError::Segment`] / [`AnalyzeError::Tracking`]
    /// exactly where the batch path would.
    pub fn push_frame(&mut self, frame: &Frame) -> Result<FrameUpdate, AnalyzeError> {
        let index = self.frames_pushed;
        let expected = self
            .live
            .as_ref()
            .map(|l| l.background.image.dims())
            .or_else(|| self.pending.first().map(Frame::dims));
        if let Some(expected) = expected {
            if frame.dims() != expected {
                return Err(AnalyzeError::FrameShapeMismatch {
                    frame: index,
                    expected,
                    got: frame.dims(),
                });
            }
        }
        let observed_from = self.live.as_ref().map_or(0, |l| l.obs_frames.len());
        let mut smoothed = self.scratch.take_frame();
        self.segmentation.presmooth.apply_into(frame, &mut smoothed);
        let completed = if self.live.is_some() {
            vec![self.process(smoothed)?]
        } else {
            self.pending.push(smoothed);
            if self.pending.len() >= self.warmup {
                self.go_live()?
            } else {
                Vec::new()
            }
        };
        self.frames_pushed = index + 1;
        let observed = self
            .live
            .as_ref()
            .map(|l| l.obs_frames[observed_from..].to_vec())
            .unwrap_or_default();
        Ok(FrameUpdate {
            frame: index,
            buffered: completed.is_empty(),
            completed,
            observed,
        })
    }

    /// Closes the clip: flushes any still-buffered frames (a clip
    /// shorter than the warmup window goes live here, estimating the
    /// background from what arrived — exactly what batch does when the
    /// clip is shorter than the window), applies the robustness policy
    /// and scores.
    ///
    /// # Errors
    ///
    /// The same errors as [`JumpAnalyzer::analyze`](crate::JumpAnalyzer::analyze):
    /// too few frames, a degraded clip under the policy's budget, or a
    /// sequence too short to score.
    pub fn finish(self) -> Result<JumpAnalysis, AnalyzeError> {
        self.finish_reclaimed().0
    }

    /// [`finish`](StreamingAnalyzer::finish), additionally handing back
    /// the analyzer's recyclable heavy state — returned on the error
    /// paths too, so a supervisor recycles the buffers of failed
    /// sessions just like clean ones. Feed it to the next clip's
    /// analyzer with [`with_scratch`](StreamingAnalyzer::with_scratch).
    pub fn finish_reclaimed(mut self) -> (Result<JumpAnalysis, AnalyzeError>, AnalyzerScratch) {
        let result = self.close();
        let pending = std::mem::take(&mut self.pending);
        for frame in pending {
            self.scratch.recycle_frame(frame);
        }
        (result, std::mem::take(&mut self.scratch))
    }

    /// `finish` by mutation, so `finish_reclaimed` can salvage scratch
    /// state afterwards whatever the outcome.
    fn close(&mut self) -> Result<JumpAnalysis, AnalyzeError> {
        if self.live.is_none() {
            // Degrading to a whole-backlog background estimate still
            // needs the estimator's two-frame minimum; fail the 0/1
            // frame case cleanly instead of surfacing a confusing
            // segmentation error from deep inside `go_live`.
            if self.frames_pushed < 2 {
                return Err(AnalyzeError::InsufficientWarmup {
                    pushed: self.frames_pushed,
                    warmup: self.warmup,
                });
            }
            self.go_live()?;
        }
        let LiveState {
            background,
            segmenter,
            stages,
            tracker,
            labeling,
            previous_input,
            areas: _,
            poses,
            tracking,
            quality,
            health,
            obs_frames,
        } = self.live.take().expect("go_live sets live state");
        // Salvage the heavy state before scoring, so even a robustness
        // rejection leaves the buffers reclaimed.
        self.scratch.absorb_live(
            background,
            segmenter,
            stages,
            tracker,
            labeling,
            previous_input,
        );
        let mut poses = PoseSeq::new(poses, self.fps);
        if self.config.smoothing_window > 1 {
            poses = poses.median_smoothed(self.config.smoothing_window);
        }
        enforce_robustness(&health, self.config.robustness)?;
        let score = score_with_policy(&poses, &health, self.config.robustness)?;
        let excluded = crate::obs::excluded_frames(&health, self.config.robustness);
        let obs = slj_obs::ClipObs {
            frames: obs_frames,
            rules: crate::obs::rule_obs(&poses, &excluded, &score),
        };
        let measurement = crate::measure::measure_jump(&poses, &self.config.dims).ok();
        Ok(JumpAnalysis {
            poses,
            score,
            tracking,
            health,
            quality,
            obs,
            measurement,
        })
    }

    /// Discards the analysis mid-clip, salvaging the recyclable heavy
    /// state — the supervisor's path for sessions torn down before
    /// `finish` (quarantine, hard failure).
    pub fn into_scratch(mut self) -> AnalyzerScratch {
        if let Some(live) = self.live.take() {
            let LiveState {
                background,
                segmenter,
                stages,
                tracker,
                labeling,
                previous_input,
                ..
            } = live;
            self.scratch.absorb_live(
                background,
                segmenter,
                stages,
                tracker,
                labeling,
                previous_input,
            );
        }
        for frame in std::mem::take(&mut self.pending) {
            self.scratch.recycle_frame(frame);
        }
        std::mem::take(&mut self.scratch)
    }

    /// Estimates the background from the buffered warmup frames, builds
    /// the live state and drains the backlog through it.
    fn go_live(&mut self) -> Result<Vec<FrameHealth>, AnalyzeError> {
        let backlog = std::mem::take(&mut self.pending);
        // `estimate` windows itself to `min(warmup, len)` frames; the
        // buffer never exceeds the warmup, so this reads all of it —
        // identical to batch on both full-length and short clips.
        let video = Video::new(backlog, self.fps);
        let mut background = self
            .scratch
            .background
            .take()
            .unwrap_or(EstimatedBackground {
                image: Frame::new(0, 0),
                support: ImageBuffer::new(0, 0),
            });
        BackgroundEstimator::new(self.segmentation.background).estimate_into(
            &video,
            &mut background,
            &mut self.scratch.estimator,
        )?;
        let prepared = match self.scratch.prepared.take() {
            Some(mut p) => {
                p.update(&background.image);
                Arc::new(p)
            }
            None => Arc::new(PreparedBackground::new(&background.image)),
        };
        let segmenter = FrameSegmenter::new_with_arena(
            &self.segmentation,
            prepared,
            std::mem::take(&mut self.scratch.arena),
        );
        let tracker_config = TrackerConfig {
            parallelism: self.config.parallelism,
            ..self.config.tracker
        };
        let tracker = TemporalTracker::new(tracker_config)
            .stream(self.first_pose, &self.config.dims, &self.camera)
            .with_scratch(std::mem::take(&mut self.scratch.track));
        self.live = Some(LiveState {
            background,
            segmenter,
            stages: std::mem::replace(&mut self.scratch.stages, FrameStages::empty()),
            tracker,
            labeling: std::mem::take(&mut self.scratch.labeling),
            previous_input: None,
            areas: Vec::new(),
            poses: Vec::new(),
            tracking: Vec::new(),
            quality: Vec::new(),
            health: Vec::new(),
            obs_frames: Vec::new(),
        });
        let mut completed = Vec::with_capacity(video.len());
        for frame in video.into_frames() {
            completed.push(self.process(frame)?);
        }
        Ok(completed)
    }

    /// Segments, quality-assesses, tracks and health-scores one frame,
    /// taking ownership of it as the next ghost-suppression reference.
    fn process(&mut self, frame: Frame) -> Result<FrameHealth, AnalyzeError> {
        let live = self.live.as_mut().expect("process requires live state");
        let k = live.health.len();
        live.segmenter
            .segment_into(&frame, live.previous_input.as_ref(), &mut live.stages)?;
        let final_mask = &live.stages.final_mask;
        live.areas.push(final_mask.count());
        let reference = causal_reference_area(&live.areas, k);
        let quality = FrameQuality::measure_with(
            final_mask,
            reference,
            &self.segmentation.quality,
            &mut live.labeling,
        );
        let track = live.tracker.push(final_mask)?;
        let health = FrameHealth::with_model(k, quality.clone(), &track, &self.config.confidence);
        // The stage buffer is reused by the next frame: take its span
        // data now, while the masks are still this frame's.
        live.obs_frames.push(slj_obs::FrameObs {
            frame: k as u64,
            segment: live.stages.observe(),
            track: crate::obs::track_obs(&track),
        });
        live.poses.push(track.pose);
        live.tracking.push(track);
        live.quality.push(quality);
        live.health.push(health.clone());
        if let Some(old) = live.previous_input.replace(frame) {
            self.scratch.recycle_frame(old);
        }
        Ok(health)
    }
}

/// A frozen copy of a [`StreamingAnalyzer`] mid-clip, taken with
/// [`checkpoint`](StreamingAnalyzer::checkpoint).
///
/// Resuming yields an analyzer byte-identical to the original at the
/// moment of capture: replaying the same subsequent frames produces the
/// same [`FrameUpdate`]s and the same final [`JumpAnalysis`] as the
/// uninterrupted run. `slj-serve` uses this as the first rung of its
/// restart ladder — restore the last checkpoint, replay the retained
/// frames minus the poisoned one, and the session continues as if the
/// panic never happened.
#[derive(Debug, Clone)]
pub struct StreamingCheckpoint {
    state: StreamingAnalyzer,
}

impl StreamingCheckpoint {
    /// Frames the captured analyzer had ingested — the index the next
    /// pushed frame will get after [`resume`](StreamingCheckpoint::resume).
    pub fn frames_pushed(&self) -> usize {
        self.state.frames_pushed
    }

    /// Reconstructs a live analyzer from this checkpoint. The
    /// checkpoint is reusable: cloning before resuming lets a
    /// supervisor restore the same point more than once.
    pub fn resume(self) -> StreamingAnalyzer {
        self.state
    }
}
