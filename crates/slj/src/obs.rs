//! Assembles the pipeline's observability spans ([`slj_obs::ClipObs`])
//! from finished analysis state.
//!
//! Everything here is a pure function of analysis *results* — stage
//! masks, GA accounting, rule verdicts — so the batch and streaming
//! paths produce bit-identical span data for the same clip and
//! configuration, at every `Parallelism` setting. The batch path calls
//! [`clip_obs`] once over the retained per-frame state;
//! the streaming path builds the same [`FrameObs`] records
//! incrementally (one per [`push_frame`](crate::StreamingAnalyzer::push_frame))
//! and attaches the rule spans at
//! [`finish`](crate::StreamingAnalyzer::finish).

use crate::analyzer::FrameHealth;
use slj_ga::tracker::{RecoveryAction, TrackResult};
use slj_motion::{seq::Stage, PoseSeq};
use slj_obs::{ClipObs, FrameObs, RuleObs, SegmentObs, TrackObs};
use slj_score::{ScoreCard, Verdict};

/// The stable trace token for a recovery rung (schema `slj-trace/1`).
pub(crate) fn recovery_token(recovery: RecoveryAction) -> &'static str {
    match recovery {
        RecoveryAction::None => "none",
        RecoveryAction::WidenedSearch => "widened",
        RecoveryAction::ColdRestart => "cold_restart",
        RecoveryAction::Interpolated => "interpolated",
        RecoveryAction::CarriedOver => "carried",
    }
}

/// The stable trace token for a stage window.
fn stage_token(stage: Stage) -> &'static str {
    match stage {
        Stage::Initiation => "initiation",
        Stage::AirLanding => "air_landing",
    }
}

/// The stable trace token for a rule verdict.
fn verdict_token(verdict: Verdict) -> &'static str {
    match verdict {
        Verdict::Satisfied => "satisfied",
        Verdict::Violated => "violated",
        Verdict::Masked => "masked",
    }
}

/// One frame's GA tracking span, derived from the tracker's
/// thread-invariant accounting.
pub(crate) fn track_obs(t: &TrackResult) -> TrackObs {
    let evaluations = t.evaluations as u64;
    let unique_genomes = t.unique_genomes as u64;
    TrackObs {
        generations: t.generations_run as u64,
        evaluations,
        unique_genomes,
        // A set-size delta: only meaningful while the memo is enabled
        // (unique_genomes > 0); without the memo every request is an
        // evaluation and nothing is saved.
        memo_saved: if unique_genomes == 0 {
            0
        } else {
            evaluations.saturating_sub(unique_genomes)
        },
        bb_candidates: t.bb_candidates,
        bb_pruned: t.bb_pruned,
        rungs_attempted: t.rungs_attempted as u64,
        recovery: recovery_token(t.recovery).to_owned(),
    }
}

/// The per-rule scoring spans: each rule's stage window, how much of it
/// the confidence mask removed, and the verdict.
pub(crate) fn rule_obs(poses: &PoseSeq, excluded: &[bool], score: &ScoreCard) -> Vec<RuleObs> {
    score
        .results()
        .iter()
        .map(|r| {
            let window = poses.stage_range(r.stage);
            let masked = window
                .clone()
                .filter(|&i| excluded.get(i).copied().unwrap_or(false))
                .count() as u64;
            RuleObs {
                rule: r.rule.to_string(),
                stage: stage_token(r.stage).to_owned(),
                window_start: window.start as u64,
                window_end: window.end as u64,
                considered: window.len() as u64 - masked,
                masked,
                verdict: verdict_token(r.verdict).to_owned(),
                observed: r.observed,
            }
        })
        .collect()
}

/// Frames the robustness policy excluded from scoring (all-false under
/// `Strict`, the degraded frames under `BestEffort`) — the same mask
/// [`score_with_policy`](crate::analyzer) applies.
pub(crate) fn excluded_frames(
    health: &[FrameHealth],
    robustness: crate::RobustnessPolicy,
) -> Vec<bool> {
    match robustness {
        crate::RobustnessPolicy::Strict => vec![false; health.len()],
        crate::RobustnessPolicy::BestEffort { .. } => {
            health.iter().map(FrameHealth::is_degraded).collect()
        }
    }
}

/// Assembles the whole clip's span data from per-frame segmentation and
/// tracking spans plus the finished score (batch path; the streaming
/// path builds the frame list incrementally and reuses [`rule_obs`]).
pub(crate) fn clip_obs(
    segments: Vec<SegmentObs>,
    tracking: &[TrackResult],
    poses: &PoseSeq,
    excluded: &[bool],
    score: &ScoreCard,
) -> ClipObs {
    let frames = segments
        .into_iter()
        .zip(tracking)
        .enumerate()
        .map(|(k, (segment, t))| FrameObs {
            frame: k as u64,
            segment,
            track: track_obs(t),
        })
        .collect();
    ClipObs {
        frames,
        rules: rule_obs(poses, excluded, score),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_motion::{synthesize_jump, JumpConfig};
    use slj_score::score_jump_masked;

    #[test]
    fn recovery_tokens_are_stable() {
        assert_eq!(recovery_token(RecoveryAction::None), "none");
        assert_eq!(recovery_token(RecoveryAction::WidenedSearch), "widened");
        assert_eq!(recovery_token(RecoveryAction::ColdRestart), "cold_restart");
        assert_eq!(recovery_token(RecoveryAction::Interpolated), "interpolated");
        assert_eq!(recovery_token(RecoveryAction::CarriedOver), "carried");
    }

    #[test]
    fn rule_obs_counts_masked_window_frames() {
        let seq = synthesize_jump(&JumpConfig::default());
        let mut excluded = vec![false; seq.len()];
        excluded[0] = true;
        excluded[1] = true;
        let last = seq.len() - 1;
        excluded[last] = true;
        let card = score_jump_masked(&seq, &excluded).unwrap();
        let rules = rule_obs(&seq, &excluded, &card);
        assert_eq!(rules.len(), 7);
        let init = seq.stage_range(Stage::Initiation);
        let air = seq.stage_range(Stage::AirLanding);
        for r in &rules {
            match r.stage.as_str() {
                "initiation" => {
                    assert_eq!(r.window_start as usize, init.start);
                    assert_eq!(r.window_end as usize, init.end);
                    assert_eq!(r.masked, 2);
                    assert_eq!(r.considered as usize, init.len() - 2);
                }
                "air_landing" => {
                    assert_eq!(r.window_start as usize, air.start);
                    assert_eq!(r.window_end as usize, air.end);
                    assert_eq!(r.masked, 1);
                    assert_eq!(r.considered as usize, air.len() - 1);
                }
                other => panic!("unexpected stage token {other}"),
            }
            assert!(matches!(
                r.verdict.as_str(),
                "satisfied" | "violated" | "masked"
            ));
        }
    }

    #[test]
    fn fully_masked_window_surfaces_null_observation() {
        let seq = synthesize_jump(&JumpConfig::default());
        let split = seq.stage_range(Stage::Initiation).end;
        let mut excluded = vec![false; seq.len()];
        for e in excluded.iter_mut().take(split) {
            *e = true;
        }
        let card = score_jump_masked(&seq, &excluded).unwrap();
        let rules = rule_obs(&seq, &excluded, &card);
        let masked: Vec<&RuleObs> = rules.iter().filter(|r| r.verdict == "masked").collect();
        assert_eq!(masked.len(), 4);
        for r in masked {
            assert_eq!(r.considered, 0);
            assert_eq!(r.masked as usize, split);
            assert_eq!(r.observed, None);
        }
    }

    #[test]
    fn memo_saved_is_zero_without_memo() {
        let t = TrackResult {
            evaluations: 40,
            unique_genomes: 0,
            ..trivial_result()
        };
        assert_eq!(track_obs(&t).memo_saved, 0);
        let t = TrackResult {
            evaluations: 40,
            unique_genomes: 25,
            ..trivial_result()
        };
        assert_eq!(track_obs(&t).memo_saved, 15);
    }

    fn trivial_result() -> TrackResult {
        TrackResult {
            pose: slj_motion::Pose::standing(&slj_motion::BodyDims::default()),
            fitness: 0.0,
            generation_of_best: 0,
            generations_run: 0,
            generations_to_near_best: 0,
            evaluations: 0,
            carried_over: false,
            recovery: RecoveryAction::None,
            history: Vec::new(),
            rungs_attempted: 0,
            unique_genomes: 0,
            bb_candidates: 0,
            bb_pruned: 0,
        }
    }
}
