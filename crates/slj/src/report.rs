//! Markdown coaching-report generation.
//!
//! The paper's goal is a system that "responds with advices to the
//! user"; this module renders everything an analysis produced — score
//! card, per-rule traces, phase timeline, jump measurement, tracking
//! diagnostics — as one self-contained markdown document a teacher (or
//! a web front end) can hand to the student.

use crate::analyzer::{AnalysisReport, FrameHealth};
use crate::measure::measure_jump;
use slj_motion::{classify_phases, BodyDims, JumpPhase};
use slj_score::RuleTrace;
use std::fmt::Write as _;

/// Writes one line into the report buffer. `fmt::Write` for `String`
/// cannot fail — appending to a `String` aborts on allocation failure
/// rather than returning an error — so the `fmt::Result` here is
/// provably `Ok`. This macro documents that invariant in one place
/// instead of scattering panicking `unwrap()`s through the library
/// path.
macro_rules! mdln {
    ($md:expr) => {
        let _ = writeln!($md);
    };
    ($md:expr, $($arg:tt)*) => {
        let _ = writeln!($md, $($arg)*);
    };
}

/// Renders a full markdown coaching report.
///
/// The report degrades gracefully: sections whose inputs are
/// unavailable (e.g. no flight detected) explain themselves instead of
/// failing.
pub fn markdown_report(report: &AnalysisReport, dims: &BodyDims) -> String {
    let mut md = String::new();
    let score = &report.score;

    mdln!(md, "# Standing long jump — analysis report\n");
    mdln!(
        md,
        "**Score: {}/{}**{}\n",
        score.score(),
        score.results().len(),
        if score.is_perfect() {
            " — textbook jump!"
        } else {
            ""
        }
    );

    // Rule table.
    mdln!(md, "## Technique rules (Table 2 of Hsu et al.)\n");
    mdln!(md, "| rule | stage | observed | threshold | verdict |");
    mdln!(md, "|---|---|---|---|---|");
    for r in score.results() {
        let observed = match r.observed {
            Some(v) => format!("{v:.1}°"),
            None => "—".to_owned(),
        };
        let verdict = match r.verdict {
            slj_score::Verdict::Satisfied => "ok",
            slj_score::Verdict::Violated => "**violated**",
            slj_score::Verdict::Masked => "_masked_",
        };
        mdln!(
            md,
            "| {} | {} | {} | {:.0}° | {} |",
            r.rule,
            r.stage,
            observed,
            r.threshold,
            verdict
        );
    }
    mdln!(md);

    // Advice.
    let advice = score.advice();
    if !advice.is_empty() {
        mdln!(md, "## Coaching advice\n");
        for (standard, text) in advice {
            mdln!(md, "* **{standard}** — {text}");
        }
        mdln!(md);
    }

    // Traces.
    if let Ok(traces) = RuleTrace::all(&report.poses) {
        mdln!(md, "## Per-frame traces\n");
        mdln!(md, "```text");
        for t in traces {
            mdln!(md, "{t}");
        }
        mdln!(md, "```\n");
    }

    // Phases.
    let phases = classify_phases(&report.poses, dims);
    if !phases.is_empty() {
        let timeline: String = phases
            .iter()
            .map(|p| match p {
                JumpPhase::Standing => 'S',
                JumpPhase::Crouch => 'C',
                JumpPhase::Takeoff => 'T',
                JumpPhase::Flight => 'F',
                JumpPhase::Landing => 'L',
                JumpPhase::Recovery => 'R',
            })
            .collect();
        mdln!(md, "## Phases\n");
        mdln!(
            md,
            "`{timeline}` (S standing, C crouch, T takeoff, F flight, L landing, R recovery)\n"
        );
    }

    // Measurement. Prefer the one the analysis itself carries (computed
    // with the analyzer's calibrated dims); fall back to measuring here
    // only to surface the typed error message.
    mdln!(md, "## Measurement\n");
    match report.measurement {
        Some(m) => {
            let dir = match m.direction {
                crate::JumpDirection::LeftToRight => "left-to-right",
                crate::JumpDirection::RightToLeft => "right-to-left",
            };
            mdln!(
                md,
                "* distance: **{:.2} m** {dir} (takeoff toe → landing heel)",
                m.distance_m
            );
            mdln!(
                md,
                "* flight: {} frames (takeoff frame {}, landing frame {})",
                m.flight_frames,
                m.takeoff_frame,
                m.landing_frame
            );
            if !m.is_complete() {
                mdln!(
                    md,
                    "* **partial**: the clip {} airborne, so the distance is a lower bound",
                    if m.takeoff_observed { "ends" } else { "starts" }
                );
            }
            mdln!(md, "* peak clearance: {:.2} m\n", m.peak_clearance_m);
        }
        None => {
            let why = match measure_jump(&report.poses, dims) {
                Err(e) => e.to_string(),
                Ok(_) => "not measured".to_owned(),
            };
            mdln!(md, "_not available: {why}_\n");
        }
    }

    // Frame health.
    if !report.health.is_empty() {
        let mean_conf =
            report.health.iter().map(|h| h.confidence).sum::<f64>() / report.health.len() as f64;
        mdln!(md, "## Frame health\n");
        mdln!(
            md,
            "`{}` (# clean, + minor, ~ shaky, ! degraded) — mean confidence {:.2}\n",
            health_timeline(&report.health),
            mean_conf
        );
        for h in report.health.iter().filter(|h| h.is_degraded()) {
            let issues: Vec<String> = h.quality.issues.iter().map(|i| i.to_string()).collect();
            mdln!(
                md,
                "* frame {}: confidence {:.2} — {}{}{}",
                h.frame,
                h.confidence,
                if issues.is_empty() {
                    String::new()
                } else {
                    format!("silhouette {}", issues.join(", "))
                },
                if issues.is_empty() { "" } else { "; " },
                format_args!("tracking {}", h.recovery),
            );
        }
        if report.health.iter().any(|h| h.is_degraded()) {
            mdln!(md);
        }
    }

    // Tracking diagnostics.
    mdln!(md, "## Tracking diagnostics\n");
    let suspects = suspect_frames(report);
    mdln!(
        md,
        "* frames analysed: {} ({} carried over)",
        report.tracking.len(),
        report.tracking.iter().filter(|t| t.carried_over).count()
    );
    if suspects.is_empty() {
        mdln!(md, "* no suspect frames (fitness uniform across the clip)");
    } else {
        mdln!(
            md,
            "* suspect frames (fitness ≥ 1.5× clip median — treat the pose there with care): {suspects:?}"
        );
    }
    md
}

/// One character per frame, by confidence: `#` ≥ 0.95 (clean), `+` ≥
/// 0.7 (minor degradation), `~` ≥ 0.5 (shaky but scored), `!` below the
/// degraded floor (excluded under best-effort).
pub fn health_timeline(health: &[FrameHealth]) -> String {
    health
        .iter()
        .map(|h| match h.confidence {
            c if c >= 0.95 => '#',
            c if c >= 0.7 => '+',
            c if c >= 0.5 => '~',
            _ => '!',
        })
        .collect()
}

/// Frames whose Eq. 3 fitness is at least 1.5× the clip median —
/// the analyzer's own "don't fully trust me here" flags.
pub fn suspect_frames(report: &AnalysisReport) -> Vec<usize> {
    let mut finite: Vec<f64> = report
        .tracking
        .iter()
        .map(|t| t.fitness)
        .filter(|f| f.is_finite())
        .collect();
    if finite.is_empty() {
        return Vec::new();
    }
    finite.sort_by(f64::total_cmp);
    let median = finite[finite.len() / 2];
    report
        .tracking
        .iter()
        .enumerate()
        .filter(|(_, t)| t.carried_over || !t.fitness.is_finite() || t.fitness >= 1.5 * median)
        .map(|(k, _)| k)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{AnalyzerConfig, JumpAnalyzer};
    use slj_motion::JumpConfig;
    use slj_video::{Camera, SceneConfig, SyntheticJump};

    fn analysed() -> (AnalysisReport, BodyDims) {
        let scene = SceneConfig {
            camera: Camera::compact(),
            ..SceneConfig::clean()
        };
        let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 5);
        let report = JumpAnalyzer::new(AnalyzerConfig::fast())
            .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
            .unwrap();
        (report, BodyDims::default())
    }

    #[test]
    fn report_contains_every_section() {
        let (report, dims) = analysed();
        let md = markdown_report(&report, &dims);
        for heading in [
            "# Standing long jump",
            "## Technique rules",
            "## Per-frame traces",
            "## Phases",
            "## Measurement",
            "## Frame health",
            "## Tracking diagnostics",
        ] {
            assert!(md.contains(heading), "missing {heading}:\n{md}");
        }
        // All seven rules appear.
        for n in 1..=7 {
            assert!(md.contains(&format!("R{n}")), "missing R{n}");
        }
        // The phase timeline exists and has flight frames.
        assert!(md.contains('F'));
    }

    #[test]
    fn suspect_frames_flags_outliers() {
        let (mut report, _) = analysed();
        // Manufacture an outlier.
        let median_ish = report.tracking[5].fitness;
        report.tracking[7].fitness = median_ish * 10.0;
        let suspects = suspect_frames(&report);
        assert!(suspects.contains(&7), "{suspects:?}");
    }

    #[test]
    fn suspect_frames_empty_for_uniform_fitness() {
        let (mut report, _) = analysed();
        for t in report.tracking.iter_mut() {
            t.fitness = 0.5;
            t.carried_over = false;
        }
        assert!(suspect_frames(&report).is_empty());
    }
}
