//! Error type for end-to-end analysis.

use slj_ga::GaError;
use slj_motion::MotionError;
use slj_segment::SegmentError;
use std::fmt;

/// Error returned by [`crate::JumpAnalyzer::analyze`].
#[derive(Debug)]
#[non_exhaustive]
pub enum AnalyzeError {
    /// Segmentation failed (too few frames, image errors).
    Segment(SegmentError),
    /// Pose tracking failed (empty silhouettes, GA initialisation).
    Tracking(GaError),
    /// Scoring failed (sequence too short for the stage windows).
    Scoring(MotionError),
    /// Too many degraded frames for the configured
    /// [`crate::RobustnessPolicy`].
    DegradedClip {
        /// Index of the first degraded frame.
        first_frame: usize,
        /// What went wrong on that frame (quality issues, recovery rung).
        detail: String,
        /// Number of degraded frames in the clip.
        degraded: usize,
        /// Degraded frames the policy tolerates (0 under `Strict`).
        allowed: usize,
        /// Total frames in the clip.
        frames: usize,
    },
    /// The configuration has a whole-clip dependency a streaming run
    /// cannot satisfy (see [`crate::AnalyzerConfig::into_streaming`]).
    NotStreamable {
        /// Which option blocks streaming and how to fix it.
        reason: String,
    },
    /// A streamed frame's dimensions differ from the clip's established
    /// shape (the warm-up frames / estimated background). The frame is
    /// rejected before any pixel loop runs and the analyzer state is
    /// untouched — the caller may drop the frame and continue.
    FrameShapeMismatch {
        /// Index the rejected frame would have had.
        frame: usize,
        /// The clip's established `(width, height)`.
        expected: (usize, usize),
        /// The rejected frame's `(width, height)`.
        got: (usize, usize),
    },
    /// [`finish`](crate::StreamingAnalyzer::finish) was called before
    /// enough frames arrived to estimate any background. A clip shorter
    /// than the warmup window degrades to a whole-backlog estimate, but
    /// that still needs the estimator's two-frame minimum.
    InsufficientWarmup {
        /// Frames pushed before `finish` was called.
        pushed: usize,
        /// The configured background warmup window.
        warmup: usize,
    },
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Segment(e) => write!(f, "segmentation failed: {e}"),
            AnalyzeError::Tracking(e) => write!(f, "pose tracking failed: {e}"),
            AnalyzeError::Scoring(e) => write!(f, "scoring failed: {e}"),
            AnalyzeError::DegradedClip {
                first_frame,
                detail,
                degraded,
                allowed,
                frames,
            } => write!(
                f,
                "clip too degraded: {degraded}/{frames} frames below the \
                 confidence floor (policy allows {allowed}); first unhealthy \
                 frame is {first_frame} ({detail})"
            ),
            AnalyzeError::NotStreamable { reason } => {
                write!(f, "configuration cannot stream: {reason}")
            }
            AnalyzeError::FrameShapeMismatch {
                frame,
                expected,
                got,
            } => write!(
                f,
                "frame {frame} is {}x{} but the clip is {}x{}: mid-stream \
                 dimension changes are rejected",
                got.0, got.1, expected.0, expected.1
            ),
            AnalyzeError::InsufficientWarmup { pushed, warmup } => write!(
                f,
                "streaming clip closed after {pushed} frame(s): background \
                 estimation needs at least 2 (warmup window is {warmup})"
            ),
        }
    }
}

impl std::error::Error for AnalyzeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalyzeError::Segment(e) => Some(e),
            AnalyzeError::Tracking(e) => Some(e),
            AnalyzeError::Scoring(e) => Some(e),
            AnalyzeError::DegradedClip { .. }
            | AnalyzeError::NotStreamable { .. }
            | AnalyzeError::FrameShapeMismatch { .. }
            | AnalyzeError::InsufficientWarmup { .. } => None,
        }
    }
}

impl From<SegmentError> for AnalyzeError {
    fn from(e: SegmentError) -> Self {
        AnalyzeError::Segment(e)
    }
}

impl From<GaError> for AnalyzeError {
    fn from(e: GaError) -> Self {
        AnalyzeError::Tracking(e)
    }
}

impl From<MotionError> for AnalyzeError {
    fn from(e: MotionError) -> Self {
        AnalyzeError::Scoring(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays_and_sources() {
        let e = AnalyzeError::from(GaError::NoFrames);
        assert!(e.to_string().contains("tracking"));
        assert!(e.source().is_some());

        let e = AnalyzeError::from(SegmentError::TooFewFrames { got: 1, need: 2 });
        assert!(e.to_string().contains("segmentation"));

        let e = AnalyzeError::from(MotionError::SequenceTooShort { got: 1, need: 2 });
        assert!(e.to_string().contains("scoring"));
    }
}
