//! Figure rendering: stick-model overlays and mask dumps.
//!
//! The paper's Figures 6–7 show silhouettes with stick models drawn on
//! top; these helpers produce the same imagery as PPM/PGM files so the
//! experiment binaries can regenerate every panel.

use slj_imgproc::draw;
use slj_imgproc::image::ImageBuffer;
use slj_imgproc::mask::Mask;
use slj_imgproc::pixel::Rgb;
use slj_motion::{BodyDims, Pose};
use slj_video::{Camera, Frame};

/// Draws a pose's stick model onto an RGB image as one-pixel lines with
/// small joint dots, in the given colour.
pub fn draw_stick_model(
    image: &mut Frame,
    pose: &Pose,
    dims: &BodyDims,
    camera: &Camera,
    color: Rgb,
) {
    let segs = pose.segments(dims);
    for (_, seg) in segs.iter() {
        let s = camera.segment_to_image(seg);
        draw::line(
            image,
            (s.a.x.round() as isize, s.a.y.round() as isize),
            (s.b.x.round() as isize, s.b.y.round() as isize),
            color,
        );
        draw::fill_disc(image, s.a, 1.5, color);
    }
}

/// Renders a silhouette as a white-on-black image with a stick model
/// overlaid — the paper's Fig. 6/7 panel style.
pub fn silhouette_with_model(
    silhouette: &Mask,
    pose: &Pose,
    dims: &BodyDims,
    camera: &Camera,
    model_color: Rgb,
) -> Frame {
    let mut img: Frame = ImageBuffer::from_fn(silhouette.width(), silhouette.height(), |x, y| {
        if silhouette.get(x, y) {
            Rgb::WHITE
        } else {
            Rgb::BLACK
        }
    });
    draw_stick_model(&mut img, pose, dims, camera, model_color);
    img
}

/// Renders a video frame with two stick models overlaid (e.g. truth in
/// green, estimate in red) for side-by-side comparison figures.
pub fn frame_with_models(
    frame: &Frame,
    truth: Option<&Pose>,
    estimate: Option<&Pose>,
    dims: &BodyDims,
    camera: &Camera,
) -> Frame {
    let mut img = frame.clone();
    if let Some(t) = truth {
        draw_stick_model(&mut img, t, dims, camera, Rgb::new(0, 220, 0));
    }
    if let Some(e) = estimate {
        draw_stick_model(&mut img, e, dims, camera, Rgb::new(230, 30, 30));
    }
    img
}

/// Tiles a set of equally-sized images into one montage, `columns`
/// wide, with a 2-pixel dark gutter — the "contact sheet" layout of the
/// paper's Figure 6.
///
/// # Panics
///
/// Panics if `frames` is empty, `columns` is zero, or the frames have
/// mismatched dimensions.
pub fn contact_sheet(frames: &[Frame], columns: usize) -> Frame {
    assert!(!frames.is_empty(), "contact sheet needs at least one frame");
    assert!(columns > 0, "columns must be positive");
    let (fw, fh) = frames[0].dims();
    for (i, f) in frames.iter().enumerate() {
        assert_eq!(f.dims(), (fw, fh), "frame {i} has mismatched dimensions");
    }
    const GUTTER: usize = 2;
    let cols = columns.min(frames.len());
    let rows = frames.len().div_ceil(cols);
    let width = cols * fw + (cols + 1) * GUTTER;
    let height = rows * fh + (rows + 1) * GUTTER;
    let mut sheet: Frame = ImageBuffer::filled(width, height, Rgb::splat(24));
    for (i, f) in frames.iter().enumerate() {
        let cx = (i % cols) * (fw + GUTTER) + GUTTER;
        let cy = (i / cols) * (fh + GUTTER) + GUTTER;
        for (x, y, p) in f.enumerate_pixels() {
            sheet.set(cx + x, cy + y, p);
        }
    }
    sheet
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_video::render::render_silhouette;

    fn setup() -> (BodyDims, Camera, Pose) {
        let dims = BodyDims::default();
        let camera = Camera::compact();
        let mut pose = Pose::standing(&dims);
        pose.center.x = 0.6;
        (dims, camera, pose)
    }

    #[test]
    fn overlay_draws_model_pixels() {
        let (dims, camera, pose) = setup();
        let mut img: Frame = ImageBuffer::filled(camera.width, camera.height, Rgb::BLACK);
        draw_stick_model(&mut img, &pose, &dims, &camera, Rgb::new(255, 0, 0));
        let red = img
            .as_slice()
            .iter()
            .filter(|p| **p == Rgb::new(255, 0, 0))
            .count();
        assert!(red > 50, "only {red} overlay pixels drawn");
        // The trunk centre pixel is on the model.
        let c = camera.world_to_image(pose.center);
        assert_eq!(
            img.get(c.x.round() as usize, c.y.round() as usize),
            Rgb::new(255, 0, 0)
        );
    }

    #[test]
    fn silhouette_panel_has_three_tones() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let img = silhouette_with_model(&sil, &pose, &dims, &camera, Rgb::new(255, 0, 0));
        let mut has = (false, false, false);
        for &p in img.as_slice() {
            if p == Rgb::BLACK {
                has.0 = true;
            } else if p == Rgb::WHITE {
                has.1 = true;
            } else if p == Rgb::new(255, 0, 0) {
                has.2 = true;
            }
        }
        assert!(has.0 && has.1 && has.2, "{has:?}");
    }

    #[test]
    fn contact_sheet_tiles_and_gutters() {
        let a: Frame = ImageBuffer::filled(4, 3, Rgb::new(255, 0, 0));
        let b: Frame = ImageBuffer::filled(4, 3, Rgb::new(0, 255, 0));
        let c: Frame = ImageBuffer::filled(4, 3, Rgb::new(0, 0, 255));
        let sheet = contact_sheet(&[a, b, c], 2);
        // 2 cols x 2 rows with 2px gutters: 2*4+3*2 = 14 wide, 2*3+3*2 = 12 tall.
        assert_eq!(sheet.dims(), (14, 12));
        assert_eq!(sheet.get(2, 2), Rgb::new(255, 0, 0));
        assert_eq!(sheet.get(8, 2), Rgb::new(0, 255, 0));
        assert_eq!(sheet.get(2, 7), Rgb::new(0, 0, 255));
        // The cell right of c is empty gutter-grey.
        assert_eq!(sheet.get(8, 7), Rgb::splat(24));
        assert_eq!(sheet.get(0, 0), Rgb::splat(24));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn contact_sheet_rejects_empty() {
        contact_sheet(&[], 2);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn contact_sheet_rejects_mixed_sizes() {
        let a: Frame = ImageBuffer::filled(4, 3, Rgb::BLACK);
        let b: Frame = ImageBuffer::filled(5, 3, Rgb::BLACK);
        contact_sheet(&[a, b], 2);
    }

    #[test]
    fn frame_with_models_draws_requested_overlays() {
        let (dims, camera, pose) = setup();
        let base: Frame = ImageBuffer::filled(camera.width, camera.height, Rgb::splat(128));
        let both = frame_with_models(&base, Some(&pose), Some(&pose), &dims, &camera);
        // Estimate (red) drawn after truth (green): red wins on shared
        // pixels.
        let red = both
            .as_slice()
            .iter()
            .filter(|p| **p == Rgb::new(230, 30, 30))
            .count();
        assert!(red > 50);
        let none = frame_with_models(&base, None, None, &dims, &camera);
        assert_eq!(none, base);
    }
}
