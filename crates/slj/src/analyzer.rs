//! The end-to-end jump analyzer.
//!
//! [`JumpAnalyzer::analyze`] reproduces the complete system of the paper:
//!
//! 1. **Segment** the video (Section 2): estimate the background,
//!    subtract, repair, remove shadows → one silhouette per frame.
//! 2. **Track** the pose (Section 3): the caller supplies the
//!    first-frame stick model (the paper's "trained person" step); every
//!    later frame is fitted by the temporally-seeded GA.
//! 3. **Score** (Section 4): evaluate rules R1–R7 over the estimated
//!    pose sequence and attach coaching advice.

use crate::error::AnalyzeError;
use crate::measure::{measure_jump, JumpMeasurement};
use serde::{Deserialize, Serialize};
use slj_ga::tracker::{RecoveryAction, TemporalTracker, TrackResult, TrackerConfig};
use slj_imgproc::mask::Mask;
use slj_motion::{BodyDims, Pose, PoseSeq};
use slj_runtime::Parallelism;
use slj_score::{score_jump, score_jump_masked, ScoreCard};
use slj_segment::background::UpdateMode;
use slj_segment::pipeline::{PipelineConfig, SegmentPipeline, SegmentationResult};
use slj_segment::quality::{FrameQuality, ReferenceMode};
use slj_video::{Camera, Video};

/// Configuration of the end-to-end analyzer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyzerConfig {
    /// Segmentation pipeline parameters (Section 2).
    pub segmentation: PipelineConfig,
    /// GA tracker parameters (Section 3).
    pub tracker: TrackerConfig,
    /// Athlete dimensions (the paper calibrates these from the
    /// hand-drawn first-frame model; here they are explicit).
    pub dims: BodyDims,
    /// Odd window size of the temporal median filter applied to the
    /// estimated pose sequence before scoring (1 disables). Scoring
    /// aggregates window extrema, so single-frame estimation outliers
    /// can flip verdicts; a 3-frame median removes them.
    pub smoothing_window: usize,
    /// What to do when frames come back degraded (unhealthy silhouette,
    /// escalated or failed tracking).
    pub robustness: RobustnessPolicy,
    /// How per-frame evidence (silhouette issues, recovery rungs) is
    /// condensed into the [`FrameHealth`] confidence score.
    pub confidence: ConfidenceModel,
    /// Worker threads for both parallelisable phases: segmentation's
    /// per-frame stages and the GA's per-genome fitness evaluation.
    /// Authoritative — it overwrites `segmentation.parallelism` and
    /// `tracker.parallelism` when the analysis runs, so one knob
    /// controls the whole run. Parallel runs are bit-identical to
    /// serial ones (tested).
    pub parallelism: Parallelism,
}

/// How the analyzer treats degraded frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RobustnessPolicy {
    /// Any degraded frame aborts the analysis with
    /// [`AnalyzeError::DegradedClip`] naming the first unhealthy frame.
    /// The default: garbage in, *error* out — never a silently wrong
    /// score.
    #[default]
    Strict,
    /// Complete the analysis as long as no more than
    /// `max_degraded_frames` frames are degraded, excluding them from
    /// the R1–R7 window extrema; the per-frame health timeline and
    /// confidence land in the report.
    BestEffort {
        /// Degraded-frame budget before the analysis aborts anyway.
        max_degraded_frames: usize,
    },
}

/// Confidence below which a frame is considered degraded and (under
/// [`RobustnessPolicy::BestEffort`]) excluded from scoring.
pub const DEGRADED_CONFIDENCE: f64 = 0.5;

/// The confidence model: how silhouette issues and recovery rungs map
/// to a per-frame confidence in `[0, 1]`.
///
/// `confidence = seg_factor × rung_factor`, where `seg_factor` is
/// `max(0, 1 − issue_penalty × #issues)` (1 for a healthy silhouette)
/// and `rung_factor` is the per-rung factor below.
///
/// The defaults are *fitted*, not guessed: `slj eval --sweep` groups
/// frames of the calibration corpus by rung and by silhouette issue
/// count, measures each group's mean ground-truth pose error relative
/// to clean frames, and solves for the factors (least squares for the
/// per-issue penalty). See DESIGN.md §11 and EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceModel {
    /// Confidence lost per failed silhouette-quality check.
    pub issue_penalty: f64,
    /// Rung factor for [`RecoveryAction::WidenedSearch`].
    pub widened_factor: f64,
    /// Rung factor for [`RecoveryAction::ColdRestart`].
    pub cold_restart_factor: f64,
    /// Rung factor for [`RecoveryAction::Interpolated`]. Kept below
    /// [`DEGRADED_CONFIDENCE`]: an interpolated pose is a prediction,
    /// never verified against the frame, so it must stay excluded from
    /// best-effort scoring no matter how clean the (blank) silhouette
    /// metrics look.
    pub interpolated_factor: f64,
    /// Rung factor for [`RecoveryAction::CarriedOver`].
    pub carried_factor: f64,
}

impl Default for ConfidenceModel {
    fn default() -> Self {
        // Factors fitted by the slj-eval calibration sweep: each rung's
        // factor is the ratio of the clean tracked baseline RMSE to
        // that rung's measured RMSE over the full fault matrix (see
        // EXPERIMENTS.md), so confidence is a calibrated estimate of
        // relative pose accuracy rather than a hand-tuned guess.
        ConfidenceModel {
            issue_penalty: 0.5,
            widened_factor: 0.27,
            cold_restart_factor: 0.22,
            interpolated_factor: 0.27,
            carried_factor: 0.0,
        }
    }
}

impl ConfidenceModel {
    /// The rung factor for one recovery action.
    pub fn rung_factor(&self, recovery: RecoveryAction) -> f64 {
        match recovery {
            RecoveryAction::None => 1.0,
            RecoveryAction::WidenedSearch => self.widened_factor,
            RecoveryAction::ColdRestart => self.cold_restart_factor,
            RecoveryAction::Interpolated => self.interpolated_factor,
            RecoveryAction::CarriedOver => self.carried_factor,
        }
    }

    /// The segmentation factor for a frame with `issues` failed
    /// quality checks.
    pub fn seg_factor(&self, issues: usize) -> f64 {
        (1.0 - self.issue_penalty * issues as f64).max(0.0)
    }
}

/// Health of one analysed frame: what segmentation and tracking had to
/// do to produce its pose estimate, condensed into a confidence score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameHealth {
    /// Frame index.
    pub frame: usize,
    /// Silhouette health from the segmentation pipeline.
    pub quality: FrameQuality,
    /// Which recovery rung produced the pose estimate.
    pub recovery: RecoveryAction,
    /// The frame's Eq. 3 fitness (infinite when carried over).
    pub fitness: f64,
    /// Combined confidence in `[0, 1]`: 1 = clean silhouette, plain
    /// temporal tracking; 0 = carried over.
    pub confidence: f64,
}

impl FrameHealth {
    /// Condenses one frame's evidence into a confidence score under the
    /// given model.
    pub fn with_model(
        frame: usize,
        quality: FrameQuality,
        track: &TrackResult,
        model: &ConfidenceModel,
    ) -> FrameHealth {
        // Segmentation factor: each failed check costs `issue_penalty`.
        let seg = if quality.is_healthy() {
            1.0
        } else {
            model.seg_factor(quality.issues.len())
        };
        // Tracking factor: deeper recovery rungs mean the temporal
        // assumption broke harder.
        let track_factor = model.rung_factor(track.recovery);
        FrameHealth {
            frame,
            quality,
            recovery: track.recovery,
            fitness: track.fitness,
            confidence: seg * track_factor,
        }
    }

    /// Whether this frame should not be trusted for scoring.
    pub fn is_degraded(&self) -> bool {
        self.confidence < DEGRADED_CONFIDENCE
    }
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            segmentation: PipelineConfig::default(),
            tracker: TrackerConfig::default(),
            dims: BodyDims::default(),
            smoothing_window: 3,
            robustness: RobustnessPolicy::default(),
            confidence: ConfidenceModel::default(),
            parallelism: Parallelism::Serial,
        }
    }
}

impl AnalyzerConfig {
    /// A reduced-budget configuration for demos and debug-build tests.
    pub fn fast() -> Self {
        AnalyzerConfig {
            tracker: TrackerConfig::fast(),
            ..AnalyzerConfig::default()
        }
    }

    /// The system exactly as the paper describes it (paper segmentation
    /// settings, default tracker).
    pub fn paper() -> Self {
        AnalyzerConfig {
            segmentation: PipelineConfig::paper(),
            ..AnalyzerConfig::default()
        }
    }

    /// The default streamable configuration:
    /// [`AnalyzerConfig::default`] made causal via
    /// [`into_streaming`](AnalyzerConfig::into_streaming) with a
    /// [`DEFAULT_WARMUP_FRAMES`]-frame background window.
    pub fn streaming() -> Self {
        AnalyzerConfig::default().into_streaming(DEFAULT_WARMUP_FRAMES)
    }

    /// Makes any configuration streamable by removing its whole-clip
    /// dependencies: the background estimate is windowed to the first
    /// `warmup` frames, frame-quality references switch to the causal
    /// prefix median, and the background combination rule switches to
    /// [`UpdateMode::LastStable`]. The last is not a causality
    /// requirement but a correctness one: inside a *leading* window the
    /// jumper occupies the launch area for most frames, so a per-pixel
    /// median burns them into the estimate, whereas the last stable
    /// observation is the post-takeoff (true background) one — and
    /// `LastStable`'s usual weakness, the landed jumper resting at the
    /// *end* of the clip, cannot occur inside a window that ends before
    /// landing. Batch [`JumpAnalyzer::analyze`] honours all three
    /// options identically, so a batch run of the returned
    /// configuration is byte-identical to the streaming run — at the
    /// price that frames after the warmup window no longer inform the
    /// background estimate.
    pub fn into_streaming(mut self, warmup: usize) -> Self {
        self.segmentation.background.warmup = Some(warmup);
        self.segmentation.background.mode = UpdateMode::LastStable;
        self.segmentation.quality.reference = ReferenceMode::Causal;
        self
    }
}

/// Background warmup window (frames) used by
/// [`AnalyzerConfig::streaming`]: long enough that the jumper has left
/// the launch area and the last-stable rule has re-observed it as true
/// background (shorter windows leave takeoff-frame silhouettes
/// shredded), short enough that a streaming run goes live well before a
/// default 20-frame clip ends.
pub const DEFAULT_WARMUP_FRAMES: usize = 14;

/// Everything the end-to-end analysis produced.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// The full segmentation output (background estimate + per-frame
    /// stage masks — the paper's Figs. 1–3 intermediates).
    pub segmentation: SegmentationResult,
    /// Per-frame GA tracking diagnostics.
    pub tracking: Vec<TrackResult>,
    /// The estimated pose sequence (the paper's Figs. 6–7 stick models).
    pub poses: PoseSeq,
    /// The rule verdicts and score (the paper's Section 4).
    pub score: ScoreCard,
    /// Per-frame health timeline: silhouette quality × tracking
    /// recovery, condensed to a confidence score.
    pub health: Vec<FrameHealth>,
    /// The observability spans: per-frame segmentation/tracking data
    /// and per-rule scoring windows, ready to render as a `slj-trace/1`
    /// JSONL trace or aggregate into a metrics registry. Deterministic:
    /// identical at every [`Parallelism`] setting.
    pub obs: slj_obs::ClipObs,
    /// Jump-performance measurement (takeoff → landing distance, flight
    /// apex) from the final pose sequence; `None` when the clip holds no
    /// measurable jump (e.g. too short, or no airborne phase).
    pub measurement: Option<JumpMeasurement>,
}

impl AnalysisReport {
    /// The final silhouette of each frame.
    pub fn silhouettes(&self) -> Vec<&Mask> {
        self.segmentation
            .frames
            .iter()
            .map(|s| &s.final_mask)
            .collect()
    }

    /// A compact serialisable summary (no pixel data).
    pub fn summary(&self) -> AnalysisSummary {
        summarize(
            &self.poses,
            &self.score,
            &self.tracking,
            &self.health,
            self.measurement,
        )
    }
}

/// Builds the serialisable summary from the pieces every finished
/// analysis carries — shared by the batch report and the streaming
/// [`JumpAnalysis`](crate::JumpAnalysis) so both summarise identically.
pub(crate) fn summarize(
    poses: &PoseSeq,
    score: &ScoreCard,
    tracking: &[TrackResult],
    health: &[FrameHealth],
    measurement: Option<JumpMeasurement>,
) -> AnalysisSummary {
    AnalysisSummary {
        frames: poses.len(),
        score: score.score(),
        violations: score.violations().iter().map(|r| r.number()).collect(),
        advice: score
            .advice()
            .iter()
            .map(|(s, a)| (s.number(), (*a).to_owned()))
            .collect(),
        forward_travel_m: poses.forward_travel(),
        mean_fitness: mean(tracking.iter().map(|t| t.fitness).filter(|f| f.is_finite())),
        mean_generations_to_near_best: mean(
            tracking
                .iter()
                .skip(1)
                .filter(|t| t.ga_estimated())
                .map(|t| t.generations_to_near_best as f64),
        ),
        total_evaluations: tracking.iter().map(|t| t.evaluations).sum(),
        degraded_frames: health
            .iter()
            .filter(|h| h.is_degraded())
            .map(|h| h.frame)
            .collect(),
        mean_confidence: mean(health.iter().map(|h| h.confidence)).unwrap_or(0.0),
        measurement,
    }
}

/// `None` when the iterator is empty — a serialisable stand-in for the
/// NaN that a 0/0 mean would produce (NaN does not survive a JSON
/// round-trip: it serialises as `null`, which fails to deserialise into
/// a bare `f64`).
fn mean(iter: impl Iterator<Item = f64>) -> Option<f64> {
    let v: Vec<f64> = iter.collect();
    if v.is_empty() {
        None
    } else {
        Some(v.iter().sum::<f64>() / v.len() as f64)
    }
}

/// Compact, JSON-friendly digest of an [`AnalysisReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisSummary {
    /// Number of analysed frames.
    pub frames: usize,
    /// Rules satisfied, 0–7.
    pub score: usize,
    /// Violated rule numbers (1-based).
    pub violations: Vec<usize>,
    /// `(standard number, advice)` per violation.
    pub advice: Vec<(usize, String)>,
    /// Horizontal travel of the trunk centre, metres.
    pub forward_travel_m: f64,
    /// Mean Eq. 3 fitness over tracked frames; `None` when every frame
    /// was carried over (no finite fitness to average).
    pub mean_fitness: Option<f64>,
    /// Mean generations until the GA was within 10% of each frame's
    /// final best; `None` when no frame was GA-tracked.
    pub mean_generations_to_near_best: Option<f64>,
    /// Total GA fitness evaluations.
    pub total_evaluations: usize,
    /// Indices of frames below the confidence floor.
    pub degraded_frames: Vec<usize>,
    /// Mean per-frame confidence, 0–1.
    pub mean_confidence: f64,
    /// Jump-performance measurement; `None` (JSON `null`) when the clip
    /// holds no measurable jump.
    pub measurement: Option<JumpMeasurement>,
}

/// The end-to-end analyzer.
#[derive(Debug, Clone, Default)]
pub struct JumpAnalyzer {
    config: AnalyzerConfig,
}

impl JumpAnalyzer {
    /// Creates an analyzer with the given configuration.
    pub fn new(config: AnalyzerConfig) -> Self {
        JumpAnalyzer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Runs segmentation, tracking and scoring over a clip.
    ///
    /// `first_pose` is the stick model of frame 0 — the paper's
    /// hand-drawn initialisation.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError`] when any of the three phases fails (too
    /// few frames, untrackable silhouettes, or stage windows too short
    /// to score).
    pub fn analyze(
        &self,
        video: &Video,
        camera: &Camera,
        first_pose: Pose,
    ) -> Result<AnalysisReport, AnalyzeError> {
        // The analyzer-level parallelism knob is authoritative: push it
        // down into both phases so `--threads` means the same thing
        // everywhere.
        let segmentation_config = PipelineConfig {
            parallelism: self.config.parallelism,
            ..self.config.segmentation.clone()
        };
        let tracker_config = TrackerConfig {
            parallelism: self.config.parallelism,
            ..self.config.tracker
        };
        let segmentation = SegmentPipeline::new(segmentation_config).run(video)?;
        let silhouettes: Vec<Mask> = segmentation
            .frames
            .iter()
            .map(|s| s.final_mask.clone())
            .collect();
        let tracking = TemporalTracker::new(tracker_config).track(
            &silhouettes,
            first_pose,
            &self.config.dims,
            camera,
        )?;
        let mut poses = tracking.to_pose_seq(video.fps());
        if self.config.smoothing_window > 1 {
            poses = poses.median_smoothed(self.config.smoothing_window);
        }

        let health: Vec<FrameHealth> = segmentation
            .quality
            .iter()
            .zip(&tracking.frames)
            .enumerate()
            .map(|(k, (q, t))| FrameHealth::with_model(k, q.clone(), t, &self.config.confidence))
            .collect();
        enforce_robustness(&health, self.config.robustness)?;
        let score = score_with_policy(&poses, &health, self.config.robustness)?;
        let obs = crate::obs::clip_obs(
            segmentation.frames.iter().map(|s| s.observe()).collect(),
            &tracking.frames,
            &poses,
            &crate::obs::excluded_frames(&health, self.config.robustness),
            &score,
        );
        let measurement = measure_jump(&poses, &self.config.dims).ok();
        Ok(AnalysisReport {
            segmentation,
            tracking: tracking.frames,
            poses,
            score,
            health,
            obs,
            measurement,
        })
    }
}

/// Applies the degraded-frame budget of `robustness` to a finished
/// health timeline, shared verbatim by [`JumpAnalyzer::analyze`] and
/// [`crate::stream::StreamingAnalyzer::finish`] so both paths reject
/// (or accept) a clip identically.
pub(crate) fn enforce_robustness(
    health: &[FrameHealth],
    robustness: RobustnessPolicy,
) -> Result<(), AnalyzeError> {
    let allowed = match robustness {
        RobustnessPolicy::Strict => 0,
        RobustnessPolicy::BestEffort {
            max_degraded_frames,
        } => max_degraded_frames,
    };
    let degraded: Vec<&FrameHealth> = health.iter().filter(|h| h.is_degraded()).collect();
    if degraded.len() > allowed {
        let first = degraded[0];
        return Err(AnalyzeError::DegradedClip {
            first_frame: first.frame,
            detail: degraded_detail(first),
            degraded: degraded.len(),
            allowed,
            frames: health.len(),
        });
    }
    Ok(())
}

/// Scores a (smoothed) pose sequence under `robustness` — strict runs
/// score every frame; best-effort excludes degraded frames from the
/// R1–R7 window extrema. Shared by the batch and streaming paths.
pub(crate) fn score_with_policy(
    poses: &PoseSeq,
    health: &[FrameHealth],
    robustness: RobustnessPolicy,
) -> Result<ScoreCard, AnalyzeError> {
    Ok(match robustness {
        RobustnessPolicy::Strict => score_jump(poses)?,
        RobustnessPolicy::BestEffort { .. } => {
            let excluded = crate::obs::excluded_frames(health, robustness);
            score_jump_masked(poses, &excluded)?
        }
    })
}

/// Human-readable account of why a frame is degraded, for error
/// messages: "confidence 0.00: silhouette fragmented, area too small;
/// tracking carried over".
fn degraded_detail(h: &FrameHealth) -> String {
    let mut parts = Vec::new();
    if !h.quality.issues.is_empty() {
        let issues: Vec<String> = h.quality.issues.iter().map(|i| i.to_string()).collect();
        parts.push(format!("silhouette {}", issues.join(", ")));
    }
    if h.recovery != RecoveryAction::None {
        parts.push(format!("tracking {}", h.recovery));
    }
    if parts.is_empty() {
        parts.push("low combined confidence".to_owned());
    }
    format!("confidence {:.2}: {}", h.confidence, parts.join("; "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_motion::JumpConfig;
    use slj_video::{SceneConfig, SyntheticJump};

    fn compact_scene(clean: bool) -> SceneConfig {
        let base = if clean {
            SceneConfig::clean()
        } else {
            SceneConfig::default()
        };
        SceneConfig {
            camera: Camera::compact(),
            ..base
        }
    }

    #[test]
    fn analyzes_clean_good_jump() {
        let scene = compact_scene(true);
        let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 1);
        let analyzer = JumpAnalyzer::new(AnalyzerConfig::fast());
        let report = analyzer
            .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
            .unwrap();
        assert_eq!(report.poses.len(), 20);
        assert_eq!(report.tracking.len(), 20);
        assert!(
            report.score.score() >= 6,
            "good jump scored {}:\n{}",
            report.score.score(),
            report.score
        );
        let summary = report.summary();
        assert_eq!(summary.frames, 20);
        assert!(summary.forward_travel_m > 0.6);
        assert!(summary.total_evaluations > 0);
    }

    #[test]
    fn summary_serialises() {
        let scene = compact_scene(true);
        let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 2);
        let analyzer = JumpAnalyzer::new(AnalyzerConfig::fast());
        let report = analyzer
            .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
            .unwrap();
        let json = serde_json::to_string_pretty(&report.summary()).unwrap();
        assert!(json.contains("score"));
        let back: AnalysisSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.frames, 20);
    }

    #[test]
    fn clean_run_has_full_confidence_and_no_degraded_frames() {
        let scene = compact_scene(true);
        let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 4);
        let report = JumpAnalyzer::new(AnalyzerConfig::fast())
            .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
            .unwrap();
        assert_eq!(report.health.len(), report.poses.len());
        let summary = report.summary();
        assert!(summary.degraded_frames.is_empty());
        assert!(
            summary.mean_confidence > 0.9,
            "mean confidence {}",
            summary.mean_confidence
        );
        assert!(summary.mean_fitness.is_some());
        assert!(summary.mean_generations_to_near_best.is_some());
    }

    #[test]
    fn strict_rejects_heavily_occluded_clip_naming_first_bad_frame() {
        use slj_video::{FaultConfig, FaultInjector};
        let scene = compact_scene(true);
        let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 5);
        let (faulty, _) = FaultInjector::new(FaultConfig {
            occlusion_bars: 6,
            ..FaultConfig::default()
        })
        .inject(&jump.video);
        let err = JumpAnalyzer::new(AnalyzerConfig::fast())
            .analyze(&faulty, &scene.camera, jump.poses.poses()[0])
            .unwrap_err();
        match err {
            AnalyzeError::DegradedClip {
                first_frame,
                degraded,
                allowed,
                frames,
                ref detail,
            } => {
                assert_eq!(allowed, 0);
                assert_eq!(frames, jump.video.len());
                assert!(degraded > 0);
                assert!(first_frame < frames);
                assert!(detail.contains("confidence"), "detail: {detail}");
            }
            other => panic!("expected DegradedClip, got {other}"),
        }
    }

    #[test]
    fn best_effort_completes_where_strict_refuses() {
        use slj_video::{FaultConfig, FaultInjector};
        let scene = compact_scene(true);
        let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 5);
        let (faulty, _) = FaultInjector::new(FaultConfig {
            occlusion_bars: 6,
            ..FaultConfig::default()
        })
        .inject(&jump.video);
        let cfg = AnalyzerConfig {
            robustness: RobustnessPolicy::BestEffort {
                max_degraded_frames: 10,
            },
            ..AnalyzerConfig::fast()
        };
        let report = JumpAnalyzer::new(cfg)
            .analyze(&faulty, &scene.camera, jump.poses.poses()[0])
            .unwrap();
        let summary = report.summary();
        assert!(summary.mean_confidence < 1.0);
        // The clean run of the same jump scores >= 6; best-effort on the
        // occluded copy must stay in the same neighbourhood.
        assert!(
            report.score.score() >= 4,
            "best-effort score {}\n{}",
            report.score.score(),
            report.score
        );
    }

    #[test]
    fn best_effort_budget_still_bounds_damage() {
        use slj_video::{FaultConfig, FaultInjector};
        let scene = compact_scene(true);
        let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 5);
        let (faulty, _) = FaultInjector::new(FaultConfig {
            occlusion_bars: 6,
            ..FaultConfig::default()
        })
        .inject(&jump.video);
        let cfg = AnalyzerConfig {
            robustness: RobustnessPolicy::BestEffort {
                max_degraded_frames: 0,
            },
            ..AnalyzerConfig::fast()
        };
        let err = JumpAnalyzer::new(cfg)
            .analyze(&faulty, &scene.camera, jump.poses.poses()[0])
            .unwrap_err();
        assert!(matches!(err, AnalyzeError::DegradedClip { .. }));
    }

    #[test]
    fn summary_mean_fields_survive_json_round_trip_when_absent() {
        // Regression: a summary whose every frame was carried over used
        // to hold `mean_fitness: f64::NAN`, which serialises as `null`
        // and then fails to deserialise into a bare f64.
        let summary = AnalysisSummary {
            frames: 0,
            score: 0,
            violations: Vec::new(),
            advice: Vec::new(),
            forward_travel_m: 0.0,
            mean_fitness: None,
            mean_generations_to_near_best: None,
            total_evaluations: 0,
            degraded_frames: Vec::new(),
            mean_confidence: 0.0,
            measurement: None,
        };
        let json = serde_json::to_string(&summary).unwrap();
        let back: AnalysisSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.mean_fitness, None);
        assert_eq!(back.mean_generations_to_near_best, None);
    }

    #[test]
    fn too_short_video_errors() {
        let scene = compact_scene(true);
        let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 3);
        let one = Video::new(vec![jump.video.frames()[0].clone()], 10.0);
        let analyzer = JumpAnalyzer::new(AnalyzerConfig::fast());
        let err = analyzer
            .analyze(&one, &scene.camera, jump.poses.poses()[0])
            .unwrap_err();
        assert!(matches!(err, AnalyzeError::Segment(_)));
    }
}
