//! The end-to-end jump analyzer.
//!
//! [`JumpAnalyzer::analyze`] reproduces the complete system of the paper:
//!
//! 1. **Segment** the video (Section 2): estimate the background,
//!    subtract, repair, remove shadows → one silhouette per frame.
//! 2. **Track** the pose (Section 3): the caller supplies the
//!    first-frame stick model (the paper's "trained person" step); every
//!    later frame is fitted by the temporally-seeded GA.
//! 3. **Score** (Section 4): evaluate rules R1–R7 over the estimated
//!    pose sequence and attach coaching advice.

use crate::error::AnalyzeError;
use serde::{Deserialize, Serialize};
use slj_ga::tracker::{TemporalTracker, TrackResult, TrackerConfig};
use slj_imgproc::mask::Mask;
use slj_motion::{BodyDims, Pose, PoseSeq};
use slj_score::{score_jump, ScoreCard};
use slj_segment::pipeline::{PipelineConfig, SegmentPipeline, SegmentationResult};
use slj_video::{Camera, Video};

/// Configuration of the end-to-end analyzer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyzerConfig {
    /// Segmentation pipeline parameters (Section 2).
    pub segmentation: PipelineConfig,
    /// GA tracker parameters (Section 3).
    pub tracker: TrackerConfig,
    /// Athlete dimensions (the paper calibrates these from the
    /// hand-drawn first-frame model; here they are explicit).
    pub dims: BodyDims,
    /// Odd window size of the temporal median filter applied to the
    /// estimated pose sequence before scoring (1 disables). Scoring
    /// aggregates window extrema, so single-frame estimation outliers
    /// can flip verdicts; a 3-frame median removes them.
    pub smoothing_window: usize,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            segmentation: PipelineConfig::default(),
            tracker: TrackerConfig::default(),
            dims: BodyDims::default(),
            smoothing_window: 3,
        }
    }
}

impl AnalyzerConfig {
    /// A reduced-budget configuration for demos and debug-build tests.
    pub fn fast() -> Self {
        AnalyzerConfig {
            tracker: TrackerConfig::fast(),
            ..AnalyzerConfig::default()
        }
    }

    /// The system exactly as the paper describes it (paper segmentation
    /// settings, default tracker).
    pub fn paper() -> Self {
        AnalyzerConfig {
            segmentation: PipelineConfig::paper(),
            ..AnalyzerConfig::default()
        }
    }
}

/// Everything the end-to-end analysis produced.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// The full segmentation output (background estimate + per-frame
    /// stage masks — the paper's Figs. 1–3 intermediates).
    pub segmentation: SegmentationResult,
    /// Per-frame GA tracking diagnostics.
    pub tracking: Vec<TrackResult>,
    /// The estimated pose sequence (the paper's Figs. 6–7 stick models).
    pub poses: PoseSeq,
    /// The rule verdicts and score (the paper's Section 4).
    pub score: ScoreCard,
}

impl AnalysisReport {
    /// The final silhouette of each frame.
    pub fn silhouettes(&self) -> Vec<&Mask> {
        self.segmentation
            .frames
            .iter()
            .map(|s| &s.final_mask)
            .collect()
    }

    /// A compact serialisable summary (no pixel data).
    pub fn summary(&self) -> AnalysisSummary {
        AnalysisSummary {
            frames: self.poses.len(),
            score: self.score.score(),
            violations: self
                .score
                .violations()
                .iter()
                .map(|r| r.number())
                .collect(),
            advice: self
                .score
                .advice()
                .iter()
                .map(|(s, a)| (s.number(), (*a).to_owned()))
                .collect(),
            forward_travel_m: self.poses.forward_travel(),
            mean_fitness: {
                let finite: Vec<f64> = self
                    .tracking
                    .iter()
                    .map(|t| t.fitness)
                    .filter(|f| f.is_finite())
                    .collect();
                if finite.is_empty() {
                    f64::NAN
                } else {
                    finite.iter().sum::<f64>() / finite.len() as f64
                }
            },
            mean_generations_to_near_best: mean(
                self.tracking
                    .iter()
                    .skip(1)
                    .filter(|t| !t.carried_over)
                    .map(|t| t.generations_to_near_best as f64),
            ),
            total_evaluations: self.tracking.iter().map(|t| t.evaluations).sum(),
        }
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = iter.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Compact, JSON-friendly digest of an [`AnalysisReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisSummary {
    /// Number of analysed frames.
    pub frames: usize,
    /// Rules satisfied, 0–7.
    pub score: usize,
    /// Violated rule numbers (1-based).
    pub violations: Vec<usize>,
    /// `(standard number, advice)` per violation.
    pub advice: Vec<(usize, String)>,
    /// Horizontal travel of the trunk centre, metres.
    pub forward_travel_m: f64,
    /// Mean Eq. 3 fitness over tracked frames.
    pub mean_fitness: f64,
    /// Mean generations until the GA was within 10% of each frame's
    /// final best.
    pub mean_generations_to_near_best: f64,
    /// Total GA fitness evaluations.
    pub total_evaluations: usize,
}

/// The end-to-end analyzer.
#[derive(Debug, Clone, Default)]
pub struct JumpAnalyzer {
    config: AnalyzerConfig,
}

impl JumpAnalyzer {
    /// Creates an analyzer with the given configuration.
    pub fn new(config: AnalyzerConfig) -> Self {
        JumpAnalyzer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Runs segmentation, tracking and scoring over a clip.
    ///
    /// `first_pose` is the stick model of frame 0 — the paper's
    /// hand-drawn initialisation.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError`] when any of the three phases fails (too
    /// few frames, untrackable silhouettes, or stage windows too short
    /// to score).
    pub fn analyze(
        &self,
        video: &Video,
        camera: &Camera,
        first_pose: Pose,
    ) -> Result<AnalysisReport, AnalyzeError> {
        let segmentation = SegmentPipeline::new(self.config.segmentation.clone()).run(video)?;
        let silhouettes: Vec<Mask> = segmentation
            .frames
            .iter()
            .map(|s| s.final_mask.clone())
            .collect();
        let tracking = TemporalTracker::new(self.config.tracker).track(
            &silhouettes,
            first_pose,
            &self.config.dims,
            camera,
        )?;
        let mut poses = tracking.to_pose_seq(video.fps());
        if self.config.smoothing_window > 1 {
            poses = poses.median_smoothed(self.config.smoothing_window);
        }
        let score = score_jump(&poses)?;
        Ok(AnalysisReport {
            segmentation,
            tracking: tracking.frames,
            poses,
            score,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_motion::JumpConfig;
    use slj_video::{SceneConfig, SyntheticJump};

    fn compact_scene(clean: bool) -> SceneConfig {
        let base = if clean {
            SceneConfig::clean()
        } else {
            SceneConfig::default()
        };
        SceneConfig {
            camera: Camera::compact(),
            ..base
        }
    }

    #[test]
    fn analyzes_clean_good_jump() {
        let scene = compact_scene(true);
        let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 1);
        let analyzer = JumpAnalyzer::new(AnalyzerConfig::fast());
        let report = analyzer
            .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
            .unwrap();
        assert_eq!(report.poses.len(), 20);
        assert_eq!(report.tracking.len(), 20);
        assert!(
            report.score.score() >= 6,
            "good jump scored {}:\n{}",
            report.score.score(),
            report.score
        );
        let summary = report.summary();
        assert_eq!(summary.frames, 20);
        assert!(summary.forward_travel_m > 0.6);
        assert!(summary.total_evaluations > 0);
    }

    #[test]
    fn summary_serialises() {
        let scene = compact_scene(true);
        let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 2);
        let analyzer = JumpAnalyzer::new(AnalyzerConfig::fast());
        let report = analyzer
            .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
            .unwrap();
        let json = serde_json::to_string_pretty(&report.summary()).unwrap();
        assert!(json.contains("score"));
        let back: AnalysisSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.frames, 20);
    }

    #[test]
    fn too_short_video_errors() {
        let scene = compact_scene(true);
        let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 3);
        let one = Video::new(vec![jump.video.frames()[0].clone()], 10.0);
        let analyzer = JumpAnalyzer::new(AnalyzerConfig::fast());
        let err = analyzer
            .analyze(&one, &scene.camera, jump.poses.poses()[0])
            .unwrap_err();
        assert!(matches!(err, AnalyzeError::Segment(_)));
    }
}
