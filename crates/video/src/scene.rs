//! Scene configuration: geometry, jumper appearance, shadow and noise.

use crate::background::BackgroundStyle;
use crate::camera::Camera;
use serde::{Deserialize, Serialize};
use slj_imgproc::pixel::Rgb;
use slj_motion::StickKind;

/// Colours of the rendered jumper, per body part.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JumperAppearance {
    /// Shirt (trunk, neck, arms).
    pub shirt: Rgb,
    /// Trousers (thighs, shanks).
    pub pants: Rgb,
    /// Skin (head).
    pub skin: Rgb,
    /// Shoes (feet).
    pub shoes: Rgb,
}

impl JumperAppearance {
    /// The colour used for a given stick.
    pub fn color_for(&self, stick: StickKind) -> Rgb {
        match stick {
            StickKind::Trunk | StickKind::Neck | StickKind::UpperArm | StickKind::Forearm => {
                self.shirt
            }
            StickKind::Thigh | StickKind::Shank => self.pants,
            StickKind::Head => self.skin,
            StickKind::Foot => self.shoes,
        }
    }
}

impl Default for JumperAppearance {
    fn default() -> Self {
        JumperAppearance {
            shirt: Rgb::new(60, 90, 160),
            pants: Rgb::new(50, 50, 60),
            skin: Rgb::new(224, 172, 138),
            shoes: Rgb::new(240, 240, 240),
        }
    }
}

/// Cast-shadow parameters. The shadow is a sheared, vertically squashed
/// copy of the silhouette laid on the ground and rendered by scaling the
/// background's brightness — exactly the photometric model (value drops,
/// hue nearly unchanged) that the paper's HSV shadow detector (Eqs. 1–2)
/// assumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowConfig {
    /// Whether to cast a shadow at all.
    pub enabled: bool,
    /// Brightness scale inside the shadow (`< 1` darkens).
    pub strength: f64,
    /// Horizontal shear: shadow x-offset per metre of subject height.
    pub shear: f64,
    /// Vertical squash of the silhouette onto the ground (0–1).
    pub squash: f64,
    /// Saturation scale inside the shadow (shadows on matte ground are
    /// slightly more saturated; the detector's β/α band covers this).
    pub saturation_scale: f64,
}

impl Default for ShadowConfig {
    fn default() -> Self {
        ShadowConfig {
            enabled: true,
            strength: 0.62,
            shear: 0.45,
            squash: 0.22,
            saturation_scale: 1.05,
        }
    }
}

/// Sensor/scene noise parameters (the artefacts of the paper's Steps
/// 3–4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Per-pixel uniform channel jitter amplitude (intensity levels).
    pub pixel_jitter: u8,
    /// Global per-frame brightness flicker fraction (e.g. 0.01 = ±1%).
    pub flicker: f64,
    /// Number of drifting clutter spots.
    pub spot_count: usize,
    /// Maximum spot radius, pixels.
    pub spot_max_radius: f64,
    /// Number of low-contrast "camouflage" patches on the jumper that
    /// background subtraction will miss (producing holes).
    pub camo_patches: usize,
    /// Radius of the camouflage patches, pixels.
    pub camo_radius: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            pixel_jitter: 5,
            flicker: 0.008,
            spot_count: 3,
            spot_max_radius: 4.0,
            camo_patches: 3,
            camo_radius: 2.5,
        }
    }
}

impl NoiseConfig {
    /// A completely noise-free configuration (for isolating pipeline
    /// stages in tests and ablations).
    pub fn none() -> Self {
        NoiseConfig {
            pixel_jitter: 0,
            flicker: 0.0,
            spot_count: 0,
            spot_max_radius: 1.5,
            camo_patches: 0,
            camo_radius: 0.0,
        }
    }
}

/// Full scene description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SceneConfig {
    /// The fixed side-view camera.
    pub camera: Camera,
    /// Background texture style.
    pub background: BackgroundStyle,
    /// Jumper colours.
    pub jumper: JumperAppearance,
    /// Shadow model.
    pub shadow: ShadowConfig,
    /// Noise model.
    pub noise: NoiseConfig,
}

impl SceneConfig {
    /// A clean scene: no noise, no shadow. The segmentation pipeline
    /// should be near-perfect here; used as the control condition.
    pub fn clean() -> Self {
        SceneConfig {
            noise: NoiseConfig::none(),
            shadow: ShadowConfig {
                enabled: false,
                ..ShadowConfig::default()
            },
            ..SceneConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appearance_covers_all_sticks() {
        let a = JumperAppearance::default();
        for s in slj_motion::model::ALL_STICKS {
            // Must not be background-ish gray; just ensure it's defined
            // and distinct from pure black for the default palette.
            let c = a.color_for(s);
            let _ = c;
        }
        assert_eq!(a.color_for(StickKind::Head), a.skin);
        assert_eq!(a.color_for(StickKind::Forearm), a.shirt);
        assert_eq!(a.color_for(StickKind::Shank), a.pants);
        assert_eq!(a.color_for(StickKind::Foot), a.shoes);
    }

    #[test]
    fn clean_scene_disables_noise_and_shadow() {
        let s = SceneConfig::clean();
        assert!(!s.shadow.enabled);
        assert_eq!(s.noise.pixel_jitter, 0);
        assert_eq!(s.noise.spot_count, 0);
        assert_eq!(s.noise.camo_patches, 0);
        assert_eq!(s.noise.flicker, 0.0);
    }

    #[test]
    fn default_shadow_darkens() {
        let s = ShadowConfig::default();
        assert!(s.enabled);
        assert!(s.strength < 1.0 && s.strength > 0.3);
        assert!(s.squash > 0.0 && s.squash < 1.0);
    }

    #[test]
    fn configs_serialize_roundtrip() {
        let s = SceneConfig::default();
        let json = serde_json::to_string(&s).unwrap();
        let back: SceneConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
