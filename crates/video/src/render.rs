//! Rendering: silhouettes, shadows and full frames.
//!
//! The jumper is drawn as one filled capsule per stick (the stick model
//! of Figure 4 with its per-stick thickness), which makes the *true*
//! silhouette the exact region Eq. 3's fitness is minimal over — the GA
//! is evaluated against the same shape model it searches with, as in the
//! original \[5\].

use crate::background::background_pixel;
use crate::camera::Camera;
use crate::scene::{SceneConfig, ShadowConfig};
use crate::video::Frame;
use rand::Rng;
use slj_imgproc::draw;
use slj_imgproc::geometry::Point2;
use slj_imgproc::image::ImageBuffer;
use slj_imgproc::mask::Mask;
use slj_imgproc::noise::{add_channel_jitter, apply_global_flicker, Spot};
use slj_motion::model::ALL_STICKS;
use slj_motion::{BodyDims, Pose, StickKind};

/// Rasterises the exact silhouette of a pose: the union of all eight
/// stick capsules, in image space.
pub fn render_silhouette(pose: &Pose, dims: &BodyDims, cam: &Camera) -> Mask {
    let mut mask = Mask::new(cam.width, cam.height);
    let segs = pose.segments(dims);
    for (stick, seg) in segs.iter() {
        let seg_px = cam.segment_to_image(seg);
        let r_px = cam.length_to_pixels(dims.thickness(stick));
        draw::fill_capsule_mask(&mut mask, seg_px, r_px);
    }
    mask
}

/// The ground-shadow region of a silhouette: each silhouette pixel at
/// height `h` above the ground maps to a shadow pixel sheared forward by
/// `shear·h` and squashed to `squash·h` below/above the ground row.
/// Implemented by inverse mapping so the shadow region has no sampling
/// holes.
pub fn render_shadow_mask(silhouette: &Mask, cam: &Camera, shadow: &ShadowConfig) -> Mask {
    if !shadow.enabled || shadow.squash <= 0.0 {
        return Mask::new(silhouette.width(), silhouette.height());
    }
    let ground = cam.ground_row;
    Mask::from_fn(silhouette.width(), silhouette.height(), |x, y| {
        // Shadow occupies rows at/below the silhouette's feet: the band
        // just *above* the ground row in image terms (we draw it on the
        // ground plane, which is rendered below ground_row too).
        let dy = ground - y as f64; // >0 above ground row
        if dy < -(cam.height as f64) {
            return false;
        }
        // Inverse of: y_t = ground - squash * h ; x_t = x_s + shear_px * h
        let h = dy / shadow.squash; // source height in pixels
        if h < 0.0 {
            return false;
        }
        let shear_px = shadow.shear; // per pixel of height
        let xs = x as f64 - shear_px * h;
        let ys = ground - h;
        if xs < 0.0 || ys < 0.0 {
            return false;
        }
        silhouette.get(xs.round() as usize, ys.round() as usize)
    })
}

/// Where the camouflage patches sit on the body: `(stick, fraction along
/// the stick)`. Fixed positions so the patches move with the jumper.
const CAMO_SITES: [(StickKind, f64); 6] = [
    (StickKind::Trunk, 0.35),
    (StickKind::Trunk, 0.7),
    (StickKind::Thigh, 0.5),
    (StickKind::Shank, 0.4),
    (StickKind::UpperArm, 0.6),
    (StickKind::Forearm, 0.5),
];

/// Renders one full video frame: background, cast shadow, drifting
/// clutter spots, the jumper, camouflage patches, then sensor noise.
///
/// `spots` is the persistent clutter population (drifting across
/// frames); `frame_index` advances their motion; `rng` drives the
/// per-frame sensor noise.
pub fn render_frame<R: Rng>(
    scene: &SceneConfig,
    dims: &BodyDims,
    pose: &Pose,
    spots: &[Spot],
    frame_index: usize,
    rng: &mut R,
    background_seed: u64,
) -> Frame {
    let cam = &scene.camera;
    let mut frame: Frame = ImageBuffer::from_fn(cam.width, cam.height, |x, y| {
        background_pixel(x, y, cam, &scene.background, background_seed)
    });

    // Cast shadow: darken the background photometrically.
    let silhouette = render_silhouette(pose, dims, cam);
    if scene.shadow.enabled {
        let shadow = render_shadow_mask(&silhouette, cam, &scene.shadow);
        for (x, y) in shadow.foreground_pixels() {
            let p = frame.get(x, y);
            let mut hsv = p.to_hsv();
            hsv.v *= scene.shadow.strength;
            hsv.s = (hsv.s * scene.shadow.saturation_scale).clamp(0.0, 1.0);
            frame.set(x, y, hsv.to_rgb());
        }
    }

    // Clutter spots (occluded by the jumper, so drawn first).
    for spot in spots {
        spot.render(&mut frame, frame_index);
    }

    // The jumper: per-stick coloured capsules.
    let segs = pose.segments(dims);
    for stick in ALL_STICKS {
        let seg_px = cam.segment_to_image(segs.segment(stick));
        let r_px = cam.length_to_pixels(dims.thickness(stick));
        draw::fill_capsule(&mut frame, seg_px, r_px, scene.jumper.color_for(stick));
    }

    // Camouflage patches: body spots whose colour matches the background
    // *behind* them, so background subtraction misses them → holes the
    // paper's Step 4 has to repair.
    let n_patches = scene.noise.camo_patches.min(CAMO_SITES.len());
    for &(stick, frac) in CAMO_SITES.iter().take(n_patches) {
        let seg = segs.segment(stick);
        let world = seg.a.lerp(seg.b, frac);
        let px = cam.world_to_image(world);
        let (cx, cy) = (px.x.round() as isize, px.y.round() as isize);
        if cx >= 0 && cy >= 0 && (cx as usize) < cam.width && (cy as usize) < cam.height {
            let camo = background_pixel(
                cx as usize,
                cy as usize,
                cam,
                &scene.background,
                background_seed,
            );
            draw::fill_disc(
                &mut frame,
                Point2::new(px.x, px.y),
                scene.noise.camo_radius,
                camo,
            );
        }
    }

    // Sensor noise: global flicker then per-pixel jitter.
    apply_global_flicker(&mut frame, scene.noise.flicker, rng);
    add_channel_jitter(&mut frame, scene.noise.pixel_jitter, rng);

    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use slj_imgproc::moments;
    use slj_imgproc::pixel::Rgb;

    fn setup() -> (SceneConfig, BodyDims, Pose) {
        let scene = SceneConfig::default();
        let dims = BodyDims::default();
        let mut pose = Pose::standing(&dims);
        pose.center.x = 0.5;
        (scene, dims, pose)
    }

    #[test]
    fn silhouette_is_nonempty_and_human_sized() {
        let (scene, dims, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &scene.camera);
        // A 1.3 m child at 130 px/m spans ~169 px tall; silhouette area
        // should be a few thousand pixels.
        assert!(sil.count() > 1500, "area {}", sil.count());
        assert!(sil.count() < 15000, "area {}", sil.count());
        let bb = moments::bounding_box(&sil).unwrap();
        assert!(bb.height() > 140, "height {}", bb.height());
        // Taller than wide for a standing pose.
        assert!(bb.height() > bb.width());
    }

    #[test]
    fn silhouette_feet_touch_ground_row() {
        let (scene, dims, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &scene.camera);
        let bb = moments::bounding_box(&sil).unwrap();
        let ground = scene.camera.ground_row as usize;
        assert!(
            (bb.y_max as isize - ground as isize).abs() <= 3,
            "feet at row {} vs ground {}",
            bb.y_max,
            ground
        );
    }

    #[test]
    fn shadow_sits_on_the_ground_sheared_forward() {
        let (scene, dims, pose) = setup();
        let cam = &scene.camera;
        let sil = render_silhouette(&pose, &dims, cam);
        let shadow = render_shadow_mask(&sil, cam, &scene.shadow);
        assert!(!shadow.is_blank());
        let bb = moments::bounding_box(&shadow).unwrap();
        let sil_bb = moments::bounding_box(&sil).unwrap();
        // Shadow is squashed: much shorter than the body.
        assert!(bb.height() < sil_bb.height() / 2);
        // Shadow hugs the ground row.
        assert!((bb.y_max as f64 - cam.ground_row).abs() <= 2.0);
        // Sheared toward +x: shadow extends beyond the body's right edge.
        assert!(bb.x_max > sil_bb.x_max);
    }

    #[test]
    fn shadow_disabled_is_blank() {
        let (mut scene, dims, pose) = setup();
        scene.shadow.enabled = false;
        let sil = render_silhouette(&pose, &dims, &scene.camera);
        let shadow = render_shadow_mask(&sil, &scene.camera, &scene.shadow);
        assert!(shadow.is_blank());
    }

    #[test]
    fn shadow_preserves_hue_reduces_value() {
        // The photometric property Eqs. 1–2 rely on.
        let (scene, dims, pose) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut clean = scene.clone();
        clean.noise = crate::scene::NoiseConfig::none();
        let frame = render_frame(&clean, &dims, &pose, &[], 0, &mut rng, 11);
        let cam = &clean.camera;
        let sil = render_silhouette(&pose, &dims, cam);
        let shadow = render_shadow_mask(&sil, cam, &clean.shadow);
        // Sample shadow pixels not under the jumper.
        let mut checked = 0;
        for (x, y) in shadow.foreground_pixels() {
            if sil.get(x, y) {
                continue;
            }
            let bg = background_pixel(x, y, cam, &clean.background, 11);
            let observed = frame.get(x, y);
            let dv = observed.to_hsv().v / bg.to_hsv().v.max(1e-6);
            assert!(dv < 0.85, "shadow pixel barely darker: ratio {dv}");
            let dh = observed.to_hsv().hue_distance(bg.to_hsv());
            assert!(dh < 25.0, "hue shifted by {dh}°");
            checked += 1;
            if checked > 200 {
                break;
            }
        }
        assert!(checked > 50, "too few shadow pixels sampled: {checked}");
    }

    #[test]
    fn frame_shows_jumper_colors() {
        let (scene, dims, pose) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let frame = render_frame(&scene, &dims, &pose, &[], 0, &mut rng, 11);
        // The trunk centre pixel should be shirt-coloured (within noise).
        let c_px = scene.camera.world_to_image(pose.center);
        let observed = frame.get(c_px.x.round() as usize, c_px.y.round() as usize);
        assert!(
            observed.l1_distance(scene.jumper.shirt) < 60,
            "trunk pixel {observed} vs shirt {}",
            scene.jumper.shirt
        );
    }

    #[test]
    fn spots_are_occluded_by_jumper() {
        let (mut scene, dims, pose) = setup();
        scene.noise = crate::scene::NoiseConfig::none();
        let c_px = scene.camera.world_to_image(pose.center);
        let spot = Spot {
            x: c_px.x,
            y: c_px.y,
            vx: 0.0,
            vy: 0.0,
            radius: 3.0,
            color: Rgb::new(255, 0, 0),
        };
        let mut rng = StdRng::seed_from_u64(3);
        let frame = render_frame(&scene, &dims, &pose, &[spot], 0, &mut rng, 11);
        let observed = frame.get(c_px.x.round() as usize, c_px.y.round() as usize);
        // Jumper shirt hides the red spot.
        assert_eq!(observed, scene.jumper.shirt);
    }

    #[test]
    fn spots_visible_off_body() {
        let (mut scene, dims, pose) = setup();
        scene.noise = crate::scene::NoiseConfig::none();
        scene.shadow.enabled = false;
        let spot = Spot {
            x: 300.0,
            y: 40.0,
            vx: 0.0,
            vy: 0.0,
            radius: 3.0,
            color: Rgb::new(255, 0, 0),
        };
        let mut rng = StdRng::seed_from_u64(4);
        let frame = render_frame(&scene, &dims, &pose, &[spot], 0, &mut rng, 11);
        assert_eq!(frame.get(300, 40), Rgb::new(255, 0, 0));
    }

    #[test]
    fn camo_patches_match_background() {
        let (mut scene, dims, pose) = setup();
        scene.noise.pixel_jitter = 0;
        scene.noise.flicker = 0.0;
        scene.noise.camo_patches = 3;
        let mut rng = StdRng::seed_from_u64(5);
        let frame = render_frame(&scene, &dims, &pose, &[], 0, &mut rng, 11);
        // The first camo site (trunk @ 0.35) must equal the background
        // colour exactly.
        let segs = pose.segments(&dims);
        let seg = segs.segment(StickKind::Trunk);
        let world = seg.a.lerp(seg.b, 0.35);
        let px = scene.camera.world_to_image(world);
        let (x, y) = (px.x.round() as usize, px.y.round() as usize);
        let bg = background_pixel(x, y, &scene.camera, &scene.background, 11);
        assert_eq!(frame.get(x, y), bg);
    }

    #[test]
    fn zero_camo_config_leaves_body_solid() {
        let (mut scene, dims, pose) = setup();
        scene.noise = crate::scene::NoiseConfig::none();
        let mut rng = StdRng::seed_from_u64(6);
        let frame = render_frame(&scene, &dims, &pose, &[], 0, &mut rng, 11);
        let segs = pose.segments(&dims);
        let seg = segs.segment(StickKind::Trunk);
        let world = seg.a.lerp(seg.b, 0.35);
        let px = scene.camera.world_to_image(world);
        assert_eq!(
            frame.get(px.x.round() as usize, px.y.round() as usize),
            scene.jumper.shirt
        );
    }

    #[test]
    fn rendering_is_deterministic_given_seeds() {
        let (scene, dims, pose) = setup();
        let f1 = render_frame(
            &scene,
            &dims,
            &pose,
            &[],
            0,
            &mut StdRng::seed_from_u64(9),
            11,
        );
        let f2 = render_frame(
            &scene,
            &dims,
            &pose,
            &[],
            0,
            &mut StdRng::seed_from_u64(9),
            11,
        );
        assert_eq!(f1, f2);
    }
}
