//! Clip persistence: a video is a directory of numbered PPM frames plus
//! a small JSON metadata file.
//!
//! The paper's future work imagines users uploading "a video sequence of
//! a standing long jump"; this module is the ingestion path for that —
//! any tool that can emit PPM frames can feed the analyzer.

use crate::video::{Frame, Video};
use serde::{Deserialize, Serialize};
use slj_imgproc::{io as img_io, ImgError};
use std::path::Path;

/// Sidecar metadata stored next to the frames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ClipMeta {
    fps: f64,
    frames: usize,
}

const META_FILE: &str = "clip.json";

/// Saves a video as `frame_0000.ppm … frame_NNNN.ppm` plus `clip.json`
/// in `dir` (created if missing).
///
/// # Errors
///
/// Returns [`ImgError::Io`] on any filesystem failure.
pub fn save_video<P: AsRef<Path>>(video: &Video, dir: P) -> Result<(), ImgError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    for (k, frame) in video.iter().enumerate() {
        img_io::save_ppm(frame, dir.join(format!("frame_{k:04}.ppm")))?;
    }
    let meta = ClipMeta {
        fps: video.fps(),
        frames: video.len(),
    };
    let json = serde_json::to_string_pretty(&meta)
        .map_err(|e| ImgError::Decode(format!("metadata encode: {e}")))?;
    std::fs::write(dir.join(META_FILE), json)?;
    Ok(())
}

/// Loads a video saved by [`save_video`].
///
/// # Errors
///
/// Returns [`ImgError::Io`] on filesystem failure and
/// [`ImgError::Decode`] when the metadata or any frame is malformed or
/// missing.
pub fn load_video<P: AsRef<Path>>(dir: P) -> Result<Video, ImgError> {
    let dir = dir.as_ref();
    let meta_raw = std::fs::read_to_string(dir.join(META_FILE))?;
    let meta: ClipMeta = serde_json::from_str(&meta_raw)
        .map_err(|e| ImgError::Decode(format!("metadata decode: {e}")))?;
    let mut frames: Vec<Frame> = Vec::with_capacity(meta.frames);
    for k in 0..meta.frames {
        let path = dir.join(format!("frame_{k:04}.ppm"));
        let file = std::fs::File::open(&path)
            .map_err(|e| ImgError::Decode(format!("missing frame {k}: {e}")))?;
        frames.push(img_io::read_ppm(file)?);
    }
    Ok(Video::new(frames, meta.fps))
}

/// Renders a video as one byte stream of concatenated binary P6 PPM
/// frames — exactly the bytes of the on-disk clip format's
/// `frame_*.ppm` files laid end to end, in order. This is the wire
/// shape of a clip for `OPEN_CLIP` ingestion (the frame rate travels
/// separately in the open request).
pub fn ppm_stream(video: &Video) -> Vec<u8> {
    let mut out = Vec::new();
    for frame in video.iter() {
        img_io::write_ppm(frame, &mut out).expect("writing to a Vec cannot fail");
    }
    out
}

/// One whitespace-delimited PPM header token from the front of `rest`,
/// skipping `#` comments — the slice-cursor twin of the imgproc
/// reader's tokenizer, needed because concatenated frames share one
/// buffer and a buffered reader would consume past the current frame.
fn ppm_token(rest: &mut &[u8]) -> Result<String, ImgError> {
    use std::io::{BufRead, Read};
    let mut token = String::new();
    let mut byte = [0u8; 1];
    loop {
        if rest.read(&mut byte)? == 0 {
            return Err(ImgError::Decode("unexpected end of clip stream".into()));
        }
        match byte[0] {
            b'#' => {
                let mut line = String::new();
                rest.read_line(&mut line)?;
            }
            c if c.is_ascii_whitespace() => {}
            c => {
                token.push(c as char);
                break;
            }
        }
    }
    loop {
        if rest.read(&mut byte)? == 0 {
            break;
        }
        if byte[0].is_ascii_whitespace() {
            break;
        }
        token.push(byte[0] as char);
    }
    Ok(token)
}

/// Decodes a [`ppm_stream`] back into frames. The inverse is not
/// byte-exact in general (comments and whitespace variants are
/// accepted) but `frames_from_ppm_stream(&ppm_stream(v))` reproduces
/// `v`'s frames exactly.
///
/// Every declared pixel payload is validated against the bytes
/// actually present *before* any buffer is allocated, so a malicious
/// header cannot force a large allocation.
///
/// # Errors
///
/// [`ImgError::Decode`] naming the failing frame on any malformed
/// header, truncated pixel data, or an empty stream.
pub fn frames_from_ppm_stream(bytes: &[u8]) -> Result<Vec<Frame>, ImgError> {
    use std::io::Read;
    let mut rest = bytes;
    let mut frames: Vec<Frame> = Vec::new();
    while !rest.is_empty() {
        let k = frames.len();
        let frame_err = |detail: String| ImgError::Decode(format!("clip frame {k}: {detail}"));
        let magic = ppm_token(&mut rest)?;
        if magic != "P6" {
            return Err(frame_err(format!("expected magic P6, got {magic}")));
        }
        let w: usize = ppm_token(&mut rest)?
            .parse()
            .map_err(|e| frame_err(format!("bad width: {e}")))?;
        let h: usize = ppm_token(&mut rest)?
            .parse()
            .map_err(|e| frame_err(format!("bad height: {e}")))?;
        let maxval: usize = ppm_token(&mut rest)?
            .parse()
            .map_err(|e| frame_err(format!("bad maxval: {e}")))?;
        if maxval != 255 {
            return Err(frame_err(format!(
                "only maxval 255 supported, got {maxval}"
            )));
        }
        let n = w
            .checked_mul(h)
            .and_then(|px| px.checked_mul(3))
            .ok_or_else(|| frame_err("frame dimensions overflow".into()))?;
        if n > rest.len() {
            return Err(frame_err(format!(
                "truncated pixel data: {n} bytes declared, {} left",
                rest.len()
            )));
        }
        let mut buf = vec![0u8; n];
        rest.read_exact(&mut buf)?;
        let pixels: Vec<slj_imgproc::Rgb> = buf
            .chunks_exact(3)
            .map(|c| slj_imgproc::Rgb::new(c[0], c[1], c[2]))
            .collect();
        frames.push(slj_imgproc::ImageBuffer::from_vec(w, h, pixels)?);
    }
    if frames.is_empty() {
        return Err(ImgError::Decode("empty clip stream".into()));
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::SceneConfig;
    use crate::synthjump::SyntheticJump;
    use slj_motion::JumpConfig;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("slj_video_io_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn roundtrip_preserves_clip() {
        let dir = temp_dir("roundtrip");
        let scene = SceneConfig {
            camera: crate::Camera::compact(),
            ..SceneConfig::default()
        };
        let jump = SyntheticJump::generate(
            &scene,
            &JumpConfig {
                frames: 4,
                ..JumpConfig::default()
            },
            3,
        );
        save_video(&jump.video, &dir).unwrap();
        let back = load_video(&dir).unwrap();
        assert_eq!(back, jump.video);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_metadata_errors() {
        let dir = temp_dir("missing_meta");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load_video(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_frame_errors() {
        let dir = temp_dir("missing_frame");
        let scene = SceneConfig {
            camera: crate::Camera::compact(),
            ..SceneConfig::default()
        };
        let jump = SyntheticJump::generate(
            &scene,
            &JumpConfig {
                frames: 3,
                ..JumpConfig::default()
            },
            4,
        );
        save_video(&jump.video, &dir).unwrap();
        std::fs::remove_file(dir.join("frame_0001.ppm")).unwrap();
        let err = load_video(&dir).unwrap_err();
        assert!(err.to_string().contains("frame 1"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ppm_stream_round_trips_frames() {
        let scene = SceneConfig {
            camera: crate::Camera::compact(),
            ..SceneConfig::default()
        };
        let jump = SyntheticJump::generate(
            &scene,
            &JumpConfig {
                frames: 4,
                ..JumpConfig::default()
            },
            6,
        );
        let bytes = ppm_stream(&jump.video);
        let frames = frames_from_ppm_stream(&bytes).unwrap();
        assert_eq!(frames, jump.video.frames());
    }

    #[test]
    fn ppm_stream_decode_rejects_malformed_input() {
        // Empty stream.
        assert!(frames_from_ppm_stream(b"").is_err());
        // Wrong magic.
        assert!(frames_from_ppm_stream(b"P5\n1 1\n255\n\x00").is_err());
        // Declared pixels past the bytes present — rejected before any
        // allocation, naming the frame.
        let err = frames_from_ppm_stream(b"P6\n9999 9999\n255\nxy").unwrap_err();
        assert!(err.to_string().contains("clip frame 0"), "{err}");
        assert!(err.to_string().contains("truncated"), "{err}");
        // A valid frame followed by a torn one names frame 1.
        let mut bytes = b"P6\n1 1\n255\nabc".to_vec();
        bytes.extend_from_slice(b"P6\n1 1\n255\na");
        let err = frames_from_ppm_stream(&bytes).unwrap_err();
        assert!(err.to_string().contains("clip frame 1"), "{err}");
        // Trailing garbage after the last frame is a malformed header.
        let mut bytes = b"P6\n1 1\n255\nabc".to_vec();
        bytes.extend_from_slice(b"junk");
        assert!(frames_from_ppm_stream(&bytes).is_err());
    }

    #[test]
    fn corrupt_metadata_errors() {
        let dir = temp_dir("corrupt_meta");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(META_FILE), "not json").unwrap();
        let err = load_video(&dir).unwrap_err();
        assert!(matches!(err, ImgError::Decode(_)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
