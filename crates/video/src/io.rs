//! Clip persistence: a video is a directory of numbered PPM frames plus
//! a small JSON metadata file.
//!
//! The paper's future work imagines users uploading "a video sequence of
//! a standing long jump"; this module is the ingestion path for that —
//! any tool that can emit PPM frames can feed the analyzer.

use crate::video::{Frame, Video};
use serde::{Deserialize, Serialize};
use slj_imgproc::{io as img_io, ImgError};
use std::path::Path;

/// Sidecar metadata stored next to the frames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ClipMeta {
    fps: f64,
    frames: usize,
}

const META_FILE: &str = "clip.json";

/// Saves a video as `frame_0000.ppm … frame_NNNN.ppm` plus `clip.json`
/// in `dir` (created if missing).
///
/// # Errors
///
/// Returns [`ImgError::Io`] on any filesystem failure.
pub fn save_video<P: AsRef<Path>>(video: &Video, dir: P) -> Result<(), ImgError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    for (k, frame) in video.iter().enumerate() {
        img_io::save_ppm(frame, dir.join(format!("frame_{k:04}.ppm")))?;
    }
    let meta = ClipMeta {
        fps: video.fps(),
        frames: video.len(),
    };
    let json = serde_json::to_string_pretty(&meta)
        .map_err(|e| ImgError::Decode(format!("metadata encode: {e}")))?;
    std::fs::write(dir.join(META_FILE), json)?;
    Ok(())
}

/// Loads a video saved by [`save_video`].
///
/// # Errors
///
/// Returns [`ImgError::Io`] on filesystem failure and
/// [`ImgError::Decode`] when the metadata or any frame is malformed or
/// missing.
pub fn load_video<P: AsRef<Path>>(dir: P) -> Result<Video, ImgError> {
    let dir = dir.as_ref();
    let meta_raw = std::fs::read_to_string(dir.join(META_FILE))?;
    let meta: ClipMeta = serde_json::from_str(&meta_raw)
        .map_err(|e| ImgError::Decode(format!("metadata decode: {e}")))?;
    let mut frames: Vec<Frame> = Vec::with_capacity(meta.frames);
    for k in 0..meta.frames {
        let path = dir.join(format!("frame_{k:04}.ppm"));
        let file = std::fs::File::open(&path)
            .map_err(|e| ImgError::Decode(format!("missing frame {k}: {e}")))?;
        frames.push(img_io::read_ppm(file)?);
    }
    Ok(Video::new(frames, meta.fps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::SceneConfig;
    use crate::synthjump::SyntheticJump;
    use slj_motion::JumpConfig;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("slj_video_io_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn roundtrip_preserves_clip() {
        let dir = temp_dir("roundtrip");
        let scene = SceneConfig {
            camera: crate::Camera::compact(),
            ..SceneConfig::default()
        };
        let jump = SyntheticJump::generate(
            &scene,
            &JumpConfig {
                frames: 4,
                ..JumpConfig::default()
            },
            3,
        );
        save_video(&jump.video, &dir).unwrap();
        let back = load_video(&dir).unwrap();
        assert_eq!(back, jump.video);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_metadata_errors() {
        let dir = temp_dir("missing_meta");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load_video(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_frame_errors() {
        let dir = temp_dir("missing_frame");
        let scene = SceneConfig {
            camera: crate::Camera::compact(),
            ..SceneConfig::default()
        };
        let jump = SyntheticJump::generate(
            &scene,
            &JumpConfig {
                frames: 3,
                ..JumpConfig::default()
            },
            4,
        );
        save_video(&jump.video, &dir).unwrap();
        std::fs::remove_file(dir.join("frame_0001.ppm")).unwrap();
        let err = load_video(&dir).unwrap_err();
        assert!(err.to_string().contains("frame 1"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_metadata_errors() {
        let dir = temp_dir("corrupt_meta");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(META_FILE), "not json").unwrap();
        let err = load_video(&dir).unwrap_err();
        assert!(matches!(err, ImgError::Decode(_)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
