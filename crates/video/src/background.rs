//! Procedural static background.
//!
//! The paper's Figure 1 shows a schoolyard: a textured wall above a
//! lighter ground strip. The generator reproduces that structure — a
//! vertically graded wall with faint vertical panel stripes, a ground
//! band below the camera's ground row with its own horizontal grading —
//! plus deterministic per-pixel value noise so background subtraction
//! has realistic (non-flat) statistics. The texture is a pure function
//! of `(x, y, seed)`, so the *true* background is available at any time
//! without storing it.

use crate::camera::Camera;
use crate::video::Frame;
use serde::{Deserialize, Serialize};
use slj_imgproc::image::ImageBuffer;
use slj_imgproc::pixel::Rgb;

/// Parameters of the background texture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackgroundStyle {
    /// Base wall colour.
    pub wall: Rgb,
    /// Base ground colour.
    pub ground: Rgb,
    /// Amplitude of deterministic per-pixel texture noise (intensity
    /// levels).
    pub texture_amp: u8,
    /// Width of the faint vertical wall panels, pixels; 0 disables.
    pub panel_width: usize,
    /// Extra brightness of alternating panels (intensity levels).
    pub panel_contrast: u8,
}

impl Default for BackgroundStyle {
    fn default() -> Self {
        BackgroundStyle {
            wall: Rgb::new(172, 168, 158),
            ground: Rgb::new(196, 186, 150),
            texture_amp: 6,
            panel_width: 40,
            panel_contrast: 8,
        }
    }
}

/// A fast deterministic pixel hash → `[0, 1)`. (SplitMix64 finaliser;
/// quality far beyond what texture noise needs.)
fn hash01(x: usize, y: usize, seed: u64) -> f64 {
    let mut z = seed
        .wrapping_add((x as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((y as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// The true background colour at one pixel.
pub fn background_pixel(
    x: usize,
    y: usize,
    cam: &Camera,
    style: &BackgroundStyle,
    seed: u64,
) -> Rgb {
    let ground_row = cam.ground_row as usize;
    let base = if y >= ground_row {
        // Ground band: slightly darker with depth.
        let depth = (y - ground_row) as f64 / cam.height.max(1) as f64;
        style.ground.scale_brightness(1.0 - 0.25 * depth)
    } else {
        // Wall: brighter toward the top, faint vertical panels.
        let up = (ground_row.saturating_sub(y)) as f64 / ground_row.max(1) as f64;
        let mut c = style.wall.scale_brightness(0.92 + 0.16 * up);
        if style.panel_width > 0 && (x / style.panel_width) % 2 == 1 {
            let add = |v: u8| v.saturating_add(style.panel_contrast);
            c = Rgb::new(add(c.r), add(c.g), add(c.b));
        }
        c
    };
    // Deterministic texture grain.
    if style.texture_amp == 0 {
        return base;
    }
    let n = (hash01(x, y, seed) - 0.5) * 2.0 * style.texture_amp as f64;
    let t = |v: u8| (v as f64 + n).round().clamp(0.0, 255.0) as u8;
    Rgb::new(t(base.r), t(base.g), t(base.b))
}

/// Renders the full true background frame.
pub fn render_background(cam: &Camera, style: &BackgroundStyle, seed: u64) -> Frame {
    ImageBuffer::from_fn(cam.width, cam.height, |x, y| {
        background_pixel(x, y, cam, style, seed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> Camera {
        Camera::default()
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = render_background(&cam(), &BackgroundStyle::default(), 3);
        let b = render_background(&cam(), &BackgroundStyle::default(), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_grain() {
        let a = render_background(&cam(), &BackgroundStyle::default(), 3);
        let b = render_background(&cam(), &BackgroundStyle::default(), 4);
        assert_ne!(a, b);
    }

    #[test]
    fn ground_below_ground_row() {
        let c = cam();
        let style = BackgroundStyle {
            texture_amp: 0,
            ..BackgroundStyle::default()
        };
        let bg = render_background(&c, &style, 0);
        let wall_px = bg.get(10, 50);
        let ground_px = bg.get(10, c.ground_row as usize + 5);
        // Ground is the yellower colour (more red+green vs blue).
        assert!(ground_px.b < wall_px.b + 20);
        assert_ne!(wall_px, ground_px);
    }

    #[test]
    fn texture_amp_bounds_grain() {
        let c = cam();
        let flat = BackgroundStyle {
            texture_amp: 0,
            ..BackgroundStyle::default()
        };
        let noisy = BackgroundStyle::default();
        let a = render_background(&c, &flat, 5);
        let b = render_background(&c, &noisy, 5);
        let max_diff = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(p, q)| p.linf_distance(*q))
            .max()
            .unwrap();
        assert!(max_diff <= noisy.texture_amp as u32 + 1);
        assert!(max_diff > 0);
    }

    #[test]
    fn panels_modulate_wall() {
        let c = cam();
        let style = BackgroundStyle {
            texture_amp: 0,
            panel_width: 20,
            panel_contrast: 10,
            ..BackgroundStyle::default()
        };
        let bg = render_background(&c, &style, 0);
        // Columns 10 (panel 0) and 30 (panel 1) differ by the contrast.
        let a = bg.get(10, 50);
        let b = bg.get(30, 50);
        assert_eq!(b.r, a.r + 10);
    }

    #[test]
    fn hash01_in_unit_interval_and_spread() {
        let mut lo = false;
        let mut hi = false;
        for x in 0..50 {
            for y in 0..50 {
                let v = hash01(x, y, 9);
                assert!((0.0..1.0).contains(&v));
                lo |= v < 0.25;
                hi |= v > 0.75;
            }
        }
        assert!(lo && hi, "hash output should cover the unit interval");
    }

    #[test]
    fn wall_brightens_upward() {
        let c = cam();
        let style = BackgroundStyle {
            texture_amp: 0,
            panel_width: 0,
            ..BackgroundStyle::default()
        };
        let bg = render_background(&c, &style, 0);
        assert!(bg.get(5, 10).luma() > bg.get(5, 200).luma());
    }
}
