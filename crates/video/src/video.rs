//! Frames and video sequences.

use serde::{Deserialize, Serialize};
use slj_imgproc::image::ImageBuffer;
use slj_imgproc::pixel::Rgb;

/// One RGB video frame.
pub type Frame = ImageBuffer<Rgb>;

/// A short fixed-camera video clip (the paper's input: "totally 20
/// frames or so for a standing long jump video sequence").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Video {
    frames: Vec<Frame>,
    fps: f64,
}

impl Video {
    /// Creates a video from frames.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not finite/positive, or if frames have
    /// mismatched dimensions.
    pub fn new(frames: Vec<Frame>, fps: f64) -> Self {
        assert!(
            fps.is_finite() && fps > 0.0,
            "fps must be positive, got {fps}"
        );
        if let Some(first) = frames.first() {
            let dims = first.dims();
            for (i, f) in frames.iter().enumerate() {
                assert!(
                    f.dims() == dims,
                    "frame {i} is {:?}, expected {:?}",
                    f.dims(),
                    dims
                );
            }
        }
        Video { frames, fps }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the clip has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frame rate, frames per second.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// `(width, height)` of the frames, or `(0, 0)` when empty.
    pub fn dims(&self) -> (usize, usize) {
        self.frames.first().map(|f| f.dims()).unwrap_or((0, 0))
    }

    /// All frames in order.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Consumes the clip and returns its frames, in order. Lets a
    /// caller that owns the clip hand the frames on by value instead of
    /// cloning each one.
    pub fn into_frames(self) -> Vec<Frame> {
        self.frames
    }

    /// The frame at an index, if present.
    pub fn get(&self, index: usize) -> Option<&Frame> {
        self.frames.get(index)
    }

    /// Iterates over the frames.
    pub fn iter(&self) -> std::slice::Iter<'_, Frame> {
        self.frames.iter()
    }
}

impl<'a> IntoIterator for &'a Video {
    type Item = &'a Frame;
    type IntoIter = std::slice::Iter<'a, Frame>;
    fn into_iter(self) -> Self::IntoIter {
        self.frames.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(w: usize, h: usize, v: u8) -> Frame {
        ImageBuffer::filled(w, h, Rgb::splat(v))
    }

    #[test]
    fn construction_and_accessors() {
        let v = Video::new(vec![frame(4, 3, 0), frame(4, 3, 1)], 10.0);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert_eq!(v.dims(), (4, 3));
        assert_eq!(v.fps(), 10.0);
        assert_eq!(v.get(1).unwrap().get(0, 0), Rgb::splat(1));
        assert!(v.get(2).is_none());
    }

    #[test]
    fn empty_video() {
        let v = Video::new(vec![], 10.0);
        assert!(v.is_empty());
        assert_eq!(v.dims(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn mismatched_frames_rejected() {
        Video::new(vec![frame(4, 3, 0), frame(5, 3, 0)], 10.0);
    }

    #[test]
    #[should_panic(expected = "fps")]
    fn bad_fps_rejected() {
        Video::new(vec![], f64::NAN);
    }

    #[test]
    fn iteration() {
        let v = Video::new(vec![frame(2, 2, 0), frame(2, 2, 9)], 10.0);
        let vals: Vec<u8> = (&v).into_iter().map(|f| f.get(0, 0).r).collect();
        assert_eq!(vals, vec![0, 9]);
        assert_eq!(v.iter().count(), 2);
    }
}
