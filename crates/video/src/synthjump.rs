//! One-call synthetic jump generation with full ground truth.

use crate::background::render_background;
use crate::render::{render_frame, render_silhouette};
use crate::scene::SceneConfig;
use crate::video::{Frame, Video};
use rand::rngs::StdRng;
use rand::SeedableRng;
use slj_imgproc::mask::Mask;
use slj_imgproc::noise::Spot;
use slj_motion::synth::synthesize_jump;
use slj_motion::{JumpConfig, PoseSeq};

/// A synthetic standing-long-jump clip bundled with every ground truth
/// the experiments need.
#[derive(Debug, Clone)]
pub struct SyntheticJump {
    /// The rendered video (with shadow and noise).
    pub video: Video,
    /// The clean true background (no jumper, no spots, no sensor noise).
    pub true_background: Frame,
    /// The exact silhouette of the jumper, per frame.
    pub silhouettes: Vec<Mask>,
    /// The exact pose, per frame.
    pub poses: PoseSeq,
    /// The scene the clip was rendered with.
    pub scene: SceneConfig,
    /// The jump that was performed.
    pub jump: JumpConfig,
    /// The master seed the clip was generated from.
    pub seed: u64,
}

impl SyntheticJump {
    /// Generates a clip. Deterministic in `(scene, jump, seed)`.
    ///
    /// The seed feeds three independent streams: the background grain,
    /// the clutter-spot population, and the per-frame sensor noise —
    /// regenerating with the same seed reproduces the clip bit-for-bit.
    pub fn generate(scene: &SceneConfig, jump: &JumpConfig, seed: u64) -> SyntheticJump {
        let poses = synthesize_jump(jump);
        let cam = &scene.camera;
        let background_seed = seed.wrapping_mul(0x9E37_79B9).wrapping_add(1);

        let mut spot_rng = StdRng::seed_from_u64(seed.wrapping_add(0x5151));
        let spots: Vec<Spot> = (0..scene.noise.spot_count)
            .map(|_| {
                Spot::random(
                    cam.width,
                    cam.height,
                    scene.noise.spot_max_radius,
                    &mut spot_rng,
                )
            })
            .collect();

        let mut frame_rng = StdRng::seed_from_u64(seed.wrapping_add(0xF00D));
        let mut frames = Vec::with_capacity(poses.len());
        let mut silhouettes = Vec::with_capacity(poses.len());
        for (k, pose) in poses.poses().iter().enumerate() {
            frames.push(render_frame(
                scene,
                &jump.dims,
                pose,
                &spots,
                k,
                &mut frame_rng,
                background_seed,
            ));
            silhouettes.push(render_silhouette(pose, &jump.dims, cam));
        }

        SyntheticJump {
            video: Video::new(frames, jump.fps),
            true_background: render_background(cam, &scene.background, background_seed),
            silhouettes,
            poses,
            scene: scene.clone(),
            jump: jump.clone(),
            seed,
        }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.video.len()
    }

    /// Whether the clip is empty (never true for generated clips).
    pub fn is_empty(&self) -> bool {
        self.video.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_imgproc::moments;

    #[test]
    fn bundle_is_consistent() {
        let j = SyntheticJump::generate(&SceneConfig::default(), &JumpConfig::default(), 42);
        assert_eq!(j.video.len(), 20);
        assert_eq!(j.silhouettes.len(), 20);
        assert_eq!(j.poses.len(), 20);
        assert_eq!(j.video.dims(), (320, 240));
        assert_eq!(j.true_background.dims(), (320, 240));
        assert!(!j.is_empty());
        assert_eq!(j.len(), 20);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticJump::generate(&SceneConfig::default(), &JumpConfig::default(), 7);
        let b = SyntheticJump::generate(&SceneConfig::default(), &JumpConfig::default(), 7);
        assert_eq!(a.video, b.video);
        assert_eq!(a.silhouettes, b.silhouettes);
        assert_eq!(a.true_background, b.true_background);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticJump::generate(&SceneConfig::default(), &JumpConfig::default(), 7);
        let b = SyntheticJump::generate(&SceneConfig::default(), &JumpConfig::default(), 8);
        assert_ne!(a.video, b.video);
    }

    #[test]
    fn silhouette_tracks_the_moving_jumper() {
        let j = SyntheticJump::generate(&SceneConfig::default(), &JumpConfig::default(), 3);
        let first = moments::centroid(&j.silhouettes[0]).unwrap();
        let last = moments::centroid(j.silhouettes.last().unwrap()).unwrap();
        // The centroid moves right by roughly the jump distance in px.
        let px = j.scene.camera.length_to_pixels(j.jump.jump_distance);
        let moved = last.x - first.x;
        assert!(
            (0.6 * px..=1.3 * px).contains(&moved),
            "moved {moved} px, expected about {px}"
        );
    }

    #[test]
    fn silhouette_centroid_matches_projected_pose_center() {
        let j = SyntheticJump::generate(&SceneConfig::clean(), &JumpConfig::default(), 3);
        for (k, sil) in j.silhouettes.iter().enumerate() {
            let c = moments::centroid(sil).unwrap();
            let pose_px = j.scene.camera.world_to_image(j.poses.poses()[k].center);
            // The silhouette centroid is near (not exactly at) the trunk
            // centre — limbs pull it around; 30 px is a loose sanity band.
            assert!(
                c.distance(pose_px) < 30.0,
                "frame {k}: centroid {c} vs centre {pose_px}"
            );
        }
    }

    #[test]
    fn clean_scene_frame_equals_background_plus_jumper() {
        let j = SyntheticJump::generate(&SceneConfig::clean(), &JumpConfig::default(), 5);
        let frame0 = &j.video.frames()[0];
        let sil0 = &j.silhouettes[0];
        let mut diff_outside = 0u32;
        for (x, y, p) in frame0.enumerate_pixels() {
            if !sil0.get(x, y) {
                diff_outside += p.linf_distance(j.true_background.get(x, y)).min(1);
            }
        }
        assert_eq!(
            diff_outside, 0,
            "{diff_outside} non-silhouette pixels differ"
        );
    }

    #[test]
    fn noisy_scene_background_pixels_are_jittered() {
        let j = SyntheticJump::generate(&SceneConfig::default(), &JumpConfig::default(), 5);
        let frame0 = &j.video.frames()[0];
        let changed = frame0
            .enumerate_pixels()
            .filter(|&(x, y, p)| p != j.true_background.get(x, y))
            .count();
        // Most pixels should be perturbed by jitter/flicker.
        assert!(changed > frame0.len() / 2, "only {changed} pixels changed");
    }
}
