//! The world ↔ image transform.
//!
//! World space is metres, y-up, ground at `y = 0`, jump travelling toward
//! +x. Image space is pixels, y-down, origin top-left. The camera is the
//! paper's fixed side-view CCD camera: a pure scale + flip + translate
//! (no perspective — the subject moves in a plane parallel to the image
//! plane, which is also what makes the paper's 2-D analysis valid).

use serde::{Deserialize, Serialize};
use slj_imgproc::geometry::{Point2, Segment};

/// A fixed orthographic side-view camera.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Camera {
    /// Image width, pixels.
    pub width: usize,
    /// Image height, pixels.
    pub height: usize,
    /// Scale, pixels per world metre.
    pub pixels_per_meter: f64,
    /// World x (metres) that maps to image column 0.
    pub world_left: f64,
    /// Image row (pixels, y-down) of the world ground plane `y = 0`.
    pub ground_row: f64,
}

impl Camera {
    /// A camera framing a world window: `world_left..` maps across the
    /// image width at the given scale, with the ground placed at
    /// `ground_row`.
    ///
    /// # Panics
    ///
    /// Panics if `pixels_per_meter` is not finite and positive, or if the
    /// image is empty.
    pub fn new(
        width: usize,
        height: usize,
        pixels_per_meter: f64,
        world_left: f64,
        ground_row: f64,
    ) -> Self {
        assert!(width > 0 && height > 0, "camera image must be non-empty");
        assert!(
            pixels_per_meter.is_finite() && pixels_per_meter > 0.0,
            "pixels_per_meter must be positive, got {pixels_per_meter}"
        );
        Camera {
            width,
            height,
            pixels_per_meter,
            world_left,
            ground_row,
        }
    }

    /// World point (metres, y-up) to image point (pixels, y-down).
    pub fn world_to_image(&self, p: Point2) -> Point2 {
        Point2::new(
            (p.x - self.world_left) * self.pixels_per_meter,
            self.ground_row - p.y * self.pixels_per_meter,
        )
    }

    /// Image point (pixels, y-down) to world point (metres, y-up).
    pub fn image_to_world(&self, p: Point2) -> Point2 {
        Point2::new(
            p.x / self.pixels_per_meter + self.world_left,
            (self.ground_row - p.y) / self.pixels_per_meter,
        )
    }

    /// Converts a world segment to image space.
    pub fn segment_to_image(&self, s: Segment) -> Segment {
        Segment::new(self.world_to_image(s.a), self.world_to_image(s.b))
    }

    /// Converts a world length (metres) to pixels.
    pub fn length_to_pixels(&self, meters: f64) -> f64 {
        meters * self.pixels_per_meter
    }

    /// Converts a pixel length to world metres.
    pub fn pixels_to_length(&self, pixels: f64) -> f64 {
        pixels / self.pixels_per_meter
    }

    /// The world-space rectangle visible in the image:
    /// `(x_min, y_min, x_max, y_max)` in metres.
    pub fn visible_world(&self) -> (f64, f64, f64, f64) {
        let tl = self.image_to_world(Point2::new(0.0, self.height as f64));
        let br = self.image_to_world(Point2::new(self.width as f64, 0.0));
        (tl.x, tl.y, br.x, br.y)
    }
}

impl Camera {
    /// A quarter-resolution camera (160x120 at 65 px/m) framing the same
    /// world window as [`Camera::default`]. Silhouettes are ~4x smaller,
    /// which makes debug-build end-to-end tests and examples fast while
    /// preserving every geometric relationship.
    pub fn compact() -> Self {
        Camera::new(160, 120, 65.0, -0.10, 112.5)
    }

    /// The camera whose image is this one downscaled 2x (matching
    /// [`slj_imgproc::filter::resize_half`]): half the resolution, half
    /// the scale, same world framing.
    pub fn halved(&self) -> Camera {
        Camera::new(
            (self.width / 2).max(1),
            (self.height / 2).max(1),
            self.pixels_per_meter / 2.0,
            self.world_left,
            self.ground_row / 2.0,
        )
    }
}

impl Default for Camera {
    /// The default scene camera: 320×240 at 130 px/m, ground near the
    /// bottom of the frame — a 1.3 m child spans ~70% of the image
    /// height and a 1.1 m jump fits with margins, matching the paper's
    /// framing in Figure 1.
    fn default() -> Self {
        Camera::new(320, 240, 130.0, -0.10, 225.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_maps_to_ground_row() {
        let cam = Camera::default();
        let p = cam.world_to_image(Point2::new(0.5, 0.0));
        assert!((p.y - cam.ground_row).abs() < 1e-12);
    }

    #[test]
    fn up_in_world_is_down_in_image() {
        let cam = Camera::default();
        let low = cam.world_to_image(Point2::new(0.0, 0.1));
        let high = cam.world_to_image(Point2::new(0.0, 1.0));
        assert!(high.y < low.y);
    }

    #[test]
    fn roundtrip_world_image_world() {
        let cam = Camera::default();
        for &(x, y) in &[(0.0, 0.0), (1.3, 0.7), (-0.05, 1.6), (2.2, 0.01)] {
            let p = Point2::new(x, y);
            let back = cam.image_to_world(cam.world_to_image(p));
            assert!(back.distance(p) < 1e-12, "{p} -> {back}");
        }
    }

    #[test]
    fn scale_is_linear() {
        let cam = Camera::default();
        assert!((cam.length_to_pixels(1.0) - 130.0).abs() < 1e-12);
        assert!((cam.pixels_to_length(130.0) - 1.0).abs() < 1e-12);
        assert!((cam.pixels_to_length(cam.length_to_pixels(0.37)) - 0.37).abs() < 1e-12);
    }

    #[test]
    fn segment_conversion_preserves_length_scaled() {
        let cam = Camera::default();
        let s = Segment::new(Point2::new(0.0, 0.0), Point2::new(0.0, 1.0));
        let si = cam.segment_to_image(s);
        assert!((si.length() - 130.0).abs() < 1e-9);
    }

    #[test]
    fn default_frames_whole_jump() {
        let cam = Camera::default();
        let (x0, y0, x1, y1) = cam.visible_world();
        // Jumper starts at x ~ 0.35, lands at ~ 1.45, is 1.3 m tall.
        assert!(x0 <= 0.0, "left edge {x0}");
        assert!(x1 >= 2.2, "right edge {x1}");
        assert!(y0 <= 0.0, "bottom {y0}");
        assert!(y1 >= 1.6, "top {y1}");
    }

    #[test]
    fn default_child_fits_vertically() {
        let cam = Camera::default();
        let crown = cam.world_to_image(Point2::new(0.5, 1.3));
        assert!(crown.y > 0.0 && crown.y < cam.height as f64);
    }

    #[test]
    fn compact_is_scaled_default() {
        let a = Camera::default();
        let b = Camera::compact();
        assert_eq!(b.width * 2, a.width);
        assert!((b.pixels_per_meter * 2.0 - a.pixels_per_meter).abs() <= 1.0);
        let (x0, _, x1, y1) = b.visible_world();
        assert!(x0 <= 0.0 && x1 >= 2.2 && y1 >= 1.6);
    }

    #[test]
    fn halved_preserves_world_framing() {
        let cam = Camera::default();
        let half = cam.halved();
        assert_eq!(half.width, cam.width / 2);
        // A world point maps to half the pixel coordinates.
        let p = Point2::new(0.8, 0.9);
        let full_px = cam.world_to_image(p);
        let half_px = half.world_to_image(p);
        assert!((half_px.x * 2.0 - full_px.x).abs() < 1e-9);
        assert!((half_px.y * 2.0 - full_px.y).abs() < 1e-9);
        // Round trip through the halved camera is exact.
        assert!(half.image_to_world(half_px).distance(p) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_scale_rejected() {
        Camera::new(10, 10, 0.0, 0.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_image_rejected() {
        Camera::new(0, 10, 100.0, 0.0, 5.0);
    }
}
