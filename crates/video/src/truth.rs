//! The `truth.json` sidecar: scene calibration and ground truth for a
//! synthesised clip.
//!
//! Real deployments would calibrate the camera once and have a person
//! annotate the first frame (the paper's procedure); for synthetic clips
//! the sidecar carries exactly that information — plus the full true
//! pose sequence, which lets `slj score` and the `slj-eval` accuracy
//! harness run without any vision. It lives here (not in the CLI) so
//! libraries and tests can load ground truth without a CLI dependency.

use crate::camera::Camera;
use serde::{Deserialize, Serialize};
use slj_motion::{BodyDims, Pose, PoseSeq};
use std::fmt;
use std::path::Path;

/// Calibration + ground truth for one clip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClipTruth {
    /// The fixed camera the clip was rendered with.
    pub camera: Camera,
    /// The athlete's body dimensions.
    pub dims: BodyDims,
    /// The hand-drawn/first-frame stick model for tracker initialisation.
    pub first_pose: Pose,
    /// The full ground-truth pose sequence.
    pub poses: PoseSeq,
    /// Names of the injected technique faults (empty = good jump).
    pub flaws: Vec<String>,
    /// The generation seed.
    pub seed: u64,
}

/// File name of the sidecar inside a clip directory.
pub const TRUTH_FILE: &str = "truth.json";

/// Why a sidecar could not be saved or loaded.
#[derive(Debug)]
#[non_exhaustive]
pub enum TruthError {
    /// Filesystem failure (missing file, unwritable directory, …).
    Io(std::io::Error),
    /// The sidecar did not (de)serialise.
    Json(serde_json::Error),
}

impl fmt::Display for TruthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TruthError::Io(e) => write!(f, "truth sidecar i/o error: {e}"),
            TruthError::Json(e) => write!(f, "truth sidecar json error: {e}"),
        }
    }
}

impl std::error::Error for TruthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TruthError::Io(e) => Some(e),
            TruthError::Json(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for TruthError {
    fn from(e: std::io::Error) -> Self {
        TruthError::Io(e)
    }
}

impl From<serde_json::Error> for TruthError {
    fn from(e: serde_json::Error) -> Self {
        TruthError::Json(e)
    }
}

impl ClipTruth {
    /// Saves the sidecar into a clip directory.
    ///
    /// # Errors
    ///
    /// Returns an error on serialisation or filesystem failure.
    pub fn save<P: AsRef<Path>>(&self, clip_dir: P) -> Result<(), TruthError> {
        let json = serde_json::to_string_pretty(self)?;
        std::fs::create_dir_all(clip_dir.as_ref())?;
        std::fs::write(clip_dir.as_ref().join(TRUTH_FILE), json)?;
        Ok(())
    }

    /// Loads the sidecar from a clip directory.
    ///
    /// # Errors
    ///
    /// Returns an error when the file is missing or malformed.
    pub fn load<P: AsRef<Path>>(clip_dir: P) -> Result<ClipTruth, TruthError> {
        let raw = std::fs::read_to_string(clip_dir.as_ref().join(TRUTH_FILE))?;
        Ok(serde_json::from_str(&raw)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_motion::{synthesize_jump, JumpConfig};

    #[test]
    fn sidecar_roundtrip() {
        let dir = std::env::temp_dir().join("slj_video_truth_test");
        std::fs::remove_dir_all(&dir).ok();
        let cfg = JumpConfig::default();
        let poses = synthesize_jump(&cfg);
        let truth = ClipTruth {
            camera: Camera::compact(),
            dims: cfg.dims.clone(),
            first_pose: poses.poses()[0],
            poses,
            flaws: vec!["shallow-crouch".into()],
            seed: 9,
        };
        truth.save(&dir).unwrap();
        let back = ClipTruth::load(&dir).unwrap();
        assert_eq!(back.camera, truth.camera);
        assert_eq!(back.seed, 9);
        assert_eq!(back.flaws, truth.flaws);
        assert_eq!(back.poses.len(), truth.poses.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_sidecar_errors() {
        let dir = std::env::temp_dir().join("slj_video_truth_missing");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(ClipTruth::load(&dir), Err(TruthError::Io(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
